"""Build configuration.

The compiled simulation core is *optional*: ``python setup.py
build_ext --inplace`` compiles ``repro.sim._ccore`` next to the pure
sources, and :mod:`repro.sim._core` picks it up automatically.  A
missing compiler (or any build failure) degrades to a warning -- the
pure-Python reference implementation is always sufficient.
"""

from setuptools import Extension, setup

setup(
    ext_modules=[
        Extension(
            "repro.sim._ccore",
            sources=["src/repro/sim/_ccore.c"],
            optional=True,
            extra_compile_args=["-O2"],
        ),
    ],
)
