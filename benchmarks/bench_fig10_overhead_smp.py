"""Figure 10: overhead breakdown (6 components), 8 nodes x 2 threads.

The six-way attribution for the SMP configuration. The paper's
observations: barrier time is the component most affected by
multithreading (diff propagation concentrates at barriers -- LU's
barrier overhead reaches 86%); data-wait overhead *decreases* relative
to the single-thread case (page faults amortize across the threads of
a node); checkpointing stays under ~15% except for Water-Nsquared
(~30%, 18 362 checkpoints).
"""

import pytest

from benchmarks.conftest import run_once, save_result
from repro.harness.figures import figure10


@pytest.mark.benchmark(group="fig10")
def test_figure10_overhead_smp(benchmark):
    data, text = run_once(benchmark, lambda: figure10(scale="bench"))
    save_result("fig10_overhead_smp", text)
    extended = data["extended"]

    ckpts = {app: extended[app].counters.total.checkpoints
             for app in extended}
    benchmark.extra_info["checkpoints"] = ckpts
    # Water-Nsquared still dominates checkpoint counts at 2 threads.
    assert ckpts["WaterNsq"] == max(ckpts.values())

    # Every application checkpoints in the SMP configuration at both
    # point A (peer threads) and point B (releaser) -- so counts exceed
    # the pure release count.
    for app in extended:
        totals = extended[app].counters.total
        assert totals.checkpoints > 0
