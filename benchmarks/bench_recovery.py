"""Recovery experiments (paper section 4.5).

The paper evaluates only the failure-free case and argues that its
design "eliminates recovery time" relative to log-replay schemes --
recovery is a bounded reconfiguration, not a re-execution. This bench
measures that claim: kill a node at representative protocol points
during real application runs, and report detection latency, recovery
(reconfiguration) time, and the end-to-end slowdown versus a
failure-free run. Every run still verifies its application result.
"""

import pytest

from benchmarks.conftest import run_once, save_result
from repro.cluster import FailureInjector, Hooks
from repro.harness.experiments import evaluation_config, workload_factories
from repro.harness.runner import SvmRuntime


SCENARIOS = [
    ("WaterNsq", Hooks.LOCK_ACQUIRED, 10, 0.5, "between sync points"),
    ("WaterNsq", Hooks.RELEASE_COMMITTED, 6, 2.0, "during phase 1"),
    ("WaterNsq", Hooks.DIFF_PHASE1_DONE, 6, 0.1, "after point B"),
    ("WaterNsq", Hooks.DIFF_PHASE2_START, 6, 1.0, "during phase 2"),
    ("FFT", Hooks.BARRIER_ENTER, 3, 0.3, "at a barrier"),
    ("RadixLocal", Hooks.CHECKPOINT_A, 4, 0.5, "while checkpointing"),
]


def _run_scenario(app, hook, occurrence, delay, victim=3):
    factory = workload_factories("bench")[app]
    config = evaluation_config("ft", threads_per_node=1)
    runtime = SvmRuntime(config, factory())
    injector = FailureInjector(runtime.cluster)
    record = injector.kill_on_hook(victim, hook, occurrence=occurrence,
                                   delay=delay)
    detect = {}
    runtime.cluster.hooks.on(
        Hooks.FAILURE_DETECTED,
        lambda nid, **kw: detect.setdefault("at", kw.get("time")))
    result = runtime.run()  # verifies the application result
    assert record.fired_at is not None, "injection never fired"
    detection_us = (detect.get("at", record.fired_at) - record.fired_at)
    return {
        "result": result,
        "elapsed_us": result.elapsed_us,
        "detection_us": detection_us,
        "recovery_us": runtime.recovery_manager.last_recovery_us,
        "recoveries": result.recoveries,
    }


def _recovery_table():
    rows = [f"{'scenario':42s} {'detect_us':>10s} {'recover_us':>11s} "
            f"{'run_us':>10s} {'vs clean':>9s}",
            "-" * 88]
    out = {}
    clean = {}
    for app, hook, occurrence, delay, label in SCENARIOS:
        if app not in clean:
            factory = workload_factories("bench")[app]
            clean[app] = SvmRuntime(
                evaluation_config("ft", threads_per_node=1),
                factory()).run().elapsed_us
        r = _run_scenario(app, hook, occurrence, delay)
        slowdown = r["elapsed_us"] / clean[app]
        name = f"{app}: killed {label}"
        rows.append(f"{name:42s} {r['detection_us']:10.1f} "
                    f"{r['recovery_us']:11.1f} {r['elapsed_us']:10.0f} "
                    f"{slowdown:8.2f}x")
        out[name] = {"detection_us": r["detection_us"],
                     "recovery_us": r["recovery_us"],
                     "slowdown": slowdown,
                     "recoveries": r["recoveries"]}
    return out, "\n".join(rows)


@pytest.mark.benchmark(group="recovery")
def test_recovery_time(benchmark):
    data, text = run_once(benchmark, _recovery_table)
    save_result("recovery", text)
    benchmark.extra_info["scenarios"] = {
        k: {kk: round(vv, 2) for kk, vv in v.items()}
        for k, v in data.items()}
    for name, row in data.items():
        assert row["recoveries"] == 1, f"{name}: recovery did not happen"
        # "Eliminating recovery time": reconfiguration is small relative
        # to the run, and the whole run stays within a few x of clean
        # (the survivors lose only the rendezvous + the victim's replay).
        assert row["slowdown"] < 4.0, f"{name}: recovery too expensive"
