"""Recovery-cost scaling: reconfiguration work vs. replicated state.

The paper's design replaces log replay with "simple reconfiguration
operations"; the implied scaling claim is that recovery cost is
bounded by the amount of state the failed node was hosting (pages to
re-replicate, locks to re-home) rather than by execution history.

This bench sweeps the shared-data footprint and, separately, the
execution length before the failure, and checks exactly that: recovery
time grows with hosted pages and is flat in history length.
"""

import pytest

from benchmarks.conftest import run_once, save_result
from repro.apps import SyntheticWorkload
from repro.cluster import FailureInjector, Hooks
from repro.config import ClusterConfig, MemoryParams, ProtocolParams
from repro.harness.runner import SvmRuntime


def _run(pages_per_thread, iterations, victim=2):
    config = ClusterConfig(
        num_nodes=4, threads_per_node=1,
        shared_pages=max(64, 16 * pages_per_thread),
        num_locks=64, num_barriers=8, seed=11,
        memory=MemoryParams(page_size=512),
        protocol=ProtocolParams(variant="ft"),
    )
    workload = SyntheticWorkload(iterations=iterations,
                                 pages_per_interval=pages_per_thread,
                                 bytes_per_page=128, compute_us=10.0,
                                 sync="locks")
    runtime = SvmRuntime(config, workload)
    FailureInjector(runtime.cluster).kill_on_hook(
        victim, Hooks.LOCK_ACQUIRED, occurrence=max(2, iterations // 2),
        delay=0.5)
    result = runtime.run()
    assert result.recoveries == 1
    return runtime.recovery_manager.last_recovery_us


def _scaling_table():
    rows = ["recovery time vs shared-data footprint "
            "(4 nodes, failure mid-run)",
            f"{'pages/thread':>13s} {'recovery_us':>12s}",
            "-" * 28]
    out = {"pages": {}, "history": {}}
    for pages in (1, 4, 16, 32):
        rec = _run(pages, iterations=8)
        rows.append(f"{pages:13d} {rec:12.1f}")
        out["pages"][pages] = rec
    rows.append("")
    rows.append("recovery time vs execution history before the failure")
    rows.append(f"{'iterations':>13s} {'recovery_us':>12s}")
    rows.append("-" * 28)
    for iters in (4, 8, 16, 32):
        rec = _run(4, iterations=iters)
        rows.append(f"{iters:13d} {rec:12.1f}")
        out["history"][iters] = rec
    return out, "\n".join(rows)


@pytest.mark.benchmark(group="recovery-scaling")
def test_recovery_scaling(benchmark):
    data, text = run_once(benchmark, _scaling_table)
    save_result("recovery_scaling", text)
    benchmark.extra_info["recovery_us"] = {
        "by_pages": {str(k): round(v, 1)
                     for k, v in data["pages"].items()},
        "by_history": {str(k): round(v, 1)
                       for k, v in data["history"].items()},
    }
    pages = data["pages"]
    history = data["history"]
    # Recovery grows with hosted state...
    assert pages[32] > pages[1]
    # ...but is flat in execution history (no log replay): the longest
    # run's recovery stays within 2x of the shortest's.
    assert max(history.values()) < 2.0 * min(history.values())
