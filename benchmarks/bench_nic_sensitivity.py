"""NIC-parameter sensitivity (paper section 5.3, closing discussion).

"We have found that specific NIC parameters have a critical impact on
system performance. These are mainly the size of the post queue for
asynchronous messages..." -- the extended protocol clusters its
(doubled) diff traffic at synchronization points, so a shallow post
queue back-pressures the releasing processor.

This bench sweeps the post-queue depth and, separately, the wire
latency, for the diff-heaviest application (LU under the extended
protocol), and verifies the paper's qualitative statements: shallow
queues hurt the extended protocol more than the base one, and the
extended protocol's sensitivity shrinks as the queue deepens.
"""

import pytest

from benchmarks.conftest import run_once, save_result
from repro.apps import LU, SyntheticWorkload
from repro.config import (
    ClusterConfig,
    MemoryParams,
    NetworkParams,
    ProtocolParams,
)
from repro.harness.runner import SvmRuntime


def _config(variant, depth=32, latency=8.0, bandwidth=100.0):
    return ClusterConfig(
        num_nodes=8, threads_per_node=1, shared_pages=2048,
        num_locks=512, num_barriers=8, seed=2003,
        memory=MemoryParams(page_size=512),
        network=NetworkParams(post_queue_depth=depth,
                              wire_latency_us=latency,
                              bandwidth_bytes_per_us=bandwidth),
        protocol=ProtocolParams(variant=variant),
    )


def _run(variant, depth=32, latency=8.0):
    config = _config(variant, depth=depth, latency=latency)
    return SvmRuntime(config, LU(n=128, block=16)).run()


def _run_burst(variant, depth):
    """Diff bursts: every thread dirties 16 pages per interval and
    synchronizes at barriers, so each release posts a burst of diff
    messages against the queue (at reduced wire bandwidth, as the
    paper's PCI-limited Myrinet was relative to its CPUs)."""
    config = _config(variant, depth=depth, bandwidth=25.0)
    workload = SyntheticWorkload(iterations=6, pages_per_interval=16,
                                 bytes_per_page=256, compute_us=10.0,
                                 sync="barriers")
    runtime = SvmRuntime(config, workload)
    result = runtime.run()
    stalls = sum(node.nic.post_queue_stalls
                 for node in runtime.cluster.nodes)
    return result, stalls


def _sweep():
    rows = [f"{'post queue depth':>17s} {'base_us':>10s} {'ft_us':>10s}"
            f" {'ft_stalls':>10s} {'overhead':>9s}",
            "-" * 62]
    out = {"queue": {}, "latency": {}}
    for depth in (2, 8, 32, 128):
        base, _ = _run_burst("base", depth)
        ft, ft_stalls = _run_burst("ft", depth)
        overhead = (ft.elapsed_us / base.elapsed_us - 1) * 100
        rows.append(f"{depth:17d} {base.elapsed_us:10.0f} "
                    f"{ft.elapsed_us:10.0f} {ft_stalls:10d} "
                    f"{overhead:8.1f}%")
        out["queue"][depth] = {"base_us": base.elapsed_us,
                               "ft_us": ft.elapsed_us,
                               "ft_stalls": ft_stalls,
                               "overhead": overhead}
    rows.append("")
    rows.append(f"{'wire latency us':>17s} {'base_us':>10s} "
                f"{'ft_us':>10s} {'overhead':>9s}")
    rows.append("-" * 52)
    for latency in (2.0, 8.0, 32.0):
        base = _run("base", latency=latency)
        ft = _run("ft", latency=latency)
        overhead = (ft.elapsed_us / base.elapsed_us - 1) * 100
        rows.append(f"{latency:17.1f} {base.elapsed_us:10.0f} "
                    f"{ft.elapsed_us:10.0f} {overhead:8.1f}%")
        out["latency"][latency] = {"base_us": base.elapsed_us,
                                   "ft_us": ft.elapsed_us,
                                   "overhead": overhead}
    return out, "\n".join(rows)


@pytest.mark.benchmark(group="nic")
def test_nic_sensitivity(benchmark):
    data, text = run_once(benchmark, _sweep)
    save_result("nic_sensitivity", text)
    benchmark.extra_info["sweep"] = {
        "queue": {str(k): round(v["overhead"], 1)
                  for k, v in data["queue"].items()},
        "latency": {str(k): round(v["overhead"], 1)
                    for k, v in data["latency"].items()},
    }
    queue = data["queue"]
    # A shallow queue stalls the extended protocol's clustered diff
    # bursts (real back-pressure observed)...
    assert queue[2]["ft_stalls"] > 0
    # ...and deepening the queue makes the back-pressure disappear
    # entirely (the paper's tuning knob). With a single releasing
    # thread per node the stall time is largely overlapped, so the
    # effect shows in the stall counter rather than wall time; under
    # burst traffic the FT overhead itself is what balloons (~72% here
    # vs ~28% without bursts).
    assert queue[32]["ft_stalls"] == 0
    assert queue[2]["overhead"] > 50.0
    # Higher wire latency hurts everyone; overheads stay bounded.
    lat = data["latency"]
    assert lat[32.0]["ft_us"] > lat[2.0]["ft_us"]
