"""Section 5.3's in-text quantitative claims, as one table.

The paper backs its per-application analysis with counters rather than
a numbered table; this bench regenerates them side by side:

* share of diffed pages that are the writer's own home pages
  (paper: FFT/LU ~all, WaterSpatialFL >99%, WaterNsq ~25%, Radix ~12%);
* checkpoint counts (paper: WaterNsq 10 277 at 1 thread, 18 362 at 2;
  others 4-311) and mean checkpoint size (paper: 2-2.8 KB stacks);
* lock acquires (paper: WaterNsq uses 4105 locks at high frequency,
  WaterSpatialFL 518, Radix 66);
* page-fault counts and the extended protocol's extra local fetches.
"""

import pytest

from benchmarks.conftest import run_once, save_result
from repro.harness.experiments import APP_ORDER, run_suite


def _latency_table(base, extended):
    """Average operation latencies, base vs extended -- the paper's
    'average lock wait time presents more than a two-fold increase'
    (Water-Nsquared) and 'the average wait time per page increases'."""
    from repro.metrics.latency import LOCK_WAIT, PAGE_FAULT
    rows = [f"{'app':12s} {'lockwait_0':>11s} {'lockwait_1':>11s} "
            f"{'x':>6s} {'fault_0':>9s} {'fault_1':>9s} {'x':>6s}",
            "-" * 70]
    stats = {}
    for app in APP_ORDER:
        b_lock = base[app].latency.stats(LOCK_WAIT)
        e_lock = extended[app].latency.stats(LOCK_WAIT)
        b_fault = base[app].latency.stats(PAGE_FAULT)
        e_fault = extended[app].latency.stats(PAGE_FAULT)
        lock_x = (e_lock.mean_us / b_lock.mean_us
                  if b_lock.mean_us else float("nan"))
        fault_x = (e_fault.mean_us / b_fault.mean_us
                   if b_fault.mean_us else float("nan"))
        rows.append(f"{app:12s} {b_lock.mean_us:11.1f} "
                    f"{e_lock.mean_us:11.1f} {lock_x:6.2f} "
                    f"{b_fault.mean_us:9.1f} {e_fault.mean_us:9.1f} "
                    f"{fault_x:6.2f}")
        stats[app] = {"lock_x": lock_x, "fault_x": fault_x}
    return stats, "\n".join(rows)


def _claims_table():
    extended = run_suite("ft", threads_per_node=1, scale="bench")
    rows = []
    header = (f"{'app':12s} {'pages_diffed':>12s} {'home_frac':>10s} "
              f"{'lock_acqs':>10s} {'releases':>9s} {'ckpts':>7s} "
              f"{'ckpt_B':>7s} {'faults':>8s} {'local_fetch':>12s}")
    rows.append(header)
    rows.append("-" * len(header))
    stats = {}
    for app in APP_ORDER:
        t = extended[app].counters.total
        frac = extended[app].counters.home_diff_fraction
        mean_ckpt = extended[app].counters.mean_checkpoint_bytes
        rows.append(
            f"{app:12s} {t.pages_diffed:12d} {frac:10.2f} "
            f"{t.lock_acquires:10d} {t.releases:9d} {t.checkpoints:7d} "
            f"{mean_ckpt:7.0f} {t.page_faults:8d} "
            f"{t.local_page_fetches:12d}")
        stats[app] = {"home_frac": frac, "checkpoints": t.checkpoints,
                      "lock_acquires": t.lock_acquires}
    return stats, "\n".join(rows)


@pytest.mark.benchmark(group="claims")
def test_section53_claims(benchmark):
    stats, text = run_once(benchmark, _claims_table)
    save_result("table_section53_claims", text)
    benchmark.extra_info["stats"] = stats

    # Orderings the paper reports:
    # home-page-diff share: owner-computes apps at the top, Radix at
    # the bottom.
    assert stats["FFT"]["home_frac"] == pytest.approx(1.0)
    assert stats["LU"]["home_frac"] == pytest.approx(1.0)
    assert stats["RadixLocal"]["home_frac"] < \
        stats["WaterSpFL"]["home_frac"]
    assert stats["RadixLocal"]["home_frac"] < \
        stats["WaterNsq"]["home_frac"]
    # Checkpoint counts follow release frequency: WaterNsq far ahead.
    assert stats["WaterNsq"]["checkpoints"] == max(
        s["checkpoints"] for s in stats.values())
    # Lock usage ordering: WaterNsq > WaterSpFL; FFT and LU lock-free.
    assert stats["WaterNsq"]["lock_acquires"] > \
        stats["WaterSpFL"]["lock_acquires"]
    assert stats["FFT"]["lock_acquires"] == 0
    assert stats["LU"]["lock_acquires"] == 0


@pytest.mark.benchmark(group="claims")
def test_section53_latency_claims(benchmark):
    def both():
        base = run_suite("base", threads_per_node=1, scale="bench")
        extended = run_suite("ft", threads_per_node=1, scale="bench")
        return _latency_table(base, extended)

    stats, text = run_once(benchmark, both)
    save_result("table_latency_claims", text)
    benchmark.extra_info["ratios"] = {
        app: {k: round(v, 2) for k, v in row.items()}
        for app, row in stats.items()}
    # The paper: lock wait grows under the extended protocol (the lock
    # hand-over now waits for point B; lock state is replicated). Their
    # testbed saw >2x for WaterNsq; our model reproduces the direction
    # for every lock-using app (~1.1-1.4x at simulation scale -- the
    # gap is the NIC-load amplification discussed in EXPERIMENTS.md).
    import math
    for app, row in stats.items():
        if not math.isnan(row["lock_x"]):
            assert row["lock_x"] > 1.0, f"{app} lock wait did not grow"
    # Average data wait per fault increases under the extended
    # protocol for every app that faults (fetches wait for committed
    # copies updated last; home pages add local fetches).
    import math
    for app, row in stats.items():
        if not math.isnan(row["fault_x"]):
            assert row["fault_x"] > 0.95, f"{app} fault latency shrank"
