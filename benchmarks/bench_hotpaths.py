"""Hot-path perf-regression harness.

Times the simulator's host-side hot paths -- the code that dominated
profiles before the vectorization pass -- and records the results in
``results/BENCH_hotpaths.json`` so later changes can be checked against
them:

* diff compute (vectorized vs. the retained byte-loop reference, on
  sparse / dense / clean pages), diff apply, diff merge;
* page fault + remote fetch (host microseconds per fault in a
  fetch-heavy synthetic run);
* lock handoff (host microseconds per acquire in a contended
  lock-ping-pong synthetic run);
* an end-to-end FFT slice under the fault-tolerant protocol.

Runs standalone (``PYTHONPATH=src python benchmarks/bench_hotpaths.py``)
or as a pytest smoke test (``-k hotpaths``); the smoke test uses
reduced repeat counts but asserts the headline speedups hold.

The JSON keeps the two kernel builds apart: the top-level figures are
always from the **pure-Python reference** build (the perf-regression
gate's target, see ``tests/tools/check_bench_regression.py``), and an
``accelerated`` sub-key holds the same figures measured with the
compiled :mod:`repro.sim._ccore` live. A run merges into the existing
file under its own key and leaves the other build's figures alone, so
regenerating both is two runs::

    REPRO_PURE=1 PYTHONPATH=src:. python benchmarks/bench_hotpaths.py
    PYTHONPATH=src:. python benchmarks/bench_hotpaths.py
"""

import json
import random
import time

import pytest

from benchmarks.conftest import RESULTS_DIR
from repro.apps.synthetic import SyntheticWorkload
from repro.sim import ACCELERATED
from repro.harness.experiments import evaluation_config, run_app
from repro.harness.runner import SvmRuntime
from repro.memory.diff import (
    apply_diff,
    compute_diff,
    compute_diff_reference,
    merge_diffs,
)

PAGE_SIZE = 4096


# -- workload pages ----------------------------------------------------------

def _make_pages(seed: int = 7):
    """Twin/current pairs exercising the four diff regimes."""
    rng = random.Random(seed)
    twin = bytes(rng.randrange(256) for _ in range(PAGE_SIZE))

    sparse = bytearray(twin)          # a few scattered runs
    for start in (100, 900, 2048, 3900):
        for i in range(start, start + 24):
            sparse[i] ^= 0xFF

    # Write-mostly page: ~60% of bytes changed at random, so changed
    # runs coalesce under the default merge gap -- the regime the
    # paper's diff-cost analysis attributes most traffic to.
    dense = bytearray(twin)
    drng = random.Random(seed + 4)
    for i in range(PAGE_SIZE):
        if drng.random() < 0.6:
            dense[i] = (dense[i] + 1) & 0xFF

    # Worst case for run-based diffing: 16 changed bytes every 32,
    # with gaps exactly at the merge threshold so nothing coalesces
    # (128 separate runs). Reported but not an acceptance gate.
    fragmented = bytearray(twin)
    for start in range(0, PAGE_SIZE, 32):
        for i in range(start, start + 16):
            fragmented[i] ^= 0xA5

    clean = bytearray(twin)           # nothing changed

    return twin, {"sparse": bytes(sparse), "dense": bytes(dense),
                  "fragmented": bytes(fragmented), "clean": bytes(clean)}


def _time_per_call(fn, repeats: int, number: int) -> float:
    """Best-of-``repeats`` mean microseconds per call."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(number):
            fn()
        elapsed = time.perf_counter() - t0
        best = min(best, elapsed / number)
    return best * 1e6


def bench_calibration() -> float:
    """Machine-speed proxy in microseconds: a fixed, deterministic mix
    of interpreter work (loop + arithmetic + bytes slicing) resembling
    the simulator's host profile. The regression checker divides two
    runs' calibrations to normalize absolute host-time metrics across
    machines, so the committed baseline stops false-failing on slower
    runners."""
    rng = random.Random(123)
    data = bytes(rng.randrange(256) for _ in range(PAGE_SIZE))

    def spin():
        acc = 0
        buf = bytearray(data)
        for i in range(0, PAGE_SIZE, 16):
            acc += buf[i]
            buf[i] = (buf[i] + 1) & 0xFF
        buf[256:512] = data[512:768]
        return acc + len(bytes(buf[:128]))

    return round(_time_per_call(spin, 5, 200), 2)


def _drive(gen):
    """Exhaust an accessor generator synchronously.

    Fast-path accessors return before their first yield, so this is a
    single ``StopIteration``; mapped per-access reference calls also
    complete without suspending (zero scheduler yields either way)."""
    try:
        while True:
            next(gen)
    except StopIteration as stop:
        return stop.value


def bench_span_access(repeats: int = 5, number: int = 50) -> dict:
    """Batched span fast path vs the per-access reference idiom.

    Both paths run on the same mapped pages in the same process, so the
    speedups are machine-independent ratios -- the same pattern as the
    vectorized-vs-reference diff gate. The reference numbers time the
    pre-batching idiom: one ``read_i64``/``write_i64`` per element with
    the fast path forced off."""
    import numpy as np

    from repro.apps.base import Workload
    from repro.config import ClusterConfig, MemoryParams, ProtocolParams

    span_bytes = 4096              # 8 pages of 512 B
    data = np.arange(span_bytes // 8, dtype=np.int64)
    payload = data.tobytes()
    out = {}

    class Probe(Workload):
        name = "probe"

        def setup(self, runtime):
            self.seg = runtime.alloc("probe", 2 * span_bytes, home=0)

        def kernel(self, ctx):
            if ctx.tid == 0:
                addr = self.seg.addr(0)
                svm, agent = ctx.svm, ctx.svm.agent
                # Map the pages read-write (twin creation included) so
                # every timed access below is the mapped, zero-yield
                # case on both paths.
                yield from ctx.svm.write_array(addr, data)
                out["span_read_us"] = _time_per_call(
                    lambda: _drive(svm.read_span(addr, span_bytes)),
                    repeats, number)
                out["read_array_us"] = _time_per_call(
                    lambda: _drive(svm.read_array(addr, np.int64,
                                                  len(data))),
                    repeats, number)
                out["span_write_us"] = _time_per_call(
                    lambda: _drive(svm.write_span(addr, payload)),
                    repeats, number)

                agent.fast_path = False
                ref_number = max(1, number // 10)

                def ref_read():
                    for off in range(0, span_bytes, 8):
                        _drive(svm.read_i64(addr + off))

                def ref_write():
                    for off in range(0, span_bytes, 8):
                        _drive(svm.write_i64(addr + off, 7))

                out["span_read_reference_us"] = _time_per_call(
                    ref_read, repeats, ref_number)
                out["span_write_reference_us"] = _time_per_call(
                    ref_write, repeats, ref_number)
                agent.fast_path = True
                # Restore the span contents so the final barrier diffs
                # deterministic bytes.
                yield from ctx.svm.write_span(addr, payload)
            yield from ctx.barrier(self.BARRIER_A)

    config = ClusterConfig(
        num_nodes=2, threads_per_node=1, shared_pages=32,
        num_locks=4, num_barriers=4, seed=7,
        memory=MemoryParams(page_size=512),
        protocol=ProtocolParams(variant="ft"))
    SvmRuntime(config, Probe()).run(verify=False)

    return {
        "span_read_us": round(out["span_read_us"], 2),
        "span_read_reference_us": round(out["span_read_reference_us"], 2),
        "span_read_speedup": round(out["span_read_reference_us"]
                                   / out["span_read_us"], 2),
        "span_write_us": round(out["span_write_us"], 2),
        "span_write_reference_us": round(out["span_write_reference_us"],
                                         2),
        "span_write_speedup": round(out["span_write_reference_us"]
                                    / out["span_write_us"], 2),
        "read_array_us": round(out["read_array_us"], 2),
        "read_array_speedup": round(out["span_read_reference_us"]
                                    / out["read_array_us"], 2),
    }


# -- sections ----------------------------------------------------------------

def bench_diff_engine(repeats: int = 5, number: int = 50) -> dict:
    twin, pages = _make_pages()
    out = {}
    for kind, current in pages.items():
        vec = _time_per_call(
            lambda c=current: compute_diff(0, twin, c), repeats, number)
        ref = _time_per_call(
            lambda c=current: compute_diff_reference(0, twin, c),
            repeats, number)
        out[kind] = {"vectorized_us": round(vec, 2),
                     "reference_us": round(ref, 2),
                     "speedup": round(ref / vec, 2)}

    diff = compute_diff(0, twin, pages["dense"])
    buf = bytearray(twin)
    out["apply_dense_us"] = round(_time_per_call(
        lambda: apply_diff(buf, diff), repeats, number), 2)

    # Dirty-region fast path: same sparse page, extents known.
    regions = [(96, 128), (896, 928), (2044, 2076), (3896, 3928)]
    out["sparse_with_regions_us"] = round(_time_per_call(
        lambda: compute_diff(0, twin, pages["sparse"], regions=regions),
        repeats, number), 2)
    return out


def bench_merge(repeats: int = 5, number: int = 50) -> dict:
    twin, pages = _make_pages()
    parts = []
    for lo in range(0, PAGE_SIZE, 512):
        d = compute_diff(0, twin[lo:lo + 512], pages["dense"][lo:lo + 512])
        parts.append(type(d)(0, tuple(
            (lo + off, data) for off, data in d.runs)))
    merged_us = _time_per_call(
        lambda: merge_diffs(0, parts, PAGE_SIZE, base=twin),
        repeats, number)
    return {"merge_8diffs_us": round(merged_us, 2)}


def _run_synthetic(workload: SyntheticWorkload, num_nodes: int = 4):
    config = evaluation_config("ft", num_nodes=num_nodes)
    runtime = SvmRuntime(config, workload)
    t0 = time.perf_counter()
    result = runtime.run(verify=False)
    wall = time.perf_counter() - t0
    return wall, result


def bench_fault_fetch(iterations: int = 40) -> dict:
    """Fetch-heavy run: almost all writes land on remote home pages."""
    wl = SyntheticWorkload(iterations=iterations, pages_per_interval=4,
                           home_fraction=0.0, bytes_per_page=256,
                           num_locks=1, compute_us=1.0, sync="barriers")
    wall, result = _run_synthetic(wl)
    faults = max(result.counters.total.page_faults, 1)
    return {"wall_s": round(wall, 3),
            "page_faults": result.counters.total.page_faults,
            "host_us_per_fault": round(wall * 1e6 / faults, 1)}


def bench_lock_handoff(iterations: int = 60) -> dict:
    """Contended single lock: handoffs dominate."""
    wl = SyntheticWorkload(iterations=iterations, pages_per_interval=1,
                           home_fraction=0.5, bytes_per_page=64,
                           num_locks=1, compute_us=1.0, sync="locks")
    wall, result = _run_synthetic(wl)
    acquires = max(result.counters.total.lock_acquires, 1)
    return {"wall_s": round(wall, 3),
            "lock_acquires": result.counters.total.lock_acquires,
            "host_us_per_acquire": round(wall * 1e6 / acquires, 1)}


def bench_fft_slice(scale: str = "test") -> dict:
    """End-to-end: FFT under the fault-tolerant protocol."""
    t0 = time.perf_counter()
    result = run_app("FFT", "ft", scale=scale)
    wall = time.perf_counter() - t0
    return {"wall_s": round(wall, 3),
            "simulated_us": round(result.elapsed_us, 1),
            "page_faults": result.counters.total.page_faults,
            "diff_messages": result.counters.total.diff_messages}


def run_all(quick: bool = False) -> dict:
    repeats, number = (2, 10) if quick else (5, 50)
    return {
        "build": "accelerated" if ACCELERATED else "pure",
        "page_size": PAGE_SIZE,
        "calibration_us": bench_calibration(),
        "diff": bench_diff_engine(repeats, number),
        "merge": bench_merge(repeats, number),
        "span_access": bench_span_access(repeats, number),
        "fault_fetch": bench_fault_fetch(10 if quick else 40),
        "lock_handoff": bench_lock_handoff(15 if quick else 60),
        "fft_slice": bench_fft_slice("test"),
    }


def save(results: dict) -> None:
    """Merge this run into the results file under its build's key.

    Pure-build figures live at the top level (the regression gate's
    target); accelerated-build figures live under ``"accelerated"``.
    Whichever half this run did not measure is preserved.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_hotpaths.json"
    data = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except ValueError:
            data = {}
    if results.get("build") == "accelerated":
        data["accelerated"] = {k: v for k, v in results.items()
                               if k != "build"}
    else:
        accel = data.get("accelerated")
        data = dict(results)
        if accel is not None:
            data["accelerated"] = accel
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path} ({results.get('build', 'pure')} figures)")


# -- pytest smoke entry ------------------------------------------------------

@pytest.mark.benchmark(group="hotpaths")
def test_hotpaths_smoke(benchmark):
    results = benchmark.pedantic(lambda: run_all(quick=True),
                                 rounds=1, iterations=1)
    save(results)
    diff = results["diff"]
    # The vectorized engine must stay well ahead of the byte-loop
    # reference on both sparse and dense pages (acceptance: >= 3x).
    assert diff["sparse"]["speedup"] >= 3.0, diff
    assert diff["dense"]["speedup"] >= 3.0, diff
    # The dirty-region path must not be slower than the full scan.
    assert (results["diff"]["sparse_with_regions_us"]
            <= diff["sparse"]["vectorized_us"] * 1.5), results["diff"]
    # The batched span path must stay well ahead of the per-access
    # reference idiom (acceptance: >= 3x, same-machine ratio).
    span = results["span_access"]
    assert span["span_read_speedup"] >= 3.0, span
    assert span["span_write_speedup"] >= 3.0, span
    assert span["read_array_speedup"] >= 3.0, span
    for section in ("fault_fetch", "lock_handoff", "fft_slice"):
        assert results[section]["wall_s"] > 0


if __name__ == "__main__":
    out = run_all()
    print(json.dumps(out, indent=2, sort_keys=True))
    save(out)
