"""Hot-path perf-regression harness.

Times the simulator's host-side hot paths -- the code that dominated
profiles before the vectorization pass -- and records the results in
``results/BENCH_hotpaths.json`` so later changes can be checked against
them:

* diff compute (vectorized vs. the retained byte-loop reference, on
  sparse / dense / clean pages), diff apply, diff merge;
* page fault + remote fetch (host microseconds per fault in a
  fetch-heavy synthetic run);
* lock handoff (host microseconds per acquire in a contended
  lock-ping-pong synthetic run);
* an end-to-end FFT slice under the fault-tolerant protocol.

Runs standalone (``PYTHONPATH=src python benchmarks/bench_hotpaths.py``)
or as a pytest smoke test (``-k hotpaths``); the smoke test uses
reduced repeat counts but asserts the headline speedups hold.
"""

import json
import random
import time

import pytest

from benchmarks.conftest import RESULTS_DIR
from repro.apps.synthetic import SyntheticWorkload
from repro.harness.experiments import evaluation_config, run_app
from repro.harness.runner import SvmRuntime
from repro.memory.diff import (
    apply_diff,
    compute_diff,
    compute_diff_reference,
    merge_diffs,
)

PAGE_SIZE = 4096


# -- workload pages ----------------------------------------------------------

def _make_pages(seed: int = 7):
    """Twin/current pairs exercising the four diff regimes."""
    rng = random.Random(seed)
    twin = bytes(rng.randrange(256) for _ in range(PAGE_SIZE))

    sparse = bytearray(twin)          # a few scattered runs
    for start in (100, 900, 2048, 3900):
        for i in range(start, start + 24):
            sparse[i] ^= 0xFF

    # Write-mostly page: ~60% of bytes changed at random, so changed
    # runs coalesce under the default merge gap -- the regime the
    # paper's diff-cost analysis attributes most traffic to.
    dense = bytearray(twin)
    drng = random.Random(seed + 4)
    for i in range(PAGE_SIZE):
        if drng.random() < 0.6:
            dense[i] = (dense[i] + 1) & 0xFF

    # Worst case for run-based diffing: 16 changed bytes every 32,
    # with gaps exactly at the merge threshold so nothing coalesces
    # (128 separate runs). Reported but not an acceptance gate.
    fragmented = bytearray(twin)
    for start in range(0, PAGE_SIZE, 32):
        for i in range(start, start + 16):
            fragmented[i] ^= 0xA5

    clean = bytearray(twin)           # nothing changed

    return twin, {"sparse": bytes(sparse), "dense": bytes(dense),
                  "fragmented": bytes(fragmented), "clean": bytes(clean)}


def _time_per_call(fn, repeats: int, number: int) -> float:
    """Best-of-``repeats`` mean microseconds per call."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(number):
            fn()
        elapsed = time.perf_counter() - t0
        best = min(best, elapsed / number)
    return best * 1e6


# -- sections ----------------------------------------------------------------

def bench_diff_engine(repeats: int = 5, number: int = 50) -> dict:
    twin, pages = _make_pages()
    out = {}
    for kind, current in pages.items():
        vec = _time_per_call(
            lambda c=current: compute_diff(0, twin, c), repeats, number)
        ref = _time_per_call(
            lambda c=current: compute_diff_reference(0, twin, c),
            repeats, number)
        out[kind] = {"vectorized_us": round(vec, 2),
                     "reference_us": round(ref, 2),
                     "speedup": round(ref / vec, 2)}

    diff = compute_diff(0, twin, pages["dense"])
    buf = bytearray(twin)
    out["apply_dense_us"] = round(_time_per_call(
        lambda: apply_diff(buf, diff), repeats, number), 2)

    # Dirty-region fast path: same sparse page, extents known.
    regions = [(96, 128), (896, 928), (2044, 2076), (3896, 3928)]
    out["sparse_with_regions_us"] = round(_time_per_call(
        lambda: compute_diff(0, twin, pages["sparse"], regions=regions),
        repeats, number), 2)
    return out


def bench_merge(repeats: int = 5, number: int = 50) -> dict:
    twin, pages = _make_pages()
    parts = []
    for lo in range(0, PAGE_SIZE, 512):
        d = compute_diff(0, twin[lo:lo + 512], pages["dense"][lo:lo + 512])
        parts.append(type(d)(0, tuple(
            (lo + off, data) for off, data in d.runs)))
    merged_us = _time_per_call(
        lambda: merge_diffs(0, parts, PAGE_SIZE, base=twin),
        repeats, number)
    return {"merge_8diffs_us": round(merged_us, 2)}


def _run_synthetic(workload: SyntheticWorkload, num_nodes: int = 4):
    config = evaluation_config("ft", num_nodes=num_nodes)
    runtime = SvmRuntime(config, workload)
    t0 = time.perf_counter()
    result = runtime.run(verify=False)
    wall = time.perf_counter() - t0
    return wall, result


def bench_fault_fetch(iterations: int = 40) -> dict:
    """Fetch-heavy run: almost all writes land on remote home pages."""
    wl = SyntheticWorkload(iterations=iterations, pages_per_interval=4,
                           home_fraction=0.0, bytes_per_page=256,
                           num_locks=1, compute_us=1.0, sync="barriers")
    wall, result = _run_synthetic(wl)
    faults = max(result.counters.total.page_faults, 1)
    return {"wall_s": round(wall, 3),
            "page_faults": result.counters.total.page_faults,
            "host_us_per_fault": round(wall * 1e6 / faults, 1)}


def bench_lock_handoff(iterations: int = 60) -> dict:
    """Contended single lock: handoffs dominate."""
    wl = SyntheticWorkload(iterations=iterations, pages_per_interval=1,
                           home_fraction=0.5, bytes_per_page=64,
                           num_locks=1, compute_us=1.0, sync="locks")
    wall, result = _run_synthetic(wl)
    acquires = max(result.counters.total.lock_acquires, 1)
    return {"wall_s": round(wall, 3),
            "lock_acquires": result.counters.total.lock_acquires,
            "host_us_per_acquire": round(wall * 1e6 / acquires, 1)}


def bench_fft_slice(scale: str = "test") -> dict:
    """End-to-end: FFT under the fault-tolerant protocol."""
    t0 = time.perf_counter()
    result = run_app("FFT", "ft", scale=scale)
    wall = time.perf_counter() - t0
    return {"wall_s": round(wall, 3),
            "simulated_us": round(result.elapsed_us, 1),
            "page_faults": result.counters.total.page_faults,
            "diff_messages": result.counters.total.diff_messages}


def run_all(quick: bool = False) -> dict:
    repeats, number = (2, 10) if quick else (5, 50)
    return {
        "page_size": PAGE_SIZE,
        "diff": bench_diff_engine(repeats, number),
        "merge": bench_merge(repeats, number),
        "fault_fetch": bench_fault_fetch(10 if quick else 40),
        "lock_handoff": bench_lock_handoff(15 if quick else 60),
        "fft_slice": bench_fft_slice("test"),
    }


def save(results: dict) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_hotpaths.json"
    path.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")


# -- pytest smoke entry ------------------------------------------------------

@pytest.mark.benchmark(group="hotpaths")
def test_hotpaths_smoke(benchmark):
    results = benchmark.pedantic(lambda: run_all(quick=True),
                                 rounds=1, iterations=1)
    save(results)
    diff = results["diff"]
    # The vectorized engine must stay well ahead of the byte-loop
    # reference on both sparse and dense pages (acceptance: >= 3x).
    assert diff["sparse"]["speedup"] >= 3.0, diff
    assert diff["dense"]["speedup"] >= 3.0, diff
    # The dirty-region path must not be slower than the full scan.
    assert (results["diff"]["sparse_with_regions_us"]
            <= diff["sparse"]["vectorized_us"] * 1.5), results["diff"]
    for section in ("fault_fetch", "lock_handoff", "fft_slice"):
        assert results[section]["wall_s"] > 0


if __name__ == "__main__":
    out = run_all()
    print(json.dumps(out, indent=2, sort_keys=True))
    save(out)
