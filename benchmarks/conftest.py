"""Shared helpers for the figure-regeneration benchmarks.

Each benchmark runs the simulations once (they are deterministic),
prints the regenerated table, and records headline numbers in
pytest-benchmark's extra_info. The formatted tables are also written
under results/ so EXPERIMENTS.md can reference them.
"""

import pathlib

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def save_result(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


def run_once(benchmark, fn):
    """Run a deterministic simulation once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
