"""Figure 9: execution-time breakdown, 8 nodes x 2 threads/node.

The SMP configuration. The paper reports overheads between 24%
(RadixLocal) and 100% (LU, WaterSpatialFL) -- higher than the
uniprocessor case for almost every application, driven by doubled
diff traffic concentrated at synchronization points and the
serialization of releases within each node.
"""

import pytest

from benchmarks.conftest import run_once, save_result
from repro.harness.figures import figure9, overhead_summary


@pytest.mark.benchmark(group="fig9")
def test_figure9_smp(benchmark):
    data, text = run_once(benchmark, lambda: figure9(scale="bench"))
    save_result("fig9_smp", text)
    base, extended = data["base"], data["extended"]
    overheads = overhead_summary(base, extended)
    benchmark.extra_info["overheads_pct"] = {
        app: round(pct, 1) for app, pct in overheads.items()}

    for app, pct in overheads.items():
        assert pct > 0, f"{app} shows no FT overhead at 2 threads/node"
    # Serialized releases are an SMP-only FT effect (section 4.4).
    stalls = sum(extended[app].counters.total
                 .release_serialization_stalls for app in extended)
    assert stalls > 0
    benchmark.extra_info["release_serialization_stalls"] = stalls
