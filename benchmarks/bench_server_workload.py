"""Section 6's open question: the approach on server applications.

"It is interesting to investigate how well our approach can perform in
a broader application domain that includes server and other
non-scientific applications." -- this bench answers it with the
KVStore transaction workload: random-access, lock-dominated, zero
owner-computes locality, compared against the SPLASH suite's extremes.
"""

import pytest

from benchmarks.conftest import run_once, save_result
from repro.apps import KVStore
from repro.harness.experiments import evaluation_config, run_app
from repro.harness.runner import SvmRuntime
from repro.metrics.latency import LOCK_WAIT


def _run_kv(variant, threads_per_node=1):
    config = evaluation_config(variant, threads_per_node)
    workload = KVStore(buckets=64, txns_per_thread=10)
    return SvmRuntime(config, workload).run()


def _server_table():
    rows = [f"{'workload':14s} {'base_us':>10s} {'ft_us':>10s} "
            f"{'overhead':>9s} {'home_frac':>10s} "
            f"{'lw_p50':>7s} {'lw_p99':>7s} {'lw_p999':>8s}",
            "-" * 79]
    out = {}
    kv_base = _run_kv("base")
    kv_ft = _run_kv("ft")
    cases = {"KVStore": (kv_base, kv_ft)}
    for app in ("FFT", "WaterNsq"):
        cases[app] = (run_app(app, "base", scale="bench"),
                      run_app(app, "ft", scale="bench"))
    for name, (base, ft) in cases.items():
        overhead = (ft.elapsed_us / base.elapsed_us - 1) * 100
        # Tail view of FT lock waits from the deterministic log2
        # histograms (the same pipeline the SLO evaluator reads), not
        # ad-hoc means: the transactional workload's viability question
        # is about the tail, where two-phase commits queue behind locks.
        pct = ft.latency.percentiles(LOCK_WAIT)
        rows.append(f"{name:14s} {base.elapsed_us:10.0f} "
                    f"{ft.elapsed_us:10.0f} {overhead:8.1f}% "
                    f"{ft.counters.home_diff_fraction:10.2f} "
                    f"{pct['p50']:7.0f} {pct['p99']:7.0f} "
                    f"{pct['p999']:8.0f}")
        out[name] = {"overhead": overhead,
                     "home_frac": ft.counters.home_diff_fraction,
                     "lock_p50_us": pct["p50"],
                     "lock_p99_us": pct["p99"],
                     "lock_p999_us": pct["p999"]}
    return out, "\n".join(rows)


@pytest.mark.benchmark(group="server")
def test_server_workload(benchmark):
    data, text = run_once(benchmark, _server_table)
    save_result("server_workload", text)
    benchmark.extra_info["results"] = {
        k: {kk: round(vv, 2) for kk, vv in v.items()}
        for k, v in data.items()}

    kv = data["KVStore"]
    # The transactional workload is viable under the extended protocol
    # (overhead within the paper's observed band)...
    assert 0 < kv["overhead"] < 120
    # ...with no owner-computes locality (unlike FFT's 100%).
    assert kv["home_frac"] < data["FFT"]["home_frac"]
    # The histogram tail is well-formed: quantiles are monotone and the
    # lock-dominated workload has a real (nonzero) wait distribution.
    assert 0 < kv["lock_p50_us"] <= kv["lock_p99_us"] <= kv["lock_p999_us"]
