"""Figure 7: execution-time breakdown, 8 nodes x 1 thread/node.

Regenerates the paper's Figure 7 bars: for each of the six SPLASH-2
applications, total execution time split into compute / data wait /
lock / barrier, for the base protocol (0) and the extended
fault-tolerant protocol (1). The paper reports overheads between 20%
(RadixLocal) and 67% (WaterSpatialFL) in this configuration.
"""

import pytest

from benchmarks.conftest import run_once, save_result
from repro.harness.figures import figure7, overhead_summary


@pytest.mark.benchmark(group="fig7")
def test_figure7_uniprocessor(benchmark):
    data, text = run_once(benchmark, lambda: figure7(scale="bench"))
    save_result("fig7_uniprocessor", text)
    base, extended = data["base"], data["extended"]
    overheads = overhead_summary(base, extended)
    benchmark.extra_info["overheads_pct"] = {
        app: round(pct, 1) for app, pct in overheads.items()}

    # Shape assertions against the paper's claims:
    # every app slows down under the extended protocol...
    for app, pct in overheads.items():
        assert pct > 0, f"{app} shows no FT overhead"
    # ...and RadixLocal sits at the low end (paper: 20% -- lowest; we
    # accept within 10 points of our minimum, since FFT and Radix trade
    # places within noise at simulation scale).
    assert overheads["RadixLocal"] <= min(
        overheads[a] for a in overheads) + 10.0
    # Base FFT/LU (owner-computes) send no diffs at all; extended does.
    assert base["FFT"].counters.total.diff_messages == 0
    assert extended["FFT"].counters.total.diff_messages > 0
