"""Sharing profiles of the application suite.

The paper's per-application analysis (section 5.3) is implicitly a
sharing-pattern argument: FFT/LU write owner-private pages, Water's
force arrays migrate under locks, Radix's destination array is written
by everyone. This bench makes those classifications explicit with the
page profiler, giving each application a sharing fingerprint.
"""

import pytest

from benchmarks.conftest import run_once, save_result
from repro.harness.experiments import (
    APP_ORDER,
    evaluation_config,
    workload_factories,
)
from repro.harness.runner import SvmRuntime
from repro.metrics import SharingProfiler

KINDS = ("private", "read_shared", "migratory", "false_shared",
         "untouched")


def _profiles():
    rows = [f"{'app':12s}" + "".join(f"{k:>14s}" for k in KINDS)]
    rows.append("-" * len(rows[0]))
    out = {}
    factories = workload_factories("bench")
    for app in APP_ORDER:
        runtime = SvmRuntime(evaluation_config("ft"), factories[app]())
        profiler = SharingProfiler(runtime)
        runtime.run()
        summary = profiler.summary()
        rows.append(f"{app:12s}" + "".join(
            f"{summary.get(k, 0):14d}" for k in KINDS))
        out[app] = summary
    return out, "\n".join(rows)


@pytest.mark.benchmark(group="sharing")
def test_sharing_profiles(benchmark):
    data, text = run_once(benchmark, _profiles)
    save_result("sharing_profiles", text)
    benchmark.extra_info["profiles"] = data

    def count(app, kind):
        return data[app].get(kind, 0)

    # FFT and LU: no multi-writer pages at all (owner computes).
    for app in ("FFT", "LU"):
        assert count(app, "migratory") + count(app, "false_shared") == 0
    # The Water codes have multi-writer force pages.
    assert count("WaterNsq", "migratory") \
        + count("WaterNsq", "false_shared") > 0
    # Radix's histogram rows are written by every thread.
    assert count("RadixLocal", "migratory") \
        + count("RadixLocal", "false_shared") > 0
