"""Figure 8: overhead breakdown (6 components), 8 nodes x 1 thread.

The six-way split -- compute, data wait, synchronization, diffs,
protocol processing, checkpointing -- that the paper uses to attribute
the extended protocol's cost. Section 5.3's per-component claims:

* diff processing is the largest contributor for FFT and LU (home-page
  diffing that the base protocol never does);
* checkpointing stays below ~10-20% everywhere but Water-Nsquared
  (which takes an order of magnitude more checkpoints);
* protocol processing adds less than ~5%.
"""

import pytest

from benchmarks.conftest import run_once, save_result
from repro.harness.figures import figure8


@pytest.mark.benchmark(group="fig8")
def test_figure8_overhead_uniprocessor(benchmark):
    data, text = run_once(benchmark, lambda: figure8(scale="bench"))
    save_result("fig8_overhead_uni", text)
    base, extended = data["base"], data["extended"]

    # Diff time grows for every app under the extended protocol, and
    # for owner-computes apps (FFT, LU) it appears where there was none.
    for app in ("FFT", "LU"):
        assert base[app].breakdown.six_component()["diffs"] == 0.0
        assert extended[app].breakdown.six_component()["diffs"] > 0.0

    # Checkpointing is an extended-protocol-only component.
    for app, result in base.items():
        assert result.breakdown.six_component()["checkpointing"] == 0.0
    for app, result in extended.items():
        assert result.breakdown.six_component()["checkpointing"] > 0.0

    # Water-Nsquared checkpoints far more than the barrier-only apps
    # (the paper's 10 277 vs <311).
    ckpts = {app: extended[app].counters.total.checkpoints
             for app in extended}
    assert ckpts["WaterNsq"] > 3 * ckpts["FFT"]
    assert ckpts["WaterNsq"] > 3 * ckpts["LU"]
    benchmark.extra_info["checkpoints"] = ckpts
