"""Parallel-orchestrator benchmark.

Runs one figure-style matrix (apps x variants at ``test`` scale) three
ways -- serial (``--jobs 1``), parallel (``--jobs 4``), and from a warm
content-addressed cache -- and records wall-clock plus bit-identity
checks in ``results/BENCH_parallel.json``.

Two honesty rules:

* every run records ``cpus`` (``os.cpu_count()``); the >= 3x
  parallel-speedup acceptance gate only applies where 4 physical
  workers exist. On a 1-core container the pool cannot beat serial
  and the recorded speedup says so;
* bit-identity is asserted unconditionally: serial, parallel and
  cached summaries (counters, breakdowns, data checksums) must be
  byte-for-byte equal, whatever the machine.

Runs standalone (``PYTHONPATH=src python benchmarks/bench_parallel.py``)
or as a pytest smoke test (``-k parallel_smoke``) with a reduced
matrix.
"""

import json
import os
import tempfile
import time

import pytest

from benchmarks.conftest import RESULTS_DIR
from repro.parallel import app_spec, run_specs

#: Full matrix: every paper app, both protocol variants, test scale.
FULL_APPS = ("FFT", "LU", "WaterNsq", "WaterSpFL", "RadixLocal",
             "Volrend")
#: Reduced matrix for the pytest / CI smoke run.
QUICK_APPS = ("FFT", "LU")

PARALLEL_JOBS = 4
#: The acceptance gate needs real cores to mean anything.
MIN_CPUS_FOR_SPEEDUP_GATE = 4


def _matrix(apps):
    return [app_spec(app, variant, scale="test")
            for variant in ("base", "ft") for app in apps]


def _timed_run(specs, jobs, cache, cache_dir):
    t0 = time.perf_counter()
    results = run_specs(specs, jobs=jobs, cache=cache,
                        cache_dir=cache_dir)
    wall = time.perf_counter() - t0
    bad = [r for r in results if not r.ok]
    assert not bad, [f"{r.spec.label}: {r.status}" for r in bad]
    return wall, results


def run_all(apps=FULL_APPS, jobs=PARALLEL_JOBS) -> dict:
    specs = _matrix(apps)
    cpus = os.cpu_count() or 1

    serial_wall, serial = _timed_run(specs, jobs=1, cache=False,
                                     cache_dir=None)
    parallel_wall, parallel = _timed_run(specs, jobs=jobs, cache=False,
                                         cache_dir=None)

    with tempfile.TemporaryDirectory() as cache_dir:
        warm_wall, warm = _timed_run(specs, jobs=1, cache=True,
                                     cache_dir=cache_dir)
        cached_wall, cached = _timed_run(specs, jobs=1, cache=True,
                                         cache_dir=cache_dir)

    summaries = [r.summary for r in serial]
    identical = (summaries == [r.summary for r in parallel]
                 and summaries == [r.summary for r in warm]
                 and summaries == [r.summary for r in cached])
    checksums_identical = (
        [r.summary["data_checksum"] for r in serial]
        == [r.summary["data_checksum"] for r in parallel]
        == [r.summary["data_checksum"] for r in cached])

    return {
        "cpus": cpus,
        "jobs": jobs,
        "cells": len(specs),
        "apps": list(apps),
        "serial_wall_s": round(serial_wall, 3),
        "parallel_wall_s": round(parallel_wall, 3),
        "parallel_speedup": round(serial_wall / parallel_wall, 2),
        "cache_cold_wall_s": round(warm_wall, 3),
        "cache_hit_wall_s": round(cached_wall, 3),
        "cache_hit_speedup": round(serial_wall / max(cached_wall, 1e-9),
                                   1),
        "cache_hits": sum(r.cached for r in cached),
        "bit_identical": identical,
        "checksums_identical": checksums_identical,
        "speedup_gate_applies": cpus >= MIN_CPUS_FOR_SPEEDUP_GATE,
    }


def check(results: dict) -> None:
    """The acceptance assertions; shared by smoke test and __main__."""
    assert results["bit_identical"], \
        "serial / parallel / cached summaries diverged"
    assert results["checksums_identical"], \
        "shared-memory checksums diverged between execution modes"
    assert results["cache_hits"] == results["cells"], results
    # A warm cache must make re-running the matrix essentially free.
    assert results["cache_hit_wall_s"] < results["serial_wall_s"] / 10, \
        results
    # The >= 3x gate needs 4 workers on >= 4 real cores; the jobs=2 CI
    # smoke and 1-core containers assert bit-identity only.
    if results["speedup_gate_applies"] and results["jobs"] >= 4:
        assert results["parallel_speedup"] >= 3.0, results


def save(results: dict) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_parallel.json"
    path.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")


@pytest.mark.benchmark(group="parallel")
def test_parallel_smoke(benchmark):
    results = benchmark.pedantic(
        lambda: run_all(apps=QUICK_APPS, jobs=2), rounds=1, iterations=1)
    check(results)
    save(results)


if __name__ == "__main__":
    out = run_all()
    print(json.dumps(out, indent=2, sort_keys=True))
    check(out)
    save(out)
