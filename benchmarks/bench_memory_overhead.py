"""The paper's memory claim: shared-data memory is "roughly doubled
(slightly more)" under the extended protocol.

We census the logical page copies each protocol maintains:

* base: one working copy per caching node plus the home's canonical
  copy -- but the protocol-mandated storage is one home copy per page
  plus per-node twins while dirty;
* extended: every page additionally has a committed copy at its
  primary home and a tentative copy at its secondary home, and twins
  exist even for home pages; checkpoints add a small per-thread cost.
"""

import pytest

from benchmarks.conftest import run_once, save_result
from repro.harness.experiments import run_app


def _census(app="FFT"):
    base = run_app(app, "base", scale="bench")
    extended = run_app(app, "ft", scale="bench")
    rows = [f"memory census for {app} (allocated shared pages)",
            "-" * 56]
    out = {}
    for label, result, variant in (("base", base, "base"),
                                   ("extended", extended, "ft")):
        pages = result.counters.total  # just for symmetry of access
        # Logical protocol copies per allocated page:
        # base: 1 canonical (home working copy).
        # ft: 1 working + 1 committed + 1 tentative.
        copies = 1 if variant == "base" else 3
        ckpt_bytes = result.counters.total.checkpoint_bytes
        out[label] = {"copies_per_page": copies,
                      "checkpoint_bytes_total": ckpt_bytes,
                      "twins_created": result.counters.total.twins_created}
        rows.append(f"{label:9s} copies/page={copies} "
                    f"twins={result.counters.total.twins_created:6d} "
                    f"ckpt_bytes={ckpt_bytes:8d}")
    ratio = out["extended"]["copies_per_page"] / \
        out["base"]["copies_per_page"]
    rows.append(f"shared-data replication factor: {ratio:.1f}x "
                "(paper: 'roughly doubled, slightly more')")
    return out, "\n".join(rows)


@pytest.mark.benchmark(group="memory")
def test_memory_overhead(benchmark):
    data, text = run_once(benchmark, _census)
    save_result("memory_overhead", text)
    # The extended protocol maintains at least twice the page copies
    # (working + committed + tentative vs one canonical copy) and
    # creates more twins (home pages twin too).
    assert data["extended"]["copies_per_page"] >= \
        2 * data["base"]["copies_per_page"] - 1
    assert data["extended"]["twins_created"] >= \
        data["base"]["twins_created"]
    assert data["extended"]["checkpoint_bytes_total"] > 0
    assert data["base"]["checkpoint_bytes_total"] == 0
