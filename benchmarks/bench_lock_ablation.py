"""Section 4.3's design ablation: queueing vs centralized polling lock.

The paper implemented both a primary/secondary distributed queueing
lock and the stateless centralized polling lock, and reports that "the
centralized algorithm performs at least as well as the distributed
queueing lock algorithm" while being drastically simpler to recover,
with contention "increased but not prohibitive" and livelock avoided
via backoff. This bench runs both algorithms under both protocols on
the lock-heavy workloads and a synthetic lock-stress kernel.
"""

import pytest

from benchmarks.conftest import run_once, save_result
from repro.apps import SyntheticWorkload
from repro.harness.experiments import evaluation_config, run_app
from repro.harness.runner import SvmRuntime


def _lock_stress(lock_algorithm, variant, num_locks):
    """High-contention synthetic: everyone hammers a few locks."""
    config = evaluation_config(variant, threads_per_node=1,
                               lock_algorithm=lock_algorithm)
    workload = SyntheticWorkload(iterations=12, pages_per_interval=1,
                                 num_locks=num_locks, compute_us=5.0,
                                 sync="locks")
    return SvmRuntime(config, workload).run()


def _ablation():
    rows = ["scenario                         queueing_us  polling_us"
            "   retries(poll)",
            "-" * 72]
    out = {}
    for label, runner in (
        ("WaterNsq/base", lambda alg: run_app(
            "WaterNsq", "base", scale="bench", lock_algorithm=alg)),
        ("WaterNsq/ft", lambda alg: run_app(
            "WaterNsq", "ft", scale="bench", lock_algorithm=alg)),
        ("stress-2locks/ft", lambda alg: _lock_stress(alg, "ft", 2)),
        ("stress-16locks/ft", lambda alg: _lock_stress(alg, "ft", 16)),
    ):
        queueing = runner("queueing")
        polling = runner("polling")
        rows.append(
            f"{label:32s} {queueing.elapsed_us:11.0f} "
            f"{polling.elapsed_us:11.0f} "
            f"{polling.counters.total.lock_retries:15d}")
        out[label] = {"queueing_us": queueing.elapsed_us,
                      "polling_us": polling.elapsed_us,
                      "polling_retries":
                          polling.counters.total.lock_retries}
    return out, "\n".join(rows)


@pytest.mark.benchmark(group="lock-ablation")
def test_lock_algorithm_ablation(benchmark):
    data, text = run_once(benchmark, _ablation)
    save_result("lock_ablation", text)
    benchmark.extra_info["results"] = {
        k: {kk: round(vv, 1) for kk, vv in v.items()}
        for k, v in data.items()}

    # The paper's conclusion: polling performs at least comparably.
    # Allow a modest tolerance -- "at least as well" on their testbed.
    for label, row in data.items():
        assert row["polling_us"] <= row["queueing_us"] * 1.35, (
            f"{label}: polling lock much slower than queueing")
    # Contention exists (retries happen) but completes (no livelock).
    assert data["stress-2locks/ft"]["polling_retries"] > 0
