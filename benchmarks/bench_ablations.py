"""Design-choice ablations from the paper's sections 4.4 and 6.

* **Diff batching** ("decreasing contention at the network interface
  by sending fewer and larger messages" -- section 6's first proposed
  optimization): one message per destination home per release instead
  of one per page.
* **Release serialization** (section 4.4 requires it for
  non-overlapping checkpoints; the paper notes it "limits concurrency
  and introduces delays in the exchange of locks"): measure its cost
  by switching it off, which is only safe failure-free.
* **Checkpointing** (sections 4.4/5.2): remove points A/B entirely to
  isolate their share of the extended protocol's overhead.
"""

import pytest

from benchmarks.conftest import run_once, save_result
from repro.harness.experiments import run_app


def _ablation_table():
    rows = [f"{'configuration':44s} {'WaterNsq_us':>12s} {'FFT_us':>10s}"
            f" {'diff_msgs':>10s}",
            "-" * 80]
    out = {}

    def cell(app, **overrides):
        return run_app(app, "ft", scale="bench", **overrides)

    for label, overrides in (
        ("extended (paper defaults)", {}),
        ("+ batched diff propagation", {"batch_diffs": True}),
        ("- checkpointing", {"checkpointing": False}),
        ("- release serialization (2 thr/node)",
         {"serialize_releases": False, "threads_per_node": 2}),
    ):
        water = cell("WaterNsq", **overrides)
        fft = cell("FFT", **overrides)
        rows.append(f"{label:44s} {water.elapsed_us:12.0f} "
                    f"{fft.elapsed_us:10.0f} "
                    f"{fft.counters.total.diff_messages:10d}")
        out[label] = {
            "water_us": water.elapsed_us,
            "fft_us": fft.elapsed_us,
            "fft_diff_messages": fft.counters.total.diff_messages,
        }
    # Reference points for the serialization ablation.
    serialized = cell("WaterNsq", threads_per_node=2)
    out["serialized (2 thr/node)"] = {"water_us": serialized.elapsed_us}
    rows.append(f"{'serialized releases (2 thr/node)':44s} "
                f"{serialized.elapsed_us:12.0f} {'':>10s} {'':>10s}")
    return out, "\n".join(rows)


@pytest.mark.benchmark(group="ablations")
def test_design_ablations(benchmark):
    data, text = run_once(benchmark, _ablation_table)
    save_result("ablations", text)
    benchmark.extra_info["results"] = {
        k: {kk: round(vv, 1) for kk, vv in v.items()}
        for k, v in data.items()}

    default = data["extended (paper defaults)"]
    batched = data["+ batched diff propagation"]
    no_ckpt = data["- checkpointing"]

    # Batching cuts message count hard (one per home pair per release
    # instead of one per page) and must not hurt end-to-end time.
    assert batched["fft_diff_messages"] < \
        default["fft_diff_messages"] / 2
    assert batched["fft_us"] <= default["fft_us"] * 1.05
    # Checkpointing has a real, strictly positive cost.
    assert no_ckpt["water_us"] < default["water_us"]
    # Parallel releases help (or at least do not hurt) the lock-heavy
    # app at 2 threads/node -- the concurrency the paper gave up.
    parallel = data["- release serialization (2 thr/node)"]
    serialized = data["serialized (2 thr/node)"]
    assert parallel["water_us"] <= serialized["water_us"] * 1.05
