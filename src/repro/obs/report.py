"""Self-contained HTML run reports with inline SVG charts.

Two entry points:

* :func:`render_run_report` -- one simulated run: stat tiles, the
  sampler's protocol-activity rate lines and engine-queue-depth line,
  a per-thread stacked time-breakdown bar chart, the flight-recorder
  span inventory, watchdog wait-for dumps, and a per-node counters
  table. Everything inlines into one file (no external assets) so a CI
  artifact opens anywhere.
* :func:`render_sweep_report` -- one parallel sweep: orchestrator
  stats (cache hits, retries, wall time) and a per-spec wall-time bar
  chart plus result table.

Charts follow the repo's chart conventions: categorical series colors
are assigned in fixed slot order and validated for color-vision-
deficiency separation in both light and dark mode, every multi-series
chart carries a legend *and* direct labels, value text always uses
text ink (never the series color), one axis per chart, and a table
view accompanies the charts. Hover shows a crosshair + tooltip.
"""

from __future__ import annotations

import html
import json
import math
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

#: Categorical slots 1-4 (blue, orange, aqua, yellow), light / dark
#: steps of the same hues. Validated (CVD >= 8, normal-vision >= 15,
#: lightness band) against the light #fcfcfb / dark #1a1a19 surfaces.
SERIES_LIGHT = ("#2a78d6", "#eb6834", "#1baf7a", "#eda100")
SERIES_DARK = ("#3987e5", "#d95926", "#199e70", "#c98500")

_CSS = """
:root { color-scheme: light dark; }
body {
  margin: 0; background: var(--page); color: var(--text-primary);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
.viz-root {
  color-scheme: light;
  --page: #f9f9f7; --surface-1: #fcfcfb;
  --text-primary: #0b0b0b; --text-secondary: #52514e;
  --muted: #898781; --grid: #e1e0d9; --baseline: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6; --series-2: #eb6834;
  --series-3: #1baf7a; --series-4: #eda100;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --page: #0d0d0d; --surface-1: #1a1a19;
    --text-primary: #ffffff; --text-secondary: #c3c2b7;
    --muted: #898781; --grid: #2c2c2a; --baseline: #383835;
    --border: rgba(255,255,255,0.10);
    --series-1: #3987e5; --series-2: #d95926;
    --series-3: #199e70; --series-4: #c98500;
  }
}
:root[data-theme="dark"] .viz-root {
  color-scheme: dark;
  --page: #0d0d0d; --surface-1: #1a1a19;
  --text-primary: #ffffff; --text-secondary: #c3c2b7;
  --muted: #898781; --grid: #2c2c2a; --baseline: #383835;
  --border: rgba(255,255,255,0.10);
  --series-1: #3987e5; --series-2: #d95926;
  --series-3: #199e70; --series-4: #c98500;
}
.wrap { max-width: 880px; margin: 0 auto; padding: 24px 20px 48px; }
h1 { font-size: 20px; margin: 0 0 2px; }
h2 { font-size: 15px; margin: 28px 0 8px; }
.sub { color: var(--text-secondary); margin: 0 0 18px; }
.tiles { display: flex; flex-wrap: wrap; gap: 10px; margin: 14px 0; }
.tile {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 10px 14px; min-width: 108px;
}
.tile .v { font-size: 22px; }
.tile .l { color: var(--text-secondary); font-size: 12px; }
.card {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 14px; margin: 10px 0;
  position: relative;
}
.legend { display: flex; gap: 14px; flex-wrap: wrap;
  color: var(--text-secondary); font-size: 12px; margin: 2px 0 6px; }
.legend .chip, .endlab .chip {
  display: inline-block; width: 9px; height: 9px; border-radius: 2px;
  margin-right: 5px; vertical-align: baseline;
}
svg text { fill: var(--muted); font-size: 11px;
  font-variant-numeric: tabular-nums; }
svg text.endlab-t { fill: var(--text-secondary); }
.tooltip {
  position: absolute; pointer-events: none; display: none;
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 6px; padding: 6px 9px; font-size: 12px;
  color: var(--text-primary); box-shadow: 0 2px 8px rgba(0,0,0,0.12);
  white-space: nowrap; z-index: 10;
}
.tooltip .row { color: var(--text-secondary); }
.tooltip .row b { color: var(--text-primary); font-weight: 600; }
table { border-collapse: collapse; width: 100%; font-size: 12.5px; }
th, td { text-align: right; padding: 4px 8px;
  border-bottom: 1px solid var(--grid);
  font-variant-numeric: tabular-nums; }
th { color: var(--text-secondary); font-weight: 600; }
th:first-child, td:first-child { text-align: left; }
pre.dump {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 14px; overflow-x: auto;
  font-size: 12px; line-height: 1.5;
}
"""

_JS = """
(function () {
  function nearest(xs, x) {
    var best = 0, d = Infinity;
    for (var i = 0; i < xs.length; i++) {
      var di = Math.abs(xs[i] - x);
      if (di < d) { d = di; best = i; }
    }
    return best;
  }
  document.querySelectorAll(".linechart").forEach(function (card) {
    var data = JSON.parse(card.querySelector("script").textContent);
    var svg = card.querySelector("svg");
    var tip = card.querySelector(".tooltip");
    var cross = svg.querySelector(".cross");
    var dots = {};
    data.series.forEach(function (s, i) {
      dots[i] = svg.querySelector(".dot-" + i);
    });
    function toPlotX(evt) {
      var r = svg.getBoundingClientRect();
      return (evt.clientX - r.left) * (data.vw / r.width);
    }
    svg.addEventListener("mousemove", function (evt) {
      if (!data.px.length) return;
      var i = nearest(data.px, toPlotX(evt));
      cross.setAttribute("x1", data.px[i]);
      cross.setAttribute("x2", data.px[i]);
      cross.style.display = "block";
      var rows = "<b>" + data.t[i] + "</b>";
      data.series.forEach(function (s, k) {
        rows += '<div class="row">' + s.label + ": <b>" +
          s.v[i] + "</b></div>";
        var d = dots[k];
        if (d) { d.setAttribute("cx", data.px[i]);
                 d.setAttribute("cy", s.py[i]);
                 d.style.display = "block"; }
      });
      tip.innerHTML = rows;
      tip.style.display = "block";
      var r = card.getBoundingClientRect();
      var x = evt.clientX - r.left + 14, y = evt.clientY - r.top + 10;
      if (x + tip.offsetWidth > r.width - 8)
        x -= tip.offsetWidth + 26;
      tip.style.left = x + "px"; tip.style.top = y + "px";
    });
    svg.addEventListener("mouseleave", function () {
      tip.style.display = "none";
      cross.style.display = "none";
      Object.keys(dots).forEach(function (k) {
        if (dots[k]) dots[k].style.display = "none";
      });
    });
  });
  document.querySelectorAll(".barchart").forEach(function (card) {
    var tip = card.querySelector(".tooltip");
    card.querySelectorAll("rect[data-tip]").forEach(function (seg) {
      seg.addEventListener("mousemove", function (evt) {
        tip.innerHTML = seg.getAttribute("data-tip");
        tip.style.display = "block";
        var r = card.getBoundingClientRect();
        var x = evt.clientX - r.left + 14, y = evt.clientY - r.top + 10;
        if (x + tip.offsetWidth > r.width - 8)
          x -= tip.offsetWidth + 26;
        tip.style.left = x + "px"; tip.style.top = y + "px";
      });
      seg.addEventListener("mouseleave", function () {
        tip.style.display = "none";
      });
    });
  });
})();
"""


def _fmt(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1e6:
        return f"{value / 1e6:.2f}M"
    if abs(value) >= 1e4:
        return f"{value / 1e3:.1f}k"
    if abs(value) >= 100 or float(value).is_integer():
        return f"{value:.0f}"
    if abs(value) >= 1:
        return f"{value:.1f}"
    return f"{value:.2f}"


def _nice_ticks(peak: float, count: int = 4) -> List[float]:
    if peak <= 0:
        return [0.0, 1.0]
    raw = peak / count
    mag = 10.0 ** math.floor(math.log10(raw))
    step = next(s * mag for s in (1, 2, 2.5, 5, 10) if s * mag >= raw)
    ticks = [0.0]
    while ticks[-1] < peak:
        ticks.append(round(ticks[-1] + step, 10))
    return ticks


def _chip(color_slot: int) -> str:
    return (f'<span class="chip" '
            f'style="background:var(--series-{color_slot + 1})"></span>')


def _legend(labels: Sequence[str]) -> str:
    if len(labels) < 2:
        return ""
    items = "".join(f"<span>{_chip(i)}{html.escape(lab)}</span>"
                    for i, lab in enumerate(labels))
    return f'<div class="legend">{items}</div>'


def line_chart(title: str, times_us: Sequence[float],
               series: Mapping[str, Sequence[float]],
               unit: str = "") -> str:
    """One SVG line chart card: shared x axis (simulated ms), up to 4
    series (fixed slot order), legend + direct end labels, hairline
    grid, hover crosshair with tooltip."""
    labels = list(series)[:4]
    vw, vh = 760, 230
    left, right, top, bottom = 52, 118, 10, 26
    pw, ph = vw - left - right, vh - top - bottom
    times_ms = [t / 1000.0 for t in times_us]
    if not times_ms:
        return (f'<div class="card"><h2>{html.escape(title)}</h2>'
                "<p class='sub'>(no samples)</p></div>")
    t_lo, t_hi = times_ms[0], times_ms[-1] or 1.0
    t_span = (t_hi - t_lo) or 1.0
    peak = max((max(series[lab]) for lab in labels
                if series[lab]), default=1.0) or 1.0
    ticks = _nice_ticks(peak)
    y_hi = ticks[-1] or 1.0

    def sx(t):
        return left + (t - t_lo) / t_span * pw

    def sy(v):
        return top + ph - (v / y_hi) * ph

    parts = [f'<svg viewBox="0 0 {vw} {vh}" role="img" '
             f'aria-label="{html.escape(title)}" '
             'style="width:100%;height:auto;display:block">']
    for tick in ticks:
        y = sy(tick)
        parts.append(f'<line x1="{left}" y1="{y:.1f}" x2="{left + pw}" '
                     f'y2="{y:.1f}" stroke="var(--grid)" '
                     'stroke-width="1"/>')
        parts.append(f'<text x="{left - 8}" y="{y + 3.5:.1f}" '
                     f'text-anchor="end">{_fmt(tick)}</text>')
    parts.append(f'<line x1="{left}" y1="{top + ph}" x2="{left + pw}" '
                 f'y2="{top + ph}" stroke="var(--baseline)" '
                 'stroke-width="1"/>')
    for frac in (0.0, 0.5, 1.0):
        t = t_lo + frac * t_span
        parts.append(f'<text x="{sx(t):.1f}" y="{vh - 8}" '
                     f'text-anchor="middle">{_fmt(t)} ms</text>')
    px = [sx(t) for t in times_ms]
    payload = {"vw": vw, "px": [round(x, 1) for x in px],
               "t": [f"{t:.2f} ms" for t in times_ms], "series": []}
    for i, lab in enumerate(labels):
        vals = list(series[lab])
        py = [sy(v) for v in vals]
        points = " ".join(f"{x:.1f},{y:.1f}" for x, y in zip(px, py))
        parts.append(f'<polyline points="{points}" fill="none" '
                     f'stroke="var(--series-{i + 1})" stroke-width="2" '
                     'stroke-linejoin="round" stroke-linecap="round"/>')
        # Direct label at the line's end: colored chip carries identity,
        # the text itself stays in text ink (relief for the sub-3:1
        # light-mode slots).
        end_y = py[-1] if py else top + ph
        parts.append(f'<rect x="{left + pw + 6}" y="{end_y - 4:.1f}" '
                     f'width="9" height="9" rx="2" '
                     f'fill="var(--series-{i + 1})"/>')
        parts.append(f'<text x="{left + pw + 19}" y="{end_y + 4:.1f}" '
                     f'class="endlab-t">{html.escape(lab)}</text>')
        parts.append(f'<circle class="dot-{i}" r="3.5" '
                     f'fill="var(--series-{i + 1})" '
                     'style="display:none" cx="0" cy="0"/>')
        payload["series"].append({
            "label": lab, "py": [round(y, 1) for y in py],
            "v": [_fmt(v) + (f" {unit}" if unit else "") for v in vals]})
    parts.append(f'<line class="cross" x1="0" y1="{top}" x2="0" '
                 f'y2="{top + ph}" stroke="var(--baseline)" '
                 'stroke-width="1" style="display:none"/>')
    parts.append("</svg>")
    return (f'<div class="card linechart"><h2>{html.escape(title)}</h2>'
            + _legend(labels) + "".join(parts)
            + '<div class="tooltip"></div>'
            + f'<script type="application/json">'
              f"{json.dumps(payload)}</script></div>")


def stacked_bar_chart(title: str,
                      rows: Mapping[str, Mapping[str, float]],
                      components: Sequence[str],
                      unit: str = "us") -> str:
    """Horizontal stacked bars, one per row label: thin 14px bars,
    2px surface gaps between segments, shared scale, legend, per-
    segment hover tooltip, total in text ink at the bar end."""
    components = list(components)[:4]
    if not rows:
        return (f'<div class="card"><h2>{html.escape(title)}</h2>'
                "<p class='sub'>(no data)</p></div>")
    vw = 760
    left, right, top = 88, 70, 8
    row_h, bar_h = 24, 14
    pw = vw - left - right
    totals = {lab: sum(comps.get(c, 0.0) for c in components)
              for lab, comps in rows.items()}
    peak = max(totals.values()) or 1.0
    vh = top + row_h * len(rows) + 10
    parts = [f'<svg viewBox="0 0 {vw} {vh}" role="img" '
             f'aria-label="{html.escape(title)}" '
             'style="width:100%;height:auto;display:block">']
    for r, (lab, comps) in enumerate(rows.items()):
        y = top + r * row_h
        parts.append(f'<text x="{left - 8}" y="{y + bar_h - 3}" '
                     f'text-anchor="end" class="endlab-t">'
                     f'{html.escape(lab)}</text>')
        x = float(left)
        for i, comp in enumerate(components):
            val = comps.get(comp, 0.0)
            w = val / peak * pw
            if w <= 0:
                continue
            draw_w = max(w - 2, 0.5)  # 2px surface gap between segments
            # The tip is HTML the tooltip div will render; escaped here
            # so it survives as an attribute value.
            tip = html.escape(
                f"{html.escape(lab)} · {html.escape(comp)}: "
                f"<b>{_fmt(val)} {unit}</b>", quote=True)
            parts.append(
                f'<rect x="{x:.1f}" y="{y}" width="{draw_w:.1f}" '
                f'height="{bar_h}" rx="2" fill="var(--series-{i + 1})" '
                f'data-tip="{tip}"/>')
            x += w
        parts.append(f'<text x="{x + 6:.1f}" y="{y + bar_h - 3}">'
                     f'{_fmt(totals[lab])}</text>')
    parts.append("</svg>")
    return (f'<div class="card barchart"><h2>{html.escape(title)}</h2>'
            + _legend(components) + "".join(parts)
            + '<div class="tooltip"></div></div>')


def _stat_tiles(tiles: Sequence[Tuple[str, str]]) -> str:
    cells = "".join(
        f'<div class="tile"><div class="v">{html.escape(value)}</div>'
        f'<div class="l">{html.escape(label)}</div></div>'
        for label, value in tiles)
    return f'<div class="tiles">{cells}</div>'


def _page(title: str, subtitle: str, body: str) -> str:
    return (
        "<!DOCTYPE html>\n<html><head><meta charset='utf-8'>"
        f"<title>{html.escape(title)}</title>"
        f"<style>{_CSS}</style></head>"
        "<body class='viz-root'><div class='wrap'>"
        f"<h1>{html.escape(title)}</h1>"
        f"<p class='sub'>{html.escape(subtitle)}</p>"
        f"{body}</div><script>{_JS}</script></body></html>")


# ----------------------------------------------------------------------
# Operation latency / SLO sections (shared by run and sweep reports)
# ----------------------------------------------------------------------

def _percentile_table(rows: Sequence[Tuple[str, int, float, float,
                                           float, float]]) -> str:
    """``rows``: (name, count, p50, p99, p999, mean) per op class."""
    cells = "".join(
        f"<tr><td>{html.escape(name)}</td><td>{count}</td>"
        f"<td>{_fmt(p50)}</td><td>{_fmt(p99)}</td>"
        f"<td>{_fmt(p999)}</td><td>{_fmt(mean)}</td></tr>"
        for name, count, p50, p99, p999, mean in rows)
    return ("<div class='card'><table><tr><th>operation</th><th>n</th>"
            "<th>p50 us</th><th>p99 us</th><th>p999 us</th>"
            f"<th>mean us</th></tr>{cells}</table></div>")


def _registry_percentile_rows(metrics) -> List[Tuple[str, int, float,
                                                     float, float, float]]:
    """Per-op-class percentile rows from an optrace metrics registry."""
    rows = []
    for name in sorted(metrics.histograms):
        if not (name.startswith("optrace.")
                and name.endswith(".latency_us")):
            continue
        hist = metrics.histograms[name]
        if not hist.count:
            continue
        p = hist.percentiles()
        rows.append((name[len("optrace."):-len(".latency_us")],
                     hist.count, p["p50"], p["p99"], p["p999"],
                     hist.mean_us))
    return rows


def _slo_section(slo: dict) -> List[str]:
    """Render an SLO evaluation report (repro.obs.slo.evaluate_slo)."""
    body = [f"<h2>SLO: {html.escape(slo['spec'])} &mdash; "
            + ("<span style='color:var(--series-3)'>PASS</span>"
               if slo["ok"]
               else "<span style='color:var(--series-2)'>FAIL</span>")
            + "</h2>"]
    cells = []
    for check in slo["checks"]:
        actual = check["actual_us"]
        cells.append(
            f"<tr><td>{html.escape(check['op_class'])}</td>"
            f"<td>{check['quantile']}</td>"
            f"<td>{_fmt(check['target_us'])}</td>"
            f"<td>{_fmt(actual) if actual is not None else '(no data)'}"
            f"</td><td>{check['count']}</td>"
            f"<td>{'pass' if check['ok'] else '<b>FAIL</b>'}</td></tr>")
    body.append("<div class='card'><table><tr><th>operation</th>"
                "<th>q</th><th>target us</th><th>actual us</th>"
                f"<th>n</th><th>verdict</th></tr>{''.join(cells)}"
                "</table></div>")
    avail = slo.get("availability")
    if avail is not None:
        body.append(
            "<p class='sub'>availability "
            f"{avail['actual'] * 100:.4f}% (floor "
            f"{avail['min'] * 100:.4f}%; exposed "
            f"{_fmt(avail['exposed_window_us'])} us of "
            f"{_fmt(avail['elapsed_us'])} us) &mdash; "
            f"{'pass' if avail['ok'] else 'FAIL'}</p>")
    return body


def _exemplar_sections(tracer, worst_n: int = 1) -> List[str]:
    """Worst-N operations per class: a summary table whose rows link
    to the rendered causal trees below it."""
    entries = []
    for op_class in sorted({tracer.op(i).op_class
                            for i in tracer.op_ids()}):
        for op_id in tracer.worst(worst_n, op_class):
            entries.append((op_class, tracer.op(op_id)))
    if not entries:
        return []
    rows = "".join(
        f"<tr><td><a href='#op-{op.op_id}'>op {op.op_id}</a></td>"
        f"<td>{html.escape(op_class)}</td><td>{op.node}</td>"
        f"<td style='text-align:left'>{html.escape(op.label)}</td>"
        f"<td>{_fmt(op.duration_us)}</td></tr>"
        for op_class, op in entries)
    body = ["<h2>Worst operations (causal trees)</h2>",
            "<div class='card'><table><tr><th>op</th><th>class</th>"
            "<th>node</th><th>label</th><th>duration us</th></tr>"
            f"{rows}</table></div>"]
    for _op_class, op in entries:
        body.append(f"<pre class='dump' id='op-{op.op_id}'>"
                    f"{html.escape(tracer.render(op.op_id))}</pre>")
    return body


# ----------------------------------------------------------------------
# Run report
# ----------------------------------------------------------------------

def _span_inventory(recorder) -> Dict[str, Dict[str, float]]:
    """Per span-name slice count and total duration from the trace."""
    doc = recorder.to_chrome_trace()
    open_at: Dict[Tuple[int, int], List[Tuple[str, float]]] = {}
    stats: Dict[str, Dict[str, float]] = {}
    for ev in doc["traceEvents"]:
        key = (ev.get("pid"), ev.get("tid"))
        if ev["ph"] == "B":
            open_at.setdefault(key, []).append((ev["name"], ev["ts"]))
        elif ev["ph"] == "E" and open_at.get(key):
            name, t0 = open_at[key].pop()
            slot = stats.setdefault(name, {"count": 0, "total_us": 0.0})
            slot["count"] += 1
            slot["total_us"] += ev["ts"] - t0
    return stats


def render_run_report(title: str, subtitle: str = "", result=None,
                      recorder=None, sampler=None, watchdog=None,
                      trace_file: Optional[str] = None,
                      tracer=None, slo: Optional[dict] = None) -> str:
    """Assemble the single-run HTML report; every section is optional
    so partial runs (deadlock caps, failed verification) still render."""
    body = []

    tiles: List[Tuple[str, str]] = []
    if result is not None:
        tiles.append(("simulated time", f"{result.elapsed_us / 1000:.1f} ms"))
        totals = result.counters.total
        tiles.extend([
            ("page faults", _fmt(totals.page_faults)),
            ("pages diffed", _fmt(totals.pages_diffed)),
            ("lock acquires", _fmt(totals.lock_acquires)),
            ("checkpoints", _fmt(totals.checkpoints)),
            ("recoveries", str(result.recoveries)),
        ])
        if result.recoveries:
            # Worst single-failure window during which some page, lock
            # or checkpoint ward had only one live copy.
            tiles.append(("exposed window",
                          f"{result.exposed_window_us / 1000:.2f} ms"))
    if recorder is not None:
        tiles.append(("trace events", _fmt(len(recorder))))
    if tracer is not None:
        tiles.append(("traced ops", _fmt(len(tracer))))
    if slo is not None:
        tiles.append(("SLO", "PASS" if slo["ok"] else "FAIL"))
    if tiles:
        body.append(_stat_tiles(tiles))

    if tracer is not None:
        rows = _registry_percentile_rows(tracer.metrics)
        if rows:
            body.append("<h2>Operation latency percentiles</h2>")
            body.append(_percentile_table(rows))
    if slo is not None:
        body.extend(_slo_section(slo))

    if sampler is not None and len(sampler) > 1:
        times, rates = sampler.rates()
        body.append(line_chart(
            "Protocol activity (events per simulated ms)", times,
            {"page faults": rates.get("page_faults", []),
             "diff messages": rates.get("diff_messages", []),
             "lock acquires": rates.get("lock_acquires", []),
             "checkpoints": rates.get("checkpoints", [])},
            unit="/ms"))
        body.append(line_chart(
            "Engine event-queue depth", sampler.times,
            {"pending events": sampler.gauge("engine.queue_depth")}))

    if result is not None and result.thread_clocks:
        from repro.metrics import Breakdown
        rows = {}
        for tid, clock in enumerate(result.thread_clocks):
            rows[f"thread {tid}"] = Breakdown.merge(
                [clock]).four_component()
        body.append(stacked_bar_chart(
            "Time breakdown per thread",
            rows, ("compute", "data_wait", "lock", "barrier")))

    if recorder is not None:
        inv = _span_inventory(recorder)
        if inv:
            body.append("<h2>Timeline spans</h2>")
            if trace_file:
                body.append(
                    "<p class='sub'>Full timeline: open "
                    f"<code>{html.escape(str(trace_file))}</code> at "
                    "ui.perfetto.dev</p>")
            rows = "".join(
                f"<tr><td>{html.escape(name)}</td>"
                f"<td>{int(s['count'])}</td>"
                f"<td>{_fmt(s['total_us'])}</td>"
                f"<td>{_fmt(s['total_us'] / s['count'])}</td></tr>"
                for name, s in sorted(inv.items(),
                                      key=lambda kv: -kv[1]["total_us"]))
            body.append(
                "<div class='card'><table><tr><th>span</th>"
                "<th>slices</th><th>total us</th><th>mean us</th></tr>"
                f"{rows}</table></div>")

    if tracer is not None:
        body.extend(_exemplar_sections(tracer))

    if watchdog is not None and watchdog.dumps:
        body.append("<h2>Stall watchdog</h2>")
        for dump in watchdog.dumps:
            body.append(f"<pre class='dump'>{html.escape(dump)}</pre>")

    if result is not None:
        body.append("<h2>Per-node counters</h2>")
        fields = ("page_faults", "remote_page_fetches", "pages_diffed",
                  "diff_bytes_sent", "diff_messages", "lock_acquires",
                  "barriers", "checkpoints", "checkpoint_bytes")
        head = "".join(f"<th>{f.replace('_', ' ')}</th>" for f in fields)
        rows = "".join(
            "<tr><td>node " + str(n) + "</td>" + "".join(
                f"<td>{getattr(c, f)}</td>" for f in fields) + "</tr>"
            for n, c in enumerate(result.per_node_counters))
        body.append(f"<div class='card'><table><tr><th>node</th>{head}"
                    f"</tr>{rows}</table></div>")

    return _page(title, subtitle, "\n".join(body))


# ----------------------------------------------------------------------
# Sweep report
# ----------------------------------------------------------------------

def sweep_latency_book(results):
    """Merge every ok cell's portable latency histograms into one
    :class:`~repro.metrics.latency.LatencyBook` (elementwise bucket
    addition -- associative, so the result is bit-identical regardless
    of job count or completion order)."""
    from repro.metrics.latency import LatencyBook
    books = [LatencyBook.from_dict(r.summary["latency_hist"])
             for r in results
             if r.ok and r.summary and r.summary.get("latency_hist")]
    return LatencyBook.merged(books)


def render_sweep_report(title: str, results, subtitle: str = "",
                        slo: Optional[dict] = None) -> str:
    """Sweep-level report over :class:`repro.parallel.pool.SpecResult`
    rows: orchestrator stats, merged operation-latency percentiles,
    optional SLO verdict, per-spec wall time, result table."""
    ok = [r for r in results if r.ok]
    cached = [r for r in results if r.cached]
    retried = [r for r in results if r.attempts > 1]
    executed = [r for r in results if not r.cached]
    tiles = [
        ("cells", str(len(results))),
        ("ok", str(len(ok))),
        ("failed", str(len(results) - len(ok))),
        ("cache hits", str(len(cached))),
        ("retried", str(len(retried))),
        ("exec wall", f"{sum(r.wall_s for r in executed):.1f} s"),
    ]
    if slo is not None:
        tiles.append(("SLO", "PASS" if slo["ok"] else "FAIL"))
    body = [_stat_tiles(tiles)]

    from repro.metrics.latency import ALL_OPS
    book = sweep_latency_book(results)
    rows = []
    for op in ALL_OPS:
        hist = book.hist(op)
        if not hist.count:
            continue
        p = hist.percentiles()
        rows.append((op, hist.count, p["p50"], p["p99"], p["p999"],
                     hist.mean_us))
    if rows:
        body.append("<h2>Merged operation latency percentiles</h2>")
        body.append(_percentile_table(rows))
    if slo is not None:
        body.extend(_slo_section(slo))

    timed = [r for r in executed if r.wall_s > 0]
    if timed:
        rows = {r.spec.label: {"wall": r.wall_s} for r in timed}
        body.append(stacked_bar_chart(
            "Wall-clock time per executed spec", rows, ("wall",),
            unit="s"))

    head = ("<tr><th>spec</th><th>status</th><th>source</th>"
            "<th>attempts</th><th>wall s</th><th>checksum</th></tr>")
    cells = []
    for r in results:
        checksum = ""
        if r.summary and r.summary.get("data_checksum"):
            checksum = r.summary["data_checksum"][:12]
        cells.append(
            f"<tr><td>{html.escape(r.spec.label)}</td>"
            f"<td>{html.escape(r.status)}</td>"
            f"<td>{'cache' if r.cached else 'run'}</td>"
            f"<td>{r.attempts}</td><td>{r.wall_s:.2f}</td>"
            f"<td>{checksum}</td></tr>")
    body.append("<h2>Per-spec results</h2>")
    body.append(f"<div class='card'><table>{head}{''.join(cells)}"
                "</table></div>")
    failed = [r for r in results if not r.ok]
    if failed:
        body.append("<h2>Failures</h2>")
        for r in failed:
            tail = r.error.strip().splitlines()[-12:] if r.error else []
            body.append(f"<pre class='dump'>{html.escape(r.spec.label)}"
                        f" ({html.escape(r.status)})\n"
                        f"{html.escape(chr(10).join(tail))}</pre>")
    return _page(title, subtitle, "\n".join(body))
