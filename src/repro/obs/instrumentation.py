"""Invocation counters proving observability is zero-cost when off.

Every hook closure the recorder installs, every sampler tick and every
watchdog check bumps a counter here. A run with observability disabled
must leave all counters at zero -- that is the testable statement of
"the flight recorder costs nothing unless attached", and it is what
keeps the BENCH_hotpaths perf gate honest (see
``tests/obs/test_overhead_off.py``).
"""

from __future__ import annotations

from typing import Dict

#: obs-code invocations since the last :func:`reset`, by component.
CALLS: Dict[str, int] = {"recorder": 0, "sampler": 0, "watchdog": 0,
                         "optrace": 0}


def bump(component: str) -> None:
    CALLS[component] += 1


def reset() -> None:
    for key in CALLS:
        CALLS[key] = 0


def snapshot() -> Dict[str, int]:
    return dict(CALLS)


def total() -> int:
    return sum(CALLS.values())
