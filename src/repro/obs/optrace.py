"""Causal cross-node operation tracing.

Every logical protocol operation -- a page-fault fetch, a global lock
acquire, a barrier, a diff propagation phase, a checkpoint, a recovery
wave -- is minted an **operation id** at the protocol layer and carried
on every message the operation sends (inside the modelled 32-byte NIC
header, so wire accounting is unchanged). The NIC and VMMC layers stamp
**hops** against that id:

``send``
    a message carrying the id was posted (VMMC post, or a NIC-built
    fetch/service reply),
``recv``
    the message was dispatched at its destination,
``svc_begin`` / ``svc_end``
    the service-request handler window at the serving node,
``applied``
    a generator NOTIFY handler finished -- the diff-apply path, so the
    span from ``recv`` to ``applied`` is the remote apply cost.

From those hops :class:`OpTracer` reconstructs each operation as a
**causal tree**: messages pair up by message id (send -> recv = wire
time), service windows hang off the request message that triggered
them, and any message sent from inside an open service window nests
under that window. The tree is renderable as text (``repro trace-op``),
exportable as canonical JSON (:meth:`OpTracer.to_dict` /
:meth:`OpTracer.digest` -- deterministic: message ids are normalized to
per-operation dense indices so process history never leaks in), and
linkable into a flight-recorder export as Chrome/Perfetto **flow
events** (:meth:`OpTracer.flow_events`, ``ph``: ``s``/``f``).

Zero-cost when off: the tracer attaches itself as ``cluster.optrace``
and ``nic.optrace``; both default to ``None`` and every touch point is
gated on ``msg.op is not None`` (always None with no tracer attached),
so an untraced run executes no code from this module --
:mod:`repro.obs.instrumentation` counts every invocation to prove it.

Latency pipeline: each finished operation feeds a per-class
:class:`~repro.metrics.hist.Log2Histogram` in :attr:`OpTracer.metrics`,
the registry the SLO evaluator (:mod:`repro.obs.slo`) consumes.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional, Tuple

from repro.metrics.hist import MetricsRegistry
from repro.obs import instrumentation

#: Operation classes minted by the protocol layers.
OP_CLASSES = (
    "page_fault", "lock_acquire", "barrier",
    "diff_phase1", "diff_phase2",
    "checkpoint_a", "checkpoint_b",
    "recovery_wave", "rereplicate",
)


class _Op:
    """One traced logical operation: identity plus its raw hop log."""

    __slots__ = ("op_id", "op_class", "node", "label", "start_us",
                 "end_us", "hops")

    def __init__(self, op_id: int, op_class: str, node: int, label: str,
                 start_us: float) -> None:
        self.op_id = op_id
        self.op_class = op_class
        self.node = node
        self.label = label
        self.start_us = start_us
        self.end_us: Optional[float] = None
        #: ``(t, kind, node, msg_id, detail)`` in capture order. For
        #: message hops detail is ``(msg_kind, src, dst, wire_bytes)``;
        #: for service hops it is the service name.
        self.hops: List[Tuple[float, str, int, Optional[int], object]] = []

    @property
    def duration_us(self) -> Optional[float]:
        if self.end_us is None:
            return None
        return self.end_us - self.start_us


class OpTracer:
    """Mints operation ids, collects hops, reconstructs causal trees.

    Attach before ``runtime.run()``; ids are minted from a monotonic
    counter driven purely by simulated event order, so the same seeded
    run always assigns the same ids (and :meth:`digest` is stable
    across hosts, job counts and sim cores).
    """

    def __init__(self, runtime) -> None:
        self.runtime = runtime
        self.engine = runtime.engine
        self._next_id = 1
        self._ops: Dict[int, _Op] = {}
        #: Per-op-class latency histograms + op counters, mergeable
        #: across parallel sweep workers.
        self.metrics = MetricsRegistry()
        cluster = runtime.cluster
        cluster.optrace = self
        for node in cluster.nodes:
            node.nic.optrace = self
        self._attached = True

    def detach(self) -> None:
        """Stop tracing: restore the None attach points."""
        if not self._attached:
            return
        cluster = self.runtime.cluster
        if cluster.optrace is self:
            cluster.optrace = None
        for node in cluster.nodes:
            if node.nic.optrace is self:
                node.nic.optrace = None
        self._attached = False

    def __len__(self) -> int:
        return len(self._ops)

    # ------------------------------------------------------------------
    # Recording (called from the protocol / NIC / VMMC layers)
    # ------------------------------------------------------------------

    def mint(self, op_class: str, node: int, label: str) -> int:
        instrumentation.bump("optrace")
        op_id = self._next_id
        self._next_id += 1
        self._ops[op_id] = _Op(op_id, op_class, node, label,
                               self.engine.now)
        self.metrics.counter_add(f"optrace.{op_class}.ops", 1)
        return op_id

    def finish(self, op_id: int) -> None:
        instrumentation.bump("optrace")
        op = self._ops[op_id]
        if op.end_us is None:
            op.end_us = self.engine.now
            self.metrics.observe(f"optrace.{op.op_class}.latency_us",
                                 op.end_us - op.start_us)

    def message_hop(self, kind: str, msg, node: int, t: float) -> None:
        """``kind``: ``send`` / ``recv`` / ``applied``."""
        instrumentation.bump("optrace")
        op = self._ops.get(msg.op)
        if op is not None:
            op.hops.append((t, kind, node, msg.msg_id,
                            (msg.kind, msg.src, msg.dst,
                             msg.wire_bytes)))

    def service_hop(self, op_id: int, kind: str, node: int, t: float,
                    req_msg_id: Optional[int], service: str) -> None:
        """``kind``: ``svc_begin`` / ``svc_end``."""
        instrumentation.bump("optrace")
        op = self._ops.get(op_id)
        if op is not None:
            op.hops.append((t, kind, node, req_msg_id, service))

    # ------------------------------------------------------------------
    # Causal-tree reconstruction
    # ------------------------------------------------------------------

    def tree(self, op_id: int) -> dict:
        """Reconstruct the operation's causal tree.

        Returns a dict: op identity fields plus ``children`` -- message
        nodes (``kind``, ``src``/``dst``, ``msg`` normalized index,
        ``send_us``/``recv_us``/``wire_us``, optional ``apply_us``) that
        in turn may hold a ``service`` child (``svc_begin``/``svc_end``
        window) under which nested messages hang.
        """
        op = self._ops[op_id]
        norm = self._normalize_ids(op)

        msgs: Dict[int, dict] = {}
        order: List[int] = []
        services: List[dict] = []
        open_begin: Dict[Tuple[Optional[int], int], dict] = {}
        for t, kind, node, msg_id, detail in op.hops:
            if kind in ("send", "recv", "applied"):
                rec = msgs.get(msg_id)
                if rec is None:
                    mkind, src, dst, wire_bytes = detail
                    rec = {"msg": norm[msg_id], "kind": mkind,
                           "src": src, "dst": dst,
                           "wire_bytes": wire_bytes,
                           "send_us": None, "recv_us": None,
                           "children": []}
                    msgs[msg_id] = rec
                    order.append(msg_id)
                if kind == "send":
                    rec["send_us"] = t
                elif kind == "recv":
                    rec["recv_us"] = t
                else:
                    rec["apply_us"] = round(t - (rec["recv_us"] or t), 6)
            elif kind == "svc_begin":
                window = {"service": detail, "node": node,
                          "begin_us": t, "end_us": None,
                          "req_msg": norm.get(msg_id),
                          "_req_msg_id": msg_id, "children": []}
                services.append(window)
                open_begin[(msg_id, node)] = window
            elif kind == "svc_end":
                window = open_begin.pop((msg_id, node), None)
                if window is not None:
                    window["end_us"] = t

        for rec in msgs.values():
            if rec["send_us"] is not None and rec["recv_us"] is not None:
                rec["wire_us"] = round(rec["recv_us"] - rec["send_us"], 6)
            else:
                rec["wire_us"] = None
        for window in services:
            if window["end_us"] is not None:
                window["service_us"] = round(
                    window["end_us"] - window["begin_us"], 6)
            else:
                window["service_us"] = None

        # Service windows hang off their request message.
        for window in services:
            parent = msgs.get(window.pop("_req_msg_id"))
            if parent is not None:
                parent["children"].append(window)

        # A message sent from inside an open service window nests under
        # it (innermost window wins); everything else is a root child.
        root_children: List[dict] = []
        for msg_id in order:
            rec = msgs[msg_id]
            t = rec["send_us"]
            best = None
            if t is not None:
                for window in services:
                    if (window["node"] == rec["src"]
                            and window["begin_us"] <= t
                            and (window["end_us"] is None
                                 or t <= window["end_us"])
                            and window.get("req_msg") != rec["msg"]):
                        if (best is None
                                or window["begin_us"] >= best["begin_us"]):
                            best = window
            if best is not None:
                best["children"].append(rec)
            else:
                root_children.append(rec)

        return {
            "op": op.op_id, "class": op.op_class, "node": op.node,
            "label": op.label, "start_us": op.start_us,
            "end_us": op.end_us,
            "duration_us": (round(op.duration_us, 6)
                            if op.duration_us is not None else None),
            "children": root_children,
        }

    @staticmethod
    def _normalize_ids(op: _Op) -> Dict[int, int]:
        """Global message ids -> dense per-op indices (first-seen
        order), so exports never depend on how many messages earlier
        runs in the same process sent."""
        norm: Dict[int, int] = {}
        for _t, _kind, _node, msg_id, _detail in op.hops:
            if msg_id is not None and msg_id not in norm:
                norm[msg_id] = len(norm)
        return norm

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def op_ids(self, op_class: Optional[str] = None) -> List[int]:
        return [op.op_id for op in self._ops.values()
                if op_class is None or op.op_class == op_class]

    def worst(self, n: int = 5,
              op_class: Optional[str] = None) -> List[int]:
        """The ``n`` slowest finished operations (optionally one
        class), ids ordered by duration descending (ties: minting
        order, so the result is deterministic)."""
        finished = [op for op in self._ops.values()
                    if op.end_us is not None
                    and (op_class is None or op.op_class == op_class)]
        finished.sort(key=lambda op: (-op.duration_us, op.op_id))
        return [op.op_id for op in finished[:n]]

    def op(self, op_id: int) -> _Op:
        return self._ops[op_id]

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def render(self, op_id: int) -> str:
        """Text causal tree for one operation."""
        tree = self.tree(op_id)
        dur = tree["duration_us"]
        head = (f"op {tree['op']} [{tree['class']}] node {tree['node']} "
                f"\"{tree['label']}\"  start={tree['start_us']:.1f}us "
                + (f"dur={dur:.1f}us" if dur is not None
                   else "(unfinished)"))
        lines = [head]
        self._render_children(tree["children"], "", lines)
        return "\n".join(lines)

    def _render_children(self, children: List[dict], indent: str,
                         lines: List[str]) -> None:
        for i, child in enumerate(children):
            last = i == len(children) - 1
            branch = "`- " if last else "|- "
            cont = "   " if last else "|  "
            if "service" in child:
                svc = child["service_us"]
                text = (f"service {child['service']} @node"
                        f"{child['node']}  "
                        + (f"{svc:.1f}us" if svc is not None
                           else "(no end)"))
            else:
                wire = child["wire_us"]
                text = (f"{child['kind']} {child['src']}->"
                        f"{child['dst']} msg#{child['msg']}  "
                        + (f"wire {wire:.1f}us" if wire is not None
                           else "in flight"))
                if child.get("apply_us") is not None:
                    text += f"  apply {child['apply_us']:.1f}us"
            lines.append(indent + branch + text)
            self._render_children(child["children"], indent + cont, lines)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Canonical JSON-able form: every operation's causal tree, in
        minting order. Deterministic for a seeded run (normalized
        message ids, simulated timestamps only)."""
        return {
            "num_ops": len(self._ops),
            "ops": [self.tree(op_id) for op_id in sorted(self._ops)],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def digest(self) -> str:
        """sha256 over the canonical serialization -- the determinism
        fingerprint for causal traces (same seeds => same digest,
        regardless of host, job count or sim core)."""
        return hashlib.sha256(self.to_json().encode()).hexdigest()

    # ------------------------------------------------------------------
    # Perfetto flow events
    # ------------------------------------------------------------------

    def flow_events(self) -> List[dict]:
        """Chrome trace flow events (``ph`` ``s``/``f``) linking each
        traced message's send point to its receive point across node
        processes. Pass to ``FlightRecorder.export(counters=...)`` to
        overlay causal arrows on the flight-recorder timeline."""
        events: List[dict] = []
        flow_id = 0
        for op_id in sorted(self._ops):
            op = self._ops[op_id]
            tree = self.tree(op_id)
            name = f"{op.op_class} op {op_id}"
            stack = list(tree["children"])
            while stack:
                node = stack.pop(0)
                stack.extend(node["children"])
                if "service" in node:
                    continue
                if node["send_us"] is None or node["recv_us"] is None:
                    continue
                flow_id += 1
                events.append({"ph": "s", "cat": "optrace", "name": name,
                               "id": flow_id, "pid": node["src"],
                               "tid": 0, "ts": node["send_us"]})
                events.append({"ph": "f", "bp": "e", "cat": "optrace",
                               "name": name, "id": flow_id,
                               "pid": node["dst"], "tid": 0,
                               "ts": node["recv_us"]})
        return events
