"""Stall watchdog: detect zero-progress windows and dump wait-for graphs.

The simulator's two known deadlock classes (recovery rendezvous that
never completes, lock handover lost across a failure) present as "the
event list keeps polling but no protocol hook fires". The watchdog
subscribes to the full hook stream as its progress signal and rides the
engine metronome: when ``horizon_us`` of simulated time passes with no
hook event, it dumps a **wait-for graph** -- every unfinished thread,
the event it is parked on (decoded from the simulator's structured
event names: ``lock{id}.localwait``, ``fault{page}.acquire``,
``bar{id}.{epoch}``, ``relslot{node}``, ``recovery.*``), the owner of
the resource where one is known, the home-map epoch and failed set,
every in-flight release (seq/stage/pages), recovery rendezvous state
and NIC queue depths -- to stderr and onto the flight-recorder
timeline, then runs a cycle search over the thread->thread edges so a
true deadlock is named as one.

One dump per stall episode: the watchdog re-arms only after progress
resumes. Zero cost when not attached.
"""

from __future__ import annotations

import re
import sys
from typing import Dict, List, Optional, Tuple

from repro.cluster import Hooks
from repro.metrics.trace import FULL_EVENTS
from repro.obs import instrumentation

_STAGES = {0: "PREP", 1: "PHASE1", 2: "POINT_B",
           3: "LOCK_RELEASE", 4: "PHASE2"}

_LOCK_WAIT = re.compile(r"lock(\d+)\.localwait$")
_QLOCK_WAIT = re.compile(r"qlock(\d+)\.")
_PAGE_LOCK = re.compile(r"fault(\d+)\.acquire$")
_PAGE_UNLOCK = re.compile(r"unlock(\d+)$")
_VERSION = re.compile(r"ver(\d+)$")
_BARRIER = re.compile(r"bar(\d+)\.(\d+)$")
_RELSLOT = re.compile(r"relslot(\d+)$")


def _decode_wait(name: str
                 ) -> Tuple[str, Optional[int], Optional[int]]:
    """Classify a simulator event name into (kind, resource id,
    barrier generation). The generation is the one encoded in the
    wait event (``bar{id}.{epoch}``) -- which *round* the thread is
    parked in, the first question a barrier deadlock raises."""
    for pattern, kind in ((_LOCK_WAIT, "lock"), (_QLOCK_WAIT, "lock"),
                          (_PAGE_LOCK, "page_lock"),
                          (_PAGE_UNLOCK, "page_unlock"),
                          (_VERSION, "page_version"),
                          (_RELSLOT, "release_slot")):
        m = pattern.search(name)
        if m:
            return kind, int(m.group(1)), None
    m = _BARRIER.search(name)
    if m:
        return "barrier", int(m.group(1)), int(m.group(2))
    if name.startswith("recovery"):
        return "recovery", None, None
    return "other", None, None


def build_waitfor(runtime,
                  lock_holders: Optional[Dict[int, Tuple[int, int]]] = None
                  ) -> dict:
    """Snapshot the cluster's blocking structure.

    ``lock_holders`` maps lock id -> (node, tid) as tracked from
    LOCK_ACQUIRED/LOCK_RELEASED hooks (the :class:`StallWatchdog`
    maintains one); without it lock edges lack owners but the graph is
    still built. Pure introspection -- no simulated cost, no mutation.
    """
    lock_holders = lock_holders or {}
    threads = []
    edges: Dict[int, List[int]] = {}  # waiter tid -> owner tids
    inflight_by_node: Dict[int, List[dict]] = {}
    for node_id, agent in enumerate(runtime.agents):
        fl_map = getattr(agent, "_inflight", None) or {}
        inflight_by_node[node_id] = [
            {"tid": tid, "seq": fl.seq,
             "stage": _STAGES.get(fl.stage, str(fl.stage)),
             "lock": fl.lock_id, "pages": len(fl.pages)}
            for tid, fl in sorted(fl_map.items())]

    for rec in runtime.threads:
        entry = {"tid": rec.tid, "node": rec.current_node,
                 "finished": rec.finished, "waiting": None,
                 "kind": None, "resource": None, "owner": None}
        proc = rec.proc
        waiting = getattr(proc, "_waiting_on", None) if proc else None
        if not rec.finished and waiting is not None:
            name = waiting.name
            kind, resource, wait_epoch = _decode_wait(name)
            entry.update(waiting=name, kind=kind, resource=resource)
            if kind == "barrier":
                # The three epoch counters a barrier deadlock is
                # diagnosed from: the generation the wait event names,
                # the thread's own completed count, and its node's.
                agent = runtime.agents[rec.current_node]
                entry["wait_epoch"] = wait_epoch
                entry["thread_epoch"] = rec.ctx.state.get(
                    ("__bar__", resource), 0)
                entry["node_done"] = getattr(
                    agent, "barrier_done", {}).get(resource, 0)
            if kind == "lock" and resource in lock_holders:
                owner_node, owner_tid = lock_holders[resource]
                entry["owner"] = {"tid": owner_tid, "node": owner_node}
                edges.setdefault(rec.tid, []).append(owner_tid)
            elif kind == "release_slot":
                owners = [fl["tid"] for fl in
                          inflight_by_node.get(resource, ())]
                if owners:
                    entry["owner"] = {"tids": owners, "node": resource}
                    edges.setdefault(rec.tid, []).extend(owners)
            elif kind in ("page_lock", "page_unlock", "page_version"):
                entry["home"] = runtime.homes.primary_home(resource)
        threads.append(entry)

    # Barrier arrivals at the current manager: which nodes are in,
    # which the manager is still waiting for.
    barriers = []
    manager_node = runtime.barrier_manager_node()
    manager = runtime.barrier_managers[manager_node]
    expected = sorted(runtime.expected_barrier_node_ids())
    for barrier_id, gen in sorted(
            getattr(manager, "_generations", {}).items()):
        arrived = sorted({node for node, _ts, _e in gen.arrivals})
        barriers.append({"barrier": barrier_id, "arrived": arrived,
                         "missing": [n for n in expected
                                     if n not in arrived]})

    recovery = None
    manager = runtime.recovery_manager
    if manager is not None:
        recovery = {
            "active": manager.active,
            "recoveries": manager.recoveries,
            "parked": sorted(manager._parked),
            "required": sorted(manager._required_parkers())
            if manager.active is not None else [],
            "blocked": {n: c for n, c in sorted(manager._blocked.items())
                        if c},
        }

    return {
        "time_us": runtime.engine.now,
        "threads": threads,
        "edges": edges,
        "cycle": _find_cycle(edges),
        "inflight": {n: fls for n, fls in inflight_by_node.items() if fls},
        "barriers": barriers,
        "recovery": recovery,
        "homes": {"epoch": runtime.homes.epoch,
                  "failed": sorted(runtime.homes.failed)},
        "nic_queues": {n: len(node.nic.post_queue)
                       for n, node in enumerate(runtime.cluster.nodes)},
    }


def _find_cycle(edges: Dict[int, List[int]]) -> Optional[List[int]]:
    """First cycle in the waiter->owner graph, as a tid path."""
    for start in sorted(edges):
        path, seen = [start], {start}
        node = start
        while True:
            nxt = [t for t in edges.get(node, ()) if t is not None]
            if not nxt:
                break
            node = nxt[0]
            if node in seen:
                if node == start:
                    return path + [start]
                break  # cycle not through start; a later start finds it
            seen.add(node)
            path.append(node)
    return None


def format_waitfor(graph: dict, horizon_us: Optional[float] = None) -> str:
    """Human-readable wait-for dump (what lands on stderr)."""
    lines = []
    head = f"=== stall watchdog: t={graph['time_us']:.1f}us"
    if horizon_us is not None:
        head += f", no progress event for {horizon_us:.0f}us"
    lines.append(head + " ===")
    homes = graph["homes"]
    lines.append(f"home map: epoch {homes['epoch']}, "
                 f"failed nodes {homes['failed'] or 'none'}")
    rec = graph["recovery"]
    if rec is not None:
        lines.append(
            f"recovery: active={rec['active']} "
            f"parked={rec['parked']} required={rec['required']} "
            f"blocked={rec['blocked'] or '{}'} "
            f"(completed: {rec['recoveries']})")
    lines.append("wait-for graph:")
    for t in graph["threads"]:
        if t["finished"]:
            lines.append(f"  thread {t['tid']} @ node {t['node']}: "
                         "finished")
            continue
        desc = (f"  thread {t['tid']} @ node {t['node']}: "
                f"waiting on {t['waiting'] or '<runnable>'}")
        if t["kind"] and t["kind"] != "other":
            desc += f" [{t['kind']}"
            if t["resource"] is not None:
                desc += f" {t['resource']}"
            if t["kind"] == "barrier":
                desc += (f" gen {t.get('wait_epoch')}; "
                         f"thread epoch {t.get('thread_epoch')}, "
                         f"node done {t.get('node_done')}")
            desc += "]"
        owner = t.get("owner")
        if owner:
            if "tid" in owner:
                desc += (f" held by thread {owner['tid']} "
                         f"@ node {owner['node']}")
            else:
                desc += (f" busy with release of thread(s) "
                         f"{owner['tids']} @ node {owner['node']}")
        if "home" in t:
            desc += f" (page home: node {t['home']})"
        lines.append(desc)
    for node, fls in sorted(graph["inflight"].items()):
        for fl in fls:
            lines.append(
                f"  in-flight release: node {node} tid {fl['tid']} "
                f"seq={fl['seq']} stage={fl['stage']} "
                f"lock={fl['lock']} pages={fl['pages']}")
    for b in graph["barriers"]:
        lines.append(f"  barrier {b['barrier']}: arrived nodes "
                     f"{b['arrived']}, missing {b['missing']}")
    for node, depth in sorted(graph["nic_queues"].items()):
        if depth:
            lines.append(f"  nic queue: node {node} has {depth} "
                         "message(s) pending")
    if graph["cycle"]:
        chain = " -> ".join(f"t{t}" for t in graph["cycle"])
        lines.append(f"  CYCLE: {chain}  (deadlock)")
    return "\n".join(lines)


class StallWatchdog:
    """Fires :func:`build_waitfor` when the hook stream goes quiet.

    ``horizon_us`` is the zero-progress window; the check runs every
    ``check_period_us`` (default: horizon / 4). Dumps go to ``stream``
    (default stderr), into ``self.dumps``, and -- when a
    :class:`~repro.obs.recorder.FlightRecorder` is supplied -- onto the
    trace timeline as a global "stall detected" instant carrying the
    full report.
    """

    def __init__(self, runtime, horizon_us: float = 20_000.0,
                 check_period_us: Optional[float] = None,
                 recorder=None, stream=None, max_dumps: int = 8) -> None:
        self.runtime = runtime
        self.engine = runtime.engine
        self.horizon_us = horizon_us
        self.check_period_us = check_period_us or horizon_us / 4.0
        self.recorder = recorder
        self.stream = stream
        self.max_dumps = max_dumps
        self.dumps: List[str] = []
        self.graphs: List[dict] = []
        self._last_progress = 0.0
        self._in_stall = False
        self._started = False
        self._lock_holders: Dict[int, Tuple[int, int]] = {}
        hooks = runtime.cluster.hooks
        for name in FULL_EVENTS:
            hooks.on(name, self._make_progress(name))

    def _make_progress(self, name: str):
        track_acquire = name == Hooks.LOCK_ACQUIRED
        track_release = name == Hooks.LOCK_RELEASED

        def progress(node_id: int, **info) -> None:
            instrumentation.bump("watchdog")
            self._last_progress = self.engine.now
            self._in_stall = False
            if track_acquire and "lock" in info and "tid" in info:
                self._lock_holders[info["lock"]] = (node_id, info["tid"])
            elif track_release and "lock" in info:
                self._lock_holders.pop(info["lock"], None)
        return progress

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self._last_progress = self.engine.now
        self.engine.metronome(self.check_period_us, self._check)

    def _check(self) -> None:
        instrumentation.bump("watchdog")
        if self.engine.now - self._last_progress < self.horizon_us:
            return
        if self._in_stall or len(self.dumps) >= self.max_dumps:
            return  # one dump per stall episode
        self._in_stall = True
        graph = build_waitfor(self.runtime, self._lock_holders)
        report = format_waitfor(graph, horizon_us=self.horizon_us)
        self.graphs.append(graph)
        self.dumps.append(report)
        print(report, file=self.stream or sys.stderr)
        if self.recorder is not None:
            blocked = [t["tid"] for t in graph["threads"]
                       if not t["finished"]]
            self.recorder.note("stall", self.runtime.config.num_nodes,
                               blocked=blocked, report=report[:4000])
