"""SLO specs and evaluation over the operation-latency pipeline.

An :class:`SloSpec` names per-operation-class latency targets (p50 /
p99 / p999, simulated microseconds) plus an optional availability
floor. Evaluation (:func:`evaluate_slo`) reads the per-class
:class:`~repro.metrics.hist.Log2Histogram` latency distributions from a
:class:`~repro.metrics.hist.MetricsRegistry` -- a single run's, or the
merged registry of a whole sweep -- and produces a machine-readable
verdict: one check per (class, quantile) target, each with the target,
the measured value and a pass flag.

Availability follows the paper's redundancy-exposure argument: the
fraction of the run during which data was *not* one-copy-exposed,
``1 - exposed_window_us / elapsed_us``. A run with no failures is
trivially 100% available.

Everything here is deterministic and JSON-round-trippable: specs load
from / dump to plain JSON (the committed default lives at
``results/slo_default.json`` and gates CI), and evaluation reports are
written next to run artifacts by ``repro slo`` / ``repro sweep``.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from repro.metrics.hist import MetricsRegistry

#: Quantile keys a spec may target, in report order.
QUANTILES = ("p50", "p99", "p999")


def _hist_name(op_class: str) -> str:
    return f"optrace.{op_class}.latency_us"


class SloSpec:
    """Latency + availability targets for a cluster configuration."""

    def __init__(self, name: str,
                 latency_targets_us: Dict[str, Dict[str, float]],
                 availability_min: Optional[float] = None) -> None:
        self.name = name
        #: op class -> {"p50": us, "p99": us, "p999": us} (any subset).
        self.latency_targets_us = latency_targets_us
        #: Minimum fraction of the run not one-copy-exposed, or None.
        self.availability_min = availability_min

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "latency_targets_us": self.latency_targets_us,
            "availability_min": self.availability_min,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SloSpec":
        return cls(data["name"], data["latency_targets_us"],
                   data.get("availability_min"))

    @classmethod
    def load(cls, path) -> "SloSpec":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))

    def dump(self, path) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")


def default_slo_spec() -> SloSpec:
    """The committed generous baseline (``results/slo_default.json``).

    Targets sit 8-32x above the percentiles measured on the default
    4-node model-check scenario and the bench-scale applications, so a
    pass asserts "no order-of-magnitude regression" rather than a tight
    budget; CI gates on it.
    """
    return SloSpec("default-generous", {
        "page_fault": {"p50": 1024, "p99": 4096, "p999": 8192},
        "lock_acquire": {"p50": 4096, "p99": 16384, "p999": 32768},
        "barrier": {"p50": 16384, "p99": 131072, "p999": 262144},
        "diff_phase1": {"p99": 8192, "p999": 16384},
        "diff_phase2": {"p99": 8192, "p999": 16384},
        "checkpoint_a": {"p99": 4096, "p999": 8192},
        "checkpoint_b": {"p99": 4096, "p999": 8192},
        "recovery_wave": {"p999": 262144},
        "rereplicate": {"p999": 262144},
    }, availability_min=0.5)


def latency_book_registry(book) -> MetricsRegistry:
    """Adapt a :class:`~repro.metrics.latency.LatencyBook` (e.g. the
    merged histograms of a sweep) to the registry naming
    :func:`evaluate_slo` expects, so sweep-level SLO specs can target
    the book's op categories (``page_fault``, ``lock_wait``,
    ``release``, ``barrier_wait``)."""
    from repro.metrics.latency import ALL_OPS
    registry = MetricsRegistry()
    for op in ALL_OPS:
        hist = book.hist(op)
        if hist.count:
            registry.histograms[_hist_name(op)] = hist
    return registry


def evaluate_slo(spec: SloSpec, metrics: MetricsRegistry,
                 elapsed_us: Optional[float] = None,
                 exposed_window_us: float = 0.0) -> dict:
    """Evaluate ``spec`` against measured latency distributions.

    Returns a JSON-able report::

        {"spec": ..., "ok": bool,
         "checks": [{"op_class", "quantile", "target_us",
                     "actual_us", "count", "ok"}, ...],
         "availability": {"min", "actual", "exposed_window_us",
                          "elapsed_us", "ok"} | None}

    A class with no recorded operations passes vacuously (``actual_us``
    is None, ``count`` 0) -- a spec may cover operation classes a
    particular workload never exercises.
    """
    checks = []
    ok = True
    for op_class in sorted(spec.latency_targets_us):
        targets = spec.latency_targets_us[op_class]
        hist = metrics.histograms.get(_hist_name(op_class))
        quantiles = (hist.percentiles() if hist is not None
                     and hist.count else {})
        for quantile in QUANTILES:
            if quantile not in targets:
                continue
            target = float(targets[quantile])
            actual = quantiles.get(quantile)
            passed = actual is None or actual <= target
            ok = ok and passed
            checks.append({
                "op_class": op_class, "quantile": quantile,
                "target_us": target, "actual_us": actual,
                "count": hist.count if hist is not None else 0,
                "ok": passed,
            })
    availability = None
    if spec.availability_min is not None and elapsed_us:
        actual = 1.0 - exposed_window_us / elapsed_us
        passed = actual >= spec.availability_min
        ok = ok and passed
        availability = {
            "min": spec.availability_min, "actual": actual,
            "exposed_window_us": exposed_window_us,
            "elapsed_us": elapsed_us, "ok": passed,
        }
    return {"spec": spec.name, "ok": ok, "checks": checks,
            "availability": availability}


def format_slo_report(report: dict) -> str:
    """Fixed-width text rendering of an evaluation report."""
    lines = [f"SLO spec: {report['spec']}   "
             f"verdict: {'PASS' if report['ok'] else 'FAIL'}"]
    lines.append(f"  {'op class':<16} {'q':>5} {'target':>12} "
                 f"{'actual':>12} {'n':>7}  ok")
    for check in report["checks"]:
        actual = check["actual_us"]
        lines.append(
            f"  {check['op_class']:<16} {check['quantile']:>5} "
            f"{check['target_us']:>10.0f}us "
            + (f"{actual:>10.0f}us " if actual is not None
               else f"{'(no data)':>12} ")
            + f"{check['count']:>7}  "
            + ("pass" if check["ok"] else "FAIL"))
    avail = report.get("availability")
    if avail is not None:
        lines.append(
            f"  availability: {avail['actual'] * 100:.4f}% "
            f"(min {avail['min'] * 100:.4f}%, exposed "
            f"{avail['exposed_window_us']:.0f}us of "
            f"{avail['elapsed_us']:.0f}us)  "
            + ("pass" if avail["ok"] else "FAIL"))
    return "\n".join(lines)
