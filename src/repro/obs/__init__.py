"""Observability: flight recorder, time-series sampler, stall watchdog.

All components are strictly opt-in: nothing in this package is imported
or attached by the simulator unless a caller (the ``repro report``
command, a test, or the ``REPRO_FLIGHT_RECORD`` environment switch)
asks for it, and the hook bus early-returns when no subscriber is
registered -- so a run with observability off executes zero recorder,
sampler or watchdog code. :mod:`repro.obs.instrumentation` counts every
obs-code invocation precisely so tests can prove that claim.

Components::

    from repro.obs import FlightRecorder, TimeSeriesSampler, StallWatchdog

    runtime = SvmRuntime(config, workload)
    rec = FlightRecorder(runtime)
    sampler = TimeSeriesSampler(runtime, period_us=500.0)
    dog = StallWatchdog(runtime, horizon_us=20_000.0, recorder=rec)
    sampler.start(); dog.start()
    runtime.run()
    rec.export("trace.json", counters=sampler.to_chrome_counters(rec.cluster_pid))

The exported trace is Chrome/Perfetto JSON (open it at
https://ui.perfetto.dev); timestamps are simulated microseconds.
"""

from repro.obs.optrace import OpTracer
from repro.obs.recorder import FlightRecorder
from repro.obs.slo import SloSpec, evaluate_slo, format_slo_report
from repro.obs.timeseries import TimeSeriesSampler
from repro.obs.watchdog import StallWatchdog, build_waitfor, format_waitfor

__all__ = [
    "FlightRecorder",
    "OpTracer",
    "SloSpec",
    "TimeSeriesSampler",
    "StallWatchdog",
    "build_waitfor",
    "evaluate_slo",
    "format_slo_report",
    "format_waitfor",
]
