"""Periodic time-series sampling of counters and queue depths.

:class:`TimeSeriesSampler` rides the engine's metronome: every
``period_us`` of *simulated* time it snapshots the cumulative
:class:`~repro.metrics.counters.NodeCounters` fields of every node,
the engine's pending-event count and each NIC's post-queue depth, into
columnar arrays (one list per series, one shared time axis).

Two views: :meth:`totals` (cluster-wide cumulative counters) and
:meth:`rates` (per-millisecond first differences, clamped at zero --
the runtime swaps in fresh counter objects when the timed region
starts, which would otherwise show up as one large negative delta).

The sampler piggybacks on :meth:`repro.sim.engine.Engine.metronome`,
which re-arms only while other events remain pending -- sampling never
keeps a finished simulation alive. Like the whole obs package it is
opt-in: nothing samples until :meth:`start` is called.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.obs import instrumentation

#: NodeCounters fields sampled by default -- the protocol activity the
#: report and the Perfetto counter tracks plot.
DEFAULT_FIELDS = (
    "page_faults",
    "diff_messages",
    "lock_acquires",
    "checkpoints",
    "diff_bytes_sent",
    "remote_page_fetches",
)


class TimeSeriesSampler:
    """Columnar sampler of per-node counters and engine/NIC gauges."""

    def __init__(self, runtime, period_us: float = 500.0,
                 fields: Sequence[str] = DEFAULT_FIELDS) -> None:
        self.runtime = runtime
        self.engine = runtime.engine
        self.period_us = period_us
        self.fields = tuple(fields)
        self.times: List[float] = []
        #: series name -> per-sample values. Counter series are named
        #: ``node{n}.{field}`` (cumulative); gauges are
        #: ``engine.queue_depth`` and ``node{n}.nic_queue``.
        self.series: Dict[str, List[float]] = {}
        self._started = False

    def start(self) -> None:
        """Take one sample now and arm the metronome."""
        if self._started:
            return
        self._started = True
        self._sample()
        self.engine.metronome(self.period_us, self._sample)

    def _sample(self) -> None:
        instrumentation.bump("sampler")
        self.times.append(self.engine.now)
        put = self._put
        for n, agent in enumerate(self.runtime.agents):
            counters = agent.counters
            for field in self.fields:
                put(f"node{n}.{field}", getattr(counters, field))
        put("engine.queue_depth", self.engine.queue_depth)
        for n, node in enumerate(self.runtime.cluster.nodes):
            put(f"node{n}.nic_queue", len(node.nic.post_queue))

    def _put(self, key: str, value: float) -> None:
        col = self.series.get(key)
        if col is None:
            # A series appearing late (recovery lane) back-fills zeros
            # so every column stays aligned with the time axis.
            col = self.series[key] = [0.0] * (len(self.times) - 1)
        col.append(float(value))

    def __len__(self) -> int:
        return len(self.times)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def totals(self) -> Dict[str, List[float]]:
        """Cluster-wide cumulative value per sampled counter field."""
        num_nodes = self.runtime.config.num_nodes
        out: Dict[str, List[float]] = {}
        for field in self.fields:
            cols = [self.series.get(f"node{n}.{field}")
                    for n in range(num_nodes)]
            cols = [c for c in cols if c]
            out[field] = [sum(col[i] for col in cols)
                          for i in range(len(self.times))]
        return out

    def rates(self) -> Tuple[List[float], Dict[str, List[float]]]:
        """Per-millisecond event rates (first differences of
        :meth:`totals`, clamped at zero). Returns ``(times, rates)``
        where ``times`` drops the first sample."""
        times = self.times[1:]
        rates: Dict[str, List[float]] = {}
        for field, values in self.totals().items():
            col = []
            for i in range(1, len(values)):
                dt_ms = (self.times[i] - self.times[i - 1]) / 1000.0
                if dt_ms <= 0:
                    col.append(0.0)
                    continue
                # Clamp: the runtime zeroes counters at timing start,
                # which is a bookkeeping reset, not negative work.
                col.append(max(0.0, (values[i] - values[i - 1]) / dt_ms))
            rates[field] = col
        return times, rates

    def gauge(self, key: str) -> List[float]:
        return list(self.series.get(key, ()))

    # ------------------------------------------------------------------
    # Perfetto counter tracks
    # ------------------------------------------------------------------

    def to_chrome_counters(self, cluster_pid: int) -> List[dict]:
        """``"ph": "C"`` counter events: the engine queue depth on the
        cluster process and, per node, the NIC queue depth plus the
        sampled activity counters."""
        events: List[dict] = []
        num_nodes = self.runtime.config.num_nodes
        queue = self.series.get("engine.queue_depth", [])
        for i, ts in enumerate(self.times):
            if i < len(queue):
                events.append({"ph": "C", "pid": cluster_pid, "tid": 0,
                               "ts": ts, "name": "engine queue",
                               "args": {"pending": queue[i]}})
            for n in range(num_nodes):
                args = {}
                nic = self.series.get(f"node{n}.nic_queue")
                if nic and i < len(nic):
                    args["nic_queue"] = nic[i]
                for field in self.fields:
                    col = self.series.get(f"node{n}.{field}")
                    if col and i < len(col):
                        args[field] = col[i]
                if args:
                    events.append({"ph": "C", "pid": n, "tid": 0,
                                   "ts": ts, "name": "activity",
                                   "args": args})
        return events
