"""Flight recorder: hook-bus capture and Perfetto timeline export.

:class:`FlightRecorder` subscribes to every :data:`FULL_EVENTS` hook
and keeps a bounded in-memory log of ``(time, event, node, payload)``.
:meth:`FlightRecorder.to_chrome_trace` turns that log into the Chrome
trace-event JSON that https://ui.perfetto.dev renders: one *process*
per node (plus a synthetic "cluster" process for failure/recovery
activity), one *track* per application thread plus a per-node
"protocol" track for the serialized release pipeline, duration slices
for lock hold/wait, barrier waits, page-fault service, diff phases 1
and 2 and checkpoint points A/B, and instants for the dense audit
events (diff sends/applies, commits, checkpoint stores, home remaps).

Timestamps are **simulated microseconds** verbatim -- the trace-event
format's native unit -- so the Perfetto ruler reads in simulated time.

The export is deterministic: events are emitted in capture order with
sorted JSON keys and no wall-clock or id()-derived values, so the same
seeded run always produces a byte-identical trace
(:meth:`FlightRecorder.digest` pins that in tests).
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.cluster import Hooks
from repro.metrics.trace import FULL_EVENTS, _jsonable
from repro.obs import instrumentation

#: Track (tid) layout inside a node process: tid 0 is the protocol
#: pipeline lane (releases are serialized per node, so its slices
#: nest cleanly); application thread ``t`` gets tid ``1 + t``.
PROTOCOL_LANE = 0

#: Tracks inside the synthetic cluster process.
RECOVERY_LANE = 0
WATCHDOG_LANE = 1

_CAT = {
    Hooks.ACQUIRE_START: "lock", Hooks.LOCK_ACQUIRED: "lock",
    Hooks.LOCK_RELEASED: "lock",
    Hooks.RELEASE_START: "release", Hooks.RELEASE_DONE: "release",
    Hooks.RELEASE_COMMITTED: "release",
    Hooks.PAGE_FAULT: "fault", Hooks.PAGE_FAULT_DONE: "fault",
    Hooks.BARRIER_ENTER: "barrier", Hooks.BARRIER_EXIT: "barrier",
    Hooks.DIFF_PHASE1_START: "diff", Hooks.DIFF_PHASE1_DONE: "diff",
    Hooks.DIFF_PHASE2_START: "diff", Hooks.DIFF_PHASE2_DONE: "diff",
    Hooks.DIFF_SEND: "diff", Hooks.DIFF_APPLY: "diff",
    Hooks.CHECKPOINT_A_START: "checkpoint", Hooks.CHECKPOINT_A: "checkpoint",
    Hooks.CHECKPOINT_B_START: "checkpoint", Hooks.CHECKPOINT_B: "checkpoint",
    Hooks.CHECKPOINT_STORED: "checkpoint",
    Hooks.FAILURE_DETECTED: "recovery", Hooks.RECOVERY_START: "recovery",
    Hooks.RECOVERY_DONE: "recovery", Hooks.HOME_REMAP: "recovery",
    Hooks.RECOVERY_RECONCILE: "recovery", Hooks.THREAD_RESUMED: "recovery",
    Hooks.REREPLICATE_START: "recovery", Hooks.REREPLICATE_DONE: "recovery",
}


class FlightRecorder:
    """Bounded capture of the full hook stream, exportable as a
    Perfetto/Chrome trace. Attach before ``runtime.run()``."""

    def __init__(self, runtime, capacity: int = 1_000_000) -> None:
        self.runtime = runtime
        self.engine = runtime.engine
        #: pid of the synthetic cluster-wide process in the trace.
        self.cluster_pid = runtime.config.num_nodes
        self.capacity = capacity
        self.dropped = 0
        self._log: Deque[Tuple[float, str, int, dict]] = deque(
            maxlen=capacity)
        self._hooks = runtime.cluster.hooks
        self._subscribed: List[Tuple[str, Any]] = []
        for name in FULL_EVENTS:
            fn = self._make_recorder(name)
            self._hooks.on(name, fn)
            self._subscribed.append((name, fn))

    def _make_recorder(self, name: str):
        def record(node_id: int, **info) -> None:
            instrumentation.bump("recorder")
            if len(self._log) == self.capacity:
                self.dropped += 1
            self._log.append((self.engine.now, name, node_id, info))
        return record

    def detach(self) -> None:
        for name, fn in self._subscribed:
            self._hooks.off(name, fn)
        self._subscribed.clear()

    def __len__(self) -> int:
        return len(self._log)

    def note(self, name: str, node_id: int, **info) -> None:
        """Inject a synthetic event (used by the stall watchdog so its
        findings land on the timeline next to the stall itself)."""
        self._log.append((self.engine.now, name, node_id, info))

    # ------------------------------------------------------------------
    # Chrome trace-event assembly
    # ------------------------------------------------------------------

    def to_chrome_trace(self, counters: Optional[List[dict]] = None) -> dict:
        """Build the ``{"traceEvents": [...]}`` document.

        ``counters`` (optional) are pre-built ``"ph": "C"`` events from
        :meth:`repro.obs.timeseries.TimeSeriesSampler.to_chrome_counters`,
        appended so gauges render under the same timeline.
        """
        out: List[dict] = []
        # (pid, tid) -> stack of open slice names. Slices must nest per
        # track; every emitter below goes through _begin/_end so a
        # missing end (node death, recovery rewind) can be repaired
        # instead of corrupting the track.
        open_spans: Dict[Tuple[int, int], List[str]] = {}
        last_ts = 0.0

        def begin(pid, tid, ts, name, cat, args=None):
            ev = {"ph": "B", "pid": pid, "tid": tid, "ts": ts,
                  "name": name, "cat": cat}
            if args:
                ev["args"] = _jsonable(args)
            out.append(ev)
            open_spans.setdefault((pid, tid), []).append(name)

        def end(pid, tid, ts, name):
            stack = open_spans.get((pid, tid))
            if not stack or name not in stack:
                return  # unmatched end (e.g. span opened pre-capture)
            while stack:
                top = stack.pop()
                out.append({"ph": "E", "pid": pid, "tid": tid, "ts": ts,
                            "name": top})
                if top == name:
                    break

        def instant(pid, tid, ts, name, cat, args=None, scope="t"):
            ev = {"ph": "i", "pid": pid, "tid": tid, "ts": ts,
                  "name": name, "cat": cat, "s": scope}
            if args:
                ev["args"] = _jsonable(args)
            out.append(ev)

        def close_process(pid, ts):
            """A node died: every slice open on any of its tracks ends
            now (the work it represented stopped with the node)."""
            for (p, tid), stack in open_spans.items():
                if p != pid:
                    continue
                while stack:
                    out.append({"ph": "E", "pid": p, "tid": tid,
                                "ts": ts, "name": stack.pop()})

        for ts, name, node, info in self._log:
            last_ts = max(last_ts, ts)
            cat = _CAT.get(name, "misc")
            tid = info.get("tid", info.get("thread"))
            # Thread-lane events always carry a tid; fall back to the
            # protocol lane rather than crash if a payload omits it.
            lane = PROTOCOL_LANE if tid is None else 1 + tid

            # -- application-thread tracks ------------------------------
            if name == Hooks.ACQUIRE_START:
                begin(node, lane, ts, f"lock {info['lock']} wait", cat, info)
            elif name == Hooks.LOCK_ACQUIRED:
                end(node, lane, ts, f"lock {info['lock']} wait")
                begin(node, lane, ts, f"lock {info['lock']} hold", cat, info)
            elif name == Hooks.RELEASE_START:
                end(node, lane, ts, f"lock {info['lock']} hold")
                begin(node, lane, ts, f"release lock {info['lock']}",
                      cat, info)
            elif name == Hooks.RELEASE_DONE:
                end(node, lane, ts, f"release lock {info['lock']}")
            elif name == Hooks.LOCK_RELEASED:
                instant(node, lane, ts, f"lock {info['lock']} handover", cat)
            elif name == Hooks.PAGE_FAULT:
                kind = "write" if info.get("write") else "read"
                begin(node, lane, ts,
                      f"fault page {info['page']} ({kind})", cat, info)
            elif name == Hooks.PAGE_FAULT_DONE:
                kind = "write" if info.get("write") else "read"
                end(node, lane, ts, f"fault page {info['page']} ({kind})")
            elif name == Hooks.BARRIER_ENTER:
                begin(node, lane, ts, f"barrier {info['barrier']}",
                      cat, info)
            elif name == Hooks.BARRIER_EXIT:
                end(node, lane, ts, f"barrier {info['barrier']}")
            elif name == Hooks.THREAD_RESUMED:
                instant(node, lane, ts, "thread resumed", cat, info)

            # -- per-node protocol lane (serialized releases) -----------
            elif name == Hooks.DIFF_PHASE1_START:
                begin(node, PROTOCOL_LANE, ts, "diff phase 1", cat, info)
            elif name == Hooks.DIFF_PHASE1_DONE:
                end(node, PROTOCOL_LANE, ts, "diff phase 1")
            elif name == Hooks.CHECKPOINT_A_START:
                begin(node, PROTOCOL_LANE, ts, "checkpoint A", cat, info)
            elif name == Hooks.CHECKPOINT_A:
                end(node, PROTOCOL_LANE, ts, "checkpoint A")
            elif name == Hooks.CHECKPOINT_B_START:
                begin(node, PROTOCOL_LANE, ts, "checkpoint B", cat, info)
            elif name == Hooks.CHECKPOINT_B:
                end(node, PROTOCOL_LANE, ts, "checkpoint B")
            elif name == Hooks.DIFF_PHASE2_START:
                begin(node, PROTOCOL_LANE, ts, "diff phase 2", cat, info)
            elif name == Hooks.DIFF_PHASE2_DONE:
                end(node, PROTOCOL_LANE, ts, "diff phase 2")
            elif name == Hooks.RELEASE_COMMITTED:
                instant(node, PROTOCOL_LANE, ts, "interval commit", cat,
                        {"interval": info.get("interval"),
                         "seq": info.get("seq"),
                         "pages": len(info.get("pages") or ())})
            elif name == Hooks.DIFF_SEND:
                instant(node, PROTOCOL_LANE, ts, "diff send", cat, info)
            elif name == Hooks.DIFF_APPLY:
                instant(node, PROTOCOL_LANE, ts, "diff apply", cat, info)
            elif name == Hooks.CHECKPOINT_STORED:
                instant(node, PROTOCOL_LANE, ts, "checkpoint stored", cat,
                        {"kind": info.get("kind"), "ward": info.get("ward"),
                         "seq": info.get("seq")})

            # -- cluster process (failure / recovery / watchdog) --------
            elif name == Hooks.FAILURE_DETECTED:
                close_process(node, ts)
                instant(self.cluster_pid, RECOVERY_LANE, ts,
                        f"node {node} failed", cat, info, scope="g")
                begin(self.cluster_pid, RECOVERY_LANE, ts,
                      f"quiesce (node {node} down)", cat, info)
            elif name == Hooks.RECOVERY_START:
                end(self.cluster_pid, RECOVERY_LANE, ts,
                    f"quiesce (node {node} down)")
                begin(self.cluster_pid, RECOVERY_LANE, ts,
                      f"recovery (node {node})", cat, info)
            elif name == Hooks.RECOVERY_DONE:
                end(self.cluster_pid, RECOVERY_LANE, ts,
                    f"recovery (node {node})")
            elif name == Hooks.REREPLICATE_START:
                begin(self.cluster_pid, RECOVERY_LANE, ts,
                      f"re-replicate (node {node})", cat, info)
            elif name == Hooks.REREPLICATE_DONE:
                end(self.cluster_pid, RECOVERY_LANE, ts,
                    f"re-replicate (node {node})")
            elif name == Hooks.HOME_REMAP:
                instant(self.cluster_pid, RECOVERY_LANE, ts,
                        "home remap", cat, info)
            elif name == Hooks.RECOVERY_RECONCILE:
                instant(self.cluster_pid, RECOVERY_LANE, ts,
                        f"reconcile: {info.get('action')}", cat, info)
            elif name == "stall":
                instant(self.cluster_pid, WATCHDOG_LANE, ts,
                        "stall detected", "watchdog", info, scope="g")
            else:
                instant(node, PROTOCOL_LANE, ts, name, cat, info)

        # Repair any slice still open at the end of capture (a thread
        # parked mid-operation when the run was capped, or a slice whose
        # end hook never fired) so the document stays well-formed.
        auto_closed = 0
        for (pid, tid), stack in sorted(open_spans.items()):
            while stack:
                out.append({"ph": "E", "pid": pid, "tid": tid,
                            "ts": last_ts, "name": stack.pop()})
                auto_closed += 1

        events = self._metadata(out) + out
        if counters:
            events.extend(counters)
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "clock": "simulated_us",
                "dropped_events": self.dropped,
                "auto_closed_spans": auto_closed,
                "num_nodes": self.runtime.config.num_nodes,
            },
        }

    def _metadata(self, body: List[dict]) -> List[dict]:
        """Process/track naming and ordering metadata for every (pid,
        tid) the body touches, emitted in sorted order so the document
        stays deterministic."""
        tracks = sorted({(ev["pid"], ev["tid"]) for ev in body})
        meta: List[dict] = []
        for pid in sorted({p for p, _ in tracks}):
            pname = ("cluster" if pid == self.cluster_pid
                     else f"node {pid}")
            meta.append({"ph": "M", "pid": pid, "tid": 0,
                         "name": "process_name",
                         "args": {"name": pname}})
            meta.append({"ph": "M", "pid": pid, "tid": 0,
                         "name": "process_sort_index",
                         "args": {"sort_index": pid}})
        for pid, tid in tracks:
            if pid == self.cluster_pid:
                tname = ("recovery" if tid == RECOVERY_LANE
                         else "watchdog" if tid == WATCHDOG_LANE
                         else f"track {tid}")
            else:
                tname = ("protocol" if tid == PROTOCOL_LANE
                         else f"thread {tid - 1}")
            meta.append({"ph": "M", "pid": pid, "tid": tid,
                         "name": "thread_name",
                         "args": {"name": tname}})
            meta.append({"ph": "M", "pid": pid, "tid": tid,
                         "name": "thread_sort_index",
                         "args": {"sort_index": tid}})
        return meta

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_json(self, counters: Optional[List[dict]] = None) -> str:
        """Deterministic serialization (sorted keys, no whitespace)."""
        return json.dumps(self.to_chrome_trace(counters=counters),
                          sort_keys=True, separators=(",", ":"))

    def export(self, path, counters: Optional[List[dict]] = None) -> int:
        """Write the trace JSON; returns the number of traceEvents."""
        doc = self.to_chrome_trace(counters=counters)
        with open(path, "w") as fh:
            fh.write(json.dumps(doc, sort_keys=True,
                                separators=(",", ":")))
        return len(doc["traceEvents"])

    def digest(self, counters: Optional[List[dict]] = None) -> str:
        """sha256 of the serialized trace -- the determinism fingerprint
        (same seeds => same digest, regardless of host or job count)."""
        return hashlib.sha256(
            self.to_json(counters=counters).encode()).hexdigest()
