"""Fail-stop failure injection.

Two injection styles:

* **time-based** -- kill node N at simulated time t;
* **hook-based** -- kill node N the k-th time it fires a given protocol
  hook (e.g. "during the first phase of diff propagation of its 3rd
  release"), which is how the recovery-path tests reach every case of
  paper section 4.5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.cluster.machine import Cluster
from repro.sim import PRIORITY_URGENT


@dataclass
class InjectionRecord:
    node_id: int
    fired_at: Optional[float] = None
    description: str = ""


class FailureInjector:
    """Schedules fail-stop deaths against a cluster."""

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self.records: List[InjectionRecord] = []

    def kill_at_time(self, node_id: int, time: float) -> InjectionRecord:
        record = InjectionRecord(node_id,
                                 description=f"time-based at {time}")
        self.records.append(record)

        def fire() -> None:
            if self.cluster.node(node_id).alive:
                record.fired_at = self.cluster.now
                self.cluster.fail_node(node_id)

        self.cluster.engine.schedule_at(time, fire, priority=PRIORITY_URGENT)
        return record

    def kill_on_hook(self, node_id: int, hook_name: str,
                     occurrence: int = 1,
                     delay: float = 0.0,
                     any_node: bool = False) -> InjectionRecord:
        """Kill ``node_id`` when it fires ``hook_name`` for the
        ``occurrence``-th time, optionally ``delay`` us later (to land
        *inside* the phase the hook opens rather than at its boundary).

        ``any_node`` counts the hook's firings regardless of which node
        fired it -- needed for hooks that fire *about* a node rather
        than *at* one (e.g. killing during recovery by counting
        RECOVERY_START events, whose node_id is the victim under
        recovery, not the node to kill).
        """
        record = InjectionRecord(
            node_id,
            description=(f"on {hook_name}#{occurrence} (+{delay}us)"
                         + (" any-node" if any_node else "")))
        self.records.append(record)
        seen = {"count": 0}

        def on_hook(fired_node: int, **info) -> None:
            if (not any_node and fired_node != node_id) \
                    or record.fired_at is not None:
                return
            seen["count"] += 1
            if seen["count"] != occurrence:
                return
            self.cluster.hooks.off(hook_name, on_hook)

            def fire() -> None:
                if self.cluster.node(node_id).alive:
                    record.fired_at = self.cluster.now
                    self.cluster.fail_node(node_id)

            self.cluster.engine.schedule(delay, fire,
                                         priority=PRIORITY_URGENT)

        self.cluster.hooks.on(hook_name, on_hook)
        return record
