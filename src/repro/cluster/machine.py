"""Cluster assembly: nodes + fabric + shared address space."""

from __future__ import annotations

import random
from typing import List

from repro.config import ClusterConfig
from repro.cluster.hooks import Hooks
from repro.cluster.node import Node
from repro.errors import SimulationError
from repro.memory import AddressSpace
from repro.net import Network
from repro.sim import Engine


class Cluster:
    """The simulated machine: N SMP nodes on one switch.

    This object owns the engine and all hardware-level state; the SVM
    protocol layers attach per-node agents on top of it.
    """

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        self.engine = Engine()
        self.rng = random.Random(config.seed)
        self.hooks = Hooks()
        self.network = Network(self.engine, config.network)
        self.address_space = AddressSpace(
            config.shared_pages, config.memory.page_size, config.num_nodes)
        self.nodes: List[Node] = []
        #: Ground-truth death observers (``fn(node_id)``), invoked the
        #: moment a node fail-stops. The recovery coordinator registers
        #: here so a death *during* an active recovery is absorbed into
        #: the in-progress rendezvous instead of silently stalling the
        #: quiescence count.
        self.on_node_failed: List = []
        #: Causal operation tracer (repro.obs.optrace.OpTracer) or None.
        #: Protocol mint sites read this attribute; with no tracer the
        #: cost is one attribute load + None test per logical operation.
        self.optrace = None
        for node_id in range(config.num_nodes):
            node = Node(self.engine, node_id, config)
            self.network.attach(node.nic)
            self.nodes.append(node)

    def node(self, node_id: int) -> Node:
        if not 0 <= node_id < len(self.nodes):
            raise SimulationError(f"no node {node_id}")
        return self.nodes[node_id]

    def live_nodes(self) -> List[int]:
        return [n.node_id for n in self.nodes if n.alive]

    def fail_node(self, node_id: int) -> None:
        """Fail-stop a node immediately (at the current simulated time)."""
        self.node(node_id).fail()
        for callback in list(self.on_node_failed):
            callback(node_id)

    def run(self, until=None) -> None:
        self.engine.run(until=until)

    @property
    def now(self) -> float:
        return self.engine.now
