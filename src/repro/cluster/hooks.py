"""Lightweight pub/sub hook bus for tracing and failure injection.

Protocol code fires named hooks at interesting points (release phases,
checkpoints, recovery stages); tests and the failure injector subscribe
to them. Firing a hook with no subscribers is free, so the protocol can
be instrumented densely.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, DefaultDict, List

#: Subscriber signature: ``fn(node_id, **info)``.
HookFn = Callable[..., None]


class Hooks:
    """Named synchronous hook points."""

    # Hook names fired by the protocol layers. Centralizing them here
    # keeps injector/test code typo-safe.
    RELEASE_START = "release_start"
    RELEASE_COMMITTED = "release_committed"        # updates committed (point A)
    DIFF_PHASE1_START = "diff_phase1_start"
    DIFF_PHASE1_DONE = "diff_phase1_done"          # timestamp saved (point B)
    DIFF_PHASE2_START = "diff_phase2_start"
    DIFF_PHASE2_DONE = "diff_phase2_done"
    RELEASE_DONE = "release_done"
    CHECKPOINT_A_START = "checkpoint_a_start"
    CHECKPOINT_A = "checkpoint_a"
    CHECKPOINT_B_START = "checkpoint_b_start"
    CHECKPOINT_B = "checkpoint_b"
    BARRIER_ENTER = "barrier_enter"
    BARRIER_EXIT = "barrier_exit"
    ACQUIRE_START = "acquire_start"
    LOCK_ACQUIRED = "lock_acquired"
    LOCK_RELEASED = "lock_released"
    PAGE_FAULT = "page_fault"
    PAGE_FAULT_DONE = "page_fault_done"
    FAILURE_DETECTED = "failure_detected"
    RECOVERY_START = "recovery_start"
    RECOVERY_DONE = "recovery_done"
    THREAD_RESUMED = "thread_resumed"
    # Fine-grained audit points (consumed by repro.verify and trace
    # replay; fired densely, free with no subscribers).
    DIFF_SEND = "diff_send"                        # one diff leaves a writer
    DIFF_APPLY = "diff_apply"                      # one diff lands at a home
    HOME_REMAP = "home_remap"                      # home map epoch change
    RECOVERY_RECONCILE = "recovery_reconcile"      # roll-forward/back chosen
    CHECKPOINT_STORED = "checkpoint_stored"        # backup stored a record
    REREPLICATE_START = "rereplicate_start"        # step-8 push begins
    REREPLICATE_DONE = "rereplicate_done"          # full protection restored

    def __init__(self) -> None:
        self._subs: DefaultDict[str, List[HookFn]] = defaultdict(list)

    def on(self, name: str, fn: HookFn) -> None:
        self._subs[name].append(fn)

    def off(self, name: str, fn: HookFn) -> None:
        if fn in self._subs.get(name, []):
            self._subs[name].remove(fn)

    def fire(self, name: str, node_id: int, **info: Any) -> None:
        subs = self._subs.get(name)
        if not subs:
            # The common case on hot paths: nobody listening. Exit
            # before the defensive copy so dense instrumentation stays
            # near-free with observability off.
            return
        for fn in list(subs):
            fn(node_id, **info)
