"""One SMP node: processors, memory bus, NIC, exported memory.

The paper's platform is a 2-way Pentium-II SMP. We model the node as:

* ``threads_per_node`` compute contexts (the scheduler is the DES
  itself -- each compute thread is a simulated process);
* one shared **memory bus** with finite bandwidth. Processor-side page
  copies (twin creation, local fetches, checkpoint serialization) and
  NIC DMA all occupy it, producing the compute-time dilation under
  heavy replication traffic the paper reports;
* one NIC attached to the cluster fabric, exporting this node's page
  stores and protocol regions.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.config import ClusterConfig
from repro.errors import SimulationError
from repro.net import NIC, RegionTable, VMMC
from repro.sim import Delay, Engine, Process, Resource


class Node:
    """A simulated SMP node."""

    def __init__(self, engine: Engine, node_id: int,
                 config: ClusterConfig) -> None:
        self.engine = engine
        self.node_id = node_id
        self.config = config
        self.alive = True
        self.rng = random.Random(config.seed * 1_000_003 + node_id)

        self.regions = RegionTable(node_id)
        self.bus = Resource(engine, capacity=1, name=f"node{node_id}.bus")
        contended = config.memory.model_bus_contention
        self.nic = NIC(engine, node_id, config.network, self.rng,
                       regions=self.regions,
                       dma_bus=self.bus if contended else None,
                       dma_bandwidth=config.memory.bus_bandwidth_bytes_per_us
                       if contended else None)
        self.vmmc = VMMC(engine, self.nic, config.costs)

        #: Every simulated process running on this node (compute threads,
        #: protocol daemons); killed wholesale at fail-stop.
        self._processes: List[Process] = []

    # -- process management --------------------------------------------------

    def spawn(self, generator, name: str) -> Process:
        """Start a process that dies with this node."""
        if not self.alive:
            raise SimulationError(
                f"cannot spawn {name!r} on dead node {self.node_id}")
        proc = self.engine.spawn(generator, f"n{self.node_id}.{name}")
        self._processes.append(proc)
        return proc

    def adopt(self, proc: Process) -> None:
        """Register an externally-created process for fail-stop killing."""
        self._processes.append(proc)

    # -- memory-system costs --------------------------------------------------

    def mem_copy(self, nbytes: int):
        """Generator charging the time of a local memory copy.

        Holds the bus (if contention modelling is on) for the transfer,
        at the slower of copy bandwidth vs bus share.
        """
        duration = self.config.memory.copy_time_us(nbytes)
        if self.config.memory.model_bus_contention:
            yield self.bus.acquire()
            try:
                yield Delay(duration)
            finally:
                self.bus.release()
        else:
            yield Delay(duration)

    # -- failure ----------------------------------------------------------------

    def fail(self) -> None:
        """Fail-stop this node: all processes die, the NIC goes silent.

        Local memory contents are *lost* to the rest of the system (the
        stores remain as Python objects, but nothing can reach them
        through the fabric -- matching "volatile memories").
        """
        if not self.alive:
            return
        self.alive = False
        for proc in self._processes:
            proc.kill()
        self._processes.clear()
        self.nic.fail()
