"""Cluster hardware model: SMP nodes, fabric, failure injection.

Public surface::

    from repro.cluster import Cluster, Node, FailureInjector, Hooks
"""

from repro.cluster.failure import FailureInjector, InjectionRecord
from repro.cluster.hooks import Hooks
from repro.cluster.machine import Cluster
from repro.cluster.node import Node

__all__ = [
    "Cluster",
    "Node",
    "FailureInjector",
    "InjectionRecord",
    "Hooks",
]
