"""Simulated Myrinet/VMMC communication layer.

Public surface::

    from repro.net import Network, NIC, VMMC, MemoryRegion, RegionTable
"""

from repro.net.message import HEADER_BYTES, Message, MessageKind
from repro.net.network import Network
from repro.net.nic import NIC
from repro.net.regions import MemoryRegion, RegionTable
from repro.net.vmmc import VMMC

__all__ = [
    "Network",
    "NIC",
    "VMMC",
    "Message",
    "MessageKind",
    "HEADER_BYTES",
    "MemoryRegion",
    "RegionTable",
]
