"""The switch fabric connecting node NICs.

The paper's cluster connects all eight nodes to one 8-way Myrinet
switch. We model the fabric as constant per-hop latency (sender NIC
already charged serialization time); per-pair FIFO order follows from
each sender serializing its own transmissions and constant latency.

The network is also the ground truth for node liveness: a message whose
destination is dead fails the sender-visible completion event after the
wire latency, matching the paper's assumption that "basic communication
operations return an error when the destination node is unreachable"
and that once an error is returned every later operation also fails.
"""

from __future__ import annotations

from typing import Dict

from repro.config import NetworkParams
from repro.errors import NetworkError, RemoteNodeFailure
from repro.net.message import Message
from repro.net.nic import NIC
from repro.sim import Engine


class Network:
    """Crossbar fabric with constant latency and failure semantics."""

    def __init__(self, engine: Engine, params: NetworkParams) -> None:
        self.engine = engine
        self.params = params
        self._nics: Dict[int, NIC] = {}
        #: Total messages that reached a dead destination (diagnostics).
        self.dropped_messages = 0

    def attach(self, nic: NIC) -> None:
        if nic.node_id in self._nics:
            raise NetworkError(f"node {nic.node_id} already attached")
        self._nics[nic.node_id] = nic
        nic.network = self

    def nic(self, node_id: int) -> NIC:
        try:
            return self._nics[node_id]
        except KeyError:
            raise NetworkError(f"no such node {node_id}") from None

    def node_alive(self, node_id: int) -> bool:
        """Ground-truth liveness (used only by the fabric and by tests;
        protocol code must discover failures through communication)."""
        return self.nic(node_id).alive

    def transmit(self, msg: Message) -> None:
        """Accept a fully-serialized message from a sender NIC."""
        if msg.dst == msg.src:
            raise NetworkError(f"loopback message not allowed: {msg!r}")
        dst_nic = self.nic(msg.dst)

        def deliver() -> None:
            if not dst_nic.alive:
                self.dropped_messages += 1
                if msg.completion is not None and not msg.completion.settled:
                    msg.completion.fail(RemoteNodeFailure(msg.dst))
                return
            dst_nic._deliver(msg)

        self.engine.schedule(self.params.wire_latency_us, deliver)
