"""Simulated network interface (Myrinet NIC running VMMC firmware).

The NIC owns a bounded *post queue* of outgoing messages. Hosts post
asynchronous sends into it; when it fills, the posting processor blocks
until the NIC drains it -- this back-pressure at release points is one
of the contention effects the paper measures. A sender process drains
the queue (NIC occupancy + wire serialization), then hands the message
to the :class:`~repro.net.network.Network` for latency and delivery.

On the receive side, deposits and fetches are serviced entirely at the
NIC -- writing into or reading from exported memory regions -- without
involving the host processor, mirroring VMMC's remote deposit/fetch.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional

from repro.config import NetworkParams
from repro.errors import NetworkError, RemoteNodeFailure
from repro.net.message import Message, MessageKind
from repro.net.regions import RegionTable
from repro.sim import Delay, Engine, Event, Store
from repro.sim.resources import EMPTY, Resource

# Hoisted enum members: ``_dispatch`` runs per received message, and a
# module-global load + identity test beats two attribute loads there.
_DEPOSIT = MessageKind.DEPOSIT
_FETCH_REQ = MessageKind.FETCH_REQ
_FETCH_REPLY = MessageKind.FETCH_REPLY
_PROBE = MessageKind.PROBE
_PROBE_ACK = MessageKind.PROBE_ACK
_SERVICE_REQ = MessageKind.SERVICE_REQ
_SERVICE_REPLY = MessageKind.SERVICE_REPLY
_NOTIFY = MessageKind.NOTIFY


class NIC:
    """One node's network interface."""

    def __init__(self, engine: Engine, node_id: int, params: NetworkParams,
                 rng: random.Random,
                 regions: Optional[RegionTable] = None,
                 dma_bus: Optional[Resource] = None,
                 dma_bandwidth: Optional[float] = None) -> None:
        self.engine = engine
        self.node_id = node_id
        self._reply_name = f"nic{node_id}.reply"
        self.params = params
        self.rng = rng
        self.regions = regions if regions is not None else RegionTable(node_id)
        #: Memory-bus contention modelling: when ``dma_bus`` is set,
        #: every DMA transfer holds the bus for ``nbytes /
        #: dma_bandwidth`` microseconds. (Formerly an opaque generator
        #: hook; the sender/receiver loops now inline the
        #: acquire/delay/release, which drops one generator allocation
        #: and two resume hops per message per side.)
        self.dma_bus = dma_bus
        self.dma_bandwidth = dma_bandwidth
        self.alive = True
        self.network = None  # attached by Network.attach()
        #: Causal-trace sink (repro.obs.optrace.OpTracer) or None. Every
        #: tracing touch point is double-gated on ``msg.op is not None``
        #: -- always None with no tracer attached -- so the untraced
        #: receive path pays one comparison.
        self.optrace = None
        #: Nodes whose failure has been detected, each tagged with the
        #: home-map epoch at which the connection was unmapped. VMMC
        #: unmaps the import/export connections to a failed node during
        #: reconfiguration, so anything it left on the wire (or already
        #: queued here) is discarded instead of being applied to
        #: exported memory after recovery has rebuilt it. Membership is
        #: what the dispatch path tests; the epoch tags let recovery
        #: audits tie a shunned message to the map generation that
        #: shunned its sender (a node shunned under a later epoch was a
        #: mid-recovery cascade victim).
        self.dead_sources: Dict[int, int] = {}

        self.post_queue = Store(engine, capacity=params.post_queue_depth,
                                name=f"nic{node_id}.post")
        self._incoming = Store(engine, name=f"nic{node_id}.in")
        self._pending_replies: Dict[int, Event] = {}
        self._notify_handlers: Dict[str, Callable[[Message], None]] = {}
        self._services: Dict[str, Callable] = {}
        self._service_procs: list = []

        # Counters for the metrics layer.
        self.messages_sent = 0
        self.messages_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.post_queue_stalls = 0
        self.messages_shunned = 0

        # Delay objects are immutable once built, so the fixed per-call
        # charges can reuse one instance instead of allocating ~2 per
        # message on the sender/receiver hot loops.
        self._delay_post = Delay(params.post_overhead_us)
        self._delay_per_msg = Delay(params.nic_per_message_us)

        self._sender_proc = engine.spawn(self._sender(), f"nic{node_id}.send")
        self._receiver_proc = engine.spawn(self._receiver(), f"nic{node_id}.recv")

    # -- host-side API -----------------------------------------------------

    def post_charge(self) -> Delay:
        """Host-side cost of one post; yield the returned Delay.

        Split from :meth:`post_enqueue` so hot callers can post without
        a delegated generator: ``yield nic.post_charge()`` then check
        ``post_enqueue``. Raises when the NIC is down.
        """
        if not self.alive:
            raise NetworkError(f"node {self.node_id}: NIC is down")
        return self._delay_post

    def post_enqueue(self, msg: Message) -> Optional[Event]:
        """Enqueue a message after the post charge was paid.

        Returns ``None`` when the queue accepted the message, or the
        park event the caller must yield when the queue is full --
        the paper's full-NIC-queue stall of the posting processor.
        """
        queue = self.post_queue
        if queue.is_full:
            self.post_queue_stalls += 1
        ev = queue.put(msg)
        return None if ev._settled else ev

    def post(self, msg: Message):
        """Post an asynchronous send (generator; host-side cost included).

        Convenience wrapper over :meth:`post_charge` +
        :meth:`post_enqueue` for callers off the hot path.
        """
        yield self.post_charge()
        ev = self.post_enqueue(msg)
        if ev is not None:
            yield ev

    def register_notify_handler(self, channel: str,
                                handler: Callable[[Message], None]) -> None:
        """Register a callback for NOTIFY messages on ``channel``.

        The handler runs at NIC level (after NIC occupancy is charged);
        it must be non-blocking (typically it writes protocol state or
        triggers an event a host process is waiting on).
        """
        if channel in self._notify_handlers:
            raise NetworkError(f"node {self.node_id}: notify channel "
                               f"{channel!r} already registered")
        self._notify_handlers[channel] = handler

    def register_service(self, name: str, handler: Callable) -> None:
        """Register a request/reply service.

        ``handler(payload, src_node)`` must be a *generator function*
        returning ``(reply_payload, reply_body_bytes)``. Each request is
        served by its own spawned process, so a handler may wait
        (deferred replies -- e.g. a barrier manager holding arrivals).
        Services model protocol operations offloaded to the NI, as
        GeNIMA does for synchronization.
        """
        if name in self._services:
            raise NetworkError(f"node {self.node_id}: service {name!r} "
                               "already registered")
        self._services[name] = handler

    def expect_reply(self, req_id: int) -> Event:
        """Create the event a synchronous requester waits on."""
        ev = Event(self.engine, self._reply_name)
        self._pending_replies[req_id] = ev
        return ev

    def abandon_reply(self, req_id: int) -> None:
        self._pending_replies.pop(req_id, None)

    def shun(self, node_id: int, epoch: int = 0) -> None:
        """Tear down connections from a node declared failed.

        Late traffic from a fail-stopped node must never land: a
        deposit it posted just before dying can otherwise arrive
        *after* recovery has rebuilt the target region (observed as a
        dead node's lock-vector slot resurrecting after the recovery
        clear and wedging every later acquirer). ``epoch`` records the
        home-map generation doing the unmapping; re-shunning an
        already-dead source keeps the original (earliest) epoch."""
        self.dead_sources.setdefault(node_id, epoch)

    def shunned_epoch(self, node_id: int) -> Optional[int]:
        """The map epoch under which ``node_id`` was shunned (None if
        it never was)."""
        return self.dead_sources.get(node_id)

    # -- failure injection ---------------------------------------------------

    def fail(self) -> None:
        """Fail-stop this NIC: nothing further is sent or received.

        Messages already on the wire still arrive (they left this NIC);
        messages still in the post queue are lost -- the paper's "no
        guarantee of success for previous operations" case.
        """
        self.alive = False
        self._sender_proc.kill()
        self._receiver_proc.kill()
        for proc in self._service_procs:
            proc.kill()
        self._service_procs.clear()
        self.post_queue.drain()
        self._incoming.drain()
        self._pending_replies.clear()

    # -- internal processes --------------------------------------------------

    def _sender(self):
        # Per-message loop: hoist everything fixed for the NIC's
        # lifetime out of it (params never change after construction).
        # ``get_nowait`` skips the Event allocation whenever a message
        # is already queued; the DMA bus charge is inlined (acquire /
        # hold for the transfer / release) instead of delegating to a
        # per-message generator.
        store = self.post_queue
        get_nowait = store.get_nowait
        get = store.get
        delay_per_msg = self._delay_per_msg
        bus = self.dma_bus
        bandwidth = self.dma_bandwidth
        error_rate = self.params.transient_error_rate
        transfer_time_us = self.params.transfer_time_us
        while True:
            msg = get_nowait()
            if msg is EMPTY:
                msg = yield get()
            yield delay_per_msg
            if bus is not None:
                ev = bus.acquire()
                if not ev._settled:
                    yield ev
                try:
                    # Bare float yield == Delay(float): skips the
                    # Delay allocation on the per-message hot path.
                    yield msg.wire_bytes / bandwidth
                finally:
                    bus.release()
            if error_rate > 0.0 and self.rng.random() < error_rate:
                # VMMC retransmits transparently; only latency is visible.
                yield Delay(self.params.retransmit_penalty_us)
            yield transfer_time_us(msg.wire_bytes)
            self.messages_sent += 1
            self.bytes_sent += msg.wire_bytes
            self.network.transmit(msg)

    def _deliver(self, msg: Message) -> None:
        """Called by the network when a message arrives at this NIC."""
        if not self.alive:
            if msg.completion is not None and not msg.completion.settled:
                msg.completion.fail(RemoteNodeFailure(self.node_id))
            return
        self._incoming.try_put(msg)

    def _receiver(self):
        store = self._incoming
        get_nowait = store.get_nowait
        get = store.get
        delay_per_msg = self._delay_per_msg
        bus = self.dma_bus
        bandwidth = self.dma_bandwidth
        dispatch = self._dispatch
        while True:
            msg = get_nowait()
            if msg is EMPTY:
                msg = yield get()
            yield delay_per_msg
            if bus is not None:
                ev = bus.acquire()
                if not ev._settled:
                    yield ev
                try:
                    # Bare float yield == Delay(float): skips the
                    # Delay allocation on the per-message hot path.
                    yield msg.wire_bytes / bandwidth
                finally:
                    bus.release()
            self.messages_received += 1
            self.bytes_received += msg.wire_bytes
            follow = dispatch(msg)
            if follow is not None:
                yield from follow

    def _dispatch(self, msg: Message):
        """Apply one arrived message; returns a follow-up generator for
        the receiver to drive when the message needs to block (reply
        post into a full queue, generator NOTIFY handler), else None.

        A plain function rather than a generator: most kinds (deposits,
        replies, acks) never block, so the per-message generator
        allocation and delegation frame were pure overhead.
        """
        if msg.src in self.dead_sources:
            # In-flight remnant of a fail-stopped node: the connection
            # was unmapped when its failure was detected.
            self.messages_shunned += 1
            if msg.completion is not None and not msg.completion.settled:
                msg.completion.fail(RemoteNodeFailure(msg.src))
            return None
        if msg.op is not None and self.optrace is not None:
            self.optrace.message_hop("recv", msg, self.node_id,
                                     self.engine.now)
        kind = msg.kind
        if kind is _DEPOSIT:
            region_name, offset, data = msg.payload
            region = self.regions.lookup(region_name)
            region.write(offset, data)
            if region.on_remote_write is not None:
                region.on_remote_write(offset, len(data), msg.src)
            if msg.completion is not None and not msg.completion.settled:
                msg.completion.succeed(None)
            return None
        if kind is _FETCH_REQ:
            region_name, offset, size, req_id = msg.payload
            data = self.regions.lookup(region_name).read(offset, size)
            reply = Message(MessageKind.FETCH_REPLY, self.node_id, msg.src,
                            body_bytes=len(data), payload=(req_id, data),
                            op=msg.op)
            if reply.op is not None and self.optrace is not None:
                self.optrace.message_hop("send", reply, self.node_id,
                                         self.engine.now)
            if self.post_queue.try_put(reply):
                return None
            return self._post_blocking(reply)
        if kind is _FETCH_REPLY:
            req_id, data = msg.payload
            ev = self._pending_replies.pop(req_id, None)
            if ev is not None and not ev.settled:
                ev.succeed(data)
            return None
        if kind is _PROBE:
            req_id = msg.payload
            ack = Message(MessageKind.PROBE_ACK, self.node_id, msg.src,
                          body_bytes=0, payload=req_id)
            if self.post_queue.try_put(ack):
                return None
            return self._post_blocking(ack)
        if kind is _PROBE_ACK:
            req_id = msg.payload
            ev = self._pending_replies.pop(req_id, None)
            if ev is not None and not ev.settled:
                ev.succeed(True)
            return None
        if kind is _SERVICE_REQ:
            service, req_id, body = msg.payload
            handler = self._services.get(service)
            if handler is None:
                raise NetworkError(
                    f"node {self.node_id}: unknown service {service!r}")
            proc = self.engine.spawn(
                self._serve(handler, msg.src, req_id, body,
                            service, msg.op, msg.msg_id),
                f"nic{self.node_id}.svc.{service}")
            self._service_procs.append(proc)
            self._service_procs = [p for p in self._service_procs if p.alive]
            return None
        if kind is _SERVICE_REPLY:
            req_id, body = msg.payload
            ev = self._pending_replies.pop(req_id, None)
            if ev is not None and not ev.settled:
                ev.succeed(body)
            return None
        if kind is _NOTIFY:
            channel, body = msg.payload
            handler = self._notify_handlers.get(channel)
            if handler is None:
                raise NetworkError(
                    f"node {self.node_id}: NOTIFY on unknown channel "
                    f"{channel!r}")
            result = handler(msg)
            if result is not None and hasattr(result, "send"):
                # Generator handler: run it inline at the NIC so its
                # costs serialize with message processing (FIFO apply
                # order is what HLRC diff application requires).
                return self._finish_notify(result, msg)
            if msg.completion is not None and not msg.completion.settled:
                msg.completion.succeed(None)
            return None
        raise NetworkError(f"unknown message kind {kind!r}")

    def _post_blocking(self, reply: Message):
        yield self.post_queue.put(reply)

    def _finish_notify(self, gen, msg: Message):
        yield from gen
        if msg.op is not None and self.optrace is not None:
            # Generator NOTIFY handlers are the diff-apply path: the
            # span from the "recv" hop to here is the apply cost.
            self.optrace.message_hop("applied", msg, self.node_id,
                                     self.engine.now)
        if msg.completion is not None and not msg.completion.settled:
            msg.completion.succeed(None)

    def _serve(self, handler, src: int, req_id: int, body,
               service: str = "?", op: Optional[int] = None,
               req_msg_id: Optional[int] = None):
        tracer = self.optrace if op is not None else None
        if tracer is not None:
            tracer.service_hop(op, "svc_begin", self.node_id,
                               self.engine.now, req_msg_id, service)
        reply_payload, reply_bytes = yield from handler(body, src)
        if tracer is not None:
            tracer.service_hop(op, "svc_end", self.node_id,
                               self.engine.now, req_msg_id, service)
        if not self.alive:
            return
        reply = Message(MessageKind.SERVICE_REPLY, self.node_id, src,
                        body_bytes=reply_bytes,
                        payload=(req_id, reply_payload), op=op)
        if tracer is not None and self.optrace is not None:
            self.optrace.message_hop("send", reply, self.node_id,
                                     self.engine.now)
        yield self.post_queue.put(reply)
