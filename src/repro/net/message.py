"""Network message representation.

Messages are small typed envelopes. Data-carrying kinds (deposits,
fetch replies) hold real bytes; control kinds carry structured payloads.
Sizes on the wire are ``header + body`` so that bandwidth and NIC
occupancy modelling sees realistic message sizes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

#: Bytes of header/envelope per message on the wire.
HEADER_BYTES = 32

_message_ids = itertools.count(1)


class MessageKind:
    """Message kind tags understood by the NIC dispatch table."""

    DEPOSIT = "deposit"          # remote write into an exported region
    FETCH_REQ = "fetch_req"      # read an exported region
    FETCH_REPLY = "fetch_reply"
    PROBE = "probe"              # liveness probe (heart-beat)
    PROBE_ACK = "probe_ack"
    NOTIFY = "notify"            # protocol-level notification (mailbox)
    SERVICE_REQ = "service_req"    # request/reply protocol service
    SERVICE_REPLY = "service_reply"


@dataclass
class Message:
    """One message on the simulated wire."""

    kind: str
    src: int
    dst: int
    body_bytes: int
    payload: Any = None
    #: Optional completion event: succeeds once the message's effect has
    #: been applied at the destination, fails with RemoteNodeFailure if
    #: the destination is (or becomes) dead. Asynchronous senders leave
    #: it None and rely on FIFO ordering plus later synchronous ops.
    completion: Optional[Any] = None
    msg_id: int = field(default_factory=lambda: next(_message_ids))

    @property
    def wire_bytes(self) -> int:
        return HEADER_BYTES + self.body_bytes

    def __repr__(self) -> str:  # compact, for traces
        return (f"<msg#{self.msg_id} {self.kind} {self.src}->{self.dst} "
                f"{self.body_bytes}B>")
