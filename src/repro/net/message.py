"""Network message representation.

Messages are small typed envelopes. Data-carrying kinds (deposits,
fetch replies) hold real bytes; control kinds carry structured payloads.
Sizes on the wire are ``header + body`` so that bandwidth and NIC
occupancy modelling sees realistic message sizes.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

#: Bytes of header/envelope per message on the wire.
HEADER_BYTES = 32

_next_message_id = itertools.count(1).__next__


class MessageKind:
    """Message kind tags understood by the NIC dispatch table."""

    DEPOSIT = "deposit"          # remote write into an exported region
    FETCH_REQ = "fetch_req"      # read an exported region
    FETCH_REPLY = "fetch_reply"
    PROBE = "probe"              # liveness probe (heart-beat)
    PROBE_ACK = "probe_ack"
    NOTIFY = "notify"            # protocol-level notification (mailbox)
    SERVICE_REQ = "service_req"    # request/reply protocol service
    SERVICE_REPLY = "service_reply"


class Message:
    """One message on the simulated wire.

    A ``__slots__`` class rather than a dataclass: messages are the
    highest-volume allocation on the NIC hot loops, and the slot layout
    drops the per-instance ``__dict__``. ``wire_bytes`` is precomputed
    (it is read several times per message: sender serialization,
    receiver occupancy, DMA charge, byte counters) and ``msg_id`` comes
    from a bound counter instead of a ``default_factory`` lambda.
    """

    __slots__ = ("kind", "src", "dst", "body_bytes", "payload",
                 "completion", "msg_id", "wire_bytes", "op")

    def __init__(self, kind: str, src: int, dst: int, body_bytes: int,
                 payload: Any = None,
                 completion: Optional[Any] = None,
                 msg_id: Optional[int] = None,
                 op: Optional[int] = None) -> None:
        self.kind = kind
        self.src = src
        self.dst = dst
        self.body_bytes = body_bytes
        self.payload = payload
        #: Optional completion event: succeeds once the message's effect
        #: has been applied at the destination, fails with
        #: RemoteNodeFailure if the destination is (or becomes) dead.
        #: Asynchronous senders leave it None and rely on FIFO ordering
        #: plus later synchronous ops.
        self.completion = completion
        self.msg_id = _next_message_id() if msg_id is None else msg_id
        self.wire_bytes = HEADER_BYTES + body_bytes
        #: Causal-trace operation id (repro.obs.optrace). None on every
        #: untraced message; the NIC copies it onto replies so one
        #: logical operation's messages share an id across nodes. Rides
        #: inside the modelled 32-byte header -- no wire-size change.
        self.op = op

    def __repr__(self) -> str:  # compact, for traces
        return (f"<msg#{self.msg_id} {self.kind} {self.src}->{self.dst} "
                f"{self.body_bytes}B>")
