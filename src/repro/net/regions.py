"""Exported memory regions for virtual-memory-mapped communication.

VMMC's defining feature (paper section 3.1) is that a sender can deposit
data *directly into a virtual address range of the destination host*
without interrupting the remote processor, and symmetrically fetch from
one. We model an exported address range as a named :class:`MemoryRegion`
registered with the node's NIC; deposits and fetches name a region and
an offset.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.errors import MemoryError_


class MemoryRegion:
    """A contiguous exported byte range backed by a real buffer."""

    def __init__(self, name: str, size: int) -> None:
        if size <= 0:
            raise MemoryError_(f"region {name!r} must have positive size")
        self.name = name
        self.size = size
        self._buf = bytearray(size)
        #: Optional hook invoked after every remote write:
        #: ``on_remote_write(offset, length, src_node)``. Lock algorithms
        #: and barrier managers use this to observe deposits without
        #: polling overhead in the *simulator* (the simulated cost of
        #: polling is still charged by the protocol).
        self.on_remote_write: Optional[Callable[[int, int, int], None]] = None

    def _check(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > self.size:
            raise MemoryError_(
                f"region {self.name!r}: access [{offset}, {offset + length}) "
                f"outside size {self.size}")

    def read(self, offset: int, length: int) -> bytes:
        self._check(offset, length)
        return bytes(self._buf[offset:offset + length])

    def write(self, offset: int, data: bytes) -> None:
        self._check(offset, len(data))
        self._buf[offset:offset + len(data)] = data

    def view(self) -> bytearray:
        """Direct mutable access for the *local* host (no wire involved)."""
        return self._buf

    def read_view(self, offset: int, length: int) -> memoryview:
        """Zero-copy view of ``[offset, offset + length)`` for local use.

        The view aliases the live buffer: callers must either consume it
        before yielding control back to the simulation or copy it (a
        later store would show through the view).
        """
        self._check(offset, length)
        return memoryview(self._buf)[offset:offset + length]

    def write_from(self, offset: int, data) -> None:
        """Like :meth:`write` but accepts any bytes-like object
        (memoryview, bytearray, numpy buffer) without an intermediate
        ``bytes`` copy."""
        length = getattr(data, "nbytes", None)
        if length is None:
            length = len(data)
        self._check(offset, length)
        self._buf[offset:offset + length] = data


class RegionTable:
    """The set of regions a node exports to the network."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self._regions: Dict[str, MemoryRegion] = {}

    def export(self, name: str, size: int) -> MemoryRegion:
        if name in self._regions:
            raise MemoryError_(f"node {self.node_id}: region {name!r} "
                               "already exported")
        region = MemoryRegion(name, size)
        self._regions[name] = region
        return region

    def export_region(self, region: MemoryRegion) -> MemoryRegion:
        if region.name in self._regions:
            raise MemoryError_(f"node {self.node_id}: region "
                               f"{region.name!r} already exported")
        self._regions[region.name] = region
        return region

    def lookup(self, name: str) -> MemoryRegion:
        try:
            return self._regions[name]
        except KeyError:
            raise MemoryError_(
                f"node {self.node_id}: no exported region {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._regions

    def names(self) -> list[str]:
        return sorted(self._regions)
