"""VMMC: the user-level communication API the SVM protocol is built on.

Provides the operations from paper section 3.1:

* :meth:`VMMC.remote_deposit` -- asynchronously write data into an
  exported region of a remote node's memory (no remote host involvement).
* :meth:`VMMC.remote_fetch` -- synchronously read an exported region.
* :meth:`VMMC.notify` -- small control message delivered to a registered
  NIC-level handler (models GeNIMA's use of NI support to avoid
  asynchronous host message handling).
* :meth:`VMMC.probe` -- liveness probe used by the heart-beat failure
  detector of section 4.1.

Synchronous operations embody the paper's failure-detection contract:
while waiting for a response the caller "sends heart-beats" every
timeout period; a dead peer surfaces as :class:`RemoteNodeFailure`.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.config import CostModel
from repro.errors import RemoteNodeFailure
from repro.net.message import Message, MessageKind
from repro.net.nic import NIC
from repro.sim import Engine, Event, timeout_wait


class VMMC:
    """Per-node communication endpoint."""

    def __init__(self, engine: Engine, nic: NIC, costs: CostModel) -> None:
        self.engine = engine
        self.nic = nic
        self.costs = costs
        self._req_ids = itertools.count(1)
        #: Failure-detector memory: nodes this endpoint has seen fail.
        self.known_dead: set[int] = set()

    @property
    def node_id(self) -> int:
        return self.nic.node_id

    def _check_peer(self, dst: int) -> None:
        if dst in self.known_dead:
            raise RemoteNodeFailure(dst, "previously detected")

    def _trace_send(self, msg: Message) -> None:
        """Record a causal-trace send hop for a stamped message.

        Callers gate on ``msg.op is not None`` so the untraced hot path
        pays one slot load + comparison and nothing else.
        """
        tracer = self.nic.optrace
        if tracer is not None:
            tracer.message_hop("send", msg, self.node_id, self.engine.now)

    # -- data movement -----------------------------------------------------

    def remote_deposit(self, dst: int, region: str, offset: int,
                       data: bytes, wait: bool = False,
                       op: Optional[int] = None):
        """Deposit ``data`` at ``region[offset]`` on node ``dst``.

        Generator. With ``wait=False`` (the common case -- GeNIMA sends
        diffs with asynchronous remote deposits) it returns as soon as
        the message is posted; FIFO ordering to the same destination is
        guaranteed by the NIC. With ``wait=True`` it returns once the
        data is in remote memory and raises :class:`RemoteNodeFailure`
        if the peer is dead.
        """
        self._check_peer(dst)
        completion: Optional[Event] = None
        if wait:
            completion = Event(self.engine, "deposit.wait")
        msg = Message(MessageKind.DEPOSIT, self.node_id, dst,
                      body_bytes=len(data),
                      payload=(region, offset, bytes(data)),
                      completion=completion, op=op)
        if op is not None:
            self._trace_send(msg)
        nic = self.nic
        yield nic.post_charge()
        park = nic.post_enqueue(msg)
        if park is not None:
            yield park
        if completion is not None:
            yield from self._await_response(dst, completion)
        return None

    def remote_fetch(self, dst: int, region: str, offset: int, size: int,
                     op: Optional[int] = None):
        """Fetch ``size`` bytes from ``region[offset]`` on node ``dst``.

        Generator returning the bytes. Raises :class:`RemoteNodeFailure`
        if the peer is dead (detected via the heart-beat mechanism).
        """
        self._check_peer(dst)
        req_id = next(self._req_ids)
        reply = self.nic.expect_reply(req_id)
        msg = Message(MessageKind.FETCH_REQ, self.node_id, dst,
                      body_bytes=self.nic.params.control_message_bytes,
                      payload=(region, offset, size, req_id),
                      completion=reply, op=op)
        if op is not None:
            self._trace_send(msg)
        nic = self.nic
        yield nic.post_charge()
        park = nic.post_enqueue(msg)
        if park is not None:
            yield park
        try:
            data = yield from self._await_response(dst, reply)
        finally:
            self.nic.abandon_reply(req_id)
        return data

    def notify(self, dst: int, channel: str, body: object,
               body_bytes: Optional[int] = None, wait: bool = False,
               op: Optional[int] = None):
        """Send a small control message to a NIC-level handler on ``dst``."""
        self._check_peer(dst)
        completion: Optional[Event] = None
        if wait:
            completion = Event(self.engine, "notify.wait")
        size = (body_bytes if body_bytes is not None
                else self.nic.params.control_message_bytes)
        msg = Message(MessageKind.NOTIFY, self.node_id, dst,
                      body_bytes=size, payload=(channel, body),
                      completion=completion, op=op)
        if op is not None:
            self._trace_send(msg)
        nic = self.nic
        yield nic.post_charge()
        park = nic.post_enqueue(msg)
        if park is not None:
            yield park
        if completion is not None:
            yield from self._await_response(dst, completion)
        return None

    def call(self, dst: int, service: str, body: object,
             request_bytes: Optional[int] = None,
             op: Optional[int] = None):
        """Synchronous request/reply against a registered remote service.

        Generator returning the reply payload. Heart-beat failure
        detection applies while waiting, as for fetches.
        """
        self._check_peer(dst)
        req_id = next(self._req_ids)
        reply = self.nic.expect_reply(req_id)
        size = (request_bytes if request_bytes is not None
                else self.nic.params.control_message_bytes)
        msg = Message(MessageKind.SERVICE_REQ, self.node_id, dst,
                      body_bytes=size, payload=(service, req_id, body),
                      completion=reply, op=op)
        if op is not None:
            self._trace_send(msg)
        nic = self.nic
        yield nic.post_charge()
        park = nic.post_enqueue(msg)
        if park is not None:
            yield park
        try:
            result = yield from self._await_response(dst, reply)
        finally:
            self.nic.abandon_reply(req_id)
        return result

    # -- failure detection ---------------------------------------------------

    def probe(self, dst: int):
        """Liveness probe: generator returning True (alive) or False.

        A dead destination fails the probe's completion event at the
        fabric, so a probe resolves in one round trip either way; a peer
        that is alive but slow is retried until the fabric answers.
        """
        if dst == self.node_id:
            return True  # probing ourselves: trivially alive
        if dst in self.known_dead:
            return False
        req_id = next(self._req_ids)
        reply = self.nic.expect_reply(req_id)
        msg = Message(MessageKind.PROBE, self.node_id, dst,
                      body_bytes=0, payload=req_id, completion=reply)
        nic = self.nic
        yield nic.post_charge()
        park = nic.post_enqueue(msg)
        if park is not None:
            yield park
        try:
            ok, _value = yield from timeout_wait(
                self.engine, reply, self.costs.heartbeat_timeout_us * 4)
        except RemoteNodeFailure:
            # The fabric failed the probe: destination is down.
            self.known_dead.add(dst)
            return False
        finally:
            self.nic.abandon_reply(req_id)
        if not ok:
            # No answer and no explicit failure: treat as dead (the
            # network cannot partition, per the paper's assumptions).
            self.known_dead.add(dst)
            return False
        return True

    def _await_response(self, dst: int, event: Event):
        """Wait on ``event``, probing ``dst`` each heart-beat timeout.

        Returns the event value; raises RemoteNodeFailure if the peer
        dies first. The body open-codes
        :func:`~repro.sim.timeout_wait` (same settling order) so each
        wait round costs one Event instead of a delegated generator --
        this is the innermost suspension of every synchronous remote
        operation.
        """
        engine = self.engine
        timeout = self.costs.heartbeat_timeout_us
        while True:
            if event._settled:
                if event._ok:
                    return event._value
                exc = event._value
                if isinstance(exc, RemoteNodeFailure):
                    self.known_dead.add(dst)
                raise exc
            combined = Event(engine, "timeout_wait")

            def on_timer(combined=combined) -> None:
                if not combined._settled:
                    combined.succeed((1, None))

            handle = engine.schedule(timeout, on_timer)

            def on_event(ev: Event, combined=combined) -> None:
                if combined._settled:
                    return
                if ev.failed:
                    combined.fail(ev.value)
                else:
                    combined.succeed((0, ev.value))

            event.add_callback(on_event)
            try:
                index, value = yield combined
            except RemoteNodeFailure:
                self.known_dead.add(dst)
                raise
            if index == 0:
                handle[3] = None  # cancel the timer's scheduler entry
                return value
            alive = yield from self.probe(dst)
            if not alive:
                self.known_dead.add(dst)
                raise RemoteNodeFailure(dst, "heart-beat timeout")
