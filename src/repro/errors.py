"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures without catching programming errors.
Simulation-internal control-flow exceptions (process kill/interrupt) are
deliberately *not* part of this hierarchy: they must never be swallowed
by application-level ``except ReproError`` handlers.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """A discrete-event simulation invariant was violated."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class NetworkError(ReproError):
    """Base class for communication-layer failures."""


class RemoteNodeFailure(NetworkError):
    """A communication operation failed because the peer node is down.

    Mirrors the VMMC contract from the paper (section 4.1): once an
    operation to a node returns this error, every subsequent operation to
    that node is also guaranteed to fail with it.
    """

    def __init__(self, node_id: int, detail: str = "") -> None:
        self.node_id = node_id
        msg = f"remote node {node_id} has failed"
        if detail:
            msg = f"{msg}: {detail}"
        super().__init__(msg)


class MemoryError_(ReproError):
    """A paged-memory invariant was violated (bad address, bad state)."""


class ProtectionFault(MemoryError_):
    """An access hit a page whose protection does not allow it.

    This is the software analogue of a hardware page fault; the SVM
    protocol catches it and runs its fault handler. Application code
    never sees it.
    """

    def __init__(self, page_id: int, access: str) -> None:
        self.page_id = page_id
        self.access = access
        super().__init__(f"protection fault: {access} access to page {page_id}")


class ProtocolError(ReproError):
    """The SVM protocol reached an inconsistent state."""


class RecoveryError(ProtocolError):
    """Recovery could not restore a consistent system state."""


class UnrecoverableFailure(RecoveryError):
    """A failure occurred that the protocol cannot tolerate.

    Raised, for example, when a second node fails while recovery from a
    first failure is still in progress (the paper tolerates multiple
    failures only if they are not simultaneous), or when a node fails
    while running the non-fault-tolerant base protocol.
    """


class ApplicationError(ReproError):
    """An application kernel produced an incorrect or impossible result."""
