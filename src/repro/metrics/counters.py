"""Event counters for protocol diagnostics and the paper's in-text claims.

Section 5.3 backs its analysis with counts: pages diffed and the share
that are home pages, checkpoints taken, average stack size, page
faults, lock acquires. One :class:`NodeCounters` per node collects
these; :class:`RunCounters` aggregates a whole run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Iterable


@dataclass
class NodeCounters:
    """Protocol event counts at one node."""

    releases: int = 0
    acquires: int = 0
    barriers: int = 0
    lock_acquires: int = 0
    lock_retries: int = 0
    page_faults: int = 0
    read_faults: int = 0
    write_faults: int = 0
    remote_page_fetches: int = 0
    local_page_fetches: int = 0
    twins_created: int = 0
    pages_diffed: int = 0
    home_pages_diffed: int = 0
    diff_bytes_sent: int = 0
    diff_messages: int = 0
    invalidations: int = 0
    write_notices: int = 0
    checkpoints: int = 0
    checkpoint_bytes: int = 0
    page_lock_stalls: int = 0
    release_serialization_stalls: int = 0
    intervals_trimmed: int = 0

    def add(self, other: "NodeCounters") -> None:
        for f in fields(self):
            setattr(self, f.name,
                    getattr(self, f.name) + getattr(other, f.name))


@dataclass
class RunCounters:
    """Whole-run aggregate plus derived ratios used by the paper."""

    total: NodeCounters = field(default_factory=NodeCounters)

    @classmethod
    def aggregate(cls, per_node: Iterable[NodeCounters]) -> "RunCounters":
        run = cls()
        for counters in per_node:
            run.total.add(counters)
        return run

    @property
    def home_diff_fraction(self) -> float:
        """Share of diffed pages that were the diffing node's own home
        pages -- the paper reports >99% for WaterSpatialFL, ~25% for
        WaterNsquared, ~12% for RadixLocal."""
        if self.total.pages_diffed == 0:
            return 0.0
        return self.total.home_pages_diffed / self.total.pages_diffed

    @property
    def mean_checkpoint_bytes(self) -> float:
        if self.total.checkpoints == 0:
            return 0.0
        return self.total.checkpoint_bytes / self.total.checkpoints
