"""Execution-time breakdown accounting.

The paper reports two breakdown formats (section 5.3):

* four components: compute, data wait, lock, barrier (Figs 7, 9);
* six components: compute, data wait, synchronization (= lock+barrier),
  diffs, protocol processing, checkpointing (Figs 8, 10).

The two formats attribute nested work differently. Diff propagation at
a barrier is *barrier time* in the four-way format (which is why the
paper's Fig 9 shows LU's replication cost as an 86% barrier-time blow-
up) but *diff time* in the six-way format. We therefore account time on
a **category stack**: at any instant a thread has an innermost (fine)
category and an application-visible outermost (coarse) one, and every
elapsed instant is charged to both views. Both views always sum to
elapsed time.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from typing import Dict, Iterable

from repro.errors import SimulationError
from repro.sim import Engine


class Category(enum.Enum):
    """Primitive time categories (superset of the paper's components)."""

    COMPUTE = "compute"
    DATA_WAIT = "data_wait"       # page-fault handling incl. remote fetch
    LOCK = "lock"                 # everything inside acquire/release ops
    BARRIER = "barrier"           # everything inside barrier ops
    DIFF = "diff"                 # diff computation + propagation
    CHECKPOINT = "checkpoint"     # thread-state checkpointing
    PROTOCOL = "protocol"         # remaining protocol processing


class ThreadClock:
    """Two-level exclusive time accounting for one thread.

    The protocol *pushes* a category when entering an operation and
    *pops* it when leaving; :meth:`in_category` wraps a generator with a
    push/pop pair. The bottom of the stack is always COMPUTE.

    * fine totals: time charged to the top-of-stack category;
    * coarse totals: time charged to the first non-COMPUTE entry from
      the bottom (the operation the application called), or COMPUTE.
    """

    def __init__(self, engine: Engine) -> None:
        self._engine = engine
        self._stack: list[Category] = [Category.COMPUTE]
        self._mark = engine.now
        self._stopped = False
        self.fine: Dict[Category, float] = defaultdict(float)
        self.coarse: Dict[Category, float] = defaultdict(float)

    @property
    def current(self) -> Category:
        return self._stack[-1]

    def _coarse_category(self) -> Category:
        for cat in self._stack:
            if cat is not Category.COMPUTE:
                return cat
        return Category.COMPUTE

    def _flush(self) -> None:
        now = self._engine.now
        elapsed = now - self._mark
        if elapsed:
            self.fine[self._stack[-1]] += elapsed
            self.coarse[self._coarse_category()] += elapsed
        self._mark = now

    def push(self, category: Category) -> None:
        if self._stopped:
            return
        self._flush()
        self._stack.append(category)

    def pop(self, category: Category) -> None:
        if self._stopped:
            return
        if len(self._stack) == 1:
            raise SimulationError("clock pop with empty category stack")
        if self._stack[-1] is not category:
            raise SimulationError(
                f"clock pop mismatch: expected {self._stack[-1]}, "
                f"got {category}")
        self._flush()
        self._stack.pop()

    def in_category(self, category: Category, op):
        """Generator wrapper charging ``op``'s elapsed time to ``category``."""
        self.push(category)
        try:
            result = yield from op
        finally:
            self.pop(category)
        return result

    def stop(self) -> None:
        """Flush and freeze (thread finished or died)."""
        if not self._stopped:
            self._flush()
            self._stopped = True

    def reset(self) -> None:
        """Zero all totals and restart accounting from the current time
        (used when the timed region of a run begins)."""
        self.fine.clear()
        self.coarse.clear()
        self._mark = self._engine.now
        self._stopped = False

    def restart(self) -> None:
        """Resume accounting after a thread migration: keep the totals,
        reset the category stack (the old stack died with the node) and
        skip the downtime between failure and resumption."""
        self._stack = [Category.COMPUTE]
        self._mark = self._engine.now
        self._stopped = False

    def elapsed(self) -> float:
        return sum(self.fine.values())


class Breakdown:
    """Aggregated totals exposing the paper's two report formats."""

    def __init__(self, fine: Dict[Category, float],
                 coarse: Dict[Category, float]) -> None:
        self.fine = {cat: fine.get(cat, 0.0) for cat in Category}
        self.coarse = {cat: coarse.get(cat, 0.0) for cat in Category}

    @classmethod
    def merge(cls, clocks: Iterable[ThreadClock]) -> "Breakdown":
        """Mean per-thread breakdown across concurrent SPMD threads.

        Threads run in parallel, so summing would double-count wall
        time; the mean matches the paper's per-application bars.
        """
        clocks = list(clocks)
        fine: Dict[Category, float] = defaultdict(float)
        coarse: Dict[Category, float] = defaultdict(float)
        for clock in clocks:
            for cat, value in clock.fine.items():
                fine[cat] += value
            for cat, value in clock.coarse.items():
                coarse[cat] += value
        n = max(len(clocks), 1)
        return cls({c: v / n for c, v in fine.items()},
                   {c: v / n for c, v in coarse.items()})

    @property
    def total(self) -> float:
        return sum(self.fine.values())

    def four_component(self) -> Dict[str, float]:
        """compute / data wait / lock / barrier (paper Figs 7 and 9).

        Uses the coarse view: nested diff/checkpoint/protocol work is
        attributed to the synchronization or fault operation that the
        application was executing.
        """
        out = {
            "compute": self.coarse[Category.COMPUTE],
            "data_wait": self.coarse[Category.DATA_WAIT],
            "lock": self.coarse[Category.LOCK],
            "barrier": self.coarse[Category.BARRIER],
        }
        # Anything charged coarsely to a protocol-side category means an
        # operation ran outside any app-visible op; keep it visible.
        residual = (self.coarse[Category.DIFF]
                    + self.coarse[Category.CHECKPOINT]
                    + self.coarse[Category.PROTOCOL])
        if residual:
            out["other"] = residual
        return out

    def six_component(self) -> Dict[str, float]:
        """compute / data wait / sync / diffs / protocol / checkpointing
        (paper Figs 8 and 10), from the fine view."""
        return {
            "compute": self.fine[Category.COMPUTE],
            "data_wait": self.fine[Category.DATA_WAIT],
            "synchronization": (self.fine[Category.LOCK]
                                + self.fine[Category.BARRIER]),
            "diffs": self.fine[Category.DIFF],
            "protocol": self.fine[Category.PROTOCOL],
            "checkpointing": self.fine[Category.CHECKPOINT],
        }
