"""Plain-text report tables in the spirit of the paper's figures."""

from __future__ import annotations

from typing import Dict, Mapping, Sequence


def format_breakdown_table(title: str,
                           rows: Mapping[str, Mapping[str, float]],
                           components: Sequence[str],
                           unit: str = "us") -> str:
    """Render one breakdown table.

    ``rows`` maps a row label (e.g. "FFT/base") to a component->time
    mapping; components missing from a row print as 0.
    """
    label_w = max([len(label) for label in rows] + [len("run")]) + 2
    col_w = max([len(c) for c in components] + [12]) + 2
    lines = [title, "=" * len(title)]
    header = "run".ljust(label_w) + "".join(
        c.rjust(col_w) for c in components) + "total".rjust(col_w)
    lines.append(header)
    lines.append("-" * len(header))
    for label, comps in rows.items():
        total = sum(comps.get(c, 0.0) for c in components)
        cells = "".join(
            f"{comps.get(c, 0.0):>{col_w}.1f}" for c in components)
        lines.append(label.ljust(label_w) + cells + f"{total:>{col_w}.1f}")
    lines.append(f"(times in {unit})")
    return "\n".join(lines)


def format_overhead_table(title: str,
                          base: Mapping[str, float],
                          extended: Mapping[str, float]) -> str:
    """Base-vs-extended totals with percentage overheads per row."""
    lines = [title, "=" * len(title)]
    lines.append(f"{'app':<18}{'base':>14}{'extended':>14}{'overhead':>12}")
    lines.append("-" * 58)
    for app in base:
        b = base[app]
        e = extended.get(app, float('nan'))
        pct = (e / b - 1.0) * 100.0 if b else float("nan")
        lines.append(f"{app:<18}{b:>14.1f}{e:>14.1f}{pct:>11.1f}%")
    return "\n".join(lines)


def overhead_percent(base_total: float, extended_total: float) -> float:
    """Extended-over-base overhead in percent."""
    if base_total <= 0:
        return float("nan")
    return (extended_total / base_total - 1.0) * 100.0
