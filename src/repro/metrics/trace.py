"""Protocol event tracing.

Subscribes to the cluster's hook bus and records a bounded, structured
event log: releases, diff phases, checkpoints, barriers, lock traffic,
failures and recovery stages. Useful for debugging protocol behaviour
and for asserting event *orderings* in tests (e.g. "point B always
precedes the lock handover of the same release").
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterable, List, Optional, Tuple

from repro.cluster import Hooks

#: Hooks captured by default (all protocol-level hook points).
DEFAULT_EVENTS = (
    Hooks.RELEASE_START,
    Hooks.RELEASE_COMMITTED,
    Hooks.DIFF_PHASE1_DONE,
    Hooks.DIFF_PHASE2_START,
    Hooks.DIFF_PHASE2_DONE,
    Hooks.RELEASE_DONE,
    Hooks.CHECKPOINT_A,
    Hooks.CHECKPOINT_B,
    Hooks.BARRIER_ENTER,
    Hooks.BARRIER_EXIT,
    Hooks.LOCK_ACQUIRED,
    Hooks.LOCK_RELEASED,
    Hooks.PAGE_FAULT,
    Hooks.FAILURE_DETECTED,
    Hooks.RECOVERY_START,
    Hooks.RECOVERY_DONE,
    Hooks.THREAD_RESUMED,
)

#: Everything, including the dense per-diff / per-checkpoint events --
#: what ``repro replay`` records so a bisection can step between
#: individual diff sends, applies, checkpoint stores and home remaps --
#: plus the span-begin hooks the flight recorder turns into duration
#: slices (lock wait, page-fault service, diff phase 1, checkpoints).
FULL_EVENTS = DEFAULT_EVENTS + (
    Hooks.DIFF_SEND,
    Hooks.DIFF_APPLY,
    Hooks.HOME_REMAP,
    Hooks.RECOVERY_RECONCILE,
    Hooks.CHECKPOINT_STORED,
    Hooks.ACQUIRE_START,
    Hooks.PAGE_FAULT_DONE,
    Hooks.DIFF_PHASE1_START,
    Hooks.CHECKPOINT_A_START,
    Hooks.CHECKPOINT_B_START,
    Hooks.REREPLICATE_START,
    Hooks.REREPLICATE_DONE,
)


def _jsonable(value):
    """Best-effort JSON projection of hook payload values (blobs are
    summarized -- replay needs event identity and timing, not bytes)."""
    if isinstance(value, (bytes, bytearray, memoryview)):
        return {"__bytes__": len(value)}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


@dataclass(frozen=True)
class TraceEvent:
    """One recorded protocol event."""

    time_us: float
    event: str
    node: int
    info: dict

    def __str__(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in sorted(self.info.items())
                          if not isinstance(v, (list, dict)))
        return f"{self.time_us:12.2f}  {self.event:20s} node={self.node} " \
               f"{extras}"


class ProtocolTrace:
    """Bounded recorder of protocol hook events.

    Attach before the run::

        trace = ProtocolTrace(runtime.cluster, capacity=10_000)
        runtime.run()
        for ev in trace.select(Hooks.RECOVERY_DONE):
            print(ev)
    """

    def __init__(self, cluster, events: Iterable[str] = DEFAULT_EVENTS,
                 capacity: int = 100_000) -> None:
        self.cluster = cluster
        self.capacity = capacity
        self.dropped = 0
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self._subscribed: List[str] = list(events)
        for name in self._subscribed:
            cluster.hooks.on(name, self._make_recorder(name))

    def _make_recorder(self, name: str):
        def record(node_id: int, **info) -> None:
            if len(self._events) == self.capacity:
                self.dropped += 1
            self._events.append(TraceEvent(
                self.cluster.engine.now, name, node_id, info))
        return record

    def __len__(self) -> int:
        return len(self._events)

    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def select(self, event: str, node: Optional[int] = None
               ) -> List[TraceEvent]:
        return [ev for ev in self._events
                if ev.event == event
                and (node is None or ev.node == node)]

    def between(self, start_us: float, end_us: float) -> List[TraceEvent]:
        return [ev for ev in self._events
                if start_us <= ev.time_us <= end_us]

    def first(self, event: str) -> Optional[TraceEvent]:
        for ev in self._events:
            if ev.event == event:
                return ev
        return None

    def assert_ordering(self, earlier: str, later: str,
                        node: Optional[int] = None) -> None:
        """Raise AssertionError unless every ``later`` event on a node
        is preceded by at least as many ``earlier`` events there.

        Captures happened-before protocol invariants, e.g. every
        DIFF_PHASE2_START must follow a DIFF_PHASE1_DONE of the same
        node (point B before the committed-copy update).

        A trace that overflowed its capacity has lost its oldest
        events, so counting-based ordering claims are meaningless on
        it; that failure mode is loud, not silent."""
        if self.dropped:
            raise AssertionError(
                f"trace dropped {self.dropped} event(s) (capacity "
                f"{self.capacity}); ordering assertions are unreliable "
                f"on a truncated log -- raise the capacity")
        counts: dict = {}
        for ev in self._events:
            if node is not None and ev.node != node:
                continue
            slot = counts.setdefault(ev.node, [0, 0])
            if ev.event == earlier:
                slot[0] += 1
            elif ev.event == later:
                slot[1] += 1
                if slot[1] > slot[0]:
                    raise AssertionError(
                        f"node {ev.node}: {later!r} #{slot[1]} at "
                        f"{ev.time_us:.1f}us has no preceding "
                        f"{earlier!r}")

    def dump(self, limit: int = 100) -> str:
        lines = [str(ev) for ev in list(self._events)[-limit:]]
        if self.dropped:
            lines.insert(0, f"... {self.dropped} earlier events dropped")
        return "\n".join(lines)

    # -- structured persistence (the ``repro replay`` format) -----------

    def export_jsonl(self, path, header: Optional[dict] = None) -> int:
        """Write the trace as JSON lines: one header object
        (``{"header": {...}}``) followed by one event per line.
        Returns the number of events written.

        Deque eviction is not silent: the header always carries a
        ``dropped_events`` count so a consumer (``load_jsonl``, replay,
        ordering checks) can tell a complete log from a truncated one.
        """
        count = 0
        merged = dict(_jsonable(header)) if header is not None else {}
        merged["dropped_events"] = self.dropped
        with open(path, "w") as fh:
            fh.write(json.dumps({"header": merged}) + "\n")
            for ev in self._events:
                fh.write(json.dumps({
                    "t": ev.time_us, "event": ev.event, "node": ev.node,
                    "info": _jsonable(ev.info)}) + "\n")
                count += 1
        return count


def load_jsonl(path) -> Tuple[Optional[dict], List[TraceEvent]]:
    """Read a trace written by :meth:`ProtocolTrace.export_jsonl`.
    Returns ``(header, events)``; header is None if absent."""
    header: Optional[dict] = None
    events: List[TraceEvent] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            if "header" in obj:
                header = obj["header"]
            elif "event" in obj:
                events.append(TraceEvent(
                    time_us=obj["t"], event=obj["event"],
                    node=obj["node"], info=obj.get("info", {})))
    return header, events
