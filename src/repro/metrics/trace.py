"""Protocol event tracing.

Subscribes to the cluster's hook bus and records a bounded, structured
event log: releases, diff phases, checkpoints, barriers, lock traffic,
failures and recovery stages. Useful for debugging protocol behaviour
and for asserting event *orderings* in tests (e.g. "point B always
precedes the lock handover of the same release").
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterable, List, Optional

from repro.cluster import Hooks

#: Hooks captured by default (all protocol-level hook points).
DEFAULT_EVENTS = (
    Hooks.RELEASE_START,
    Hooks.RELEASE_COMMITTED,
    Hooks.DIFF_PHASE1_DONE,
    Hooks.DIFF_PHASE2_START,
    Hooks.DIFF_PHASE2_DONE,
    Hooks.RELEASE_DONE,
    Hooks.CHECKPOINT_A,
    Hooks.CHECKPOINT_B,
    Hooks.BARRIER_ENTER,
    Hooks.BARRIER_EXIT,
    Hooks.LOCK_ACQUIRED,
    Hooks.LOCK_RELEASED,
    Hooks.PAGE_FAULT,
    Hooks.FAILURE_DETECTED,
    Hooks.RECOVERY_START,
    Hooks.RECOVERY_DONE,
    Hooks.THREAD_RESUMED,
)


@dataclass(frozen=True)
class TraceEvent:
    """One recorded protocol event."""

    time_us: float
    event: str
    node: int
    info: dict

    def __str__(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in sorted(self.info.items())
                          if not isinstance(v, (list, dict)))
        return f"{self.time_us:12.2f}  {self.event:20s} node={self.node} " \
               f"{extras}"


class ProtocolTrace:
    """Bounded recorder of protocol hook events.

    Attach before the run::

        trace = ProtocolTrace(runtime.cluster, capacity=10_000)
        runtime.run()
        for ev in trace.select(Hooks.RECOVERY_DONE):
            print(ev)
    """

    def __init__(self, cluster, events: Iterable[str] = DEFAULT_EVENTS,
                 capacity: int = 100_000) -> None:
        self.cluster = cluster
        self.capacity = capacity
        self.dropped = 0
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self._subscribed: List[str] = list(events)
        for name in self._subscribed:
            cluster.hooks.on(name, self._make_recorder(name))

    def _make_recorder(self, name: str):
        def record(node_id: int, **info) -> None:
            if len(self._events) == self.capacity:
                self.dropped += 1
            self._events.append(TraceEvent(
                self.cluster.engine.now, name, node_id, info))
        return record

    def __len__(self) -> int:
        return len(self._events)

    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def select(self, event: str, node: Optional[int] = None
               ) -> List[TraceEvent]:
        return [ev for ev in self._events
                if ev.event == event
                and (node is None or ev.node == node)]

    def between(self, start_us: float, end_us: float) -> List[TraceEvent]:
        return [ev for ev in self._events
                if start_us <= ev.time_us <= end_us]

    def first(self, event: str) -> Optional[TraceEvent]:
        for ev in self._events:
            if ev.event == event:
                return ev
        return None

    def assert_ordering(self, earlier: str, later: str,
                        node: Optional[int] = None) -> None:
        """Raise AssertionError unless every ``later`` event on a node
        is preceded by at least as many ``earlier`` events there.

        Captures happened-before protocol invariants, e.g. every
        DIFF_PHASE2_START must follow a DIFF_PHASE1_DONE of the same
        node (point B before the committed-copy update)."""
        counts: dict = {}
        for ev in self._events:
            if node is not None and ev.node != node:
                continue
            slot = counts.setdefault(ev.node, [0, 0])
            if ev.event == earlier:
                slot[0] += 1
            elif ev.event == later:
                slot[1] += 1
                if slot[1] > slot[0]:
                    raise AssertionError(
                        f"node {ev.node}: {later!r} #{slot[1]} at "
                        f"{ev.time_us:.1f}us has no preceding "
                        f"{earlier!r}")

    def dump(self, limit: int = 100) -> str:
        lines = [str(ev) for ev in list(self._events)[-limit:]]
        if self.dropped:
            lines.insert(0, f"... {self.dropped} earlier events dropped")
        return "\n".join(lines)
