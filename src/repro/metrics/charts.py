"""Text-mode stacked bar charts.

The paper's Figures 7-10 are stacked horizontal bars (one per
application x protocol); this renders the regenerated data in the same
visual shape for terminals and result files.
"""

from __future__ import annotations

from typing import Mapping, Sequence

#: Fill characters assigned to components in order.
FILLS = "#=%+:.~o*"


def stacked_bars(title: str,
                 rows: Mapping[str, Mapping[str, float]],
                 components: Sequence[str],
                 width: int = 60) -> str:
    """Render rows of stacked horizontal bars.

    Each row label maps to component->value; bars share one scale
    (the largest row total spans ``width`` characters). A legend maps
    fill characters to component names.
    """
    if not rows:
        return title + "\n(no data)"
    if len(components) > len(FILLS):
        raise ValueError(f"too many components (max {len(FILLS)})")
    totals = {label: sum(comps.get(c, 0.0) for c in components)
              for label, comps in rows.items()}
    peak = max(totals.values()) or 1.0
    label_w = max(len(label) for label in rows) + 2

    lines = [title, "=" * len(title)]
    legend = "  ".join(f"{FILLS[i]} {name}"
                       for i, name in enumerate(components))
    lines.append(legend)
    lines.append("")
    for label, comps in rows.items():
        bar = []
        # Largest-remainder rounding so the bar length matches the
        # row's share of the scale.
        scaled = [(comps.get(c, 0.0) / peak) * width for c in components]
        cells = [int(v) for v in scaled]
        remainder = int(round(sum(scaled))) - sum(cells)
        fractional = sorted(range(len(components)),
                            key=lambda i: scaled[i] - cells[i],
                            reverse=True)
        for i in fractional[:max(remainder, 0)]:
            cells[i] += 1
        for i, count in enumerate(cells):
            bar.append(FILLS[i] * count)
        lines.append(f"{label:<{label_w}}|{''.join(bar)}"
                     f"  {totals[label]:.0f}")
    return "\n".join(lines)


def overhead_bars(title: str, overheads: Mapping[str, float],
                  width: int = 50) -> str:
    """Render one bar per app for percentage overheads."""
    if not overheads:
        return title + "\n(no data)"
    peak = max(max(overheads.values()), 1.0)
    label_w = max(len(label) for label in overheads) + 2
    lines = [title, "=" * len(title)]
    for label, pct in overheads.items():
        filled = int(round(pct / peak * width))
        lines.append(f"{label:<{label_w}}|{'#' * filled} {pct:.1f}%")
    return "\n".join(lines)


#: Eight-level block ramp used by the sparkline panel.
SPARKS = " .:-=+*#"


def _si(value: float) -> str:
    """Compact magnitude formatting for gauge peaks: ``871``,
    ``12.3k``, ``4.56M`` -- never raw ``1.5e+06`` scientific notation
    and never more than ~5 characters of digits."""
    if value >= 1e6:
        return f"{value / 1e6:.3g}M"
    if value >= 1e3:
        return f"{value / 1e3:.3g}k"
    if value >= 100 or float(value).is_integer():
        return f"{value:.0f}"
    return f"{value:.3g}"


def timeseries_panel(title: str,
                     times_us: Sequence[float],
                     series: Mapping[str, Sequence[float]],
                     width: int = 64,
                     unit: str = "") -> str:
    """Render sampled time series as aligned text sparklines.

    One row per series (insertion order): the values are bucketed onto
    the columns of the shared time axis and drawn with an 8-level
    density ramp, with the series peak printed at the row end
    (``unit``-suffixed, SI-compacted so wide counters stay narrow).
    ``width`` caps the sparkline column count, but every row is also
    clamped to the current terminal width (``COLUMNS`` honored) so
    panels never wrap in narrow CI logs. Consumes the columnar output
    of :class:`repro.obs.timeseries.TimeSeriesSampler` (``totals()`` /
    ``rates()``) but accepts any label -> values mapping.
    """
    if not times_us or not series:
        return title + "\n(no samples)"
    t_lo, t_hi = times_us[0], times_us[-1]
    span = (t_hi - t_lo) or 1.0
    label_w = max(len(label) for label in series) + 2
    # Clamp the sparkline to what the terminal can hold: label, two
    # pipes, the " peak 00.0M<unit>" suffix, one spare column.
    import shutil
    columns = shutil.get_terminal_size((80, 24)).columns
    suffix_w = len(" peak ") + 5 + len(unit)
    width = max(8, min(width, columns - label_w - suffix_w - 3))
    lines = [title, "=" * len(title)]
    for label, values in series.items():
        values = list(values)[:len(times_us)]
        buckets = [[] for _ in range(width)]
        for t, v in zip(times_us, values):
            col = min(int((t - t_lo) / span * width), width - 1)
            buckets[col].append(v)
        peak = max(values) if values else 0.0
        row = []
        for bucket in buckets:
            if not bucket:
                row.append(" ")
                continue
            level = (0 if peak <= 0 else
                     int(max(bucket) / peak * (len(SPARKS) - 1)))
            row.append(SPARKS[level])
        lines.append(f"{label:<{label_w}}|{''.join(row)}| "
                     f"peak {_si(peak)}{unit}")
    axis_lo, axis_hi = f"{t_lo / 1000:.1f}ms", f"{t_hi / 1000:.1f}ms"
    pad = max(width - len(axis_lo) - len(axis_hi) + 2, 0)
    lines.append(f"{'':<{label_w}} {axis_lo}{'':>{pad}}{axis_hi}")
    return "\n".join(lines)
