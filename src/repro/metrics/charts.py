"""Text-mode stacked bar charts.

The paper's Figures 7-10 are stacked horizontal bars (one per
application x protocol); this renders the regenerated data in the same
visual shape for terminals and result files.
"""

from __future__ import annotations

from typing import Mapping, Sequence

#: Fill characters assigned to components in order.
FILLS = "#=%+:.~o*"


def stacked_bars(title: str,
                 rows: Mapping[str, Mapping[str, float]],
                 components: Sequence[str],
                 width: int = 60) -> str:
    """Render rows of stacked horizontal bars.

    Each row label maps to component->value; bars share one scale
    (the largest row total spans ``width`` characters). A legend maps
    fill characters to component names.
    """
    if not rows:
        return title + "\n(no data)"
    if len(components) > len(FILLS):
        raise ValueError(f"too many components (max {len(FILLS)})")
    totals = {label: sum(comps.get(c, 0.0) for c in components)
              for label, comps in rows.items()}
    peak = max(totals.values()) or 1.0
    label_w = max(len(label) for label in rows) + 2

    lines = [title, "=" * len(title)]
    legend = "  ".join(f"{FILLS[i]} {name}"
                       for i, name in enumerate(components))
    lines.append(legend)
    lines.append("")
    for label, comps in rows.items():
        bar = []
        # Largest-remainder rounding so the bar length matches the
        # row's share of the scale.
        scaled = [(comps.get(c, 0.0) / peak) * width for c in components]
        cells = [int(v) for v in scaled]
        remainder = int(round(sum(scaled))) - sum(cells)
        fractional = sorted(range(len(components)),
                            key=lambda i: scaled[i] - cells[i],
                            reverse=True)
        for i in fractional[:max(remainder, 0)]:
            cells[i] += 1
        for i, count in enumerate(cells):
            bar.append(FILLS[i] * count)
        lines.append(f"{label:<{label_w}}|{''.join(bar)}"
                     f"  {totals[label]:.0f}")
    return "\n".join(lines)


def overhead_bars(title: str, overheads: Mapping[str, float],
                  width: int = 50) -> str:
    """Render one bar per app for percentage overheads."""
    if not overheads:
        return title + "\n(no data)"
    peak = max(max(overheads.values()), 1.0)
    label_w = max(len(label) for label in overheads) + 2
    lines = [title, "=" * len(title)]
    for label, pct in overheads.items():
        filled = int(round(pct / peak * width))
        lines.append(f"{label:<{label_w}}|{'#' * filled} {pct:.1f}%")
    return "\n".join(lines)
