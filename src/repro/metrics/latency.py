"""Per-operation latency statistics.

Section 5.3 argues through *average* operation latencies: lock wait
time ("more than a two-fold increase" for Water-Nsquared), data wait
per page fault ("the average wait time per page increases", 3-15%
overhead), and release cost. This module collects those samples at the
protocol layer so benchmarks can report them directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from repro.metrics.hist import Log2Histogram


@dataclass
class LatencyStats:
    """Streaming summary of one operation's latency samples."""

    count: int = 0
    total_us: float = 0.0
    min_us: float = math.inf
    max_us: float = 0.0
    #: Sum of squares for variance (Welford would be overkill here:
    #: sample magnitudes are microseconds, runs are short).
    sq_total: float = 0.0

    def add(self, value_us: float) -> None:
        self.count += 1
        self.total_us += value_us
        self.sq_total += value_us * value_us
        if value_us < self.min_us:
            self.min_us = value_us
        if value_us > self.max_us:
            self.max_us = value_us

    @property
    def mean_us(self) -> float:
        return self.total_us / self.count if self.count else 0.0

    @property
    def stdev_us(self) -> float:
        if self.count < 2:
            return 0.0
        mean = self.mean_us
        var = max(self.sq_total / self.count - mean * mean, 0.0)
        return math.sqrt(var)

    def merge(self, other: "LatencyStats") -> None:
        self.count += other.count
        self.total_us += other.total_us
        self.sq_total += other.sq_total
        self.min_us = min(self.min_us, other.min_us)
        self.max_us = max(self.max_us, other.max_us)


#: Operation names tracked by the protocol agents.
LOCK_WAIT = "lock_wait"
PAGE_FAULT = "page_fault"
RELEASE = "release"
BARRIER_WAIT = "barrier_wait"

ALL_OPS = (LOCK_WAIT, PAGE_FAULT, RELEASE, BARRIER_WAIT)


class LatencyBook:
    """Per-node collection of operation latency statistics.

    Each sample lands twice: in the streaming :class:`LatencyStats`
    (mean/max, the paper's section 5.3 lens) and in a deterministic
    :class:`~repro.metrics.hist.Log2Histogram` (p50/p99/p999, the SLO
    lens). Histograms merge bit-identically across any worker
    partition of the sample stream.
    """

    def __init__(self) -> None:
        self._stats: Dict[str, LatencyStats] = {
            op: LatencyStats() for op in ALL_OPS}
        self._hists: Dict[str, Log2Histogram] = {
            op: Log2Histogram() for op in ALL_OPS}

    def record(self, op: str, value_us: float) -> None:
        self._stats[op].add(value_us)
        self._hists[op].record(value_us)

    def stats(self, op: str) -> LatencyStats:
        return self._stats[op]

    def hist(self, op: str) -> Log2Histogram:
        return self._hists[op]

    def percentiles(self, op: str) -> Dict[str, float]:
        """p50/p99/p999 upper bounds (us) for one operation class."""
        return self._hists[op].percentiles()

    def to_dict(self) -> dict:
        """Canonical JSON-portable form (histograms only -- the stats
        are derivable views for tables, the histograms are the
        mergeable ground truth shipped in run summaries)."""
        return {op: self._hists[op].to_dict() for op in ALL_OPS
                if self._hists[op].count}

    @classmethod
    def from_dict(cls, data) -> "LatencyBook":
        out = cls()
        for op, hist in (data or {}).items():
            restored = Log2Histogram.from_dict(hist)
            out._hists[op] = restored
            # Rebuild the coarse stats view so .stats(op).mean_us keeps
            # working on restored books (min/max/stdev are lost; the
            # histogram is the authoritative record).
            stats = out._stats.setdefault(op, LatencyStats())
            stats.count = restored.count
            stats.total_us = restored.total_us
        return out

    @classmethod
    def merged(cls, books: Iterable["LatencyBook"]) -> "LatencyBook":
        out = cls()
        for book in books:
            for op in ALL_OPS:
                out._stats[op].merge(book._stats[op])
                out._hists[op].merge(book._hists[op])
        return out

    def table(self) -> str:
        lines = [f"{'operation':14s} {'count':>8s} {'mean_us':>10s} "
                 f"{'max_us':>10s}"]
        for op in ALL_OPS:
            stats = self._stats[op]
            if not stats.count:
                continue
            lines.append(f"{op:14s} {stats.count:8d} "
                         f"{stats.mean_us:10.2f} {stats.max_us:10.2f}")
        return "\n".join(lines)
