"""Per-operation latency statistics.

Section 5.3 argues through *average* operation latencies: lock wait
time ("more than a two-fold increase" for Water-Nsquared), data wait
per page fault ("the average wait time per page increases", 3-15%
overhead), and release cost. This module collects those samples at the
protocol layer so benchmarks can report them directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List


@dataclass
class LatencyStats:
    """Streaming summary of one operation's latency samples."""

    count: int = 0
    total_us: float = 0.0
    min_us: float = math.inf
    max_us: float = 0.0
    #: Sum of squares for variance (Welford would be overkill here:
    #: sample magnitudes are microseconds, runs are short).
    sq_total: float = 0.0

    def add(self, value_us: float) -> None:
        self.count += 1
        self.total_us += value_us
        self.sq_total += value_us * value_us
        if value_us < self.min_us:
            self.min_us = value_us
        if value_us > self.max_us:
            self.max_us = value_us

    @property
    def mean_us(self) -> float:
        return self.total_us / self.count if self.count else 0.0

    @property
    def stdev_us(self) -> float:
        if self.count < 2:
            return 0.0
        mean = self.mean_us
        var = max(self.sq_total / self.count - mean * mean, 0.0)
        return math.sqrt(var)

    def merge(self, other: "LatencyStats") -> None:
        self.count += other.count
        self.total_us += other.total_us
        self.sq_total += other.sq_total
        self.min_us = min(self.min_us, other.min_us)
        self.max_us = max(self.max_us, other.max_us)


#: Operation names tracked by the protocol agents.
LOCK_WAIT = "lock_wait"
PAGE_FAULT = "page_fault"
RELEASE = "release"
BARRIER_WAIT = "barrier_wait"

ALL_OPS = (LOCK_WAIT, PAGE_FAULT, RELEASE, BARRIER_WAIT)


class LatencyBook:
    """Per-node collection of operation latency statistics."""

    def __init__(self) -> None:
        self._stats: Dict[str, LatencyStats] = {
            op: LatencyStats() for op in ALL_OPS}

    def record(self, op: str, value_us: float) -> None:
        self._stats[op].add(value_us)

    def stats(self, op: str) -> LatencyStats:
        return self._stats[op]

    @classmethod
    def merged(cls, books: Iterable["LatencyBook"]) -> "LatencyBook":
        out = cls()
        for book in books:
            for op in ALL_OPS:
                out._stats[op].merge(book._stats[op])
        return out

    def table(self) -> str:
        lines = [f"{'operation':14s} {'count':>8s} {'mean_us':>10s} "
                 f"{'max_us':>10s}"]
        for op in ALL_OPS:
            stats = self._stats[op]
            if not stats.count:
                continue
            lines.append(f"{op:14s} {stats.count:8d} "
                         f"{stats.mean_us:10.2f} {stats.max_us:10.2f}")
        return "\n".join(lines)
