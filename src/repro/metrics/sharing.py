"""Page sharing profiles.

Classifies every shared page by its observed access pattern -- the
analysis vocabulary of the DSM literature the paper builds on, and the
mechanism behind its section 5 discussion (owner-computes pages,
migratory cells, false sharing):

* ``private``       written and read by a single node;
* ``read_shared``   one writer (or none), many readers;
* ``migratory``     multiple writers, but serialized (never two
                    writers in the same interval window -- the lock-
                    passing pattern);
* ``false_shared``  multiple writers with interleaved ownership of
                    disjoint parts (concurrent writers);
* ``untouched``     allocated but never accessed.

The profiler subscribes to page-fault hooks and diff traffic, so it
costs nothing when not attached.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.cluster import Hooks


@dataclass
class PageProfile:
    """Observed behaviour of one page."""

    readers: Set[int] = field(default_factory=set)
    writers: Set[int] = field(default_factory=set)
    write_faults: int = 0
    read_faults: int = 0
    #: Writer sequence in fault order (for migratory detection).
    writer_order: List[int] = field(default_factory=list)
    #: True when two different nodes wrote without an intervening
    #: diff round-trip (approximated: consecutive distinct writers
    #: within the same "burst").
    concurrent_writers: bool = False

    def classify(self) -> str:
        if not self.readers and not self.writers:
            return "untouched"
        if len(self.writers) <= 1:
            if self.readers - self.writers:
                return "read_shared"
            return "private"
        if self.concurrent_writers:
            return "false_shared"
        return "migratory"


class SharingProfiler:
    """Attach before a run; read profiles afterwards."""

    def __init__(self, runtime, burst_window_us: float = 50.0) -> None:
        self.runtime = runtime
        self.burst_window_us = burst_window_us
        self.pages: Dict[int, PageProfile] = defaultdict(PageProfile)
        self._last_write: Dict[int, tuple] = {}
        runtime.cluster.hooks.on(Hooks.PAGE_FAULT, self._on_fault)

    def _on_fault(self, node_id: int, **info) -> None:
        page = info["page"]
        profile = self.pages[page]
        now = self.runtime.engine.now
        if info.get("write"):
            profile.writers.add(node_id)
            profile.write_faults += 1
            profile.writer_order.append(node_id)
            last = self._last_write.get(page)
            if last is not None:
                last_node, last_time = last
                if last_node != node_id and \
                        now - last_time < self.burst_window_us:
                    profile.concurrent_writers = True
            self._last_write[page] = (node_id, now)
        else:
            profile.readers.add(node_id)
            profile.read_faults += 1

    # -- reporting -----------------------------------------------------------

    def classify_all(self) -> Dict[int, str]:
        return {page: profile.classify()
                for page, profile in self.pages.items()}

    def summary(self) -> Dict[str, int]:
        counts: Dict[str, int] = defaultdict(int)
        for profile in self.pages.values():
            counts[profile.classify()] += 1
        return dict(counts)

    def segment_summary(self) -> Dict[str, Dict[str, int]]:
        """Per-segment classification counts."""
        space = self.runtime.cluster.address_space
        out: Dict[str, Dict[str, int]] = {}
        for name in space._segments:
            seg = space.segment(name)
            counts: Dict[str, int] = defaultdict(int)
            for index in range(seg.num_pages):
                page = seg.page(index)
                profile = self.pages.get(page)
                kind = profile.classify() if profile else "untouched"
                counts[kind] += 1
            out[name] = dict(counts)
        return out

    def table(self) -> str:
        kinds = ("private", "read_shared", "migratory", "false_shared",
                 "untouched")
        lines = [f"{'segment':20s}" + "".join(f"{k:>14s}"
                                               for k in kinds)]
        lines.append("-" * len(lines[0]))
        for name, counts in self.segment_summary().items():
            lines.append(f"{name:20s}" + "".join(
                f"{counts.get(k, 0):14d}" for k in kinds))
        return "\n".join(lines)
