"""Deterministic fixed-bucket log2 latency histograms and a registry.

The SLO pipeline needs percentiles that are *exactly* reproducible:
across runs, across ``parallel.run_specs`` worker counts, and across
the pure/compiled simulation cores. Sample-sorting percentiles would
need every sample kept and serialized; instead we bucket by the bit
length of the integer microsecond value (bucket ``i`` holds values in
``[2**(i-1), 2**i)``, bucket 0 holds ``[0, 1)``), which makes a
histogram a fixed vector of 64 integer counters:

* recording is two integer ops (``int(v).bit_length()`` + increment);
* merging is elementwise addition -- associative and commutative, so
  any worker partition of the sample stream merges to the identical
  vector;
* a percentile is the *bucket upper bound* at the cumulative-count
  crossing -- a pure function of the counts, never of sample order.

The reported percentile is therefore an upper bound with at most 2x
resolution, which is the right trade for SLO gating: deterministic,
mergeable, and conservative (never under-reports the tail).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional

#: 64 buckets cover every representable microsecond latency: bucket 63
#: holds everything at or above ~2**62 us (never reached in practice).
NUM_BUCKETS = 64


def bucket_index(value_us: float) -> int:
    """Bucket for a (non-negative) latency sample in microseconds."""
    idx = int(value_us).bit_length()
    return idx if idx < NUM_BUCKETS else NUM_BUCKETS - 1


def bucket_upper_us(index: int) -> int:
    """Inclusive upper bound of bucket ``index`` in whole microseconds."""
    return (1 << index) - 1


class Log2Histogram:
    """Fixed-bucket log2 histogram of microsecond latencies."""

    __slots__ = ("counts", "count", "total_us")

    def __init__(self) -> None:
        self.counts: List[int] = [0] * NUM_BUCKETS
        self.count = 0
        self.total_us = 0.0

    def record(self, value_us: float) -> None:
        self.counts[bucket_index(value_us)] += 1
        self.count += 1
        self.total_us += value_us

    def merge(self, other: "Log2Histogram") -> None:
        mine, theirs = self.counts, other.counts
        for i in range(NUM_BUCKETS):
            mine[i] += theirs[i]
        self.count += other.count
        self.total_us += other.total_us

    def percentile_us(self, q: float) -> float:
        """Upper-bound estimate of the ``q`` quantile (``0 < q <= 1``).

        Returns the inclusive upper bound of the first bucket whose
        cumulative count reaches ``ceil(q * count)``; 0.0 when empty.
        """
        if not self.count:
            return 0.0
        # ceil without floats drifting: rank in [1, count].
        rank = -(-int(q * self.count * 1_000_000) // 1_000_000)
        rank = min(max(rank, 1), self.count)
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank:
                return float(bucket_upper_us(i))
        return float(bucket_upper_us(NUM_BUCKETS - 1))

    def percentiles(self) -> Dict[str, float]:
        """The SLO trio: p50 / p99 / p999 upper bounds in microseconds."""
        return {"p50": self.percentile_us(0.50),
                "p99": self.percentile_us(0.99),
                "p999": self.percentile_us(0.999)}

    @property
    def mean_us(self) -> float:
        return self.total_us / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        """Sparse, canonical, JSON-portable form."""
        return {
            "count": self.count,
            "total_us": self.total_us,
            "buckets": {str(i): c for i, c in enumerate(self.counts) if c},
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Log2Histogram":
        out = cls()
        out.count = int(data.get("count", 0))
        out.total_us = float(data.get("total_us", 0.0))
        for key, c in data.get("buckets", {}).items():
            out.counts[int(key)] = int(c)
        return out

    @classmethod
    def merged(cls, hists: Iterable["Log2Histogram"]) -> "Log2Histogram":
        out = cls()
        for hist in hists:
            out.merge(hist)
        return out


class MetricsRegistry:
    """Named counters, gauges, and histograms, mergeable across workers.

    Counters and histograms merge by addition; a gauge keeps the value
    from the merge operand that set it last (document order), which is
    deterministic because sweep summaries are merged in spec order.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Log2Histogram] = {}

    def counter_add(self, name: str, delta: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + delta

    def gauge_set(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def histogram(self, name: str) -> Log2Histogram:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Log2Histogram()
        return hist

    def observe(self, name: str, value_us: float) -> None:
        self.histogram(name).record(value_us)

    def merge(self, other: "MetricsRegistry") -> None:
        for name, value in other.counters.items():
            self.counter_add(name, value)
        self.gauges.update(other.gauges)
        for name, hist in other.histograms.items():
            self.histogram(name).merge(hist)

    def to_dict(self) -> dict:
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {name: hist.to_dict() for name, hist
                           in sorted(self.histograms.items())},
        }

    @classmethod
    def from_dict(cls, data: Optional[Mapping]) -> "MetricsRegistry":
        out = cls()
        if not data:
            return out
        out.counters.update({k: int(v) for k, v
                             in data.get("counters", {}).items()})
        out.gauges.update({k: float(v) for k, v
                           in data.get("gauges", {}).items()})
        for name, hist in data.get("histograms", {}).items():
            out.histograms[name] = Log2Histogram.from_dict(hist)
        return out
