"""Time-breakdown accounting, counters, and report formatting.

Public surface::

    from repro.metrics import Category, ThreadClock, Breakdown,
                               NodeCounters, RunCounters
"""

from repro.metrics.breakdown import Breakdown, Category, ThreadClock
from repro.metrics.charts import overhead_bars, stacked_bars, timeseries_panel
from repro.metrics.counters import NodeCounters, RunCounters
from repro.metrics.hist import Log2Histogram, MetricsRegistry
from repro.metrics.latency import LatencyBook, LatencyStats
from repro.metrics.sharing import PageProfile, SharingProfiler
from repro.metrics.trace import (
    FULL_EVENTS,
    ProtocolTrace,
    TraceEvent,
    load_jsonl,
)
from repro.metrics.report import (
    format_breakdown_table,
    format_overhead_table,
    overhead_percent,
)

__all__ = [
    "Category",
    "ThreadClock",
    "Breakdown",
    "NodeCounters",
    "RunCounters",
    "stacked_bars",
    "overhead_bars",
    "timeseries_panel",
    "LatencyBook",
    "LatencyStats",
    "Log2Histogram",
    "MetricsRegistry",
    "SharingProfiler",
    "PageProfile",
    "FULL_EVENTS",
    "ProtocolTrace",
    "TraceEvent",
    "load_jsonl",
    "format_breakdown_table",
    "format_overhead_table",
    "overhead_percent",
]
