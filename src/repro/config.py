"""Configuration and cost model for the simulated cluster.

All times are in **microseconds** of simulated time; all sizes in bytes.
Every latency, bandwidth, and CPU-occupancy constant used anywhere in
the simulator lives here so that calibration against the paper's
testbed (400 MHz Pentium-II SMPs, Myrinet/VMMC with ~8 us one-way
latency and ~100 MB/s effective bandwidth) is transparent.

The defaults are calibrated so that the *relative* magnitudes of the
execution-time components in the paper's figures are reproduced; the
absolute milliseconds of a 2003 testbed are not a goal.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.errors import ConfigError


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


@dataclass(frozen=True)
class NetworkParams:
    """Myrinet/VMMC communication-layer parameters (paper section 3.1)."""

    #: One-way end-to-end latency for a minimal message, in us. The paper
    #: reports ~8 us for VMMC on their Myrinet cluster.
    wire_latency_us: float = 8.0
    #: Effective point-to-point bandwidth in bytes per us (100 bytes/us
    #: = 100 MB/s, the order the paper cites as PCI-limited).
    bandwidth_bytes_per_us: float = 100.0
    #: Host CPU cost to post an asynchronous send descriptor.
    post_overhead_us: float = 0.7
    #: NIC occupancy per message (descriptor handling, DMA setup). The
    #: paper's NIC-event-priority tuning maps to this constant.
    nic_per_message_us: float = 1.5
    #: Depth of the NIC post queue for asynchronous sends. When full, the
    #: posting processor blocks until the queue drains -- the contention
    #: effect the paper highlights at release points.
    post_queue_depth: int = 32
    #: Size in bytes of a control-only message (requests, acks, notices).
    control_message_bytes: int = 64
    #: Probability of a transient error per message (retransmitted by
    #: VMMC, invisible to the protocol except for added latency).
    transient_error_rate: float = 0.0
    #: Extra latency charged when a transient error forces a retransmit.
    retransmit_penalty_us: float = 25.0

    def __post_init__(self) -> None:
        _require(self.wire_latency_us >= 0, "wire_latency_us must be >= 0")
        _require(self.bandwidth_bytes_per_us > 0, "bandwidth must be > 0")
        _require(self.post_queue_depth >= 1, "post_queue_depth must be >= 1")
        _require(0.0 <= self.transient_error_rate < 1.0,
                 "transient_error_rate must be in [0, 1)")

    def transfer_time_us(self, size_bytes: int) -> float:
        """Serialization time of ``size_bytes`` on the wire."""
        return size_bytes / self.bandwidth_bytes_per_us


@dataclass(frozen=True)
class MemoryParams:
    """Node memory-system parameters."""

    #: Virtual-memory page size; the SVM coherence unit.
    page_size: int = 4096
    #: Local memory-copy bandwidth in bytes/us (twin creation, local
    #: fetches of committed copies, checkpoint buffer copies).
    copy_bandwidth_bytes_per_us: float = 400.0
    #: Whether processors and the DMA engine contend for the memory bus.
    #: The paper attributes compute-time dilation under the extended
    #: protocol to exactly this contention.
    model_bus_contention: bool = True
    #: Aggregate memory-bus bandwidth in bytes/us shared by all
    #: processors and DMA within one SMP node.
    bus_bandwidth_bytes_per_us: float = 800.0

    def __post_init__(self) -> None:
        _require(self.page_size >= 64, "page_size must be >= 64")
        _require(self.page_size & (self.page_size - 1) == 0,
                 "page_size must be a power of two")
        _require(self.copy_bandwidth_bytes_per_us > 0,
                 "copy bandwidth must be > 0")

    def copy_time_us(self, size_bytes: int) -> float:
        return size_bytes / self.copy_bandwidth_bytes_per_us


@dataclass(frozen=True)
class CostModel:
    """CPU costs of protocol operations, in us.

    These model the host-side instruction costs of the SVM protocol on a
    400 MHz processor; communication costs live in NetworkParams.
    """

    #: Fixed cost of entering the page-fault handler (trap + dispatch).
    page_fault_handler_us: float = 4.0
    #: Per-byte cost of the word-by-word twin comparison when computing
    #: a diff (~2 cycles/word at 400 MHz ~= 0.0025 us/byte).
    diff_compute_per_byte_us: float = 0.0025
    #: Fixed cost per diff computation (setup, scan bookkeeping).
    diff_compute_base_us: float = 2.0
    #: Per-byte cost of applying a received diff at a home copy.
    diff_apply_per_byte_us: float = 0.0015
    #: Cost of invalidating one page (page-table update + TLB shootdown).
    invalidate_per_page_us: float = 1.0
    #: Cost of creating/processing one write notice.
    write_notice_per_entry_us: float = 0.3
    #: Cost of committing one page into the interval record at release.
    commit_per_page_us: float = 0.4
    #: Fixed protocol cost of a release operation (timestamps, tables).
    release_base_us: float = 3.0
    #: Fixed protocol cost of an acquire operation.
    acquire_base_us: float = 3.0
    #: Host cost of one lock-algorithm iteration (build request/poll).
    lock_op_us: float = 1.0
    #: Backoff window for the centralized polling lock: initial and max.
    lock_backoff_min_us: float = 2.0
    lock_backoff_max_us: float = 64.0
    #: Fixed per-thread cost of saving a checkpoint (context capture).
    checkpoint_base_us: float = 5.0
    #: Bytes added to every checkpoint's accounted size, modelling the
    #: native thread stack the paper ships (2-2.8 KB); our explicit
    #: kernel state is far smaller, so this knob restores the paper's
    #: checkpoint volume without changing semantics.
    checkpoint_stack_bytes: int = 0
    #: Per-byte cost of serializing checkpoint state locally.
    checkpoint_per_byte_us: float = 0.004
    #: Cost to suspend/resume a peer thread at checkpoint point A.
    thread_suspend_us: float = 2.0
    #: Barrier manager per-arrival processing cost.
    barrier_per_node_us: float = 1.0
    #: Heart-beat timeout: how long a node spins on an expected remote
    #: response before probing the peer (paper section 4.1).
    heartbeat_timeout_us: float = 500.0
    #: Interval between liveness probes once suspicious.
    heartbeat_period_us: float = 200.0
    #: Cost of the page-lock bookkeeping per page (FT protocol, Fig 4).
    page_lock_us: float = 0.2

    def diff_compute_us(self, page_size: int) -> float:
        return self.diff_compute_base_us + self.diff_compute_per_byte_us * page_size

    def diff_apply_us(self, diff_bytes: int) -> float:
        return self.diff_apply_per_byte_us * diff_bytes

    def checkpoint_us(self, state_bytes: int) -> float:
        return self.checkpoint_base_us + self.checkpoint_per_byte_us * state_bytes


@dataclass(frozen=True)
class ProtocolParams:
    """Knobs selecting protocol variants and FT behaviour."""

    #: "base" = original GeNIMA; "ft" = extended fault-tolerant protocol.
    variant: str = "base"
    #: "polling" (centralized, stateless -- the paper's final choice) or
    #: "queueing" (distributed queue lock). Section 5.2 uses polling on
    #: both sides for fairness; we default to that.
    lock_algorithm: str = "polling"
    #: FT only: replicate lock state to a secondary lock home.
    replicate_locks: bool = True
    #: FT only: serialize concurrent releases within an SMP node
    #: (required by non-overlapping checkpointing, section 4.4).
    serialize_releases: bool = True
    #: FT only: take remote checkpoints at points A and B.
    checkpointing: bool = True
    #: FT only: aggregate a release's diffs into one message per
    #: destination home ("sending fewer and larger messages" -- the
    #: paper's section 6 optimization for NIC post-queue contention).
    batch_diffs: bool = False

    def __post_init__(self) -> None:
        _require(self.variant in ("base", "ft"),
                 f"unknown protocol variant {self.variant!r}")
        _require(self.lock_algorithm in ("polling", "queueing"),
                 f"unknown lock algorithm {self.lock_algorithm!r}")

    @property
    def is_ft(self) -> bool:
        return self.variant == "ft"


@dataclass(frozen=True)
class ClusterConfig:
    """Top-level configuration for one simulated cluster run."""

    num_nodes: int = 8
    threads_per_node: int = 1
    #: Shared address-space size in pages.
    shared_pages: int = 2048
    #: Number of application lock variables available.
    num_locks: int = 8192
    #: Number of barrier variables available.
    num_barriers: int = 16
    seed: int = 12345
    network: NetworkParams = field(default_factory=NetworkParams)
    memory: MemoryParams = field(default_factory=MemoryParams)
    costs: CostModel = field(default_factory=CostModel)
    protocol: ProtocolParams = field(default_factory=ProtocolParams)

    def __post_init__(self) -> None:
        _require(self.num_nodes >= 1, "num_nodes must be >= 1")
        _require(self.threads_per_node >= 1, "threads_per_node must be >= 1")
        _require(self.shared_pages >= 1, "shared_pages must be >= 1")
        if self.protocol.is_ft:
            _require(self.num_nodes >= 2,
                     "the fault-tolerant protocol needs >= 2 nodes "
                     "(replicas must live on distinct nodes)")

    @property
    def total_threads(self) -> int:
        return self.num_nodes * self.threads_per_node

    def with_protocol(self, variant: str, **overrides) -> "ClusterConfig":
        """A copy of this config running a different protocol variant."""
        proto = replace(self.protocol, variant=variant, **overrides)
        return replace(self, protocol=proto)


def paper_testbed_config(threads_per_node: int = 1,
                         variant: str = "base",
                         seed: int = 12345,
                         shared_pages: int = 2048,
                         num_locks: int = 8192,
                         lock_algorithm: Optional[str] = None) -> ClusterConfig:
    """The paper's evaluation platform: 8 nodes, 1 or 2 threads each.

    Section 5.1: eight 2-way Pentium-II SMPs on Myrinet/VMMC with ~8 us
    one-way latency. ``variant`` selects base GeNIMA ("base") or the
    extended fault-tolerant protocol ("ft").
    """
    protocol = ProtocolParams(
        variant=variant,
        lock_algorithm=lock_algorithm or "polling",
    )
    return ClusterConfig(
        num_nodes=8,
        threads_per_node=threads_per_node,
        shared_pages=shared_pages,
        num_locks=num_locks,
        seed=seed,
        protocol=protocol,
    )
