"""Canonical experiment configurations for the paper's evaluation.

Section 5 of the paper runs six SPLASH-2 applications on 8 nodes with
one or two compute threads per node, under the original (base) and the
extended (fault-tolerant) protocol, and reports execution-time
breakdowns in two formats. This module pins down the workload scales
and cluster configuration used by every benchmark so that figures are
regenerated from one place.

Scales: the paper's problem sizes (1M-point FFT, 4M-key radix, 4096
molecules) target a 2003 testbed measured in seconds; a cycle-ish
Python simulation of the same protocol work runs them at reduced sizes
chosen to keep every sharing characteristic intact (multiple pages per
thread per data structure, the same home-page-diff ratios, the same
lock structure).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.apps import (
    FFT,
    LU,
    RadixSort,
    SyntheticWorkload,
    Volrend,
    WaterNsquared,
    WaterSpatial,
)
from repro.apps.base import Workload
from repro.config import (
    ClusterConfig,
    MemoryParams,
    ProtocolParams,
)
from repro.harness.runner import RunResult, SvmRuntime

#: The application suite in the paper's figure order.
APP_ORDER = ("FFT", "LU", "WaterNsq", "WaterSpFL", "RadixLocal",
             "Volrend")


def workload_factories(scale: str = "bench"
                       ) -> Dict[str, Callable[[], Workload]]:
    """Factories for the six applications at a given scale.

    ``"test"`` is small enough for unit tests; ``"bench"`` is the
    default evaluation scale; ``"large"`` approaches the paper's sizes
    (slow in pure Python -- minutes per run).
    """
    if scale == "test":
        return {
            "FFT": lambda: FFT(points=1024),
            "LU": lambda: LU(n=64, block=16),
            "WaterNsq": lambda: WaterNsquared(molecules=24, steps=1),
            "WaterSpFL": lambda: WaterSpatial(molecules=48, steps=1),
            "RadixLocal": lambda: RadixSort(keys=512, radix_bits=4,
                                            key_bits=8),
            "Volrend": lambda: Volrend(image_size=8, tile=4,
                                       volume_size=8),
        }
    if scale == "bench":
        return {
            "FFT": lambda: FFT(points=4096),
            "LU": lambda: LU(n=128, block=16),
            "WaterNsq": lambda: WaterNsquared(molecules=64, steps=2),
            "WaterSpFL": lambda: WaterSpatial(molecules=128, steps=2),
            "RadixLocal": lambda: RadixSort(keys=2048, radix_bits=4,
                                            key_bits=8),
            "Volrend": lambda: Volrend(image_size=16, tile=4,
                                       volume_size=12),
        }
    if scale == "large":
        return {
            "FFT": lambda: FFT(points=16384),
            "LU": lambda: LU(n=256, block=16),
            "WaterNsq": lambda: WaterNsquared(molecules=128, steps=2),
            "WaterSpFL": lambda: WaterSpatial(molecules=256, steps=2),
            "RadixLocal": lambda: RadixSort(keys=8192, radix_bits=4,
                                            key_bits=12),
            "Volrend": lambda: Volrend(image_size=32, tile=4,
                                       volume_size=16),
        }
    raise ValueError(f"unknown scale {scale!r}")


def evaluation_config(variant: str,
                      threads_per_node: int = 1,
                      num_nodes: int = 8,
                      seed: int = 2003,
                      lock_algorithm: str = "polling",
                      page_size: int = 512,
                      **protocol_overrides) -> ClusterConfig:
    """The paper's testbed (section 5.1) at simulation scale."""
    return ClusterConfig(
        num_nodes=num_nodes,
        threads_per_node=threads_per_node,
        shared_pages=2048,
        num_locks=512,
        num_barriers=8,
        seed=seed,
        memory=MemoryParams(page_size=page_size),
        protocol=ProtocolParams(variant=variant,
                                lock_algorithm=lock_algorithm,
                                **protocol_overrides),
    )


def run_app(app_name: str,
            variant: str,
            threads_per_node: int = 1,
            scale: str = "bench",
            num_nodes: int = 8,
            seed: int = 2003,
            lock_algorithm: str = "polling",
            verify: bool = True,
            **protocol_overrides) -> RunResult:
    """One cell of the paper's evaluation matrix."""
    factory = workload_factories(scale)[app_name]
    config = evaluation_config(variant, threads_per_node,
                               num_nodes=num_nodes, seed=seed,
                               lock_algorithm=lock_algorithm,
                               **protocol_overrides)
    runtime = SvmRuntime(config, factory())
    return runtime.run(verify=verify)


def run_suite(variant: str,
              threads_per_node: int = 1,
              scale: str = "bench",
              apps=APP_ORDER,
              **kwargs) -> Dict[str, RunResult]:
    """Run the whole application suite under one protocol variant.

    Serial, in-process, full ``RunResult`` objects (latency books and
    thread clocks included) -- the right tool when a consumer needs
    everything. Multi-run entry points that only need summaries
    (figures, sweeps) go through :func:`run_matrix` instead.
    """
    return {app: run_app(app, variant, threads_per_node, scale, **kwargs)
            for app in apps}


def run_matrix(specs, jobs=None, cache=True, progress=None,
               cache_dir=None):
    """Run a list of :class:`~repro.parallel.RunSpec` concurrently.

    The fan-out/caching entry point every multi-run benchmark routes
    through: specs fan out over a process pool (``jobs`` / the
    ``REPRO_JOBS`` env var / ``os.cpu_count()``), results come back as
    :class:`~repro.parallel.RunSummary` in spec order, and completed
    cells are served from the content-addressed cache on re-runs.
    Raises ``RuntimeError`` if any spec fails -- a figure with holes in
    its matrix is worse than no figure.
    """
    from repro.parallel import RunSummary, run_specs

    results = run_specs(specs, jobs=jobs, cache=cache,
                        cache_dir=cache_dir, progress=progress)
    failed = [r for r in results if not r.ok]
    if failed:
        lines = "\n".join(f"  {r.spec.label}: {r.status}: "
                          f"{r.error.strip().splitlines()[-1] if r.error else ''}"
                          for r in failed)
        raise RuntimeError(
            f"{len(failed)}/{len(results)} matrix cells failed:\n{lines}")
    return [RunSummary.from_dict(r.summary) for r in results]
