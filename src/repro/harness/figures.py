"""Regeneration of the paper's evaluation figures.

Each ``figure*`` function runs the necessary simulations and returns
``(rows, text)``: the raw component data and a formatted table in the
paper's layout. The benchmark modules under ``benchmarks/`` call these
and persist the text next to the timing data.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.harness.experiments import APP_ORDER, run_matrix
from repro.metrics import (
    format_breakdown_table,
    overhead_bars,
    overhead_percent,
    stacked_bars,
)

FOUR = ("compute", "data_wait", "lock", "barrier")
SIX = ("compute", "data_wait", "synchronization", "diffs", "protocol",
       "checkpointing")


#: Simulations are deterministic; figure pairs (7,8) and (9,10) share
#: their runs through this cache.
_PAIR_CACHE: Dict[tuple, tuple] = {}


def _suite_pair(threads_per_node: int, scale: str, apps: Iterable[str],
                seed: int = 2003):
    """base/extended suites for one figure pair, via the orchestrator.

    Every figure cell is an independent simulation, so the whole
    2 x len(apps) matrix fans out over :func:`run_matrix` -- parallel
    across cores and served from the content-addressed result cache on
    repeat invocations (``REPRO_JOBS`` controls worker count).
    """
    from repro.parallel import app_spec

    key = (threads_per_node, scale, tuple(apps), seed)
    if key not in _PAIR_CACHE:
        apps = tuple(apps)
        specs = [app_spec(app, variant, threads_per_node=threads_per_node,
                          scale=scale, seed=seed)
                 for variant in ("base", "ft") for app in apps]
        summaries = run_matrix(specs)
        base = dict(zip(apps, summaries[:len(apps)]))
        extended = dict(zip(apps, summaries[len(apps):]))
        _PAIR_CACHE[key] = (base, extended)
    return _PAIR_CACHE[key]


def breakdown_rows(base, extended, fmt: str) -> Dict[str, Dict[str, float]]:
    """Interleave base (0) / extended (1) rows, figure style."""
    rows: Dict[str, Dict[str, float]] = {}
    for app in base:
        if fmt == "four":
            rows[f"{app}/0"] = base[app].breakdown.four_component()
            rows[f"{app}/1"] = extended[app].breakdown.four_component()
        else:
            rows[f"{app}/0"] = base[app].breakdown.six_component()
            rows[f"{app}/1"] = extended[app].breakdown.six_component()
    return rows


def overhead_summary(base, extended) -> Dict[str, float]:
    return {app: overhead_percent(base[app].elapsed_us,
                                  extended[app].elapsed_us)
            for app in base}


def figure7(scale: str = "bench", apps=APP_ORDER,
            pair=None) -> Tuple[Dict, str]:
    """Execution time, 4 components, 8 nodes x 1 thread (paper Fig 7)."""
    base, extended = pair or _suite_pair(1, scale, apps)
    rows = breakdown_rows(base, extended, "four")
    text = format_breakdown_table(
        "Figure 7: execution time breakdown, 8 nodes x 1 thread "
        "(0 = base GeNIMA, 1 = extended FT protocol)",
        rows, FOUR)
    text += "\n\n" + stacked_bars("Figure 7 (bars)", rows, FOUR)
    summary = overhead_summary(base, extended)
    text += "\n\n" + overhead_bars(
        "Failure-free overhead of the extended protocol", summary)
    text += "\n\nOverhead (extended vs base): " + ", ".join(
        f"{app} {pct:+.0f}%" for app, pct in summary.items())
    return {"rows": rows, "base": base, "extended": extended}, text


def figure8(scale: str = "bench", apps=APP_ORDER,
            pair=None) -> Tuple[Dict, str]:
    """Overhead breakdown, 6 components, 8 nodes x 1 thread (Fig 8)."""
    base, extended = pair or _suite_pair(1, scale, apps)
    rows = breakdown_rows(base, extended, "six")
    text = format_breakdown_table(
        "Figure 8: overhead breakdown (6 components), 8 nodes x 1 thread",
        rows, SIX)
    text += "\n\n" + stacked_bars("Figure 8 (bars)", rows, SIX)
    return {"rows": rows, "base": base, "extended": extended}, text


def figure9(scale: str = "bench", apps=APP_ORDER,
            pair=None) -> Tuple[Dict, str]:
    """Execution time, 4 components, 8 nodes x 2 threads (Fig 9)."""
    base, extended = pair or _suite_pair(2, scale, apps)
    rows = breakdown_rows(base, extended, "four")
    text = format_breakdown_table(
        "Figure 9: execution time breakdown, 8 nodes x 2 threads/node",
        rows, FOUR)
    text += "\n\n" + stacked_bars("Figure 9 (bars)", rows, FOUR)
    summary = overhead_summary(base, extended)
    text += "\n\n" + overhead_bars(
        "Failure-free overhead, 2 threads/node", summary)
    text += "\n\nOverhead (extended vs base): " + ", ".join(
        f"{app} {pct:+.0f}%" for app, pct in summary.items())
    return {"rows": rows, "base": base, "extended": extended}, text


def figure10(scale: str = "bench", apps=APP_ORDER,
             pair=None) -> Tuple[Dict, str]:
    """Overhead breakdown, 6 components, 8 nodes x 2 threads (Fig 10)."""
    base, extended = pair or _suite_pair(2, scale, apps)
    rows = breakdown_rows(base, extended, "six")
    text = format_breakdown_table(
        "Figure 10: overhead breakdown (6 components), "
        "8 nodes x 2 threads/node",
        rows, SIX)
    text += "\n\n" + stacked_bars("Figure 10 (bars)", rows, SIX)
    return {"rows": rows, "base": base, "extended": extended}, text
