"""Declarative failure plans.

A :class:`FaultPlan` is a reproducible schedule of fail-stop events —
time-based, protocol-point-based, or chained (armed when the previous
recovery completes) — applied to a runtime in one call. Benchmarks and
stress tests use plans instead of hand-wiring injector callbacks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.cluster import FailureInjector, Hooks
from repro.errors import ConfigError

#: Protocol points that make interesting kill sites.
INTERESTING_HOOKS = (
    Hooks.LOCK_ACQUIRED,
    Hooks.LOCK_RELEASED,
    Hooks.RELEASE_COMMITTED,
    Hooks.DIFF_PHASE1_DONE,
    Hooks.DIFF_PHASE2_START,
    Hooks.CHECKPOINT_A,
    Hooks.CHECKPOINT_B,
    Hooks.BARRIER_ENTER,
    Hooks.PAGE_FAULT,
)


@dataclass(frozen=True)
class FailureSpec:
    """One fail-stop event.

    Exactly one of ``at_time`` / ``hook`` must be set. ``chained`` means
    the spec is armed only after the previous spec's recovery completes
    (the paper's multiple-but-not-simultaneous regime); ``min_gap``
    additionally delays that arming by the given microseconds, bounding
    how soon after full recovery the next failure may land.

    ``during`` schedules the kill to land *while a previous spec's
    recovery is still in progress* (the regime the paper does not
    tolerate, which the extended coordinator does): the spec is armed
    up front and counts ``hook`` firings from *any* node, so plans use
    ``hook=Hooks.RECOVERY_START`` with ``occurrence=k`` to strike
    ``delay`` microseconds into the k-th recovery wave.
    """

    victim: int
    at_time: Optional[float] = None
    hook: Optional[str] = None
    occurrence: int = 1
    delay: float = 0.0
    chained: bool = False
    during: bool = False
    min_gap: float = 0.0

    def __post_init__(self) -> None:
        if (self.at_time is None) == (self.hook is None):
            raise ConfigError(
                "FailureSpec needs exactly one of at_time / hook")
        if self.during and self.hook is None:
            raise ConfigError(
                "during-recovery FailureSpec must be hook-based")
        if self.during and self.chained:
            raise ConfigError(
                "FailureSpec cannot be both chained (waits for recovery "
                "to finish) and during (strikes before it finishes)")
        if self.min_gap and not self.chained:
            raise ConfigError(
                "min_gap only applies to chained FailureSpecs")

    def describe(self) -> str:
        where = (f"t={self.at_time}" if self.at_time is not None
                 else f"{self.hook}#{self.occurrence}+{self.delay}us")
        chain = " (chained)" if self.chained else ""
        if self.chained and self.min_gap:
            chain = f" (chained, gap {self.min_gap}us)"
        during = " (during recovery)" if self.during else ""
        return f"kill node {self.victim} at {where}{chain}{during}"


@dataclass
class FaultPlan:
    """An ordered set of failures to inject into one run."""

    specs: List[FailureSpec] = field(default_factory=list)

    def add(self, spec: FailureSpec) -> "FaultPlan":
        self.specs.append(spec)
        return self

    def describe(self) -> str:
        return "; ".join(spec.describe() for spec in self.specs) \
            or "(no failures)"

    def apply(self, runtime) -> List:
        """Install the plan on a runtime; returns injection records
        (chained specs' records appear once armed)."""
        injector = FailureInjector(runtime.cluster)
        records: List = []

        immediate = [s for s in self.specs if not s.chained]
        chain = [s for s in self.specs if s.chained]

        def arm(spec: FailureSpec) -> None:
            if spec.at_time is not None:
                records.append(injector.kill_at_time(spec.victim,
                                                     spec.at_time))
            else:
                records.append(injector.kill_on_hook(
                    spec.victim, spec.hook, occurrence=spec.occurrence,
                    delay=spec.delay, any_node=spec.during))

        # ``during`` specs arm up front alongside truly-immediate ones:
        # they wait on recovery-wave hooks themselves, and arming them
        # from RECOVERY_DONE would be too late by construction.
        for spec in immediate:
            arm(spec)

        pending = list(chain)

        def on_recovery_done(node_id, **info) -> None:
            if not info.get("final", True):
                # Per-victim DONE inside a multi-victim rendezvous:
                # chained specs wait for the full release.
                return
            if not pending:
                return
            spec = pending.pop(0)
            if spec.min_gap > 0.0:
                runtime.cluster.engine.schedule(
                    spec.min_gap, lambda: arm(spec))
            else:
                arm(spec)

        if pending:
            runtime.cluster.hooks.on(Hooks.RECOVERY_DONE,
                                     on_recovery_done)
        return records

    @classmethod
    def single(cls, victim: int, hook: str, occurrence: int = 1,
               delay: float = 0.0) -> "FaultPlan":
        return cls([FailureSpec(victim=victim, hook=hook,
                                occurrence=occurrence, delay=delay)])

    @classmethod
    def random_plan(cls, rng: random.Random, num_nodes: int,
                    failures: int = 1,
                    hooks: Sequence[str] = INTERESTING_HOOKS,
                    max_occurrence: int = 6,
                    max_delay: float = 20.0,
                    spare: Sequence[int] = (),
                    during_recovery_prob: float = 0.0,
                    min_gap_us: float = 0.0) -> "FaultPlan":
        """A reproducible random plan.

        Victims are distinct and exclude ``spare`` nodes; failures
        after the first are chained (armed when the previous recovery
        fully completes, at least ``min_gap_us`` later) unless
        ``during_recovery_prob`` turns them into during-recovery
        strikes that land ``delay`` us into the previous failure's
        recovery wave. At least two nodes survive.

        Draw-order compatibility: with the new knobs at their defaults
        this consumes exactly the same RNG draws as it always did, so
        existing seeded plans are bit-identical; ``during_recovery_prob
        > 0`` adds one draw per chained spec.
        """
        candidates = [n for n in range(num_nodes) if n not in spare]
        failures = min(failures, len(candidates), num_nodes - 2)
        victims = rng.sample(candidates, failures)
        specs = []
        for index, victim in enumerate(victims):
            hook = rng.choice(list(hooks))
            occurrence = rng.randint(1, max_occurrence)
            delay = rng.uniform(0.0, max_delay)
            during = False
            if during_recovery_prob > 0.0 and index > 0:
                during = rng.random() < during_recovery_prob
            if during:
                # Strike mid-recovery: count recovery waves from any
                # node; the index-th wave is the previous spec's.
                specs.append(FailureSpec(
                    victim=victim, hook=Hooks.RECOVERY_START,
                    occurrence=index, delay=delay, during=True))
            else:
                specs.append(FailureSpec(
                    victim=victim, hook=hook, occurrence=occurrence,
                    delay=delay, chained=index > 0,
                    min_gap=min_gap_us if index > 0 else 0.0,
                ))
        return cls(specs)
