"""Declarative failure plans.

A :class:`FaultPlan` is a reproducible schedule of fail-stop events —
time-based, protocol-point-based, or chained (armed when the previous
recovery completes) — applied to a runtime in one call. Benchmarks and
stress tests use plans instead of hand-wiring injector callbacks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.cluster import FailureInjector, Hooks
from repro.errors import ConfigError

#: Protocol points that make interesting kill sites.
INTERESTING_HOOKS = (
    Hooks.LOCK_ACQUIRED,
    Hooks.LOCK_RELEASED,
    Hooks.RELEASE_COMMITTED,
    Hooks.DIFF_PHASE1_DONE,
    Hooks.DIFF_PHASE2_START,
    Hooks.CHECKPOINT_A,
    Hooks.CHECKPOINT_B,
    Hooks.BARRIER_ENTER,
    Hooks.PAGE_FAULT,
)


@dataclass(frozen=True)
class FailureSpec:
    """One fail-stop event.

    Exactly one of ``at_time`` / ``hook`` must be set. ``chained`` means
    the spec is armed only after the previous spec's recovery completes
    (the paper's multiple-but-not-simultaneous regime).
    """

    victim: int
    at_time: Optional[float] = None
    hook: Optional[str] = None
    occurrence: int = 1
    delay: float = 0.0
    chained: bool = False

    def __post_init__(self) -> None:
        if (self.at_time is None) == (self.hook is None):
            raise ConfigError(
                "FailureSpec needs exactly one of at_time / hook")

    def describe(self) -> str:
        where = (f"t={self.at_time}" if self.at_time is not None
                 else f"{self.hook}#{self.occurrence}+{self.delay}us")
        chain = " (chained)" if self.chained else ""
        return f"kill node {self.victim} at {where}{chain}"


@dataclass
class FaultPlan:
    """An ordered set of failures to inject into one run."""

    specs: List[FailureSpec] = field(default_factory=list)

    def add(self, spec: FailureSpec) -> "FaultPlan":
        self.specs.append(spec)
        return self

    def describe(self) -> str:
        return "; ".join(spec.describe() for spec in self.specs) \
            or "(no failures)"

    def apply(self, runtime) -> List:
        """Install the plan on a runtime; returns injection records
        (chained specs' records appear once armed)."""
        injector = FailureInjector(runtime.cluster)
        records: List = []

        immediate = [s for s in self.specs if not s.chained]
        chain = [s for s in self.specs if s.chained]

        def arm(spec: FailureSpec) -> None:
            if spec.at_time is not None:
                records.append(injector.kill_at_time(spec.victim,
                                                     spec.at_time))
            else:
                records.append(injector.kill_on_hook(
                    spec.victim, spec.hook, occurrence=spec.occurrence,
                    delay=spec.delay))

        for spec in immediate:
            arm(spec)

        pending = list(chain)

        def on_recovery_done(node_id, **info) -> None:
            if pending:
                arm(pending.pop(0))

        if pending:
            runtime.cluster.hooks.on(Hooks.RECOVERY_DONE,
                                     on_recovery_done)
        return records

    @classmethod
    def single(cls, victim: int, hook: str, occurrence: int = 1,
               delay: float = 0.0) -> "FaultPlan":
        return cls([FailureSpec(victim=victim, hook=hook,
                                occurrence=occurrence, delay=delay)])

    @classmethod
    def random_plan(cls, rng: random.Random, num_nodes: int,
                    failures: int = 1,
                    hooks: Sequence[str] = INTERESTING_HOOKS,
                    max_occurrence: int = 6,
                    max_delay: float = 20.0,
                    spare: Sequence[int] = ()) -> "FaultPlan":
        """A reproducible random plan.

        Victims are distinct and exclude ``spare`` nodes; failures
        after the first are chained so the run stays within the
        paper's non-simultaneous regime. At least two nodes survive.
        """
        candidates = [n for n in range(num_nodes) if n not in spare]
        failures = min(failures, len(candidates), num_nodes - 2)
        victims = rng.sample(candidates, failures)
        specs = []
        for index, victim in enumerate(victims):
            specs.append(FailureSpec(
                victim=victim,
                hook=rng.choice(list(hooks)),
                occurrence=rng.randint(1, max_occurrence),
                delay=rng.uniform(0.0, max_delay),
                chained=index > 0,
            ))
        return cls(specs)
