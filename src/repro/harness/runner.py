"""The SVM runtime: wires cluster, protocol agents, and app threads.

Usage::

    runtime = SvmRuntime(config, workload)
    result = runtime.run()
    print(result.breakdown.six_component())

The runtime owns thread placement (round-robin over nodes by default,
matching SPMD launches), the init/timed-region split (application
initialization runs before metrics start, as SPLASH-2 measurements do),
result collection, and -- for the fault-tolerant protocol -- the
recovery orchestration glue (respawning migrated threads).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.apps.base import AppContext, Workload
from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.errors import ApplicationError, ProtocolError
from repro.memory import Segment
from repro.metrics import (
    Breakdown,
    NodeCounters,
    RunCounters,
    ThreadClock,
)
from repro.metrics.latency import LatencyBook
from repro.protocol.barrier import BarrierManager
from repro.protocol.homes import HomeMap
from repro.protocol.api import SvmThread

#: The runtime reserves the highest barrier id for the init/timed split.
INIT_BARRIER_OFFSET = 1


@dataclass
class ThreadRecord:
    """Book-keeping for one application thread."""

    tid: int
    home_node: int
    current_node: int
    svm: SvmThread
    clock: ThreadClock
    ctx: AppContext
    proc: object = None
    finished: bool = False
    #: Number of times this thread has been resumed after a failure.
    resumptions: int = 0


@dataclass
class RunResult:
    """Everything a benchmark needs from one run."""

    elapsed_us: float
    breakdown: Breakdown
    counters: RunCounters
    per_node_counters: List[NodeCounters]
    thread_clocks: List[ThreadClock] = field(repr=False, default_factory=list)
    recoveries: int = 0
    latency: LatencyBook = field(repr=False, default_factory=LatencyBook)
    #: Longest single-failure exposure window (us): failure detection to
    #: the moment every affected page/lock/checkpoint ward is replicated
    #: on two live nodes again. 0.0 when no failures occurred.
    exposed_window_us: float = 0.0


class SvmRuntime:
    """One complete simulated execution of a workload."""

    def __init__(self, config: ClusterConfig,
                 workload: Workload) -> None:
        self.config = config
        self.workload = workload
        self.cluster = Cluster(config)
        self.engine = self.cluster.engine
        self.homes = HomeMap(config.num_nodes,
                             self.cluster.address_space.home_hint,
                             config.num_locks)
        self.recovery_manager = None
        agent_cls = self._agent_class()
        self.agents = [agent_cls(self.cluster, node_id, self.homes, self)
                       for node_id in range(config.num_nodes)]
        # Every node can become the barrier manager if lower-numbered
        # nodes fail, so each registers the service; only the current
        # manager (lowest live node) receives arrivals.
        self.barrier_managers = [BarrierManager(agent, self)
                                 for agent in self.agents]
        self.threads: List[ThreadRecord] = []
        self._timing_started = False
        self._timing_start_us = 0.0
        if config.protocol.is_ft:
            from repro.protocol.ft.recovery import RecoveryManager
            self.recovery_manager = RecoveryManager(self)

    def _agent_class(self):
        if self.config.protocol.is_ft:
            from repro.protocol.ft.protocol import FtSvmNodeAgent
            return FtSvmNodeAgent
        from repro.protocol.agent import SvmNodeAgent
        return SvmNodeAgent

    # ------------------------------------------------------------------
    # Interfaces used by protocol agents
    # ------------------------------------------------------------------

    def alloc(self, name: str, nbytes: int, home="block") -> Segment:
        return self.cluster.address_space.alloc(name, nbytes, home=home)

    def interval_source(self, node: int) -> int:
        """Which node serves write-notice queries about ``node``."""
        return node

    def barrier_manager_node(self) -> int:
        return self.homes.barrier_manager()

    def expected_barrier_nodes(self) -> int:
        """Live nodes currently hosting at least one unfinished thread."""
        return len(self.expected_barrier_node_ids())

    def expected_barrier_node_ids(self) -> set:
        # Membership is defined by *detected* failures (the excluded
        # set of the home map), never by ground-truth liveness: a node
        # that died undetected must still be counted, so that the
        # barrier stalls and the manager's watchdog probes it.
        return {rec.current_node for rec in self.threads
                if not rec.finished
                and rec.current_node not in self.homes.failed}

    def threads_on_node(self, node_id: int) -> int:
        return sum(1 for rec in self.threads
                   if rec.current_node == node_id and not rec.finished)

    def agent(self, node_id: int):
        return self.agents[node_id]

    # ------------------------------------------------------------------
    # Thread lifecycle
    # ------------------------------------------------------------------

    def _placement(self) -> List[int]:
        """tid -> node. SPMD round-robin: thread t runs on node
        t % num_nodes, giving each node threads_per_node threads."""
        total = self.config.total_threads
        return [tid % self.config.num_nodes for tid in range(total)]

    def _create_threads(self) -> None:
        placement = self._placement()
        total = len(placement)
        for tid, node_id in enumerate(placement):
            clock = ThreadClock(self.engine)
            svm = SvmThread(self.agents[node_id], tid, clock)
            ctx = AppContext(svm, tid, total)
            self.threads.append(ThreadRecord(
                tid=tid, home_node=node_id, current_node=node_id,
                svm=svm, clock=clock, ctx=ctx))

    def _init_barrier_id(self) -> int:
        return self.config.num_barriers - INIT_BARRIER_OFFSET

    def _thread_main(self, rec: ThreadRecord):
        """Top-level generator for one thread: init, timed region, done."""
        ctx = rec.ctx
        if ctx.pending("__init_phase__"):
            init = self.workload.init_kernel(ctx)
            if init is not None:
                yield from init
            yield from ctx.barrier(self._init_barrier_id())
            ctx.done("__init_phase__")
            if self.config.protocol.is_ft:
                # Seed checkpoint: a failure before the first release
                # can still recover into the start of the timed region.
                yield from rec.svm.agent.initial_checkpoint(rec)
            self._note_timing_start(rec)
        if ctx.pending("__main_phase__"):
            yield from self.workload.kernel(ctx)
            ctx.done("__main_phase__")
        rec.finished = True
        rec.clock.stop()
        if self.recovery_manager is not None:
            self.recovery_manager.note_finished()
        return None

    def _note_timing_start(self, rec: ThreadRecord) -> None:
        rec.clock.reset()
        if not self._timing_started:
            self._timing_started = True
            self._timing_start_us = self.engine.now
            for agent in self.agents:
                agent.counters = NodeCounters()
            for node in self.cluster.nodes:
                node.nic.messages_sent = 0
                node.nic.messages_received = 0
                node.nic.bytes_sent = 0
                node.nic.bytes_received = 0
                node.nic.post_queue_stalls = 0

    def spawn_thread(self, rec: ThreadRecord) -> None:
        node = self.cluster.node(rec.current_node)
        rec.proc = node.spawn(self._thread_main(rec),
                              f"app.t{rec.tid}")

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------

    def run(self, verify: bool = True,
            max_sim_us: Optional[float] = None) -> RunResult:
        recorder = self._maybe_flight_record()
        try:
            self.workload.setup(self)
            self._create_threads()
            for rec in self.threads:
                self.spawn_thread(rec)
            self.engine.run(until=max_sim_us)
            self._detect_silent_failures(max_sim_us)
            unfinished = [rec.tid for rec in self.threads
                          if not rec.finished]
            if unfinished:
                raise ProtocolError(
                    f"threads never finished: {unfinished} "
                    f"(simulated time {self.engine.now:.0f}us)")
            if verify:
                self.workload.verify(self)
            return self._collect()
        except BaseException:
            if recorder is not None:
                self._export_crash_trace(recorder)
            raise
        finally:
            if recorder is not None:
                recorder.detach()

    def _maybe_flight_record(self):
        """Opt-in crash tracing: with ``REPRO_FLIGHT_RECORD`` set, every
        run records a flight-recorder timeline and, if the run raises,
        exports it under ``REPRO_TRACE_DIR`` (default ``traces/``) for
        post-mortem inspection -- how CI attaches Perfetto traces to
        failed tests. Off (the default) this allocates nothing."""
        import os
        if not os.environ.get("REPRO_FLIGHT_RECORD"):
            return None
        from repro.obs import FlightRecorder
        return FlightRecorder(self)

    def _export_crash_trace(self, recorder) -> None:
        import os
        outdir = os.environ.get("REPRO_TRACE_DIR", "traces")
        try:
            os.makedirs(outdir, exist_ok=True)
            name = (f"crash-{self.workload.__class__.__name__}"
                    f"-pid{os.getpid()}-n{self._crash_trace_seq()}.json")
            path = os.path.join(outdir, name)
            recorder.export(path)
            print(f"flight recorder: wrote {path}", flush=True)
        except OSError:
            pass  # never let trace export mask the original failure

    _crash_traces = 0

    @classmethod
    def _crash_trace_seq(cls) -> int:
        cls._crash_traces += 1
        return cls._crash_traces

    def _detect_silent_failures(self, max_sim_us) -> None:
        """Eventual failure detection for nodes that die after all
        communication has ceased.

        The protocol's detection is reactive (communication errors,
        heart-beat probes while waiting); a node that fails when every
        survivor has already finished is never probed. Real clusters
        catch this with periodic liveness monitoring; we model that by
        reporting, once the event list drains, any dead-but-undetected
        node still hosting unfinished threads, and letting recovery run.
        """
        if self.recovery_manager is None:
            return
        for _ in range(self.config.num_nodes):
            unfinished = [rec for rec in self.threads if not rec.finished]
            if not unfinished:
                return
            undetected = sorted(
                rec.current_node for rec in unfinished
                if not self.cluster.node(rec.current_node).alive
                and rec.current_node not in self.homes.failed)
            if not undetected:
                return
            self.recovery_manager.report_failure(undetected[0])
            # ``max_sim_us`` bounds runaway event generation, not the
            # recovery itself: when the event list drained early the
            # engine fast-forwarded ``now`` to the cap, so reusing it
            # as the bound would leave recovery's events (scheduled
            # after ``now``) forever unrunnable. Give each detection
            # round its own budget instead.
            until = (None if max_sim_us is None
                     else self.engine.now + max_sim_us)
            self.engine.run(until=until)

    def _collect(self) -> RunResult:
        clocks = [rec.clock for rec in self.threads]
        per_node = [agent.counters for agent in self.agents]
        recoveries = (self.recovery_manager.recoveries
                      if self.recovery_manager else 0)
        exposed = (max(self.recovery_manager.exposed_windows, default=0.0)
                   if self.recovery_manager else 0.0)
        return RunResult(
            elapsed_us=self.engine.now - self._timing_start_us,
            breakdown=Breakdown.merge(clocks),
            counters=RunCounters.aggregate(per_node),
            per_node_counters=per_node,
            thread_clocks=clocks,
            recoveries=recoveries,
            latency=LatencyBook.merged(
                agent.latency for agent in self.agents),
            exposed_window_us=exposed,
        )

    # ------------------------------------------------------------------
    # Debug / verification access (host level, no simulated cost)
    # ------------------------------------------------------------------

    def debug_read(self, addr: int, size: int) -> bytes:
        """Read the authoritative (home) copy of a shared range.

        Used by workload ``verify`` after the simulation: reads the
        fetch store (working copy for the base protocol, committed copy
        for the extended one) at each page's current primary home.
        """
        space = self.cluster.address_space
        out = bytearray()
        pos, remaining = addr, size
        while remaining > 0:
            page, offset = space.locate(pos)
            chunk = min(remaining, space.page_size - offset)
            home = self.homes.primary_home(page)
            store = self.agents[home]._fetch_store(page)
            out += store.read_span(page, offset, chunk)
            pos += chunk
            remaining -= chunk
        return bytes(out)

    def debug_read_array(self, addr: int, dtype, count: int):
        import numpy as np
        dtype = np.dtype(dtype)
        raw = self.debug_read(addr, dtype.itemsize * count)
        return np.frombuffer(raw, dtype=dtype).copy()
