"""Experiment harness: runtime, paper configurations, figures."""

from repro.harness.experiments import (
    APP_ORDER,
    evaluation_config,
    run_app,
    run_suite,
    workload_factories,
)
from repro.harness.runner import RunResult, SvmRuntime, ThreadRecord

__all__ = [
    "SvmRuntime",
    "RunResult",
    "ThreadRecord",
    "run_app",
    "run_suite",
    "workload_factories",
    "evaluation_config",
    "APP_ORDER",
]
