"""repro: fault-tolerant shared virtual memory via dynamic data
replication -- an executable reproduction of Christodoulopoulou, Azimi
& Bilas, HPCA 2003.

Top-level convenience re-exports; see the subpackages for detail:

* :mod:`repro.sim` -- deterministic discrete-event kernel
* :mod:`repro.net` -- Myrinet/VMMC communication model
* :mod:`repro.cluster` -- SMP nodes and fail-stop injection
* :mod:`repro.memory` -- pages, twins, diffs, page tables
* :mod:`repro.protocol` -- the base and fault-tolerant SVM protocols
* :mod:`repro.apps` -- SPLASH-2-style workloads
* :mod:`repro.metrics` -- execution-time breakdowns
* :mod:`repro.harness` -- runtime and paper experiments
"""

from repro.config import (
    ClusterConfig,
    CostModel,
    MemoryParams,
    NetworkParams,
    ProtocolParams,
    paper_testbed_config,
)
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "ClusterConfig",
    "ProtocolParams",
    "NetworkParams",
    "MemoryParams",
    "CostModel",
    "paper_testbed_config",
    "ReproError",
    "__version__",
]
