"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run`` -- one application under one protocol, with breakdown output;
* ``suite`` -- the six-application comparison (Figure 7 style);
* ``figures`` -- regenerate all four paper figures into a directory;
* ``profile`` -- sharing fingerprint + operation latencies of one app;
* ``sweep`` -- fan an experiment matrix out over the parallel
  orchestrator with content-addressed result caching;
* ``recover`` -- fault-injection demo with a recovery timeline;
* ``replay`` -- record / replay a model-check trace; on divergence,
  bisect to the first event where protocol state departs from the
  shadow oracle;
* ``list`` -- available applications and scales.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.harness.experiments import (
    APP_ORDER,
    evaluation_config,
    run_app,
    workload_factories,
)
from repro.metrics import format_breakdown_table


def _cmd_list(_args) -> int:
    print("applications:", ", ".join(APP_ORDER))
    print("scales: test (seconds), bench (default), large (minutes)")
    print("protocols: base (GeNIMA), ft (extended fault-tolerant)")
    return 0


def _cmd_run(args) -> int:
    result = run_app(args.app, args.variant,
                     threads_per_node=args.threads,
                     scale=args.scale,
                     lock_algorithm=args.lock)
    print(f"{args.app} / {args.variant} / {args.threads} thread(s) per "
          f"node / scale={args.scale}")
    print(f"simulated execution time: {result.elapsed_us:.0f} us")
    print()
    six = result.breakdown.six_component()
    total = sum(six.values())
    for component, value in six.items():
        share = value / total * 100 if total else 0.0
        print(f"  {component:16s} {value:12.1f} us  {share:5.1f}%")
    totals = result.counters.total
    print()
    print(f"  page faults {totals.page_faults}, pages diffed "
          f"{totals.pages_diffed} (home fraction "
          f"{result.counters.home_diff_fraction:.2f}), lock acquires "
          f"{totals.lock_acquires}, checkpoints {totals.checkpoints}")
    return 0


def _cmd_suite(args) -> int:
    rows = {}
    overheads = {}
    for app in APP_ORDER:
        base = run_app(app, "base", threads_per_node=args.threads,
                       scale=args.scale)
        extended = run_app(app, "ft", threads_per_node=args.threads,
                           scale=args.scale)
        rows[f"{app}/0"] = base.breakdown.four_component()
        rows[f"{app}/1"] = extended.breakdown.four_component()
        overheads[app] = (extended.elapsed_us / base.elapsed_us - 1) * 100
    print(format_breakdown_table(
        f"SPLASH-2 suite, 8 nodes x {args.threads} thread(s)/node "
        "(0 = base, 1 = extended)",
        rows, ("compute", "data_wait", "lock", "barrier")))
    print()
    for app, pct in overheads.items():
        print(f"  {app:12s} FT overhead {pct:6.1f}%")
    return 0


def _cmd_figures(args) -> int:
    from repro.harness.figures import figure7, figure8, figure9, figure10
    outdir = pathlib.Path(args.output)
    outdir.mkdir(parents=True, exist_ok=True)
    for name, fn in (("fig7", figure7), ("fig8", figure8),
                     ("fig9", figure9), ("fig10", figure10)):
        _data, text = fn(scale=args.scale)
        (outdir / f"{name}.txt").write_text(text + "\n")
        print(f"wrote {outdir / (name + '.txt')}")
    return 0


def _cmd_sweep(args) -> int:
    """Run an experiment matrix through the parallel orchestrator."""
    from repro.parallel import app_spec, resolve_jobs, run_specs

    apps = args.apps or list(APP_ORDER)
    threads = args.threads or [1]
    specs = [app_spec(app, variant, threads_per_node=t,
                      scale=args.scale, seed=args.seed)
             for t in threads
             for variant in args.variants
             for app in apps]
    jobs = resolve_jobs(args.jobs)
    use_cache = not args.no_cache
    print(f"sweep: {len(specs)} cells, {jobs} worker(s), cache "
          f"{'on' if use_cache else 'off'}")

    live = sys.stderr.isatty()

    def progress(res, done, total):
        src = "cache" if res.cached else f"{res.wall_s:5.1f}s"
        line = (f"[{done:3d}/{total}] {res.status:7s} {src:>6s}  "
                f"{res.spec.label}")
        if live:
            print(f"\r\x1b[K{line}", end="" if done < total else "\n",
                  file=sys.stderr, flush=True)
        else:
            print(line, file=sys.stderr, flush=True)

    results = run_specs(specs, jobs=args.jobs, cache=use_cache,
                        progress=progress, timeout_s=args.timeout)
    hits = sum(r.cached for r in results)
    failed = [r for r in results if not r.ok]
    slo_report = None
    if args.report:
        import json

        from repro.metrics.latency import ALL_OPS
        from repro.obs.report import render_sweep_report, sweep_latency_book
        outdir = pathlib.Path(args.report)
        outdir.mkdir(parents=True, exist_ok=True)
        # Machine-readable merged latency histograms next to the sweep
        # report: per-op sparse buckets plus the derived percentiles.
        book = sweep_latency_book(results)
        merged = {"histograms": book.to_dict(),
                  "percentiles": {op: book.percentiles(op)
                                  for op in ALL_OPS
                                  if book.hist(op).count}}
        metrics_path = outdir / "metrics.json"
        metrics_path.write_text(json.dumps(merged, sort_keys=True,
                                           indent=2) + "\n")
        print(f"wrote {metrics_path}")
        if args.slo:
            from repro.obs import SloSpec, evaluate_slo, format_slo_report
            from repro.obs.slo import latency_book_registry
            spec = SloSpec.load(args.slo)
            slo_report = evaluate_slo(spec, latency_book_registry(book))
            (outdir / "slo.json").write_text(
                json.dumps(slo_report, sort_keys=True, indent=2) + "\n")
            print(f"wrote {outdir / 'slo.json'}")
            print(format_slo_report(slo_report))
        path = outdir / "sweep.html"
        path.write_text(render_sweep_report(
            f"Sweep report: {len(specs)} cells",
            results,
            subtitle=f"scale={args.scale}, {jobs} worker(s), cache "
                     f"{'on' if use_cache else 'off'}",
            slo=slo_report))
        print(f"wrote {path}")
    print(f"{len(results) - len(failed)}/{len(results)} ok, "
          f"{hits} served from cache")
    width = max(len(r.spec.label) for r in results)
    for res in results:
        if res.ok:
            summary = res.summary
            print(f"  {res.spec.label:{width}s}  "
                  f"elapsed {summary['elapsed_us']:12.1f} us  "
                  f"checksum {summary['data_checksum'][:12]}")
        else:
            tail = res.error.strip().splitlines()[-1] if res.error else ""
            print(f"  {res.spec.label:{width}s}  {res.status}: {tail}")
    if slo_report is not None and not slo_report["ok"]:
        return 1
    return 1 if failed else 0


def _build_observed_runtime(args):
    """Runtime + (title, subtitle) for the observability commands: an
    application run, or (with ``--program-seed``) a RandomProgram
    model-check scenario."""
    if args.program_seed is not None:
        from repro.verify.replay import ReplayScenario, build_runtime
        scenario = ReplayScenario(
            program_seed=args.program_seed, cluster_seed=args.cluster_seed,
            plan_seed=args.plan_seed, failures=args.failures,
            during_recovery_prob=args.during_recovery_prob,
            min_gap_us=args.min_gap_us)
        runtime = build_runtime(scenario)
        title = (f"RandomProgram {args.program_seed}/{args.cluster_seed}"
                 + (f", plan {args.plan_seed} x{args.failures} failure(s)"
                    if args.plan_seed is not None else ""))
        subtitle = "ft protocol, model-check scenario"
    else:
        from repro.harness.runner import SvmRuntime
        factory = workload_factories(args.scale)[args.app]
        config = evaluation_config(args.variant,
                                   threads_per_node=args.threads)
        runtime = SvmRuntime(config, factory())
        title = f"{args.app} / {args.variant}"
        subtitle = (f"{config.num_nodes} nodes x {args.threads} "
                    f"thread(s), scale={args.scale}")
    return runtime, title, subtitle


def _cmd_report(args) -> int:
    """Run once with full observability attached and write a Perfetto
    trace plus a self-contained HTML report."""
    import json

    from repro.obs import (
        FlightRecorder,
        OpTracer,
        StallWatchdog,
        TimeSeriesSampler,
    )
    from repro.obs.report import render_run_report

    runtime, title, subtitle = _build_observed_runtime(args)
    recorder = FlightRecorder(runtime)
    tracer = OpTracer(runtime)
    sampler = TimeSeriesSampler(runtime, period_us=args.sample_us)
    watchdog = StallWatchdog(runtime, horizon_us=args.watchdog_us,
                             recorder=recorder)
    sampler.start()
    watchdog.start()
    result, error = None, None
    try:
        result = runtime.run(max_sim_us=args.max_sim_us)
    except Exception as exc:  # noqa: BLE001 -- reported in the output
        error = f"{type(exc).__name__}: {exc}"

    outdir = pathlib.Path(args.output)
    outdir.mkdir(parents=True, exist_ok=True)
    trace_path = outdir / "trace.json"
    # Causal-trace flow events ride the extra-events parameter so the
    # flight recorder's own digest (computed without extras) is
    # untouched; Perfetto draws them as arrows between node processes.
    events = recorder.export(
        trace_path,
        counters=(sampler.to_chrome_counters(recorder.cluster_pid)
                  + tracer.flow_events()))
    metrics_path = outdir / "metrics.json"
    metrics_path.write_text(json.dumps(tracer.metrics.to_dict(),
                                       sort_keys=True, indent=2) + "\n")
    html_path = outdir / "report.html"
    html_path.write_text(render_run_report(
        title, subtitle + (f" -- FAILED: {error}" if error else ""),
        result=result, recorder=recorder, sampler=sampler,
        watchdog=watchdog, trace_file=trace_path.name, tracer=tracer))
    print(f"wrote {trace_path} ({events} events; open at "
          "ui.perfetto.dev)")
    print(f"wrote {metrics_path} ({len(tracer)} traced ops)")
    print(f"wrote {html_path}")
    if sampler.times:
        from repro.metrics import timeseries_panel
        times, rates = sampler.rates()
        print()
        print(timeseries_panel("protocol activity (events/ms)",
                               times, rates, unit="/ms"))
    if error:
        print(f"run failed: {error}")
        if watchdog.dumps:
            print(watchdog.dumps[-1])
        return 1
    return 0


def _cmd_trace_op(args) -> int:
    """Run with causal tracing on; print the worst-N operations of
    each class as causal trees with per-hop timing."""
    from repro.obs import OpTracer

    runtime, title, subtitle = _build_observed_runtime(args)
    tracer = OpTracer(runtime)
    runtime.run(max_sim_us=args.max_sim_us)
    print(f"{title} -- {subtitle}")
    print(f"{len(tracer)} traced operations")
    classes = ([args.op_class] if args.op_class else
               sorted({tracer.op(i).op_class for i in tracer.op_ids()}))
    for op_class in classes:
        hist = tracer.metrics.histograms.get(
            f"optrace.{op_class}.latency_us")
        if hist is not None and hist.count:
            p = hist.percentiles()
            print(f"\n== {op_class}: n={hist.count} "
                  f"p50={p['p50']:.0f}us p99={p['p99']:.0f}us "
                  f"p999={p['p999']:.0f}us ==")
        else:
            print(f"\n== {op_class} ==")
        for op_id in tracer.worst(args.worst, op_class):
            print(tracer.render(op_id))
    return 0


def _cmd_slo(args) -> int:
    """Run with causal tracing on and evaluate an SLO spec; non-zero
    exit (with the worst exemplar trace per violated class) on
    violation."""
    import json

    from repro.obs import OpTracer, SloSpec, evaluate_slo, format_slo_report
    from repro.obs.slo import default_slo_spec

    runtime, title, subtitle = _build_observed_runtime(args)
    tracer = OpTracer(runtime)
    result = runtime.run(max_sim_us=args.max_sim_us)
    spec = (SloSpec.load(args.spec) if args.spec
            else default_slo_spec())
    report = evaluate_slo(spec, tracer.metrics,
                          elapsed_us=result.elapsed_us,
                          exposed_window_us=result.exposed_window_us)
    print(f"{title} -- {subtitle}")
    print(format_slo_report(report))
    if args.output:
        outdir = pathlib.Path(args.output)
        outdir.mkdir(parents=True, exist_ok=True)
        slo_path = outdir / "slo.json"
        slo_path.write_text(json.dumps(report, sort_keys=True,
                                       indent=2) + "\n")
        metrics_path = outdir / "metrics.json"
        metrics_path.write_text(json.dumps(tracer.metrics.to_dict(),
                                           sort_keys=True, indent=2)
                                + "\n")
        print(f"wrote {slo_path}")
        print(f"wrote {metrics_path}")
    if not report["ok"]:
        # Fail loudly: attach the worst exemplar causal tree for every
        # violated operation class so the p999 attribution is in the log.
        for op_class in sorted({c["op_class"] for c in report["checks"]
                                if not c["ok"]}):
            for op_id in tracer.worst(1, op_class):
                print()
                print(f"worst {op_class} exemplar:")
                print(tracer.render(op_id))
        return 1
    return 0


def _cmd_profile(args) -> int:
    from repro.harness.runner import SvmRuntime
    from repro.metrics import SharingProfiler

    factory = workload_factories(args.scale)[args.app]
    config = evaluation_config(args.variant,
                               threads_per_node=args.threads)
    runtime = SvmRuntime(config, factory())
    profiler = SharingProfiler(runtime)
    result = runtime.run()
    print(f"{args.app} / {args.variant}: sharing profile by segment")
    print(profiler.table())
    print()
    print("operation latencies:")
    print(result.latency.table())
    totals = result.counters.total
    print()
    print(f"pages diffed {totals.pages_diffed} (home fraction "
          f"{result.counters.home_diff_fraction:.2f}); faults "
          f"{totals.page_faults}; checkpoints {totals.checkpoints}")
    return 0


def _cmd_recover(args) -> int:
    from repro.cluster import FailureInjector, Hooks
    from repro.harness.runner import SvmRuntime

    factory = workload_factories(args.scale)[args.app]
    config = evaluation_config("ft", threads_per_node=args.threads)
    runtime = SvmRuntime(config, factory())
    injector = FailureInjector(runtime.cluster)
    injector.kill_on_hook(args.victim, Hooks.RELEASE_COMMITTED,
                          occurrence=args.occurrence, delay=1.0)
    timeline = []
    for name in (Hooks.FAILURE_DETECTED, Hooks.RECOVERY_START,
                 Hooks.THREAD_RESUMED, Hooks.RECOVERY_DONE):
        runtime.cluster.hooks.on(
            name, lambda nid, _n=name, **info: timeline.append(
                (runtime.engine.now, _n, nid, info)))
    result = runtime.run()
    print(f"{args.app}: node {args.victim} fail-stopped at its "
          f"{args.occurrence}th release; result verified.")
    for t, event, node_id, info in timeline:
        print(f"  {t:12.1f}us  {event:18s} node={node_id} "
              + (f"tid={info['tid']}" if "tid" in info else "")
              + (f"took={info['duration_us']:.1f}us"
                 if "duration_us" in info else ""))
    print(f"recoveries: {result.recoveries}; "
          f"live nodes: {runtime.cluster.live_nodes()}")
    return 0


def _cmd_replay(args) -> int:
    from repro.verify.replay import ReplayScenario, record_trace, replay_trace

    if args.record:
        scenario = ReplayScenario(
            program_seed=args.program_seed, cluster_seed=args.cluster_seed,
            plan_seed=args.plan_seed, failures=args.failures,
            during_recovery_prob=args.during_recovery_prob,
            min_gap_us=args.min_gap_us)
        header = record_trace(scenario, args.trace,
                              sim_budget_us=args.sim_budget_us)
        status = header["outcome"]
        if header["error"]:
            status += f" ({header['error']})"
        print(f"recorded {header['events']} events to {args.trace} "
              f"({header['elapsed_us']:.0f}us simulated): {status}")
        return 0

    outcome = replay_trace(args.trace, sim_budget_us=args.sim_budget_us)
    sc = outcome["scenario"]
    print(f"replaying program_seed={sc.program_seed} "
          f"cluster_seed={sc.cluster_seed} plan_seed={sc.plan_seed} "
          f"failures={sc.failures}")
    if outcome["outcome"] == "clean" and not outcome["findings"]:
        print("PASS: run completed and all recovery invariants held")
        return 0
    if outcome["error"] is not None:
        print(f"run failed: {outcome['error']}")
    for finding in outcome["findings"]:
        print(f"  {finding.time_us:12.1f}us  {finding.invariant}: "
              f"{finding.detail}")
    first = outcome["first_divergence"]
    if outcome["outcome"] == "hang":
        print(f"HANG: sim-time budget exhausted at "
              f"{outcome['elapsed_us']:.0f}us with threads "
              f"{outcome['unfinished']} unfinished -- liveness bug, "
              f"not a state mismatch; run under the stall watchdog "
              f"for wait-for edges")
    elif first is None:
        print("bisection: no auditable stop diverges from the oracle "
              "(divergence is transient or end-state only)")
    else:
        print(f"bisection ({first['probes']} re-runs): first auditable "
              f"divergence at t={first['time_us']:.1f}us")
        for ev in first["events"]:
            print(f"  {ev}")
        for finding in first["findings"]:
            print(f"    -> {finding.invariant}: {finding.detail}")
    return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fault-tolerant SVM cluster simulator (HPCA 2003 "
                    "reproduction)")
    # Shared by every subcommand (a parent parser, so the flag sits
    # after the subcommand: 'repro run FFT --profile 30').
    profiled = argparse.ArgumentParser(add_help=False)
    profiled.add_argument(
        "--profile", type=int, nargs="?", const=25, default=None,
        metavar="N",
        help="run the command under cProfile and print the top N "
             "functions by cumulative host time (default 25)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list applications and scales",
                   parents=[profiled]).set_defaults(fn=_cmd_list)

    p_run = sub.add_parser("run", help="run one application",
                           parents=[profiled])
    p_run.add_argument("app", choices=APP_ORDER)
    p_run.add_argument("--variant", choices=("base", "ft"), default="ft")
    p_run.add_argument("--threads", type=int, default=1,
                       help="compute threads per node")
    p_run.add_argument("--scale", default="bench",
                       choices=("test", "bench", "large"))
    p_run.add_argument("--lock", choices=("polling", "queueing"),
                       default="polling")
    p_run.set_defaults(fn=_cmd_run)

    p_suite = sub.add_parser("suite", help="base-vs-extended suite table",
                             parents=[profiled])
    p_suite.add_argument("--threads", type=int, default=1)
    p_suite.add_argument("--scale", default="bench",
                         choices=("test", "bench", "large"))
    p_suite.set_defaults(fn=_cmd_suite)

    p_fig = sub.add_parser("figures", help="regenerate paper figures",
                           parents=[profiled])
    p_fig.add_argument("--output", default="results")
    p_fig.add_argument("--scale", default="bench",
                       choices=("test", "bench", "large"))
    p_fig.set_defaults(fn=_cmd_figures)

    p_sweep = sub.add_parser(
        "sweep", help="parallel, cached experiment matrix",
        parents=[profiled])
    p_sweep.add_argument("--apps", nargs="*", choices=APP_ORDER,
                         metavar="APP",
                         help="subset of applications (default: all)")
    p_sweep.add_argument("--variants", nargs="*",
                         choices=("base", "ft"), default=("base", "ft"))
    p_sweep.add_argument("--threads", nargs="*", type=int, metavar="T",
                         help="threads-per-node values (default: 1)")
    p_sweep.add_argument("--scale", default="bench",
                         choices=("test", "bench", "large"))
    p_sweep.add_argument("--seed", type=int, default=2003)
    p_sweep.add_argument("--jobs", type=int, default=None,
                         help="worker processes (default: REPRO_JOBS "
                              "env var, else os.cpu_count())")
    p_sweep.add_argument("--no-cache", action="store_true",
                         help="ignore and do not write the result cache")
    p_sweep.add_argument("--timeout", type=float, default=None,
                         metavar="SEC",
                         help="per-cell wall-clock timeout")
    p_sweep.add_argument("--report", metavar="DIR", default=None,
                         help="also write a sweep-level HTML report "
                              "(orchestrator stats, per-spec timing) "
                              "plus merged metrics JSON into DIR")
    p_sweep.add_argument("--slo", metavar="SPEC", default=None,
                         help="with --report: evaluate the merged "
                              "latency histograms against an SLO spec "
                              "JSON; non-zero exit on violation")
    p_sweep.set_defaults(fn=_cmd_sweep)

    # Scenario options shared by the observability commands (report /
    # trace-op / slo): an application run, or a model-check scenario.
    observed = argparse.ArgumentParser(add_help=False)
    observed.add_argument("--app", choices=APP_ORDER, default="FFT")
    observed.add_argument("--variant", choices=("base", "ft"),
                          default="ft")
    observed.add_argument("--threads", type=int, default=1)
    observed.add_argument("--scale", default="bench",
                          choices=("test", "bench", "large"))
    observed.add_argument("--program-seed", type=int, default=None,
                          help="observe a RandomProgram model-check "
                               "scenario instead of an application")
    observed.add_argument("--cluster-seed", type=int, default=1)
    observed.add_argument("--plan-seed", type=int, default=None)
    observed.add_argument("--failures", type=int, default=0)
    observed.add_argument("--during-recovery-prob", type=float,
                          default=0.0,
                          help="probability each failure after the "
                               "first strikes during the previous "
                               "recovery")
    observed.add_argument("--min-gap-us", type=float, default=0.0,
                          help="minimum gap (us) between a completed "
                               "recovery and the next chained failure")
    observed.add_argument("--max-sim-us", type=float, default=None,
                          help="cap simulated time (deadlock hunts)")

    p_report = sub.add_parser(
        "report", help="run with observability on; write Perfetto "
                       "trace + metrics JSON + HTML report",
        parents=[profiled, observed])
    p_report.add_argument("--output", default="results/report",
                          metavar="DIR")
    p_report.add_argument("--sample-us", type=float, default=500.0,
                          help="time-series sampling period "
                               "(simulated us)")
    p_report.add_argument("--watchdog-us", type=float, default=20_000.0,
                          help="stall watchdog zero-progress horizon "
                               "(simulated us)")
    p_report.set_defaults(fn=_cmd_report)

    p_trace = sub.add_parser(
        "trace-op", help="print worst-N causal operation trees with "
                         "per-hop timing",
        parents=[profiled, observed])
    p_trace.add_argument("--op-class", default=None,
                         help="restrict to one operation class "
                              "(default: all observed classes)")
    p_trace.add_argument("--worst", type=int, default=3, metavar="N",
                         help="trees per class, slowest first")
    p_trace.set_defaults(fn=_cmd_trace_op)

    p_slo = sub.add_parser(
        "slo", help="evaluate per-operation latency percentiles and "
                    "availability against an SLO spec",
        parents=[profiled, observed])
    p_slo.add_argument("--spec", default=None, metavar="JSON",
                       help="SLO spec file (default: the built-in "
                            "generous spec, committed at "
                            "results/slo_default.json)")
    p_slo.add_argument("--output", default=None, metavar="DIR",
                       help="write slo.json + metrics.json into DIR")
    p_slo.set_defaults(fn=_cmd_slo)

    p_prof = sub.add_parser("profile",
                            help="sharing + latency profile of one app",
                            parents=[profiled])
    p_prof.add_argument("app", choices=APP_ORDER)
    p_prof.add_argument("--variant", choices=("base", "ft"),
                        default="ft")
    p_prof.add_argument("--threads", type=int, default=1)
    p_prof.add_argument("--scale", default="bench",
                        choices=("test", "bench", "large"))
    p_prof.set_defaults(fn=_cmd_profile)

    p_rec = sub.add_parser("recover", help="fault-injection demo",
                           parents=[profiled])
    p_rec.add_argument("--app", choices=APP_ORDER, default="WaterNsq")
    p_rec.add_argument("--victim", type=int, default=3)
    p_rec.add_argument("--occurrence", type=int, default=4,
                       help="kill at the victim's Nth release")
    p_rec.add_argument("--threads", type=int, default=1)
    p_rec.add_argument("--scale", default="bench",
                       choices=("test", "bench", "large"))
    p_rec.set_defaults(fn=_cmd_recover)

    p_rep = sub.add_parser(
        "replay", help="record / replay / bisect a model-check trace",
        parents=[profiled])
    p_rep.add_argument("trace", help="trace file (JSONL)")
    p_rep.add_argument("--record", action="store_true",
                       help="run the scenario and record the trace "
                            "instead of replaying one")
    p_rep.add_argument("--program-seed", type=int, default=145)
    p_rep.add_argument("--cluster-seed", type=int, default=1)
    p_rep.add_argument("--plan-seed", type=int, default=None)
    p_rep.add_argument("--failures", type=int, default=0)
    p_rep.add_argument("--during-recovery-prob", type=float, default=0.0,
                       help="probability each failure after the first "
                            "strikes during the previous recovery")
    p_rep.add_argument("--min-gap-us", type=float, default=0.0,
                       help="minimum gap (us) between a completed "
                            "recovery and the next chained failure")
    p_rep.add_argument("--sim-budget-us", type=float, default=1_000_000.0,
                       help="per-run simulated-time budget; a run that "
                            "exhausts it with unfinished threads is "
                            "classified as a hang (default: 1e6)")
    p_rep.set_defaults(fn=_cmd_replay)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.profile is None:
        return args.fn(args)
    # Host-side profiling: where does the simulator itself spend time?
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    rc = profiler.runcall(args.fn, args)
    print()
    print(f"-- host profile: top {args.profile} by cumulative time --")
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats("cumulative").print_stats(args.profile)
    return rc


if __name__ == "__main__":
    sys.exit(main())
