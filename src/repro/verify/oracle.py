"""Shadow "oracle" memory maintained outside the protocol.

The oracle keeps its own copy of the whole shared address space and
updates it from two sources only:

* **raw application stores**, observed via each agent's
  ``write_observer`` callback (installed by the checker) -- these are
  buffered per node, in program order, without touching any protocol
  state;
* **publication events** -- a buffered interval is *sealed* when its
  node commits a release (``RELEASE_COMMITTED``, which atomically ends
  the interval) and *applied to the shadow memory* only when the
  release's point-B "complete" record is stored at the backup node
  (``CHECKPOINT_STORED``/``complete``). That store is the protocol's
  durability point: a release whose complete record reached the backup
  is rolled forward after a failure, anything younger is rolled back.

Because same-byte writers are serialized by locks and a lock is only
handed over *after* point B (and barriers likewise complete a full
release pipeline per node before releasing a generation), applying
sealed intervals in complete-record order reproduces exactly the bytes
the protocol is obliged to preserve. At any quiescent audit point the
committed copy at each page's primary home must therefore be bitwise
equal to the oracle -- independently of how many failures, rollbacks,
roll-forwards, or home reassignments happened in between.

On ``FAILURE_DETECTED`` the failed node's unsealed buffer and its
sealed-but-unpublished intervals are discarded, mirroring recovery's
rollback: the node's threads resume from checkpoints that predate that
data and will re-execute (and re-observe) those writes.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

#: One buffered store: (page, offset, bytes).
Write = Tuple[int, int, bytes]


class ShadowOracle:
    """Publication-ordered shadow copy of the shared address space."""

    def __init__(self, num_pages: int, page_size: int) -> None:
        self.num_pages = num_pages
        self.page_size = page_size
        self._mem = bytearray(num_pages * page_size)
        #: node -> stores of the currently open interval.
        self._open: Dict[int, List[Write]] = {}
        #: (node, seq) -> sealed-but-unpublished stores.
        self._sealed: Dict[Tuple[int, int], List[Write]] = {}
        #: seal order per node (publication applies seqs in order).
        self._sealed_order: Dict[int, List[int]] = {}
        #: (node, seq) pairs already applied (publication idempotence:
        #: a recovery-rewound release re-runs point B with its seq).
        self.published: Set[Tuple[int, int]] = set()
        #: Total stores observed (diagnostics).
        self.writes_observed = 0

    # -- feed: raw stores ------------------------------------------------

    def observe_write(self, node: int, page: int, offset: int,
                      data: bytes) -> None:
        self.writes_observed += 1
        self._open.setdefault(node, []).append((page, offset, data))

    # -- feed: protocol lifecycle ----------------------------------------

    def seal(self, node: int, seq: int) -> None:
        """A release commit ended ``node``'s open interval as ``seq``."""
        if (node, seq) in self._sealed or (node, seq) in self.published:
            return  # recovery retry re-entering an already-sealed commit
        self._sealed[(node, seq)] = self._open.pop(node, [])
        self._sealed_order.setdefault(node, []).append(seq)

    def publish(self, node: int, seq: int) -> None:
        """``node``'s release ``seq`` reached its durability point:
        apply every sealed interval of ``node`` up to ``seq``."""
        order = self._sealed_order.get(node, [])
        while order and order[0] <= seq:
            s = order.pop(0)
            for page, offset, data in self._sealed.pop((node, s), ()):
                start = page * self.page_size + offset
                self._mem[start:start + len(data)] = data
            self.published.add((node, s))

    def drop_node(self, node: int) -> None:
        """``node`` failed: discard everything it had not published."""
        self._open.pop(node, None)
        for seq in self._sealed_order.pop(node, []):
            self._sealed.pop((node, seq), None)

    # -- reads -----------------------------------------------------------

    def page(self, page_id: int) -> bytes:
        start = page_id * self.page_size
        return bytes(self._mem[start:start + self.page_size])

    def unpublished_nodes(self) -> List[int]:
        """Nodes still holding unsealed or unpublished stores."""
        dirty = {node for node, writes in self._open.items() if writes}
        dirty.update(node for node, order in self._sealed_order.items()
                     if order)
        return sorted(dirty)
