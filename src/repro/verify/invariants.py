"""Protocol invariant auditing at configurable sync points.

:class:`RecoveryInvariantChecker` attaches to a fault-tolerant runtime
*before* the run and audits, from hooks:

* **replica/oracle agreement** -- at every release, barrier and
  completed recovery (and once more at the end of the run), the
  committed copy at each page's primary home, the tentative copy at its
  secondary home, and the shadow oracle must agree bitwise. Pages
  belonging to a release still in flight are excluded: their two-phase
  propagation is allowed to be mid-air, and the pipeline's resumption
  rules guarantee they converge by the next quiescent point.
* **checkpoint atomicity** -- a thread state stored at a backup under
  release ``seq`` must be byte-identical to the state snapshotted when
  that release's interval was committed. This is the invariant whose
  violation caused the 145/1/533 divergence: states shipped at point A
  after the releaser's commit used to include execution that belongs
  to the *next* interval.
* **checkpoint / interval monotonicity** -- per (ward, thread) stored
  checkpoint seqs never regress (a fresh seq-0 seed after migration is
  the only reset); per node committed interval numbers never regress;
  ``published_interval`` never exceeds ``interval_no``.
* **diff accounting** -- every diff send is routed to the phase's
  current home (tentative to the secondary, committed to the primary);
  a diff is never applied more often than it was sent; at the end of
  the run every send to a still-live node was applied at least once,
  and every *published* release's interval is reflected in its pages'
  primary-home version tables (no diff dropped during reassignment).
* **recovery reconciliation** -- recovery must never roll *back* a
  release the oracle saw published (its effects are visible: replaying
  it doubles every RMW in the interval -- the 145/1/475 divergence),
  and no thread may resume from a state checkpointed under a seq past
  the checkpoint horizon or equal to a rolled-back release.
* **barrier-epoch consistency** -- at every barrier reconciliation
  point (recovery step 7b) all live nodes must agree on the merged
  per-barrier generation counts, and no unfinished thread may carry a
  ``("__bar__", bid)`` epoch beyond its node's completed count. A
  thread ahead of its node deadlocks the next generation (the
  145/1/612 divergence).
* **full re-protection** -- at every completed recovery (and at the end
  of the run) every allocated page and lock must again have two
  replicas on distinct live nodes, and every live node's checkpoint
  backup must be a distinct live node holding at least everything the
  node's self-mirror claims durable. This is the contract that lets
  the cluster absorb arbitrary failure *sequences*, not just one.

The checker is pure observer: it subscribes to hooks, installs the
(otherwise inert) per-agent ``write_observer``, and never mutates
protocol state, so an attached checker cannot change simulation
outcomes -- only surface them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cluster import Hooks
from repro.errors import ProtocolError
from repro.protocol.ft.checkpoint import encode_thread_state
from repro.verify.oracle import ShadowOracle

#: Sync points at which audits run.
ALL_POINTS = ("release", "barrier", "failure", "recovery", "final")

#: Commit snapshots kept per node (covers the double buffer plus
#: recovery re-ships of the newest release).
_SNAPSHOT_KEEP = 4


class InvariantViolation(ProtocolError):
    """A protocol invariant failed an audit."""

    def __init__(self, findings: List["Finding"]) -> None:
        super().__init__("; ".join(str(f) for f in findings))
        self.findings = findings


@dataclass(frozen=True)
class Finding:
    """One observed invariant violation."""

    time_us: float
    invariant: str
    detail: str

    def __str__(self) -> str:
        return (f"[{self.invariant} @ {self.time_us:.2f}us] "
                f"{self.detail}")


class RecoveryInvariantChecker:
    """Audits FT protocol invariants against a shadow oracle."""

    def __init__(self, runtime, points=ALL_POINTS,
                 strict: bool = True) -> None:
        if not runtime.config.protocol.is_ft:
            raise ProtocolError(
                "the invariant checker audits the ft variant only")
        self.runtime = runtime
        self.points = frozenset(points)
        self.strict = strict
        self.violations: List[Finding] = []
        config = runtime.config
        self.oracle = ShadowOracle(config.shared_pages,
                                   config.memory.page_size)
        self.audits_run = 0

        # -- tracking state --------------------------------------------
        #: node -> seq -> (interval, pages) for every commit seen.
        self._commits: Dict[int, Dict[int, Tuple[int, List[int]]]] = {}
        #: node -> {seq: {tid: state blob}} frozen at the commit.
        self._commit_states: Dict[int, Dict[int, Dict[int, bytes]]] = {}
        self._last_interval: Dict[int, int] = {}
        self._last_state_seq: Dict[Tuple[int, int], int] = {}
        self._last_pending_seq: Dict[int, int] = {}
        #: ward -> seq of its last release known complete at a backup.
        self._last_complete_seq: Dict[int, int] = {}
        #: ward -> seq recovery chose to roll back (per recovery).
        self._rolled_back: Dict[int, int] = {}
        #: (writer, seq, page, phase, target) -> count.
        self._sends: Dict[tuple, int] = {}
        self._applies: Dict[tuple, int] = {}

        for agent in runtime.agents:
            agent.write_observer = self._make_observer(agent.node_id)
        hooks = runtime.cluster.hooks
        hooks.on(Hooks.RELEASE_COMMITTED, self._on_commit)
        hooks.on(Hooks.CHECKPOINT_STORED, self._on_checkpoint_stored)
        hooks.on(Hooks.DIFF_SEND, self._on_diff_send)
        hooks.on(Hooks.DIFF_APPLY, self._on_diff_apply)
        hooks.on(Hooks.FAILURE_DETECTED, self._on_failure)
        hooks.on(Hooks.RECOVERY_RECONCILE, self._on_reconcile)
        hooks.on(Hooks.THREAD_RESUMED, self._on_thread_resumed)
        if "release" in self.points:
            hooks.on(Hooks.RELEASE_DONE,
                     lambda node_id, **info: self.audit("release"))
        if "barrier" in self.points:
            hooks.on(Hooks.BARRIER_EXIT,
                     lambda node_id, **info: self.audit("barrier"))
        if "recovery" in self.points:
            hooks.on(Hooks.RECOVERY_DONE,
                     lambda node_id, **info: self.audit("recovery"))

    # ------------------------------------------------------------------
    # Hook feeds
    # ------------------------------------------------------------------

    def _make_observer(self, node_id: int):
        observe = self.oracle.observe_write

        def observer(page: int, offset: int, data: bytes) -> None:
            observe(node_id, page, offset, data)
        return observer

    def _on_commit(self, node_id: int, interval: int, pages,
                   seq: Optional[int] = None, **info) -> None:
        if seq is None:
            return  # base-variant commit; nothing to track
        last = self._last_interval.get(node_id, 0)
        if interval < last:
            self._report("interval-monotonicity",
                         f"node {node_id} committed interval {interval} "
                         f"after {last}")
        self._last_interval[node_id] = interval
        self._commits.setdefault(node_id, {})[seq] = (interval,
                                                      list(pages))
        self.oracle.seal(node_id, seq)
        # Freeze what every local thread's checkpointable state looks
        # like at this exact commit; points A/B must ship these bytes.
        states = {rec.tid: encode_thread_state(rec.ctx.state)
                  for rec in self.runtime.threads
                  if rec.current_node == node_id and not rec.finished}
        per_node = self._commit_states.setdefault(node_id, {})
        per_node[seq] = states
        while len(per_node) > _SNAPSHOT_KEEP:
            del per_node[min(per_node)]

    def _on_checkpoint_stored(self, node_id: int, kind: str, ward: int,
                              seq: int, **info) -> None:
        if kind == "state":
            tid = info["tid"]
            last = self._last_state_seq.get((ward, tid), 0)
            if seq < last and seq != 0:
                self._report(
                    "checkpoint-monotonicity",
                    f"ward {ward} thread {tid} stored checkpoint seq "
                    f"{seq} after seq {last}")
            self._last_state_seq[(ward, tid)] = max(last, seq)
            expected = self._commit_states.get(ward, {}).get(seq)
            if expected is not None and tid in expected \
                    and info["blob"] != expected[tid]:
                self._report(
                    "checkpoint-atomicity",
                    f"ward {ward} thread {tid} checkpoint under seq "
                    f"{seq} differs from the state frozen at that "
                    f"release's commit (post-commit execution leaked "
                    f"into the checkpoint)")
        elif kind == "pending":
            last = self._last_pending_seq.get(ward, 0)
            if seq < last:
                self._report(
                    "checkpoint-monotonicity",
                    f"ward {ward} stored pending release seq {seq} "
                    f"after seq {last}")
            self._last_pending_seq[ward] = max(last, seq)
        elif kind == "complete":
            self.oracle.publish(ward, seq)
            self._last_complete_seq[ward] = max(
                self._last_complete_seq.get(ward, 0), seq)

    def _on_diff_send(self, node_id: int, phase: str, seq: int,
                      interval: int, page: int, target: int,
                      **info) -> None:
        homes = self.runtime.homes
        expected = (homes.secondary_home(page) if phase == "tent"
                    else homes.primary_home(page))
        if target != expected:
            self._report(
                "diff-routing",
                f"node {node_id} sent {phase} diff of page {page} "
                f"(seq {seq}) to node {target}, current "
                f"{'secondary' if phase == 'tent' else 'primary'} "
                f"home is {expected}")
        key = (node_id, seq, page, phase, target)
        self._sends[key] = self._sends.get(key, 0) + 1

    def _on_diff_apply(self, node_id: int, phase: str, writer: int,
                       interval: int, seq: int, page: int,
                       **info) -> None:
        key = (writer, seq, page, phase, node_id)
        count = self._applies.get(key, 0) + 1
        self._applies[key] = count
        if count > self._sends.get(key, 0):
            self._report(
                "diff-duplication",
                f"{phase} diff of page {page} (writer {writer}, seq "
                f"{seq}) applied {count} times at node {node_id} but "
                f"sent {self._sends.get(key, 0)} times")

    def _on_failure(self, failed: int, **info) -> None:
        self.oracle.drop_node(failed)
        if "failure" in self.points:
            self.audit("failure")

    def _on_reconcile(self, failed: int, action: str = "",
                      **info) -> None:
        if action == "rollback":
            seq = info.get("seq")
            if seq is None:
                return
            self._rolled_back[failed] = seq
            if (failed, seq) in self.oracle.published:
                self._report(
                    "published-rollback",
                    f"recovery rolled back release seq {seq} of node "
                    f"{failed} whose effects were already published "
                    f"through point B (replaying it doubles every RMW "
                    f"in the interval)")
        elif action == "barrier-reconcile":
            self._audit_barrier_epochs(info.get("generations") or {})

    def _audit_barrier_epochs(self, generations: Dict[int, int]) -> None:
        """Barrier-epoch consistency at a RECOVERY_RECONCILE point:
        recovery runs at quiescence, so after step 7b every live node
        must hold exactly the merged generation counts and no
        unfinished thread may be ahead of its node."""
        self.audits_run += 1
        failed = self.runtime.homes.failed
        agents = self.runtime.agents
        for agent in agents:
            if agent.node_id in failed:
                continue
            for bid, gen in generations.items():
                have = agent.barrier_done.get(bid, 0)
                if have != gen:
                    self._report(
                        "barrier-agreement",
                        f"after reconciliation node {agent.node_id} "
                        f"counts {have} completed generations of "
                        f"barrier {bid}, merged truth is {gen}")
        for rec in self.runtime.threads:
            if rec.finished or rec.current_node in failed:
                continue
            node_done = agents[rec.current_node].barrier_done
            for key, epoch in rec.ctx.state.items():
                if not (isinstance(key, tuple) and len(key) == 2
                        and key[0] == "__bar__"):
                    continue
                bid = key[1]
                if epoch > node_done.get(bid, 0):
                    self._report(
                        "barrier-epoch",
                        f"thread {rec.tid} on node {rec.current_node} "
                        f"carries barrier {bid} epoch {epoch} beyond "
                        f"its node's completed count "
                        f"{node_done.get(bid, 0)} (the next generation "
                        f"would deadlock)")

    def _on_thread_resumed(self, node_id: int, tid: int = -1,
                           ward: Optional[int] = None,
                           seq: Optional[int] = None,
                           max_valid_seq: Optional[int] = None,
                           **info) -> None:
        if ward is None or seq is None:
            return
        if max_valid_seq is not None and seq > max_valid_seq:
            self._report(
                "resume-horizon",
                f"thread {tid} of node {ward} resumed from checkpoint "
                f"seq {seq} past the valid horizon {max_valid_seq}")
        if self._rolled_back.get(ward) == seq:
            self._report(
                "resume-after-rollback",
                f"thread {tid} of node {ward} resumed from a state "
                f"checkpointed under rolled-back release seq {seq} "
                f"(its pre-rollback progress would replay)")

    # ------------------------------------------------------------------
    # Audits
    # ------------------------------------------------------------------

    def _report(self, invariant: str, detail: str) -> None:
        finding = Finding(self.runtime.engine.now, invariant, detail)
        self.violations.append(finding)
        if self.strict:
            raise InvariantViolation([finding])

    def _inflight_pages(self) -> set:
        skip: set = set()
        for agent in self.runtime.agents:
            for fl in agent._inflight.values():
                skip.update(fl.pages)
        return skip

    def _map_matches_liveness(self) -> bool:
        """Copy audits are meaningful only when detected failures match
        ground truth: between a silent death and its detection the old
        map still routes to frozen stores."""
        cluster = self.runtime.cluster
        failed = self.runtime.homes.failed
        return all(node.alive or node.node_id in failed
                   for node in cluster.nodes)

    def audit(self, point: str) -> None:
        """Run the audits appropriate for ``point`` now."""
        self.audits_run += 1
        self._audit_counters()
        if point != "failure":
            self._audit_copies()
        if point == "recovery":
            self._audit_reprotection()

    def _audit_counters(self) -> None:
        for agent in self.runtime.agents:
            if agent.node_id in self.runtime.homes.failed:
                continue
            if not self.runtime.cluster.node(agent.node_id).alive:
                continue
            if agent.published_interval > agent.interval_no:
                self._report(
                    "publish-bound",
                    f"node {agent.node_id} published interval "
                    f"{agent.published_interval} beyond its interval "
                    f"counter {agent.interval_no}")

    def _audit_copies(self, skip_inflight: bool = True) -> None:
        manager = self.runtime.recovery_manager
        if manager is not None and manager.active is not None:
            return  # mid-recovery state is intentionally inconsistent
        if not self._map_matches_liveness():
            return
        homes = self.runtime.homes
        agents = self.runtime.agents
        skip = self._inflight_pages() if skip_inflight else set()
        for page in homes.allocated_pages():
            if page in skip:
                continue
            oracle = self.oracle.page(page)
            committed = agents[homes.primary_home(page)] \
                .committed.read_page(page)
            if committed != oracle:
                self._report(
                    "oracle-agreement",
                    f"committed copy of page {page} at primary home "
                    f"{homes.primary_home(page)} differs from the "
                    f"shadow oracle")
                continue
            tentative = agents[homes.secondary_home(page)] \
                .tentative.read_page(page)
            if tentative != oracle:
                self._report(
                    "replica-agreement",
                    f"tentative copy of page {page} at secondary home "
                    f"{homes.secondary_home(page)} differs from the "
                    f"committed copy/oracle")

    def _audit_reprotection(self) -> None:
        """Full re-protection after recovery (step 8's contract): every
        allocated page and every lock has its two replicas on distinct
        live nodes, and every live node's shipped checkpoints are held
        by a distinct live backup at least as far as the node's own
        self-mirror claims durable. Audited at every completed recovery
        and once more at the end of the run, this is what turns
        "tolerates one failure" into "tolerates failure sequences":
        each recovery must leave the cluster as protected as it started.
        """
        manager = self.runtime.recovery_manager
        if manager is not None and manager.active is not None:
            return  # intermediate wave of a multi-victim rendezvous
        if not self._map_matches_liveness():
            return
        homes = self.runtime.homes
        agents = self.runtime.agents
        failed = homes.failed

        def live(node: int) -> bool:
            return (node not in failed
                    and self.runtime.cluster.node(node).alive)

        for page in homes.allocated_pages():
            primary = homes.primary_home(page)
            secondary = homes.secondary_home(page)
            if primary == secondary or not live(primary) \
                    or not live(secondary):
                self._report(
                    "re-protection",
                    f"page {page} lacks two distinct live replicas: "
                    f"primary {primary}, secondary {secondary}, failed "
                    f"set {sorted(failed)}")
        for lock_id in range(self.runtime.config.num_locks):
            primary = homes.lock_primary(lock_id)
            secondary = homes.lock_secondary(lock_id)
            if primary == secondary or not live(primary) \
                    or not live(secondary):
                self._report(
                    "re-protection",
                    f"lock {lock_id} lacks two distinct live replicas: "
                    f"primary {primary}, secondary {secondary}, failed "
                    f"set {sorted(failed)}")
        for agent in agents:
            node = agent.node_id
            if not live(node):
                continue
            backup = homes.backup_node(node)
            if backup == node or not live(backup):
                self._report(
                    "re-protection",
                    f"node {node}'s checkpoint backup {backup} is not "
                    f"a distinct live node")
                continue
            held = agents[backup].ckpt_store.max_valid_seq(node)
            mirrored = agent.ckpt_mirror.max_valid_seq(node)
            if held < mirrored:
                self._report(
                    "re-protection",
                    f"node {node}'s backup {backup} holds release "
                    f"records only through seq {held}, the node's "
                    f"self-mirror claims seq {mirrored} durable")

    # ------------------------------------------------------------------
    # End-of-run audit
    # ------------------------------------------------------------------

    def finalize(self) -> List[Finding]:
        """Audit the terminal state; returns (and in strict mode raises
        on) all findings. Call after ``runtime.run()``."""
        if "final" in self.points:
            self._audit_final()
        if self.violations and self.strict:
            raise InvariantViolation(self.violations)
        return self.violations

    def _audit_final(self) -> None:
        inflight = [agent.node_id for agent in self.runtime.agents
                    if agent._inflight
                    and agent.node_id not in self.runtime.homes.failed]
        if inflight:
            self._report("pipeline-drained",
                         f"releases still in flight at end of run on "
                         f"nodes {inflight}")
        unpublished = [n for n in self.oracle.unpublished_nodes()
                       if n not in self.runtime.homes.failed]
        if unpublished:
            self._report(
                "all-published",
                f"nodes {unpublished} finished with writes never "
                f"published through point B")
        self._audit_counters()
        self._audit_copies(skip_inflight=False)
        self._audit_reprotection()
        self._audit_version_coverage()
        self._audit_no_dropped_diffs()

    def _audit_version_coverage(self) -> None:
        """Every published release's interval must be present in its
        pages' primary-home version tables -- the home absorbed (or
        recovery reconstructed) every published diff."""
        homes = self.runtime.homes
        agents = self.runtime.agents
        for (writer, seq) in sorted(self.oracle.published):
            commit = self._commits.get(writer, {}).get(seq)
            if commit is None:
                continue
            interval, pages = commit
            for page in pages:
                primary = agents[homes.primary_home(page)]
                have = primary.page_versions.get(page, {}).get(writer, 0)
                if have < interval:
                    self._report(
                        "no-dropped-diff",
                        f"published release seq {seq} of node {writer} "
                        f"(interval {interval}) never reached page "
                        f"{page}'s primary home {primary.node_id} "
                        f"(version table has {have})")

    def _audit_no_dropped_diffs(self) -> None:
        failed = self.runtime.homes.failed
        for key, sent in sorted(self._sends.items()):
            writer, seq, page, phase, target = key
            if target in failed or writer in failed:
                continue  # in-flight loss at a dead node is expected
            if self._applies.get(key, 0) == 0:
                self._report(
                    "no-dropped-diff",
                    f"{phase} diff of page {page} (writer {writer}, "
                    f"seq {seq}) was sent to live node {target} "
                    f"{sent}x but never applied")

    def assert_clean(self) -> None:
        """Finalize and fail loudly on any finding (strict or not)."""
        strict, self.strict = self.strict, False
        try:
            findings = self.finalize()
        finally:
            self.strict = strict
        if findings:
            raise InvariantViolation(findings)
