"""Deterministic trace recording, replay, and divergence bisection.

The simulator is bit-deterministic in its seeds, so a failing run can
be replayed exactly -- and, because it can be replayed, it can be
*bisected*: re-execute the same scenario up to successively chosen
event timestamps from a recorded trace, audit protocol state against
the shadow oracle at each stop, and binary-search for the first event
at which the state departs from the oracle.

Workflow (also exposed as ``repro replay``)::

    scenario = ReplayScenario(program_seed=145, cluster_seed=1,
                              plan_seed=533, failures=2)
    record_trace(scenario, "divergence.jsonl")     # full event trace
    outcome = replay_trace("divergence.jsonl")     # re-run + bisect
    print(outcome["first_divergence"])

Audits at an arbitrary stop time are *transient-aware*: pages of
releases still in flight are excluded, and stops that land inside a
recovery window (or between a silent death and its detection) report
"not auditable" and are treated as clean for the search, so the
bisection converges on the first *auditable* divergence.

Every full re-execution runs under a per-run simulated-time budget
(``sim_budget_us``): a regression back into deadlock generates poll
events forever, and an event-starved hang would otherwise park the
recorder indefinitely. A run that exhausts its budget with unfinished
threads is classified as a ``hang`` (and reported with the stuck
thread ids) instead of a state ``mismatch``; hangs skip the oracle
bisection, whose probes audit memory state, not liveness.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, fields
from typing import List, Optional

from repro.apps.randomprog import RandomProgram
from repro.config import ClusterConfig, MemoryParams, ProtocolParams
from repro.harness.faultplan import FaultPlan
from repro.harness.runner import SvmRuntime
from repro.metrics.trace import FULL_EVENTS, ProtocolTrace, load_jsonl
from repro.verify.invariants import Finding, RecoveryInvariantChecker


@dataclass(frozen=True)
class ReplayScenario:
    """Everything needed to re-create one model-check run exactly."""

    program_seed: int
    cluster_seed: int
    plan_seed: Optional[int] = None
    failures: int = 0
    #: Probability that a chained failure strikes *during* the previous
    #: failure's recovery instead of after it (0.0 keeps the historical
    #: draw order, so old scenarios replay bit-identically).
    during_recovery_prob: float = 0.0
    #: Minimum gap (us) between a completed recovery and the arming of
    #: the next chained failure.
    min_gap_us: float = 0.0
    variant: str = "ft"
    lock_algorithm: str = "polling"
    num_nodes: int = 4
    threads_per_node: int = 1
    shared_pages: int = 64
    num_locks: int = 64
    num_barriers: int = 8
    page_size: int = 512
    phases: int = 3
    actions_per_phase: int = 4
    counters: int = 3
    slots_per_thread: int = 6

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ReplayScenario":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


def build_runtime(scenario: ReplayScenario) -> SvmRuntime:
    """A runtime + workload (+ fault plan) for the scenario; identical
    construction to the random model check's ``make_runtime``."""
    config = ClusterConfig(
        num_nodes=scenario.num_nodes,
        threads_per_node=scenario.threads_per_node,
        shared_pages=scenario.shared_pages,
        num_locks=scenario.num_locks,
        num_barriers=scenario.num_barriers,
        seed=scenario.cluster_seed,
        memory=MemoryParams(page_size=scenario.page_size),
        protocol=ProtocolParams(variant=scenario.variant,
                                lock_algorithm=scenario.lock_algorithm))
    workload = RandomProgram(
        program_seed=scenario.program_seed, phases=scenario.phases,
        actions_per_phase=scenario.actions_per_phase,
        counters=scenario.counters,
        slots_per_thread=scenario.slots_per_thread,
        nthreads_hint=scenario.num_nodes * scenario.threads_per_node)
    runtime = SvmRuntime(config, workload)
    if scenario.plan_seed is not None and scenario.failures > 0:
        FaultPlan.random_plan(
            random.Random(scenario.plan_seed), scenario.num_nodes,
            scenario.failures,
            during_recovery_prob=scenario.during_recovery_prob,
            min_gap_us=scenario.min_gap_us).apply(runtime)
    return runtime


#: Default per-run simulated-time budget. Generously above any clean
#: model-check run (they finish in tens of milliseconds of simulated
#: time) so only genuine hangs trip it.
DEFAULT_SIM_BUDGET_US = 1_000_000.0


def classify_outcome(error: Optional[str], runtime,
                     sim_budget_us: Optional[float]) -> str:
    """``clean`` / ``hang`` / ``mismatch`` for one capped run."""
    if error is None:
        return "clean"
    unfinished = any(not rec.finished for rec in runtime.threads)
    if unfinished and sim_budget_us is not None \
            and runtime.engine.now >= sim_budget_us:
        return "hang"
    return "mismatch"


def record_trace(scenario: ReplayScenario, path,
                 capacity: int = 500_000,
                 sim_budget_us: Optional[float] = DEFAULT_SIM_BUDGET_US
                 ) -> dict:
    """Run the scenario once, recording the full event trace to
    ``path`` (JSONL). Returns the header written (scenario + outcome);
    an analytic-verify or protocol error is captured, not raised, and
    a run that exhausts ``sim_budget_us`` is recorded as a hang."""
    runtime = build_runtime(scenario)
    trace = ProtocolTrace(runtime.cluster, events=FULL_EVENTS,
                          capacity=capacity)
    error = None
    try:
        runtime.run(max_sim_us=sim_budget_us)
    except Exception as exc:  # noqa: BLE001 -- recorded, not hidden
        error = f"{type(exc).__name__}: {exc}"
    header = {"scenario": scenario.to_dict(), "error": error,
              "outcome": classify_outcome(error, runtime, sim_budget_us),
              "unfinished": [rec.tid for rec in runtime.threads
                             if not rec.finished],
              "elapsed_us": runtime.engine.now, "events": len(trace)}
    trace.export_jsonl(path, header=header)
    return header


def probe(scenario: ReplayScenario,
          until_us: float) -> Optional[List[Finding]]:
    """Re-run deterministically up to ``until_us`` (inclusive) and
    audit against a freshly maintained oracle.

    Returns the findings (empty list == clean), or None when the
    stopped state is not auditable (mid-recovery, or a node has died
    but its failure is not yet detected)."""
    runtime = build_runtime(scenario)
    checker = RecoveryInvariantChecker(runtime, points=(), strict=False)
    runtime.workload.setup(runtime)
    runtime._create_threads()
    for rec in runtime.threads:
        runtime.spawn_thread(rec)
    runtime.engine.run(until=until_us)
    manager = runtime.recovery_manager
    if manager is not None and manager.active is not None:
        return None
    if not checker._map_matches_liveness():
        return None
    checker.audit("probe")
    return checker.violations


def bisect_divergence(scenario: ReplayScenario,
                      events) -> Optional[dict]:
    """Find the first recorded event timestamp at which a deterministic
    re-run fails the oracle audit.

    ``events`` is the recorded trace (TraceEvent list). Returns None if
    even the final stop audits clean, else a dict with the divergence
    time, the findings there, the trace events at that timestamp, and
    the number of re-runs used."""
    times = sorted({ev.time_us for ev in events})
    if not times:
        return None
    probes = 0

    def dirty(index: int) -> bool:
        nonlocal probes
        probes += 1
        findings = probe(scenario, times[index])
        return bool(findings)

    if not dirty(len(times) - 1):
        return None
    lo, hi = 0, len(times) - 1  # invariant: hi is dirty
    if dirty(0):
        hi = 0
    while lo < hi:
        mid = (lo + hi) // 2
        if dirty(mid):
            hi = mid
        else:
            lo = mid + 1
    t = times[hi]
    findings = probe(scenario, t) or []
    return {
        "time_us": t,
        "findings": findings,
        "events": [ev for ev in events if ev.time_us == t],
        "probes": probes,
    }


def replay_trace(path,
                 sim_budget_us: Optional[float] = DEFAULT_SIM_BUDGET_US
                 ) -> dict:
    """Re-execute a recorded trace end to end with the invariant
    checker attached; on divergence, bisect to the first bad event.

    Returns ``{"scenario", "error", "outcome", "unfinished",
    "elapsed_us", "findings", "first_divergence"}``. ``outcome`` is
    ``clean``, ``mismatch``, or ``hang`` (the run exhausted its
    sim-time budget with the listed threads unfinished). Only
    mismatches are bisected: the probes audit memory against the
    oracle, and a deadlocked run's memory state is typically
    consistent -- what is wrong is liveness, which the stuck thread
    ids and the stall watchdog localize instead."""
    header, events = load_jsonl(path)
    if header is None or "scenario" not in header:
        raise ValueError(f"{path} has no scenario header; was it "
                         "written by record_trace / repro replay "
                         "--record?")
    scenario = ReplayScenario.from_dict(header["scenario"])
    runtime = build_runtime(scenario)
    checker = RecoveryInvariantChecker(runtime, strict=False)
    error = None
    try:
        runtime.run(max_sim_us=sim_budget_us)
    except Exception as exc:  # noqa: BLE001 -- reported, not hidden
        error = f"{type(exc).__name__}: {exc}"
    checker.finalize()
    outcome = classify_outcome(error, runtime, sim_budget_us)
    first = None
    if outcome == "mismatch" or checker.violations:
        first = bisect_divergence(scenario, events)
    return {
        "scenario": scenario,
        "error": error,
        "outcome": outcome,
        "unfinished": [rec.tid for rec in runtime.threads
                       if not rec.finished],
        "elapsed_us": runtime.engine.now,
        "findings": checker.violations,
        "first_divergence": first,
    }
