"""Recovery-invariant checking and deterministic trace replay.

This package is the correctness safety net around the fault-tolerant
protocol (see docs/RECOVERY.md):

* :class:`ShadowOracle` -- a shadow shared memory maintained entirely
  outside the protocol, fed by raw application stores and committed in
  point-B (publication) order;
* :class:`RecoveryInvariantChecker` -- audits replica agreement,
  checkpoint/interval monotonicity, diff accounting, and checkpoint
  atomicity at configurable sync points;
* :mod:`repro.verify.replay` -- records structured event traces and
  bisects a diverging run to the first auditable departure from the
  oracle.

Everything here is strictly opt-in: nothing is attached unless a test
(or the ``repro replay`` CLI) constructs a checker, so the simulator's
hot paths are unaffected in normal runs.
"""

from repro.verify.invariants import (
    InvariantViolation,
    RecoveryInvariantChecker,
)
from repro.verify.oracle import ShadowOracle

__all__ = [
    "InvariantViolation",
    "RecoveryInvariantChecker",
    "ShadowOracle",
]
