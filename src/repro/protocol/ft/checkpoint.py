"""Remote thread-state checkpointing (paper section 4.4).

At every release, a node ships to its *backup node* (the next live node
in ring order):

* at **point A** (updates committed, before diff propagation): the
  execution state of every local thread other than the releaser, plus a
  ``pending`` record naming the release and its page set and carrying
  the release's computed diffs;
* at **point B** (first diff-propagation phase complete): the releasing
  thread's own state and a ``complete`` record with the node's vector
  timestamp.

Thread states are **double-buffered** per thread: a failure while a
checkpoint is being written must leave the previous complete checkpoint
usable (section 4.5.3).

Because Python cannot snapshot a native stack, a "thread state" here is
the pickled explicit kernel state (``ctx.state``); see apps/base.py for
the replay contract. The pickled size plays the role of the paper's
2-2.8 KB stack, and is charged to the wire and the checkpoint cost
model for real.

The ``pending`` record's diffs are an addition relative to the paper's
text: they make roll-forward possible even when the failed node was
itself one of the two homes of an updated page (in which case the
surviving copy alone cannot reconstruct a completed release). DESIGN.md
discusses this completion of the scheme.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.memory import Diff


@dataclass
class ThreadSlot:
    """One buffer of the double-buffered thread state."""

    seq: int = -1
    blob: bytes = b""


@dataclass
class ReleaseRecord:
    """What the backup knows about one release of its ward."""

    seq: int
    interval: int
    pages: List[int] = field(default_factory=list)
    diffs: Dict[int, bytes] = field(default_factory=dict)
    ts_blob: Optional[bytes] = None  # set by the point-B "complete"

    @property
    def complete(self) -> bool:
        return self.ts_blob is not None


class CheckpointStore:
    """Backup-side storage for one or more wards' recovery state.

    Lives at a node; written via NOTIFY messages so deposits cost real
    wire time; read directly (host-level) during recovery, which models
    the backup node locally consuming its own memory.
    """

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        #: (ward_node, tid) -> [slot0, slot1]
        self._threads: Dict[Tuple[int, int], List[ThreadSlot]] = {}
        #: ward_node -> latest pending release record.
        self._pending: Dict[int, ReleaseRecord] = {}
        #: ward_node -> latest *complete* release record.
        self._completed: Dict[int, ReleaseRecord] = {}
        #: ward_node -> interval -> pages (mirrored write notices).
        self.interval_mirror: Dict[int, Dict[int, List[int]]] = {}

    # -- writes (driven by incoming checkpoint messages) -----------------

    def store_thread_state(self, ward: int, tid: int, seq: int,
                           blob: bytes) -> None:
        slots = self._threads.setdefault((ward, tid),
                                         [ThreadSlot(), ThreadSlot()])
        slot = slots[seq % 2]
        slot.seq = seq
        slot.blob = blob

    def store_pending(self, ward: int, record: ReleaseRecord) -> None:
        self._pending[ward] = record
        if record.pages:
            # An empty release (nothing committed) reuses the previous
            # interval number; it must not clobber that interval's
            # mirrored write notices.
            self.interval_mirror.setdefault(ward, {})[record.interval] = \
                list(record.pages)

    def store_complete(self, ward: int, seq: int, ts_blob: bytes) -> None:
        record = self._pending.get(ward)
        if record is not None and record.seq == seq:
            record.ts_blob = ts_blob
            self._completed[ward] = record
            self._coalesce_mirror(ward, record.interval)

    def _coalesce_mirror(self, ward: int, horizon: int) -> None:
        """Bound the mirror: fold write notices of intervals below the
        newest *complete* release into that release's entry.

        Recovery only ever replays the mirror to nodes whose vector
        timestamp is *behind* an interval; a node whose timestamp
        already covers ``horizon`` received the notices for every
        earlier interval with the timestamp itself, so attributing the
        folded pages to ``horizon`` at worst re-invalidates a page at a
        lagging node (safe: the next access re-fetches the committed
        copy). A pending-but-incomplete release always has an interval
        at or above ``horizon`` and is never folded, so rollback can
        still drop exactly its own notices. Net effect: between barrier
        trims the mirror holds at most the horizon entry plus one
        in-flight interval, instead of growing per release forever."""
        mirror = self.interval_mirror.get(ward)
        if not mirror:
            return
        stale = [i for i in mirror if i < horizon]
        if not stale:
            return
        folded = set(mirror.get(horizon, ()))
        for interval in stale:
            folded.update(mirror.pop(interval))
        mirror[horizon] = sorted(folded)

    # -- reads (recovery, host level) ---------------------------------------

    def latest_thread_state(self, ward: int, tid: int,
                            max_seq: Optional[int] = None
                            ) -> Optional[dict]:
        """The newest usable thread state.

        ``max_seq`` implements section 4.5.3's slot selection: states
        saved during a release that never reached point B describe a
        continuation whose updates were rolled back, so only slots with
        ``seq <= max_seq`` (the last *complete* release) are valid.
        Double buffering guarantees the previous release's slot is
        still intact.
        """
        slots = self._threads.get((ward, tid))
        if not slots:
            return None
        usable = [s for s in slots if s.seq >= 0
                  and (max_seq is None or s.seq <= max_seq)]
        if not usable:
            return None
        best = max(usable, key=lambda s: s.seq)
        return pickle.loads(best.blob)

    def max_valid_seq(self, ward: int) -> int:
        """Highest release seq whose checkpoint states may be used."""
        pending = self._pending.get(ward)
        if pending is None:
            return 0
        return pending.seq if pending.complete else pending.seq - 1

    def pending_release(self, ward: int) -> Optional[ReleaseRecord]:
        return self._pending.get(ward)

    def last_complete_release(self, ward: int) -> Optional[ReleaseRecord]:
        return self._completed.get(ward)

    def release_diffs(self, record: ReleaseRecord) -> Dict[int, Diff]:
        return {page: Diff.decode(blob)
                for page, blob in record.diffs.items()}

    def trim_mirror(self, ward: int, horizon: int) -> None:
        """Drop mirrored write notices the whole cluster has seen.

        ``horizon`` is the ward's interval as of its last completed
        barrier: the barrier distributed those notices to every node,
        so a recovery of the ward never needs to re-broadcast them.
        """
        mirror = self.interval_mirror.get(ward)
        if not mirror:
            return
        for interval in [i for i in mirror if i <= horizon]:
            del mirror[interval]

    def absorb(self, source: "CheckpointStore", ward: int) -> int:
        """Adopt ``ward``'s full recovery state from ``source``.

        Used when a ward's backup node dies: the ward copies its own
        self-mirror (everything it ever shipped, confirmed) to the new
        backup, so the checkpoint *history* -- not just the live
        release metadata -- survives back-to-back failures. Returns the
        approximate byte volume copied (for recovery cost accounting).
        """
        nbytes = 0
        for (src_ward, tid), slots in source._threads.items():
            if src_ward != ward:
                continue
            self._threads[(ward, tid)] = [
                ThreadSlot(seq=s.seq, blob=s.blob) for s in slots]
            nbytes += sum(len(s.blob) for s in slots)
        for table, mine in ((source._pending, self._pending),
                            (source._completed, self._completed)):
            record = table.get(ward)
            if record is not None:
                mine[ward] = ReleaseRecord(
                    seq=record.seq, interval=record.interval,
                    pages=list(record.pages), diffs=dict(record.diffs),
                    ts_blob=record.ts_blob)
                nbytes += sum(len(b) for b in record.diffs.values())
        mirror = source.interval_mirror.get(ward)
        if mirror:
            self.interval_mirror[ward] = {
                interval: list(pages) for interval, pages in mirror.items()}
            nbytes += 16 * sum(len(p) for p in mirror.values())
        return nbytes

    def slot_seqs(self, ward: int, tid: int) -> List[int]:
        """The seqs currently held in a thread's two slots (diagnostic
        and invariant-checking aid; -1 marks a never-written slot)."""
        slots = self._threads.get((ward, tid))
        if not slots:
            return []
        return [s.seq for s in slots]

    def forget_ward(self, ward: int) -> None:
        """Drop a ward's state (it failed and has been recovered)."""
        self._threads = {k: v for k, v in self._threads.items()
                         if k[0] != ward}
        self._pending.pop(ward, None)
        self._completed.pop(ward, None)
        # interval_mirror is kept: recovery may still serve it.


def encode_thread_state(state: dict) -> bytes:
    """Pickle a kernel's explicit state (the 'context + stack')."""
    return pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
