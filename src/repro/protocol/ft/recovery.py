"""Failure recovery orchestration (paper section 4.5).

When any thread detects a node failure (a communication error or a
heart-beat timeout), recovery proceeds in the phases the paper
describes:

1. **Global rendezvous** -- every live application thread parks (in
   flight barriers are aborted; local waits count as quiescent since
   the waited-on thread itself parks). This realizes the precondition
   that no update propagation is outstanding anywhere except at the
   failed node.
2. **Reconfiguration** -- every node excludes the failed node from its
   (deterministic) home map: pages and locks get new primary/secondary
   homes, always on distinct live nodes.
3. **Replica reconciliation** -- the failed node's last release is
   rolled *forward* (its point-B timestamp was saved: apply its saved
   diffs to the surviving/new home copies) or *backward* (undo its
   partial tentative updates). Un-published releases of *surviving*
   nodes are also rewound to their phase-1 start so their retries
   re-propagate cleanly against the new homes.
4. **Re-replication** -- pages and locks that lost one replica get a
   fresh second replica on the new home.
5. **Global state exchange** -- a barrier-equivalent merge of vector
   timestamps (capped at each node's *published* interval) and write
   notices, including the failed node's mirrored interval log, so that
   every live node has invalidated everything it must.
6. **Thread resumption** -- the failed node's threads are re-created on
   its backup node from their latest complete checkpoints and
   immediately re-checkpointed to the new backup.

A second failure while recovery is in progress raises
:class:`UnrecoverableFailure` (the paper tolerates multiple failures
only when the system fully recovers in between).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.apps.base import AppContext
from repro.cluster import Hooks
from repro.errors import RecoveryError, UnrecoverableFailure
from repro.protocol.ft.checkpoint import encode_thread_state
from repro.protocol.ft.protocol import STAGE_PHASE1, STAGE_POINT_B
from repro.protocol.locks import LOCKTS_REGION, LOCKVEC_REGION
from repro.protocol.signals import RecoverySignal
from repro.protocol.timestamps import VectorTimestamp
from repro.sim import Delay, Event


class RecoveryManager:
    """Cluster-wide recovery coordinator.

    Host-level object (one per runtime): the real system computes all
    of this independently-but-identically on every live node from
    deterministic inputs; centralizing it in the simulator changes no
    observable behaviour, and its costs are charged to simulated time.
    """

    def __init__(self, runtime) -> None:
        self.runtime = runtime
        self.engine = runtime.engine
        self.recoveries = 0
        self.last_recovery_us: float = 0.0
        self.active: Optional[int] = None
        self.recovered: Set[int] = set()
        self._parked: Set[int] = set()
        self._blocked: Dict[int, int] = {}
        self._done_event: Optional[Event] = None
        self._quiescent: Optional[Event] = None

    # ------------------------------------------------------------------
    # Quiescence tracking
    # ------------------------------------------------------------------

    def note_blocked(self, node_id: int) -> None:
        self._blocked[node_id] = self._blocked.get(node_id, 0) + 1
        self._check_quiescent()

    def note_unblocked(self, node_id: int) -> None:
        self._blocked[node_id] = self._blocked.get(node_id, 0) - 1

    def note_finished(self) -> None:
        self._check_quiescent()

    def _required_parkers(self) -> List[int]:
        return [rec.tid for rec in self.runtime.threads
                if not rec.finished
                and rec.current_node != self.active
                and self.runtime.cluster.node(rec.current_node).alive]

    def _check_quiescent(self) -> None:
        if self.active is None or self._quiescent is None \
                or self._quiescent.settled:
            return
        required = self._required_parkers()
        blocked = sum(count for node, count in self._blocked.items()
                      if self.runtime.cluster.node(node).alive)
        if len(self._parked & set(required)) + blocked >= len(required):
            self._quiescent.succeed(None)

    # ------------------------------------------------------------------
    # Entry points called from protocol code
    # ------------------------------------------------------------------

    def report_failure(self, failed: int) -> None:
        if failed in self.recovered and self.active is None:
            return  # stale signal about an already-recovered node
        if self.active is not None:
            if failed != self.active:
                raise UnrecoverableFailure(
                    f"node {failed} failed while recovery of node "
                    f"{self.active} is still in progress")
            return
        if self.runtime.cluster.node(failed).alive:
            raise RecoveryError(
                f"false failure suspicion of live node {failed}")
        self.active = failed
        self._done_event = Event(self.engine, "recovery.done")
        self._quiescent = Event(self.engine, "recovery.quiescent")
        self._parked.clear()
        for node_id in self._live_ids():
            agent = self.runtime.agents[node_id]
            agent.recovery_pending = RecoverySignal(failed)
            # Unmap connections from the failed node everywhere, NOW:
            # deposits it posted just before dying may still be on the
            # wire, and applying one after recovery rebuilds the target
            # region would resurrect dead state (e.g. a lock-vector
            # slot that every later acquirer spins on forever).
            agent.node.nic.shun(failed)
            agent.abort_local_waits()
        for manager in self.runtime.barrier_managers:
            manager.abort_pending()
        self.runtime.cluster.hooks.fire(
            Hooks.FAILURE_DETECTED, failed, time=self.engine.now)
        self.engine.spawn(self._coordinate(failed), "recovery.coord")
        self._check_quiescent()

    def park(self, thread):
        """Generator: wait at the recovery rendezvous until recovery
        completes. Returns immediately on stale signals."""
        if self.active is None:
            return None
        self._parked.add(thread.thread_id)
        done = self._done_event
        self._check_quiescent()
        try:
            yield done
        finally:
            self._parked.discard(thread.thread_id)
        return None

    # ------------------------------------------------------------------
    # The recovery coordinator
    # ------------------------------------------------------------------

    def _live_ids(self) -> List[int]:
        return [node.node_id for node in self.runtime.cluster.nodes
                if node.alive]

    def _check_no_second_failure(self, failed: int) -> None:
        """A node dying while recovery is running (before redundancy is
        restored) is the paper's explicitly-untolerated case."""
        for node in self.runtime.cluster.nodes:
            if node.node_id == failed:
                continue
            if node.node_id in self.runtime.homes.failed:
                continue  # recovered in an earlier epoch
            if not node.alive:
                raise UnrecoverableFailure(
                    f"node {node.node_id} failed during recovery of "
                    f"node {failed}")

    def _coordinate(self, failed: int):
        runtime = self.runtime
        yield self._quiescent
        t_start = self.engine.now
        runtime.cluster.hooks.fire(Hooks.RECOVERY_START, failed)
        self._check_no_second_failure(failed)
        costs = runtime.config.costs
        net = runtime.config.network
        mem = runtime.config.memory
        page_size = mem.page_size
        cost_us = 0.0

        old_map = runtime.homes.copy()
        runtime.homes.exclude(failed)
        homes = runtime.homes
        runtime.cluster.hooks.fire(
            Hooks.HOME_REMAP, failed, epoch=homes.epoch,
            failed_set=sorted(homes.failed))
        live = self._live_ids()
        agents = {i: runtime.agents[i] for i in live}
        backup_id = homes.backup_node(failed)
        store = agents[backup_id].ckpt_store

        page_copy_us = mem.copy_time_us(page_size)
        page_xfer_us = net.wire_latency_us + net.transfer_time_us(page_size)

        # -- 3a. rewind surviving nodes' un-published releases ------------
        # Their tentative-copy updates are cancelled so re-replication
        # below starts from clean replicas; the owners re-enter phase 1
        # on resume and re-propagate against the new homes.
        for node_id, agent in agents.items():
            for fl in agent._inflight.values():
                if fl.stage <= STAGE_POINT_B:
                    for peer in agents.values():
                        touched = peer.apply_undo(node_id, fl.seq)
                        cost_us += len(touched) * page_copy_us
                    # Re-enter phase 1 on resume; a release still in its
                    # prep stage keeps it (its diffs are not computed yet).
                    if fl.stage == STAGE_POINT_B:
                        fl.stage = STAGE_PHASE1

        # -- 3b. reconcile the failed node's last release ------------------
        pending = store.pending_release(failed)
        rolled_back_interval: Optional[int] = None
        if pending is not None and not pending.complete:
            # Roll back: cancel partial tentative updates everywhere.
            for agent in agents.values():
                touched = agent.apply_undo(failed, pending.seq)
                cost_us += len(touched) * page_copy_us
            if pending.pages:
                rolled_back_interval = pending.interval
                store.interval_mirror.get(failed, {}).pop(
                    pending.interval, None)
        elif pending is not None and pending.complete:
            # Roll forward. The paper's procedure: copy the tentative
            # copy over the committed copy. This is idempotent even if
            # the release (and causally later ones) had long finished:
            # at quiescence the two copies are identical except for the
            # failed node's incompletely-applied updates. Only when the
            # *secondary* home died with the node (tentative lost) do we
            # fall back to the saved diffs -- safe there, because any
            # causally later writer would still be gated on the failed
            # node's unapplied committed-copy version and cannot have
            # written yet.
            saved_diffs = store.release_diffs(pending)
            for page in pending.pages:
                old_secondary = old_map.secondary_home(page)
                new_primary = homes.primary_home(page)
                if old_secondary != failed:
                    agents[new_primary].committed.write_page(
                        page,
                        agents[old_secondary].tentative.read_page(page))
                    cost_us += (page_copy_us
                                if old_secondary == new_primary
                                else page_xfer_us)
                else:
                    # Tentative copy died with the node. Apply the saved
                    # diffs only if the committed copy has not already
                    # absorbed this release's phase 2 (the primary's
                    # version table is the paper's timestamp check):
                    # re-applying a long-completed release would clobber
                    # causally later writers.
                    applied = agents[new_primary].page_versions.get(
                        page, {}).get(failed, 0)
                    if applied < pending.interval:
                        diff = saved_diffs[page]
                        buf = agents[new_primary].committed.page_view(page)
                        for offset, data in diff.runs:
                            buf[offset:offset + len(data)] = data
                        cost_us += page_copy_us
                agents[new_primary]._bump_version(page, failed,
                                                  pending.interval)

        runtime.cluster.hooks.fire(
            Hooks.RECOVERY_RECONCILE, failed,
            action=("none" if pending is None
                    else "rollforward" if pending.complete
                    else "rollback"),
            seq=pending.seq if pending is not None else None,
            rolled_back_interval=rolled_back_interval)

        # -- 4. re-replicate pages that lost one home ----------------------
        for page in sorted(runtime.cluster.address_space.home_hint):
            old_primary = old_map.primary_home(page)
            old_secondary = old_map.secondary_home(page)
            if failed not in (old_primary, old_secondary):
                continue
            new_primary = homes.primary_home(page)
            new_secondary = homes.secondary_home(page)
            if old_primary == failed:
                # The survivor's tentative copy is the authoritative
                # version now; promote it to the committed copy.
                agents[new_primary].committed.write_page(
                    page, agents[new_primary].tentative.read_page(page))
                cost_us += page_copy_us
            # Seed the new secondary from the (new) primary.
            agents[new_secondary].tentative.write_page(
                page, agents[new_primary].committed.read_page(page))
            cost_us += (page_xfer_us if new_secondary != new_primary
                        else page_copy_us)

        # -- 5. lock reconfiguration ------------------------------------------
        n = runtime.config.num_nodes
        num_locks = runtime.config.num_locks
        for agent in agents.values():
            vec = agent.node.regions.lookup(LOCKVEC_REGION).view()
            # Clear the failed node's slot in every lock vector (this
            # also releases any lock it held at the time of failure).
            vec[failed::n] = bytes(len(range(failed, len(vec), n)))
        reseeded_locks = 0
        for lock_id in range(num_locks):
            old_p = old_map.lock_primary(lock_id)
            old_s = old_map.lock_secondary(lock_id)
            if failed not in (old_p, old_s):
                continue
            new_p = homes.lock_primary(lock_id)
            new_s = homes.lock_secondary(lock_id)
            src_vec = agents[new_p].node.regions.lookup(LOCKVEC_REGION)
            dst_vec = agents[new_s].node.regions.lookup(LOCKVEC_REGION)
            dst_vec.write(lock_id * n, src_vec.read(lock_id * n, n))
            src_ts = agents[new_p].node.regions.lookup(LOCKTS_REGION)
            dst_ts = agents[new_s].node.regions.lookup(LOCKTS_REGION)
            dst_ts.write(lock_id * 4 * n, src_ts.read(lock_id * 4 * n, 4 * n))
            reseeded_locks += 1
        cost_us += reseeded_locks * (net.wire_latency_us * 0.02 + 0.5)

        # -- 6. global state exchange (barrier-equivalent) ------------------
        completed = store.last_complete_release(failed)
        published: Dict[int, int] = {
            i: agents[i].published_interval for i in live}
        published[failed] = completed.interval if completed else 0
        merged = VectorTimestamp(n)
        for j in range(n):
            if j in published:
                merged[j] = published[j]
            else:
                # A node that failed in an earlier recovery epoch.
                merged[j] = max(agent.ts[j] for agent in agents.values())

        logs: Dict[int, Dict[int, List[int]]] = {
            i: agents[i].interval_log.get(i, {}) for i in live}
        failed_log = dict(store.interval_mirror.get(failed, {}))
        if rolled_back_interval is not None:
            failed_log.pop(rolled_back_interval, None)
        logs[failed] = failed_log

        invalidations = 0
        for agent in agents.values():
            for writer, wlog in logs.items():
                if writer == agent.node_id:
                    continue
                for interval in sorted(wlog):
                    if interval <= agent.ts[writer] \
                            or interval > merged[writer]:
                        continue
                    for page in wlog[interval]:
                        agent._invalidate_page(page, writer, interval)
                        invalidations += 1
            agent.ts.merge(merged)
            agent.vmmc.known_dead.add(failed)
        cost_us += invalidations * costs.invalidate_per_page_us
        # Record version claims so fetch gating cannot deadlock on
        # version knowledge that died with the node:
        # * the failed node's published updates are now present at
        #   every (new) primary home;
        # * a page whose primary home died was promoted from the
        #   surviving tentative copy, which holds *every* published
        #   release of *every* writer (phase 1 completes before point
        #   B), so the new primary may claim all merged versions.
        for page in runtime.cluster.address_space.home_hint:
            primary_agent = agents[homes.primary_home(page)]
            if merged[failed] > 0:
                primary_agent._bump_version(page, failed, merged[failed])
            if old_map.primary_home(page) == failed:
                for writer in range(n):
                    if merged[writer] > 0:
                        primary_agent._bump_version(page, writer,
                                                    merged[writer])

        # -- 6b. restore checkpoint redundancy ------------------------------
        # A node whose backup died lost its saved thread states and
        # release records at the backup. The node itself still holds
        # everything it ever shipped (its self-mirror): copy the full
        # history -- thread-state slots, pending/complete records,
        # mirrored write notices -- to the new backup now. Carrying only
        # the live release metadata here is NOT enough: the ward's next
        # failure would then find no complete record and roll back a
        # release that long passed point B (the doubled-RMW bug; or a
        # permanent version wait when a lock timestamp already names the
        # rolled-back interval). The reseed null release on resume
        # additionally re-ships *current* thread states.
        for node_id, agent in agents.items():
            if old_map.backup_node(node_id) != failed:
                continue
            new_backup_store = agents[
                homes.backup_node(node_id)].ckpt_store
            carried = new_backup_store.absorb(agent.ckpt_mirror, node_id)
            agent.needs_checkpoint_reseed = True
            cost_us += (net.wire_latency_us
                        + net.transfer_time_us(carried))

        # Charge the aggregate reconfiguration cost before resuming.
        yield Delay(cost_us)

        # -- 7. resume the failed node's threads on the backup --------------
        resumed = []
        max_seq = store.max_valid_seq(failed)
        for rec in runtime.threads:
            if rec.current_node != failed or rec.finished:
                continue
            state = store.latest_thread_state(failed, rec.tid, max_seq)
            valid = [s for s in store.slot_seqs(failed, rec.tid)
                     if 0 <= s <= max_seq]
            used_seq = max(valid) if state is not None and valid else None
            if state is None:
                # The node died before shipping any checkpoint: nothing
                # it ever did was propagated (its first release never
                # reached point B), so a fresh replay from the start is
                # the correct resume point. Initialization writes are
                # idempotent and completed barriers pass through via
                # the epoch mechanism.
                state = {}
            rec.svm.rebind(agents[backup_id])
            rec.clock.restart()
            rec.ctx = AppContext(rec.svm, rec.tid,
                                 runtime.config.total_threads,
                                 state=state)
            rec.current_node = backup_id
            rec.resumptions += 1
            resumed.append((rec, used_seq))

        # Immediately re-checkpoint resumed threads to the new backup so
        # a subsequent failure of the backup node is tolerated too.
        next_backup = homes.backup_node(backup_id)
        ckpt_cost = 0.0
        for rec, _seq in resumed:
            blob = encode_thread_state(rec.ctx.state)
            runtime.agents[next_backup].ckpt_store.store_thread_state(
                backup_id, rec.tid, 0, blob)
            # The host's self-mirror must track this ship too, or the
            # restored states would be lost again if next_backup dies.
            agents[backup_id].ckpt_mirror.store_thread_state(
                backup_id, rec.tid, 0, blob)
            ckpt_cost += (costs.checkpoint_us(len(blob))
                          + net.wire_latency_us)
        store.forget_ward(failed)
        yield Delay(ckpt_cost)

        # -- 7b. barrier/lock state reconciliation --------------------------
        # Surviving nodes and restored checkpoints can disagree about
        # how many generations of each barrier have completed: a node
        # whose exchange reply died with the old manager never advanced
        # its count, while a checkpoint-restored thread may carry a
        # *later* epoch (its old node completed the generation before
        # dying). Rebuild a single truth: a barrier generation is
        # completed iff any live node's count, any live manager's
        # record, or any unfinished thread's checkpointed epoch says
        # so -- each of those witnesses requires the generation to have
        # released globally. Every live node adopts the merged counts
        # and settles local generations that completed globally, so a
        # leader gathering stragglers for a finished generation (or a
        # restored thread re-arriving at one) passes through instead of
        # deadlocking against threads waiting at later epochs.
        generations: Dict[int, int] = {}
        for agent in agents.values():
            for bid, done in agent.barrier_done.items():
                if done > generations.get(bid, 0):
                    generations[bid] = done
        for manager in runtime.barrier_managers:
            if manager.agent.node_id not in agents:
                continue
            for bid, done in manager._completed.items():
                if done > generations.get(bid, 0):
                    generations[bid] = done
        for rec in runtime.threads:
            if rec.finished:
                continue
            for key, value in rec.ctx.state.items():
                if isinstance(key, tuple) and len(key) == 2 \
                        and key[0] == "__bar__" \
                        and value > generations.get(key[1], 0):
                    generations[key[1]] = value
        for agent in agents.values():
            for bid, gen in generations.items():
                if agent.barrier_done.get(bid, 0) < gen:
                    agent.barrier_done[bid] = gen
            for (bid, epoch), bstate in list(agent._local_barriers.items()):
                if epoch >= generations.get(bid, 0):
                    continue
                # Completed globally: release local waiters; a parked
                # leader re-checks the reconciled count on retry.
                bstate["released"] = True
                straggler = bstate.get("straggler_event")
                if straggler is not None and not straggler.settled:
                    straggler.succeed(None)
                bstate["straggler_event"] = None
                if not bstate["event"].settled:
                    bstate["event"].succeed(None)
        # Lock-state hygiene: no live lock vector may carry a bit for
        # any failed node (step 5 cleared the current victim; re-clear
        # every dead slot in case a late remnant slipped in between
        # failure and detection).
        for agent in agents.values():
            vec = agent.node.regions.lookup(LOCKVEC_REGION).view()
            for dead in homes.failed:
                vec[dead::n] = bytes(len(range(dead, len(vec), n)))
        runtime.cluster.hooks.fire(
            Hooks.RECOVERY_RECONCILE, failed, action="barrier-reconcile",
            generations=dict(generations))

        # -- 8. release the rendezvous -----------------------------------------
        for agent in agents.values():
            agent.recovery_pending = None
        self.recovered.add(failed)
        self.active = None
        self.recoveries += 1
        self.last_recovery_us = self.engine.now - t_start
        for rec, used_seq in resumed:
            runtime.spawn_thread(rec)
            runtime.cluster.hooks.fire(Hooks.THREAD_RESUMED, backup_id,
                                       tid=rec.tid, ward=failed,
                                       seq=used_seq,
                                       max_valid_seq=max_seq)
        done, self._done_event = self._done_event, None
        self._quiescent = None
        done.succeed(None)
        runtime.cluster.hooks.fire(Hooks.RECOVERY_DONE, failed,
                                   duration_us=self.last_recovery_us)
        return None
