"""Failure recovery orchestration (paper section 4.5).

When any thread detects a node failure (a communication error or a
heart-beat timeout), recovery proceeds in the phases the paper
describes:

1. **Global rendezvous** -- every live application thread parks (in
   flight barriers are aborted; local waits count as quiescent since
   the waited-on thread itself parks). This realizes the precondition
   that no update propagation is outstanding anywhere except at the
   failed node.
2. **Reconfiguration** -- every node excludes the failed node from its
   (deterministic) home map: pages and locks get new primary/secondary
   homes, always on distinct live nodes.
3. **Replica reconciliation** -- the failed node's last release is
   rolled *forward* (its point-B timestamp was saved: apply its saved
   diffs to the surviving/new home copies) or *backward* (undo its
   partial tentative updates). Un-published releases of *surviving*
   nodes are also rewound to their phase-1 start so their retries
   re-propagate cleanly against the new homes.
4. **Re-replication** -- pages and locks that lost one replica get a
   fresh second replica, and wards whose checkpoint backup died get a
   new backup seeded from their self-mirror. Replacement replicas are
   *elected* to spread load over all survivors (the ring alone would
   pile everything the dead node hosted onto its successor);
   elections are installed as :class:`~repro.protocol.homes.HomeMap`
   overrides so every node derives the same placement.
5. **Global state exchange** -- a barrier-equivalent merge of vector
   timestamps (capped at each node's *published* interval) and write
   notices, including the failed node's mirrored interval log, so that
   every live node has invalidated everything it must.
6. **Thread resumption** -- the failed node's threads are re-created on
   its backup node from their latest complete checkpoints and
   immediately re-checkpointed to the new backup.

**Multiple failures.** Unlike the paper's prose (which only promises
tolerance of failure sequences with full recovery in between), the
coordinator survives *arbitrary sequences*: a node dying while a
recovery is in progress is absorbed into the same rendezvous as an
additional victim, and victims are recovered wave by wave in detection
order. Two structural properties make this sound:

* every mutation of protocol state during recovery happens inside an
  atomic zero-sim-time block; deaths can only land at ``yield`` points,
  *after* a consistent (and, state-wise, fully re-protected) snapshot
  was installed, so each wave starts from intact replicas;
* victims queued together are excluded from the home map *in one
  batch* before any of them is reconciled, so no wave ever routes a
  read or a replica to a sibling corpse.

What genuinely cannot be survived -- both replicas of a page or lock
dying together, or a victim dying together with its checkpoint
backup -- is detected by an explicit survivability audit, which raises
:class:`UnrecoverableFailure` with the exact pair that was lost.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.apps.base import AppContext
from repro.cluster import Hooks
from repro.errors import RecoveryError, UnrecoverableFailure
from repro.protocol.ft.checkpoint import encode_thread_state
from repro.protocol.ft.protocol import STAGE_PHASE1, STAGE_POINT_B
from repro.protocol.locks import LOCKTS_REGION, LOCKVEC_REGION
from repro.protocol.signals import RecoverySignal
from repro.protocol.timestamps import VectorTimestamp
from repro.sim import Delay, Event


class RecoveryManager:
    """Cluster-wide recovery coordinator.

    Host-level object (one per runtime): the real system computes all
    of this independently-but-identically on every live node from
    deterministic inputs; centralizing it in the simulator changes no
    observable behaviour, and its costs are charged to simulated time.
    """

    def __init__(self, runtime) -> None:
        self.runtime = runtime
        self.engine = runtime.engine
        self.recoveries = 0
        self.last_recovery_us: float = 0.0
        #: The victim whose wave is currently being processed (the
        #: whole extended recovery counts as "active" until the final
        #: rendezvous release).
        self.active: Optional[int] = None
        self.recovered: Set[int] = set()
        #: Victims of the recovery in progress, in detection order. The
        #: head started the rendezvous; later entries are cascade
        #: victims absorbed into it.
        self._victim_queue: List[int] = []
        #: node -> sim time its failure was detected; feeds the
        #: redundancy-exposure metric (detection -> REREPLICATE_DONE).
        self._detected_at: Dict[int, float] = {}
        #: Per-victim exposure windows (us), appended as each wave's
        #: re-replication completes.
        self.exposed_windows: List[float] = []
        self._parked: Set[int] = set()
        self._blocked: Dict[int, int] = {}
        self._done_event: Optional[Event] = None
        self._quiescent: Optional[Event] = None
        # Ground-truth death observer: a node dying while a recovery is
        # already running fires no protocol hook (nobody is
        # communicating with it at the rendezvous), so without this the
        # quiescence count -- and the whole run -- would silently
        # stall waiting for threads that can never park.
        runtime.cluster.on_node_failed.append(self._on_node_died)

    @property
    def victims(self) -> Set[int]:
        """Victims of the in-progress recovery (empty when idle)."""
        return set(self._victim_queue)

    # ------------------------------------------------------------------
    # Quiescence tracking
    # ------------------------------------------------------------------

    def note_blocked(self, node_id: int) -> None:
        self._blocked[node_id] = self._blocked.get(node_id, 0) + 1
        self._check_quiescent()

    def note_unblocked(self, node_id: int) -> None:
        self._blocked[node_id] = self._blocked.get(node_id, 0) - 1

    def note_finished(self) -> None:
        self._check_quiescent()

    def _required_parkers(self) -> List[int]:
        # Threads on dead nodes (the original victim and any cascade
        # victims alike) cannot park; everyone else must.
        return [rec.tid for rec in self.runtime.threads
                if not rec.finished
                and self.runtime.cluster.node(rec.current_node).alive]

    def _check_quiescent(self) -> None:
        if self.active is None or self._quiescent is None \
                or self._quiescent.settled:
            return
        required = self._required_parkers()
        blocked = sum(count for node, count in self._blocked.items()
                      if self.runtime.cluster.node(node).alive)
        if len(self._parked & set(required)) + blocked >= len(required):
            self._quiescent.succeed(None)

    # ------------------------------------------------------------------
    # Entry points called from protocol code
    # ------------------------------------------------------------------

    def report_failure(self, failed: int) -> None:
        if failed in self.recovered:
            return  # stale signal about an already-recovered node
        if self.active is not None:
            # A failure while recovery is in progress: absorb it into
            # the running rendezvous as an additional victim instead of
            # giving up (the paper's untolerated case; see module
            # docstring for why the extension is sound).
            self._note_additional_victim(failed)
            return
        if self.runtime.cluster.node(failed).alive:
            raise RecoveryError(
                f"false failure suspicion of live node {failed}")
        self.active = failed
        self._victim_queue = [failed]
        self._detected_at[failed] = self.engine.now
        self._done_event = Event(self.engine, "recovery.done")
        self._quiescent = Event(self.engine, "recovery.quiescent")
        self._parked.clear()
        for node_id in self._live_ids():
            agent = self.runtime.agents[node_id]
            agent.recovery_pending = RecoverySignal(failed)
            # Unmap connections from the failed node everywhere, NOW:
            # deposits it posted just before dying may still be on the
            # wire, and applying one after recovery rebuilds the target
            # region would resurrect dead state (e.g. a lock-vector
            # slot that every later acquirer spins on forever).
            agent.node.nic.shun(failed, epoch=self.runtime.homes.epoch)
            agent.abort_local_waits()
        for manager in self.runtime.barrier_managers:
            manager.abort_pending()
        self.runtime.cluster.hooks.fire(
            Hooks.FAILURE_DETECTED, failed, time=self.engine.now)
        self.engine.spawn(self._coordinate(), "recovery.coord")
        self._check_quiescent()

    def _note_additional_victim(self, failed: int) -> None:
        """Queue a node that died while recovery was already running."""
        if failed in self.recovered or failed in self._victim_queue:
            return
        if self.runtime.cluster.node(failed).alive:
            raise RecoveryError(
                f"false failure suspicion of live node {failed}")
        self._victim_queue.append(failed)
        self._detected_at[failed] = self.engine.now
        for node_id in self._live_ids():
            agent = self.runtime.agents[node_id]
            agent.node.nic.shun(failed, epoch=self.runtime.homes.epoch)
            agent.abort_local_waits()
        for manager in self.runtime.barrier_managers:
            manager.abort_pending()
        self.runtime.cluster.hooks.fire(
            Hooks.FAILURE_DETECTED, failed, time=self.engine.now)
        # The new corpse's threads can no longer be required to park.
        self._check_quiescent()

    def _on_node_died(self, node_id: int) -> None:
        if self.active is None:
            return  # normal operation: detection via communication
        self._note_additional_victim(node_id)

    def park(self, thread):
        """Generator: wait at the recovery rendezvous until recovery
        completes. Returns immediately on stale signals."""
        if self.active is None:
            return None
        self._parked.add(thread.thread_id)
        done = self._done_event
        self._check_quiescent()
        try:
            yield done
        finally:
            self._parked.discard(thread.thread_id)
        return None

    # ------------------------------------------------------------------
    # The recovery coordinator
    # ------------------------------------------------------------------

    def _live_ids(self) -> List[int]:
        return [node.node_id for node in self.runtime.cluster.nodes
                if node.alive]

    def _audit_survivable(self, pre_batch, batch: List[int]) -> None:
        """Raise unless every page, lock and ward still has one live
        copy after the whole ``batch`` dies together.

        ``pre_batch`` is the home map before any batch member was
        excluded, i.e. the placement whose replicas actually hold the
        state. Near-simultaneous deaths of a full replica pair (or of a
        victim together with its checkpoint backup) are the genuinely
        unrecoverable cases; everything else the wave loop handles."""
        dead = set(batch)
        runtime = self.runtime
        for page in sorted(runtime.cluster.address_space.home_hint):
            if pre_batch.primary_home(page) in dead \
                    and pre_batch.secondary_home(page) in dead:
                raise UnrecoverableFailure(
                    f"page {page} lost both replicas: nodes "
                    f"{pre_batch.primary_home(page)} and "
                    f"{pre_batch.secondary_home(page)} failed together")
        for lock_id in range(runtime.config.num_locks):
            if pre_batch.lock_primary(lock_id) in dead \
                    and pre_batch.lock_secondary(lock_id) in dead:
                raise UnrecoverableFailure(
                    f"lock {lock_id} lost both replicas: nodes "
                    f"{pre_batch.lock_primary(lock_id)} and "
                    f"{pre_batch.lock_secondary(lock_id)} failed together")
        for victim in batch:
            if pre_batch.backup_node(victim) in dead:
                raise UnrecoverableFailure(
                    f"node {victim} failed together with its checkpoint "
                    f"backup {pre_batch.backup_node(victim)}: saved "
                    f"thread states lost")

    def _coordinate(self):
        runtime = self.runtime
        yield self._quiescent
        t_start = self.engine.now
        tracer = runtime.cluster.optrace
        wave_ops: Dict[int, int] = {}
        #: tid -> (rec, used_seq, backup_id, ward, max_seq). Keyed so a
        #: thread resumed onto a node that then dies itself is simply
        #: re-resumed by the later wave (latest entry wins).
        resumed: Dict[int, tuple] = {}
        pre_maps: Dict[int, object] = {}
        processed: List[int] = []
        while len(processed) < len(self._victim_queue):
            victim = self._victim_queue[len(processed)]
            self.active = victim
            runtime.cluster.hooks.fire(Hooks.RECOVERY_START, victim)
            if tracer is not None:
                wave_ops[victim] = tracer.mint(
                    "recovery_wave", victim,
                    f"recovery wave (node {victim})")
            # Exclude every queued-but-unexcluded victim in one batch
            # (snapshotting the map each saw at exclusion) before
            # reconciling any of them: a near-simultaneous pair must
            # never have one victim's reconciliation route a read or a
            # fresh replica to the other's corpse.
            batch = [v for v in self._victim_queue if v not in pre_maps]
            if batch:
                pre_batch = runtime.homes.copy()
                self._audit_survivable(pre_batch, batch)
                for v in batch:
                    pre_maps[v] = runtime.homes.copy()
                    runtime.homes.exclude(v)
                    runtime.cluster.hooks.fire(
                        Hooks.HOME_REMAP, v, epoch=runtime.homes.epoch,
                        failed_set=sorted(runtime.homes.failed))
            # Overrides installed by this wave must also land in the
            # snapshots of batch siblings still awaiting their wave,
            # or their "old" maps would mis-locate the moved replicas.
            successor_maps = [pre_maps[v]
                              for v in self._victim_queue[len(processed) + 1:]
                              if v in pre_maps]
            yield from self._recover_one(victim, pre_maps[victim],
                                         successor_maps, resumed)
            processed.append(victim)
            self.recoveries += 1
            if len(processed) < len(self._victim_queue):
                # Intermediate victim: protection is restored, but the
                # rendezvous stays held for the next victim's wave.
                if tracer is not None and victim in wave_ops:
                    tracer.finish(wave_ops[victim])
                runtime.cluster.hooks.fire(
                    Hooks.RECOVERY_DONE, victim,
                    duration_us=self.engine.now - t_start, final=False)

        # -- release the rendezvous ----------------------------------------
        last = processed[-1]
        for node_id in self._live_ids():
            runtime.agents[node_id].recovery_pending = None
        self.recovered.update(processed)
        self._victim_queue = []
        self.active = None
        self.last_recovery_us = self.engine.now - t_start
        for rec, used_seq, backup_id, ward, max_seq in resumed.values():
            runtime.spawn_thread(rec)
            runtime.cluster.hooks.fire(Hooks.THREAD_RESUMED, backup_id,
                                       tid=rec.tid, ward=ward,
                                       seq=used_seq,
                                       max_valid_seq=max_seq)
        done, self._done_event = self._done_event, None
        self._quiescent = None
        done.succeed(None)
        if tracer is not None and last in wave_ops:
            tracer.finish(wave_ops[last])
        runtime.cluster.hooks.fire(Hooks.RECOVERY_DONE, last,
                                   duration_us=self.last_recovery_us,
                                   final=True)
        return None

    # ------------------------------------------------------------------
    # One victim's wave
    # ------------------------------------------------------------------

    def _spread_pick(self, load: Dict[int, int],
                     exclude: int) -> int:
        """Least-loaded live node other than ``exclude`` (ties break on
        node id, keeping the election deterministic everywhere)."""
        candidates = [i for i in load if i != exclude]
        if not candidates:
            raise UnrecoverableFailure(
                "no surviving node available for a replacement replica")
        return min(candidates, key=lambda i: (load[i], i))

    def _recover_one(self, failed: int, old_map, successor_maps,
                     resumed: Dict[int, tuple]):
        """Steps 3-8 for one victim.

        ``old_map`` is the home map as of the instant ``failed`` was
        excluded; it locates the replicas that actually hold state.
        Everything between two ``yield`` points is atomic in simulated
        time, so a death during this wave (it can only land inside a
        ``Delay``) always finds consistent, re-protected replicas.
        """
        runtime = self.runtime
        homes = runtime.homes
        costs = runtime.config.costs
        net = runtime.config.network
        mem = runtime.config.memory
        page_size = mem.page_size
        reconcile_cost = 0.0
        rereplicate_cost = 0.0

        live = self._live_ids()
        agents = {i: runtime.agents[i] for i in live}
        # The victim's checkpoints live where the *old* map shipped
        # them (an election may have moved the backup off the ring; the
        # post-exclusion ring walk would mis-locate it).
        backup_id = old_map.backup_node(failed)
        store = agents[backup_id].ckpt_store

        page_copy_us = mem.copy_time_us(page_size)
        page_xfer_us = net.wire_latency_us + net.transfer_time_us(page_size)

        # -- 3a. rewind surviving nodes' un-published releases ------------
        # Their tentative-copy updates are cancelled so re-replication
        # below starts from clean replicas; the owners re-enter phase 1
        # on resume and re-propagate against the new homes.
        for node_id, agent in agents.items():
            for fl in agent._inflight.values():
                if fl.stage <= STAGE_POINT_B:
                    for peer in agents.values():
                        touched = peer.apply_undo(node_id, fl.seq)
                        reconcile_cost += len(touched) * page_copy_us
                    # Re-enter phase 1 on resume; a release still in its
                    # prep stage keeps it (its diffs are not computed yet).
                    if fl.stage == STAGE_POINT_B:
                        fl.stage = STAGE_PHASE1

        # -- 3b. reconcile the failed node's last release ------------------
        pending = store.pending_release(failed)
        rolled_back_interval: Optional[int] = None
        if pending is not None and not pending.complete:
            # Roll back: cancel partial tentative updates everywhere.
            for agent in agents.values():
                touched = agent.apply_undo(failed, pending.seq)
                reconcile_cost += len(touched) * page_copy_us
            if pending.pages:
                rolled_back_interval = pending.interval
                store.interval_mirror.get(failed, {}).pop(
                    pending.interval, None)
        elif pending is not None and pending.complete:
            # Roll forward. The paper's procedure: copy the tentative
            # copy over the committed copy. This is idempotent even if
            # the release (and causally later ones) had long finished:
            # at quiescence the two copies are identical except for the
            # failed node's incompletely-applied updates. Only when the
            # *secondary* home died with the node (tentative lost --
            # either it WAS the victim, or it was a batch sibling) do we
            # fall back to the saved diffs -- safe there, because any
            # causally later writer would still be gated on the failed
            # node's unapplied committed-copy version and cannot have
            # written yet.
            saved_diffs = store.release_diffs(pending)
            for page in pending.pages:
                old_secondary = old_map.secondary_home(page)
                new_primary = homes.primary_home(page)
                if old_secondary != failed \
                        and old_secondary not in homes.failed:
                    agents[new_primary].committed.write_page(
                        page,
                        agents[old_secondary].tentative.read_page(page))
                    reconcile_cost += (page_copy_us
                                       if old_secondary == new_primary
                                       else page_xfer_us)
                else:
                    # Tentative copy died with the node. Apply the saved
                    # diffs only if the committed copy has not already
                    # absorbed this release's phase 2 (the primary's
                    # version table is the paper's timestamp check):
                    # re-applying a long-completed release would clobber
                    # causally later writers.
                    applied = agents[new_primary].page_versions.get(
                        page, {}).get(failed, 0)
                    if applied < pending.interval:
                        diff = saved_diffs[page]
                        buf = agents[new_primary].committed.page_view(page)
                        for offset, data in diff.runs:
                            buf[offset:offset + len(data)] = data
                        reconcile_cost += page_copy_us
                agents[new_primary]._bump_version(page, failed,
                                                  pending.interval)

        runtime.cluster.hooks.fire(
            Hooks.RECOVERY_RECONCILE, failed,
            action=("none" if pending is None
                    else "rollforward" if pending.complete
                    else "rollback"),
            seq=pending.seq if pending is not None else None,
            rolled_back_interval=rolled_back_interval)

        # -- 8-elect. choose replacement replica placements -----------------
        # Everything the victim hosted needs a new second copy. The
        # ring default would pile all of it onto the victim's
        # successor; elect targets by least standing load instead
        # (deterministic: sorted iteration, ties on node id), and
        # install the choices as map overrides so every node -- and
        # every batch sibling's pending "old map" snapshot -- agrees.
        all_pages = sorted(runtime.cluster.address_space.home_hint)
        moved_pages: List[Tuple[int, int, int]] = []
        for page in all_pages:
            old_primary = old_map.primary_home(page)
            old_secondary = old_map.secondary_home(page)
            if failed in (old_primary, old_secondary):
                moved_pages.append((page, old_primary, old_secondary))
        moving = {entry[0] for entry in moved_pages}
        page_load = {i: 0 for i in live}
        for page in all_pages:
            if page in moving:
                continue
            sec = homes.secondary_home(page)
            if sec in page_load:
                page_load[sec] += 1
        for page, _old_p, _old_s in moved_pages:
            new_primary = homes.primary_home(page)
            target = self._spread_pick(page_load, new_primary)
            if target != homes.secondary_home(page):
                homes.reassign_secondary(page, target)
                for sibling_map in successor_maps:
                    sibling_map.reassign_secondary(page, target)
            page_load[target] += 1

        num_locks = runtime.config.num_locks
        moved_locks: List[Tuple[int, int, int]] = []
        for lock_id in range(num_locks):
            old_p = old_map.lock_primary(lock_id)
            old_s = old_map.lock_secondary(lock_id)
            if failed in (old_p, old_s):
                moved_locks.append((lock_id, old_p, old_s))
        moving_locks = {entry[0] for entry in moved_locks}
        lock_load = {i: 0 for i in live}
        for lock_id in range(num_locks):
            if lock_id in moving_locks:
                continue
            sec = homes.lock_secondary(lock_id)
            if sec in lock_load:
                lock_load[sec] += 1
        for lock_id, _old_p, _old_s in moved_locks:
            new_p = homes.lock_primary(lock_id)
            target = self._spread_pick(lock_load, new_p)
            if target != homes.lock_secondary(lock_id):
                homes.reassign_lock_secondary(lock_id, target)
                for sibling_map in successor_maps:
                    sibling_map.reassign_lock_secondary(lock_id, target)
            lock_load[target] += 1

        moved_wards = [node_id for node_id in live
                       if old_map.backup_node(node_id) == failed]
        backup_load = {i: 0 for i in live}
        for node_id in live:
            if node_id in moved_wards:
                continue
            backup = homes.backup_node(node_id)
            if backup in backup_load:
                backup_load[backup] += 1
        for ward in moved_wards:
            target = self._spread_pick(backup_load, ward)
            if target != homes.backup_node(ward):
                homes.reassign_backup(ward, target)
                for sibling_map in successor_maps:
                    sibling_map.reassign_backup(ward, target)
            backup_load[target] += 1

        # -- 4. re-replicate pages that lost one home ----------------------
        for page, old_primary, old_secondary in moved_pages:
            new_primary = homes.primary_home(page)
            new_secondary = homes.secondary_home(page)
            if old_primary == failed:
                # The old secondary's tentative copy is the
                # authoritative version now; promote it to the (new)
                # primary's committed copy. The ring usually makes that
                # survivor the new primary itself, but an earlier
                # election may have placed the replica elsewhere, so
                # name the source explicitly.
                agents[new_primary].committed.write_page(
                    page, agents[old_secondary].tentative.read_page(page))
                rereplicate_cost += (page_copy_us
                                     if old_secondary == new_primary
                                     else page_xfer_us)
            # Seed the new secondary from the (new) primary.
            agents[new_secondary].tentative.write_page(
                page, agents[new_primary].committed.read_page(page))
            rereplicate_cost += (page_xfer_us
                                 if new_secondary != new_primary
                                 else page_copy_us)

        # -- 5. lock reconfiguration ------------------------------------------
        n = runtime.config.num_nodes
        for agent in agents.values():
            vec = agent.node.regions.lookup(LOCKVEC_REGION).view()
            # Clear the failed node's slot in every lock vector (this
            # also releases any lock it held at the time of failure).
            vec[failed::n] = bytes(len(range(failed, len(vec), n)))

        def copy_lock_state(src: int, dst: int, lock_id: int) -> None:
            if src == dst:
                return
            src_vec = agents[src].node.regions.lookup(LOCKVEC_REGION)
            dst_vec = agents[dst].node.regions.lookup(LOCKVEC_REGION)
            dst_vec.write(lock_id * n, src_vec.read(lock_id * n, n))
            src_ts = agents[src].node.regions.lookup(LOCKTS_REGION)
            dst_ts = agents[dst].node.regions.lookup(LOCKTS_REGION)
            dst_ts.write(lock_id * 4 * n,
                         src_ts.read(lock_id * 4 * n, 4 * n))

        reseeded_locks = 0
        for lock_id, old_p, old_s in moved_locks:
            new_p = homes.lock_primary(lock_id)
            new_s = homes.lock_secondary(lock_id)
            # The surviving copy of the lock state: the old secondary
            # when the primary died, the old primary otherwise.
            survivor = old_s if old_p == failed else old_p
            copy_lock_state(survivor, new_p, lock_id)
            copy_lock_state(new_p, new_s, lock_id)
            reseeded_locks += 1
        rereplicate_cost += reseeded_locks * (net.wire_latency_us * 0.02
                                              + 0.5)

        # -- 6. global state exchange (barrier-equivalent) ------------------
        completed = store.last_complete_release(failed)
        published: Dict[int, int] = {
            i: agents[i].published_interval for i in live}
        published[failed] = completed.interval if completed else 0
        merged = VectorTimestamp(n)
        for j in range(n):
            if j in published:
                merged[j] = published[j]
            else:
                # A node that failed in an earlier recovery epoch, or a
                # batch sibling whose own wave will merge its log.
                merged[j] = max(agent.ts[j] for agent in agents.values())

        logs: Dict[int, Dict[int, List[int]]] = {
            i: agents[i].interval_log.get(i, {}) for i in live}
        failed_log = dict(store.interval_mirror.get(failed, {}))
        if rolled_back_interval is not None:
            failed_log.pop(rolled_back_interval, None)
        logs[failed] = failed_log

        invalidations = 0
        for agent in agents.values():
            for writer, wlog in logs.items():
                if writer == agent.node_id:
                    continue
                for interval in sorted(wlog):
                    if interval <= agent.ts[writer] \
                            or interval > merged[writer]:
                        continue
                    for page in wlog[interval]:
                        agent._invalidate_page(page, writer, interval)
                        invalidations += 1
            agent.ts.merge(merged)
            agent.vmmc.known_dead.add(failed)
        reconcile_cost += invalidations * costs.invalidate_per_page_us
        # Record version claims so fetch gating cannot deadlock on
        # version knowledge that died with the node:
        # * the failed node's published updates are now present at
        #   every (new) primary home;
        # * a page whose primary home died was promoted from the
        #   surviving tentative copy, which holds *every* published
        #   release of *every* writer (phase 1 completes before point
        #   B), so the new primary may claim all merged versions.
        for page in runtime.cluster.address_space.home_hint:
            primary_agent = agents[homes.primary_home(page)]
            if merged[failed] > 0:
                primary_agent._bump_version(page, failed, merged[failed])
            if old_map.primary_home(page) == failed:
                for writer in range(n):
                    if merged[writer] > 0:
                        primary_agent._bump_version(page, writer,
                                                    merged[writer])

        # -- 6b. restore checkpoint redundancy ------------------------------
        # A node whose backup died lost its saved thread states and
        # release records at the backup. The node itself still holds
        # everything it ever shipped (its self-mirror): copy the full
        # history -- thread-state slots, pending/complete records,
        # mirrored write notices -- to the new (elected) backup now.
        # Carrying only the live release metadata here is NOT enough:
        # the ward's next failure would then find no complete record and
        # roll back a release that long passed point B (the doubled-RMW
        # bug; or a permanent version wait when a lock timestamp already
        # names the rolled-back interval). The reseed null release on
        # resume additionally re-ships *current* thread states.
        for node_id in moved_wards:
            agent = agents[node_id]
            new_backup_store = agents[
                homes.backup_node(node_id)].ckpt_store
            carried = new_backup_store.absorb(agent.ckpt_mirror, node_id)
            agent.needs_checkpoint_reseed = True
            rereplicate_cost += (net.wire_latency_us
                                 + net.transfer_time_us(carried))

        # Charge reconciliation, then the re-replication push: the
        # REREPLICATE span brackets the time during which the cluster
        # is running but one-copy-exposed, which is the metric the
        # paper's availability argument cares about.
        yield Delay(reconcile_cost)
        tracer = runtime.cluster.optrace
        rerep_op = None
        if tracer is not None:
            rerep_op = tracer.mint(
                "rereplicate", failed,
                f"re-replicate (node {failed})")
        runtime.cluster.hooks.fire(
            Hooks.REREPLICATE_START, failed,
            pages=len(moved_pages), locks=len(moved_locks),
            wards=len(moved_wards))
        yield Delay(rereplicate_cost)
        exposed_us = self.engine.now - self._detected_at.get(
            failed, self.engine.now)
        self.exposed_windows.append(exposed_us)
        if rerep_op is not None:
            tracer.finish(rerep_op)
        runtime.cluster.hooks.fire(
            Hooks.REREPLICATE_DONE, failed,
            duration_us=rereplicate_cost, exposed_us=exposed_us)

        # -- 7. resume the failed node's threads on the backup --------------
        wave_resumed = []
        max_seq = store.max_valid_seq(failed)
        for rec in runtime.threads:
            if rec.current_node != failed or rec.finished:
                continue
            state = store.latest_thread_state(failed, rec.tid, max_seq)
            valid = [s for s in store.slot_seqs(failed, rec.tid)
                     if 0 <= s <= max_seq]
            used_seq = max(valid) if state is not None and valid else None
            if state is None:
                # The node died before shipping any checkpoint: nothing
                # it ever did was propagated (its first release never
                # reached point B), so a fresh replay from the start is
                # the correct resume point. Initialization writes are
                # idempotent and completed barriers pass through via
                # the epoch mechanism.
                state = {}
            rec.svm.rebind(agents[backup_id])
            rec.clock.restart()
            rec.ctx = AppContext(rec.svm, rec.tid,
                                 runtime.config.total_threads,
                                 state=state)
            rec.current_node = backup_id
            rec.resumptions += 1
            wave_resumed.append(rec)
            resumed[rec.tid] = (rec, used_seq, backup_id, failed, max_seq)

        # Immediately re-checkpoint resumed threads to the new backup so
        # a subsequent failure of the backup node is tolerated too.
        next_backup = homes.backup_node(backup_id)
        ckpt_cost = 0.0
        for rec in wave_resumed:
            blob = encode_thread_state(rec.ctx.state)
            runtime.agents[next_backup].ckpt_store.store_thread_state(
                backup_id, rec.tid, 0, blob)
            # The host's self-mirror must track this ship too, or the
            # restored states would be lost again if next_backup dies.
            agents[backup_id].ckpt_mirror.store_thread_state(
                backup_id, rec.tid, 0, blob)
            ckpt_cost += (costs.checkpoint_us(len(blob))
                          + net.wire_latency_us)
        store.forget_ward(failed)
        yield Delay(ckpt_cost)

        # -- 7b. barrier/lock state reconciliation --------------------------
        # Surviving nodes and restored checkpoints can disagree about
        # how many generations of each barrier have completed: a node
        # whose exchange reply died with the old manager never advanced
        # its count, while a checkpoint-restored thread may carry a
        # *later* epoch (its old node completed the generation before
        # dying). Rebuild a single truth: a barrier generation is
        # completed iff any live node's count, any live manager's
        # record, or any unfinished thread's checkpointed epoch says
        # so -- each of those witnesses requires the generation to have
        # released globally. Every live node adopts the merged counts
        # and settles local generations that completed globally, so a
        # leader gathering stragglers for a finished generation (or a
        # restored thread re-arriving at one) passes through instead of
        # deadlocking against threads waiting at later epochs.
        generations: Dict[int, int] = {}
        for agent in agents.values():
            for bid, done in agent.barrier_done.items():
                if done > generations.get(bid, 0):
                    generations[bid] = done
        for manager in runtime.barrier_managers:
            if manager.agent.node_id not in agents:
                continue
            for bid, done in manager._completed.items():
                if done > generations.get(bid, 0):
                    generations[bid] = done
        for rec in runtime.threads:
            if rec.finished:
                continue
            for key, value in rec.ctx.state.items():
                if isinstance(key, tuple) and len(key) == 2 \
                        and key[0] == "__bar__" \
                        and value > generations.get(key[1], 0):
                    generations[key[1]] = value
        for agent in agents.values():
            for bid, gen in generations.items():
                if agent.barrier_done.get(bid, 0) < gen:
                    agent.barrier_done[bid] = gen
            for (bid, epoch), bstate in list(agent._local_barriers.items()):
                if epoch >= generations.get(bid, 0):
                    continue
                # Completed globally: release local waiters; a parked
                # leader re-checks the reconciled count on retry.
                bstate["released"] = True
                straggler = bstate.get("straggler_event")
                if straggler is not None and not straggler.settled:
                    straggler.succeed(None)
                bstate["straggler_event"] = None
                if not bstate["event"].settled:
                    bstate["event"].succeed(None)
        # Lock-state hygiene: no live lock vector may carry a bit for
        # any failed node (step 5 cleared the current victim; re-clear
        # every dead slot in case a late remnant slipped in between
        # failure and detection).
        for agent in agents.values():
            vec = agent.node.regions.lookup(LOCKVEC_REGION).view()
            for dead in homes.failed:
                vec[dead::n] = bytes(len(range(dead, len(vec), n)))
        runtime.cluster.hooks.fire(
            Hooks.RECOVERY_RECONCILE, failed, action="barrier-reconcile",
            generations=dict(generations))
        return None
