"""Fault-tolerant protocol extensions (paper section 4)."""

from repro.protocol.ft.checkpoint import CheckpointStore, ReleaseRecord
from repro.protocol.ft.protocol import FtSvmNodeAgent
from repro.protocol.ft.recovery import RecoveryManager

__all__ = ["FtSvmNodeAgent", "RecoveryManager", "CheckpointStore",
           "ReleaseRecord"]
