"""The extended, fault-tolerant SVM protocol (paper section 4).

Extends the base GeNIMA agent with:

* **dual page homes** -- every page has a primary home keeping a
  *committed* copy and a secondary home keeping a *tentative* copy;
  fetches are served from committed copies only;
* **two-phase diff propagation** -- phase 1 applies diffs to tentative
  copies at secondary homes; the releaser then saves its timestamp (and
  the release's diffs) at its backup node (point B) and only then
  updates the committed copies (phase 2). Committed copies are updated
  last, so home updates serialize and a release is atomic w.r.t.
  single failures (Fig 2);
* **twins and diffs for home pages too** -- both copies must be kept
  current, so home nodes now diff their own pages (a dominant overhead
  for FFT/LU per section 5.3);
* **page locking** -- pages committed by an outstanding release stall
  new faults until propagation completes, preventing the eager-diff
  atomicity violation of Fig 4;
* **serialized releases** per SMP node (checkpoints must not overlap,
  section 4.4);
* **remote thread checkpointing** at points A and B, double-buffered;
* **recovery participation** -- every synchronization operation is
  wrapped in a retry loop that parks the thread at the recovery
  rendezvous when a failure is detected and retries (against the
  reconfigured home map) afterwards.

An addition relative to the paper's text: tentative copies keep a
small per-release *undo log* and the point-A shipment carries the
release's diffs, so roll-back and roll-forward remain executable even
when the failed node was itself one of an updated page's two homes
(see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cluster import Hooks
from repro.errors import ProtocolError, RemoteNodeFailure
from repro.memory import Access, Diff, PageStore, compute_diff
from repro.metrics import Category
from repro.protocol.agent import SvmNodeAgent
from repro.protocol.ft.checkpoint import (
    CheckpointStore,
    ReleaseRecord,
    encode_thread_state,
)
from repro.protocol.signals import RecoverySignal
from repro.sim import Delay, Event, Interrupted

#: Notify channel carrying checkpoint traffic to backup nodes.
CKPT_CHANNEL = "ft_ckpt"
#: Fetch-page sentinel asking the requester to retry after recovery.
RETRY_SENTINEL = "__retry__"

# Release pipeline stages (resumable across recoveries).
STAGE_PREP = 0
STAGE_PHASE1 = 1
STAGE_POINT_B = 2
STAGE_LOCK_RELEASE = 3
STAGE_PHASE2 = 4


@dataclass
class _InflightRelease:
    seq: int
    interval: int
    pages: List[int]
    diffs: Dict[int, Diff]
    stage: int = STAGE_PHASE1
    lock_id: Optional[int] = None
    #: tid -> thread state frozen at the interval commit. Checkpoints
    #: shipped at points A/B must describe execution up to (at most)
    #: the committed interval; threads keep running between the commit
    #: and the ship, so the blobs are captured atomically with the
    #: commit and the later ships send these frozen copies.
    state_blobs: Dict[int, bytes] = field(default_factory=dict)


@dataclass
class _UndoRecord:
    seq: int
    #: page -> list of (offset, old bytes) captured before diff apply.
    pages: Dict[int, List[Tuple[int, bytes]]] = field(default_factory=dict)


class FtSvmNodeAgent(SvmNodeAgent):
    """GeNIMA extended with dynamic data replication."""

    variant = "ft"

    def __init__(self, cluster, node_id, homes, runtime) -> None:
        super().__init__(cluster, node_id, homes, runtime)
        num_pages = self.config.shared_pages
        self.committed = PageStore("committed", num_pages, self.page_size)
        self.tentative = PageStore("tentative", num_pages, self.page_size)
        self.node.regions.export_region(self.committed)
        self.node.regions.export_region(self.tentative)

        self.ckpt_store = CheckpointStore(node_id)
        #: Self-mirror of everything this node has *confirmedly* shipped
        #: to its backup. Costs nothing extra (the node already owns the
        #: data); it exists so that when the backup dies, recovery can
        #: copy the full checkpoint history -- thread-state slots,
        #: pending/complete release records, mirrored write notices --
        #: to the new backup instead of only the live release metadata.
        #: Without it, a node whose backup died loses its durable
        #: history: its next failure then rolls back releases that had
        #: long passed point B (observed as doubled RMWs, or as a hang
        #: when a lock timestamp still names the rolled-back interval).
        self.ckpt_mirror = CheckpointStore(node_id)
        self.register_notify(CKPT_CHANNEL, self._on_checkpoint)

        self.register_notify("svm_diff_flush", lambda msg: None)
        self.release_seq = 0
        #: thread id -> resumable release pipeline state.
        self._inflight: Dict[int, _InflightRelease] = {}
        self._release_busy: Optional[Event] = None
        #: Interval number as of our last *point-B-published* release;
        #: what other nodes may legitimately know about us.
        self.published_interval = 0
        #: Secondary-home undo log: writer -> newest release's old bytes.
        self._undo: Dict[int, _UndoRecord] = {}
        self.recovery_pending: Optional[RecoverySignal] = None
        #: Set by recovery when this node's checkpoint backup died: the
        #: first thread leaving the rendezvous performs a null release
        #: to re-establish checkpoint redundancy at the new backup.
        self.needs_checkpoint_reseed = False

    # ------------------------------------------------------------------
    # Recovery plumbing
    # ------------------------------------------------------------------

    def check_recovery_abort(self) -> None:
        if self.recovery_pending is not None:
            raise RecoverySignal(self.recovery_pending.failed_node)

    def blocked_wait(self, event: Event):
        """Wait on a local handoff event, registered as quiescent for
        the recovery rendezvous (the thread cannot act until another
        local thread resumes)."""
        manager = self.runtime.recovery_manager
        manager.note_blocked(self.node_id)
        try:
            result = yield event
        finally:
            manager.note_unblocked(self.node_id)
        return result

    def abort_local_waits(self) -> None:
        """Called at recovery start: wake version waiters with a
        recovery signal so they can park (their awaited diffs may have
        died with the failed node)."""
        events, self._version_events = self._version_events, {}
        for ev in events.values():
            if not ev.settled:
                ev.fail(RecoverySignal())

    def _recovery_retry(self, thread, factory):
        """Run ``factory()`` (a generator factory), parking at the
        recovery rendezvous and retrying on failure signals."""
        while True:
            if self.recovery_pending is not None:
                yield from self.join_recovery(thread, self.recovery_pending)
                continue
            try:
                result = yield from factory()
                return result
            except RemoteNodeFailure as exc:
                yield from self.join_recovery(
                    thread, RecoverySignal(exc.node_id))
            except RecoverySignal as exc:
                yield from self.join_recovery(thread, exc)
            except Interrupted as exc:
                if isinstance(exc.cause, RecoverySignal):
                    yield from self.join_recovery(thread, exc.cause)
                else:
                    raise

    def join_recovery(self, thread, signal: RecoverySignal):
        """Report + park + (possibly) reseed. Never lets recovery-class
        exceptions escape: a *new* failure surfacing during the reseed
        null release loops back into another report/park round, so the
        caller's retry handler stays simple."""
        manager = self.runtime.recovery_manager
        null_started = False
        while True:
            if signal is not None and signal.failed_node is not None:
                manager.report_failure(signal.failed_node)
            yield from manager.park(thread)
            if not null_started:
                if not self.needs_checkpoint_reseed \
                        or thread.thread_id in self._inflight:
                    # A thread with a paused pipeline of its own must
                    # not run the reseed -- its retry will resume that
                    # pipeline; any fresh release re-ships checkpoints
                    # anyway (see _commit_for_release).
                    return
                # Our checkpoint backup died with our threads' saved
                # states: run a null release (commit + two-phase
                # propagation + points A/B) so the new backup holds
                # current checkpoints before application work resumes.
                self.needs_checkpoint_reseed = False
                null_started = True
            # Run (or, after a nested failure, finish) the null
            # release. Once started it MUST complete inside this call:
            # returning with it half-done would leak the release slot
            # and leave its inflight record to be mistaken for the
            # caller's next real release.
            try:
                yield from self._release_pipeline(thread, None)
                return
            except RemoteNodeFailure as exc:
                signal = RecoverySignal(exc.node_id)
            except RecoverySignal as exc:
                signal = exc
            except Interrupted as exc:
                if not isinstance(exc.cause, RecoverySignal):
                    raise
                signal = exc.cause

    # ------------------------------------------------------------------
    # Memory access wrappers (retry across recoveries)
    # ------------------------------------------------------------------

    def _fast_path_ok(self) -> bool:
        # While a recovery is pending every access must park at the
        # rendezvous (the per-access wrappers check before running);
        # the synchronous fast path defers to them in that window.
        return self.fast_path and self.recovery_pending is None

    def read(self, thread, addr: int, size: int):
        return (yield from self._recovery_retry(
            thread, lambda: super(FtSvmNodeAgent, self).read(
                thread, addr, size)))

    def write(self, thread, addr: int, data: bytes):
        return (yield from self._recovery_retry(
            thread, lambda: super(FtSvmNodeAgent, self).write(
                thread, addr, data)))

    # ------------------------------------------------------------------
    # Page management: dual homes, committed/tentative copies
    # ------------------------------------------------------------------

    def _twin_needed(self, page: int) -> bool:
        # Twins are created even for home pages (section 4.2): every
        # updated page is diffed to both of its homes.
        return True

    def _fetch_store(self, page: int) -> PageStore:
        # Fetches are served from the committed copy: the version
        # containing exactly the permanent, failure-immune updates.
        return self.committed

    def _load_page(self, thread, page: int, op: Optional[int] = None):
        home = self.homes.primary_home(page)
        if home == self.node_id:
            # Local fetch: copy our committed copy into the working copy
            # (the extended protocol's extra local fetch, section 5.2).
            yield from self._wait_local_versions(page)
            yield from self.node.mem_copy(self.page_size)
            self.counters.local_page_fetches += 1
            data = self.committed.read_page(page)
            self._install_fetched(page, data)
            return
        required = dict(self.required_versions.get(page, {}))
        self.counters.remote_page_fetches += 1
        data = yield from self.call_service(
            home, "svm_fetch_page", (page, required), op=op)
        if data == RETRY_SENTINEL:
            raise RecoverySignal()
        yield from self.node.mem_copy(self.page_size)
        self._install_fetched(page, data)

    def _serve_fetch_page(self, body, src: int):
        page, required = body
        try:
            yield from self._wait_versions(page, required)
        except RecoverySignal:
            return RETRY_SENTINEL, 16
        data = self.committed.read_page(page)
        return data, self.page_size

    # Incoming diffs: phase selects the target copy --------------------------

    def _on_diff(self, msg):
        body = msg.payload[1]
        if body[0] == "batch":
            _tag, phase, writer, interval, seq, diffs = body
            for diff in diffs:
                yield from self._apply_one_diff(phase, writer, interval,
                                                seq, diff)
            return
        phase, writer, interval, seq, diff = body
        yield from self._apply_one_diff(phase, writer, interval, seq,
                                        diff)

    def _apply_one_diff(self, phase, writer, interval, seq, diff):
        yield Delay(self.costs.diff_apply_us(max(diff.changed_bytes, 1)))
        if phase == "tent":
            self._record_undo(writer, seq, diff)
            buf = self.tentative.page_view(diff.page_id)
            for offset, data in diff.runs:
                buf[offset:offset + len(data)] = data
        elif phase == "comm":
            buf = self.committed.page_view(diff.page_id)
            for offset, data in diff.runs:
                buf[offset:offset + len(data)] = data
            self._bump_version(diff.page_id, writer, interval)
        else:
            raise ProtocolError(f"unknown diff phase {phase!r}")
        self.hooks.fire(Hooks.DIFF_APPLY, self.node_id, phase=phase,
                        writer=writer, interval=interval, seq=seq,
                        page=diff.page_id)

    def _record_undo(self, writer: int, seq: int, diff: Diff) -> None:
        record = self._undo.get(writer)
        if record is None or record.seq < seq:
            record = _UndoRecord(seq)
            self._undo[writer] = record
        elif record.seq > seq:
            return  # stale retransmission of an older release
        if diff.page_id in record.pages:
            return  # recovery-retry resend: keep the first (true) undo
        old_runs = [(offset, self.tentative.read_span(
            diff.page_id, offset, len(data)))
            for offset, data in diff.runs]
        record.pages[diff.page_id] = old_runs

    def apply_undo(self, writer: int, seq: int) -> List[int]:
        """Recovery: cancel a failed writer's partially-propagated
        release by restoring old bytes at our tentative copies.
        Returns the pages touched (for cost accounting)."""
        record = self._undo.get(writer)
        if record is None or record.seq != seq:
            return []
        for page, runs in record.pages.items():
            buf = self.tentative.page_view(page)
            for offset, old in runs:
                buf[offset:offset + len(old)] = old
        touched = sorted(record.pages)
        del self._undo[writer]
        return touched

    # ------------------------------------------------------------------
    # Release pipeline: commit -> ckpt A -> phase 1 -> point B ->
    # lock handover -> phase 2 -> unlock
    # ------------------------------------------------------------------

    def release_op(self, thread, lock_id: int):
        self.counters.releases += 1
        self.hooks.fire(Hooks.RELEASE_START, self.node_id, lock=lock_id,
                        tid=thread.thread_id)
        yield from self._recovery_retry(
            thread, lambda: self._release_pipeline(thread, lock_id))
        self.hooks.fire(Hooks.RELEASE_DONE, self.node_id, lock=lock_id,
                        tid=thread.thread_id)
        return None

    def _acquire_release_slot(self, thread):
        """Serialize releases within the node (section 4.4: checkpoints
        by different threads must not overlap)."""
        if not self.config.protocol.serialize_releases:
            return
        while self._release_busy is not None:
            self.counters.release_serialization_stalls += 1
            yield from self.blocked_wait(self._release_busy)
        self._release_busy = Event(self.engine, f"relslot{self.node_id}")

    def _free_release_slot(self) -> None:
        if self._release_busy is not None:
            busy, self._release_busy = self._release_busy, None
            if not busy.settled:
                busy.succeed(None)

    def _release_pipeline(self, thread, lock_id: Optional[int]):
        tid = thread.thread_id
        if tid not in self._inflight:
            yield from self._acquire_release_slot(thread)
            # No yields between slot grant and commit: the commit is
            # atomic with respect to interruption.
            self._commit_for_release(thread, lock_id)
        fl = self._inflight[tid]
        if fl.stage == STAGE_PREP:
            yield from self._prepare_release(thread, fl)
            fl.stage = STAGE_PHASE1
        if fl.stage == STAGE_PHASE1:
            self.hooks.fire(Hooks.DIFF_PHASE1_START, self.node_id,
                            seq=fl.seq, tid=thread.thread_id)
            yield from thread.clock.in_category(
                Category.DIFF, self._traced_send_diffs(fl, "tent",
                                                       "diff_phase1"))
            self.hooks.fire(Hooks.DIFF_PHASE1_DONE, self.node_id,
                            seq=fl.seq, tid=thread.thread_id)
            fl.stage = STAGE_POINT_B
        if fl.stage == STAGE_POINT_B:
            yield from thread.clock.in_category(
                Category.CHECKPOINT, self._point_b(thread, fl))
            fl.stage = STAGE_LOCK_RELEASE
        if fl.stage == STAGE_LOCK_RELEASE:
            if fl.lock_id is not None:
                yield from self.locks.release(fl.lock_id, self.ts.copy())
                self.hooks.fire(Hooks.LOCK_RELEASED, self.node_id,
                                lock=fl.lock_id, tid=thread.thread_id)
            fl.stage = STAGE_PHASE2
            self.hooks.fire(Hooks.DIFF_PHASE2_START, self.node_id,
                            seq=fl.seq, tid=thread.thread_id)
        if fl.stage == STAGE_PHASE2:
            yield from thread.clock.in_category(
                Category.DIFF, self._traced_send_diffs(fl, "comm",
                                                       "diff_phase2"))
            self._unlock_pages(fl.pages)
            del self._inflight[tid]
            self._free_release_slot()
            self.hooks.fire(Hooks.DIFF_PHASE2_DONE, self.node_id,
                            seq=fl.seq, tid=thread.thread_id)
        return None

    def _commit_for_release(self, thread, lock_id: Optional[int]) -> None:
        """End the interval: pure state mutations, no yields, so an
        interruption can never split the commit."""
        self.release_seq += 1
        seq = self.release_seq
        pages: List[int] = []
        if self.update_list:
            self.interval_no += 1
            self.ts[self.node_id] = self.interval_no
            pages = list(self.update_list)
            self.update_list.clear()
            self.interval_log[self.node_id][self.interval_no] = pages
            for page in pages:
                entry = self.page_table.entry(page)
                # Page locking (Fig 4): stall faults until propagation
                # completes; downgrade so new writes fault.
                entry.locked = True
                if entry.access is Access.READ_WRITE:
                    entry.access = Access.READ_ONLY
        # Any fresh release re-establishes checkpoint coverage (points
        # A and B ship every local thread's state to the new backup).
        self.needs_checkpoint_reseed = False
        # Freeze every local thread's state NOW, atomically with the
        # interval commit. A peer that keeps executing between this
        # commit and the point-A ship writes into the *next* interval;
        # checkpointing its later state under this release's seq would
        # resume it past actions whose data dies with this node
        # (the 145/1/533 divergence).
        state_blobs = {
            rec.tid: encode_thread_state(rec.ctx.state)
            for rec in self.runtime.threads
            if rec.current_node == self.node_id and not rec.finished}
        self._inflight[thread.thread_id] = _InflightRelease(
            seq=seq, interval=self.interval_no, pages=pages, diffs={},
            stage=STAGE_PREP, lock_id=lock_id, state_blobs=state_blobs)
        self.hooks.fire(Hooks.RELEASE_COMMITTED, self.node_id,
                        interval=self.interval_no, pages=pages, seq=seq)

    def _prepare_release(self, thread, fl: _InflightRelease):
        """Checkpoint peers (point A), compute diffs, ship the pending
        record to the backup. Every step is idempotent so a recovery
        retry can safely re-run the stage."""
        yield Delay(self.costs.release_base_us
                    + self.costs.commit_per_page_us * len(fl.pages)
                    + self.costs.page_lock_us * len(fl.pages))
        # Point A: suspend peers, ship their states to the backup.
        yield from thread.clock.in_category(
            Category.CHECKPOINT, self._point_a(thread, fl))
        # Compute all diffs once; they serve both phases (and the
        # pending record shipped to the backup).
        for page in fl.pages:
            if page in fl.diffs:
                continue  # recomputed stage: twin already consumed
            entry = self.page_table.entry(page)
            diff = yield from thread.clock.in_category(
                Category.DIFF, self._compute_page_diff(page, entry))
            fl.diffs[page] = diff
            entry.dirty = False
            entry.twin = None
            entry.dirty_regions = None
            # The commit consumes any invalidate-while-dirty rebase
            # record: its preserved runs are inside this diff. A stale
            # record would be rebased over a later fetch and revert
            # other writers' updates (see _finish_page_release).
            self._pending_local_diffs.pop(page, None)
        record_body = ("pending", self.node_id, fl.seq, fl.interval,
                       fl.pages,
                       {page: diff.encode()
                        for page, diff in fl.diffs.items()},
                       self.last_barrier_interval)
        body_bytes = 32 + sum(d.wire_bytes for d in fl.diffs.values())
        backup = self.homes.backup_node(self.node_id)
        yield from self.notify(backup, CKPT_CHANNEL, record_body,
                               body_bytes=body_bytes, wait=True)
        # Mirror the shipped record locally (delivery was waited, so the
        # mirror never claims more than the backup durably holds).
        self.ckpt_mirror.store_pending(self.node_id, ReleaseRecord(
            seq=fl.seq, interval=fl.interval, pages=list(fl.pages),
            diffs={page: diff.encode()
                   for page, diff in fl.diffs.items()}))
        self.ckpt_mirror.trim_mirror(self.node_id,
                                     self.last_barrier_interval)
        return None

    def _compute_page_diff(self, page: int, entry):
        yield Delay(self.costs.diff_compute_us(self.page_size))
        if entry.twin is not None:
            twin, regions = entry.twin, entry.dirty_regions
        else:
            twin, regions = bytes(self.page_size), None
        diff = compute_diff(page, twin, self.working.page_view(page),
                            regions=regions)
        self.counters.pages_diffed += 1
        if self.homes.primary_home(page) == self.node_id:
            self.counters.home_pages_diffed += 1
        return diff

    def _traced_send_diffs(self, fl: _InflightRelease, phase: str,
                           op_class: str):
        """Run one propagation phase under its own traced operation."""
        tracer = self.cluster.optrace
        phase_op = None
        if tracer is not None:
            phase_op = tracer.mint(op_class, self.node_id,
                                   f"{op_class} (seq {fl.seq})")
        try:
            yield from self._send_diffs(fl, phase, op=phase_op)
        finally:
            if phase_op is not None:
                tracer.finish(phase_op)
        return None

    def _send_diffs(self, fl: _InflightRelease, phase: str,
                    op: Optional[int] = None):
        """One propagation phase: send every diff to the phase's home
        set, then flush each destination (FIFO + waited marker) so the
        stage is stable before the pipeline advances.

        With ``batch_diffs`` (section 6's "fewer and larger messages"
        optimization) all of a destination's diffs travel as one
        message, trading per-message NIC occupancy for burst size.
        """
        by_target: Dict[int, List[Diff]] = {}
        for page in fl.pages:
            diff = fl.diffs[page]
            if phase == "tent":
                target = self.homes.secondary_home(page)
            else:
                target = self.homes.primary_home(page)
            by_target.setdefault(target, []).append(diff)
        # Diff messages carry the immutable Diff objects themselves --
        # real run bytes without an encode/decode round trip -- while
        # body_bytes still charges the full serialized size (the
        # checkpoint records shipped at point A keep exercising the
        # real encoder).
        if self.config.protocol.batch_diffs:
            for target in sorted(by_target):
                diffs = by_target[target]
                size = sum(d.wire_bytes for d in diffs)
                self.counters.diff_messages += 1
                self.counters.diff_bytes_sent += size
                for diff in diffs:
                    self.hooks.fire(Hooks.DIFF_SEND, self.node_id,
                                    phase=phase, seq=fl.seq,
                                    interval=fl.interval,
                                    page=diff.page_id, target=target)
                body = ("batch", phase, self.node_id, fl.interval,
                        fl.seq, list(diffs))
                yield from self.notify(target, "svm_diff", body,
                                       body_bytes=size, op=op)
        else:
            for target in sorted(by_target):
                for diff in by_target[target]:
                    body = (phase, self.node_id, fl.interval, fl.seq,
                            diff)
                    self.counters.diff_messages += 1
                    self.counters.diff_bytes_sent += diff.wire_bytes
                    self.hooks.fire(Hooks.DIFF_SEND, self.node_id,
                                    phase=phase, seq=fl.seq,
                                    interval=fl.interval,
                                    page=diff.page_id, target=target)
                    yield from self.notify(target, "svm_diff", body,
                                           body_bytes=diff.wire_bytes,
                                           op=op)
        for target in sorted(by_target):
            if target != self.node_id:
                yield from self.notify(target, "svm_diff_flush", None,
                                       body_bytes=0, wait=True, op=op)
        return None

    def _point_a(self, thread, fl: _InflightRelease):
        """Checkpoint every local thread except the releaser.

        Ships the state blobs frozen at the interval commit, NOT the
        threads' current states: a peer that ran on between the commit
        and this ship has advanced into the next (open) interval, and
        its newer state must only ever be checkpointed under a seq
        whose interval contains the matching data."""
        if not self.config.protocol.checkpointing:
            return None
        self.hooks.fire(Hooks.CHECKPOINT_A_START, self.node_id,
                        seq=fl.seq, tid=thread.thread_id)
        tracer = self.cluster.optrace
        ck_op = None
        if tracer is not None:
            ck_op = tracer.mint("checkpoint_a", self.node_id,
                                f"checkpoint A (seq {fl.seq})")
        try:
            peer_tids = sorted(tid for tid in fl.state_blobs
                               if tid != thread.thread_id)
            yield Delay(self.costs.thread_suspend_us * len(peer_tids))
            for tid in peer_tids:
                yield from self._ship_thread_state(
                    tid, fl.seq, fl.state_blobs[tid], op=ck_op)
        finally:
            if ck_op is not None:
                tracer.finish(ck_op)
        self.hooks.fire(Hooks.CHECKPOINT_A, self.node_id, seq=fl.seq,
                        tid=thread.thread_id)
        return None

    def _point_b(self, thread, fl: _InflightRelease):
        """Save our timestamp and the releaser's own state remotely;
        after this the release is conceptually complete."""
        backup = self.homes.backup_node(self.node_id)
        self.hooks.fire(Hooks.CHECKPOINT_B_START, self.node_id,
                        seq=fl.seq, tid=thread.thread_id)
        tracer = self.cluster.optrace
        ck_op = None
        if tracer is not None:
            ck_op = tracer.mint("checkpoint_b", self.node_id,
                                f"checkpoint B (seq {fl.seq})")
        try:
            if self.config.protocol.checkpointing:
                # The releaser runs only protocol code during its own
                # pipeline, so its commit-frozen state is its current one.
                blob = fl.state_blobs.get(thread.thread_id)
                if blob is None:
                    rec = self.runtime.threads[thread.thread_id]
                    blob = encode_thread_state(rec.ctx.state)
                yield from self._ship_thread_state(thread.thread_id,
                                                   fl.seq, blob, op=ck_op)
            yield from self.notify(
                backup, CKPT_CHANNEL,
                ("complete", self.node_id, fl.seq, self.ts.encode()),
                body_bytes=16 + self.ts.wire_bytes, wait=True, op=ck_op)
        finally:
            if ck_op is not None:
                tracer.finish(ck_op)
        # Mirrored only after the waited delivery: "complete" in the
        # mirror must coincide with the pipeline being past point B,
        # which is what exempts the release from the recovery rewind
        # (step 3a) that would otherwise undo its tentative updates.
        self.ckpt_mirror.store_complete(self.node_id, fl.seq,
                                        self.ts.encode())
        self.published_interval = self.interval_no
        self.hooks.fire(Hooks.CHECKPOINT_B, self.node_id, seq=fl.seq,
                        tid=thread.thread_id)
        return None

    def _ship_thread_state(self, tid: int, seq: int, blob: bytes,
                           op: Optional[int] = None):
        # Accounted size includes the modelled native stack (the paper
        # ships context + stack; our explicit state is more compact).
        size = len(blob) + self.costs.checkpoint_stack_bytes
        self.counters.checkpoints += 1
        self.counters.checkpoint_bytes += size
        yield Delay(self.costs.checkpoint_us(size))
        backup = self.homes.backup_node(self.node_id)
        yield from self.notify(
            backup, CKPT_CHANNEL,
            ("state", self.node_id, tid, seq, blob),
            body_bytes=size + 32, op=op)
        # The blob is this node's own frozen truth; mirroring it eagerly
        # is safe (the mirror is only read while this node is alive).
        self.ckpt_mirror.store_thread_state(self.node_id, tid, seq, blob)
        return None

    def initial_checkpoint(self, rec):
        """Ship a seq-0 checkpoint right after initialization so a
        thread that fails before its first release can still be
        recovered (into the start of the timed region)."""
        if not self.config.protocol.checkpointing:
            return None
        yield from self._ship_thread_state(
            rec.tid, 0, encode_thread_state(rec.ctx.state))
        return None

    def _on_checkpoint(self, msg):
        body = msg.payload[1]
        kind = body[0]
        ward = body[1]
        manager = self.runtime.recovery_manager
        if manager is not None and (ward in manager.victims
                                    or ward in self.homes.failed):
            # A checkpoint record from a node whose failure has been
            # detected: it was in flight at the death. Accepting it now
            # would flip recovery decisions already being made from the
            # frozen records (the paper's "no guarantee of success for
            # previous operations" case) -- drop it.
            return
        yield Delay(self.costs.checkpoint_base_us * 0.2)
        if kind == "state":
            _k, ward, tid, seq, blob = body
            self.ckpt_store.store_thread_state(ward, tid, seq, blob)
            self.hooks.fire(Hooks.CHECKPOINT_STORED, self.node_id,
                            kind=kind, ward=ward, tid=tid, seq=seq,
                            blob=blob)
        elif kind == "pending":
            _k, ward, seq, interval, pages, diff_blobs, horizon = body
            self.ckpt_store.store_pending(ward, ReleaseRecord(
                seq=seq, interval=interval, pages=list(pages),
                diffs=dict(diff_blobs)))
            self.ckpt_store.trim_mirror(ward, horizon)
            self.hooks.fire(Hooks.CHECKPOINT_STORED, self.node_id,
                            kind=kind, ward=ward, seq=seq,
                            interval=interval, pages=list(pages))
        elif kind == "complete":
            _k, ward, seq, ts_blob = body
            self.ckpt_store.store_complete(ward, seq, ts_blob)
            self.hooks.fire(Hooks.CHECKPOINT_STORED, self.node_id,
                            kind=kind, ward=ward, seq=seq)
        else:
            raise ProtocolError(f"unknown checkpoint record {kind!r}")

    # ------------------------------------------------------------------
    # Acquire / barrier with recovery retries
    # ------------------------------------------------------------------

    def acquire_op(self, thread, lock_id: int):
        yield Delay(self.costs.acquire_base_us)
        self.hooks.fire(Hooks.ACQUIRE_START, self.node_id, lock=lock_id,
                        tid=thread.thread_id)
        tracer = self.cluster.optrace
        acq_op = None
        if tracer is not None:
            acq_op = tracer.mint("lock_acquire", self.node_id,
                                 f"lock {lock_id} acquire")
        try:
            grant_ts = yield from self._recovery_retry(
                thread, lambda: self.locks.acquire(lock_id, op=acq_op))
            self.counters.acquires += 1
            yield from self._recovery_retry(
                thread, lambda: thread.clock.in_category(
                    Category.PROTOCOL,
                    self._apply_incoming_ts(grant_ts, op=acq_op)))
        finally:
            if acq_op is not None:
                tracer.finish(acq_op)
        self.hooks.fire(Hooks.LOCK_ACQUIRED, self.node_id, lock=lock_id,
                        tid=thread.thread_id)
        return None

    def _internode_barrier(self, thread, barrier_id: int, state,
                           op: Optional[int] = None):
        # The whole leader sequence restarts after a recovery: a thread
        # migrated onto this node mid-generation must be gathered and
        # its updates committed before we (re-)exchange.
        yield from self._recovery_retry(
            thread, lambda: self._leader_sequence(thread, barrier_id,
                                                  state, op))
        return None

    def _leader_sequence(self, thread, barrier_id: int, state,
                         op: Optional[int] = None):
        if thread.thread_id in self._inflight:
            # A pre-failure pipeline paused mid-release still holds its
            # committed pages locked; finish it *before* gathering --
            # a straggler may need those pages to make progress, and it
            # commits only its original page set anyway.
            yield from self._release_pipeline(thread, None)
        if self.barrier_done.get(barrier_id, 0) > state["epoch"]:
            # Recovery reconciliation proved this generation completed
            # globally while we were parked (the reply died with the
            # old manager, or a restored thread's checkpoint epoch
            # witnessed it). Our arrival-time commit already ran; the
            # recovery exchange re-distributed its effects -- pass
            # through instead of gathering stragglers that have moved
            # on to later epochs.
            return None
        stale = yield from self._gather_local_stragglers(state)
        if stale:
            return None
        # Fresh commit covering everything dirtied up to the barrier,
        # including writes by threads gathered after a recovery.
        yield from self._release_pipeline(thread, None)
        yield from self._barrier_exchange(thread, barrier_id, op)
        return None

    def _barrier_exchange(self, thread, barrier_id: int,
                          op: Optional[int] = None):
        from repro.protocol.agent import WRITE_NOTICE_BYTES
        from repro.protocol.barrier import (
            ABORTED,
            BARRIER_SERVICE,
            STALE_DONE,
        )
        from repro.protocol.timestamps import VectorTimestamp
        own_log = self.interval_log[self.node_id]
        entries = [(i, own_log[i]) for i in sorted(own_log)
                   if i > self.last_barrier_interval]
        body_bytes = (self.ts.wire_bytes + 8 + sum(
            WRITE_NOTICE_BYTES * (1 + len(p)) for _i, p in entries))
        manager = self.runtime.barrier_manager_node()
        gen_no = self.barrier_done.get(barrier_id, 0)
        reply = yield from self.call_service(
            manager, BARRIER_SERVICE,
            (barrier_id, self.node_id, gen_no, self.ts.encode(), entries),
            request_bytes=body_bytes, op=op)
        if reply[0] == ABORTED:
            raise RecoverySignal()
        self.last_barrier_interval = self.interval_no
        if reply[0] == STALE_DONE:
            # Our generation completed before the old manager died; the
            # recovery exchange already delivered its effects.
            return None
        merged_blob, all_entries = reply
        merged = VectorTimestamp.decode(self.config.num_nodes, merged_blob)
        yield from thread.clock.in_category(
            Category.PROTOCOL, self._apply_barrier_notices(all_entries))
        self.ts.merge(merged)
        self._trim_interval_log()
        return None

    # The local half of barrier_op (epoch-aware thread gathering) is
    # inherited from the base agent; only the internode exchange above
    # is FT-specific (two-phase propagation + recovery retries).
