"""Centralized barrier manager.

All-to-all internode synchronization (paper section 3.2): each node's
last-arriving thread commits its interval, propagates diffs, and sends
an arrival carrying its vector timestamp and the write notices of every
interval the other nodes may not yet have seen. The manager (lowest
live node) merges timestamps, unions the notices, and releases everyone
with the result.

During recovery the manager can *abort* in-flight barrier generations:
waiters receive the sentinel reply ``("aborted", ...)`` and re-enter the
barrier after recovery completes (section 4.5 requires a global
synchronization before recovery actions).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.protocol.timestamps import VectorTimestamp
from repro.sim import Delay, Event

BARRIER_SERVICE = "svm_barrier"

#: Reply payload marker for aborted barrier generations.
ABORTED = "aborted"
#: Reply payload marker: the caller's generation already completed
#: (its original reply died with a failed manager; everything the reply
#: would have carried was re-distributed by the recovery exchange).
STALE_DONE = "stale_done"


class _Generation:
    __slots__ = ("arrivals", "event", "result")

    def __init__(self, engine) -> None:
        self.arrivals: List[Tuple[int, bytes, list]] = []
        self.event = Event(engine, "barrier.gen")
        self.result = None


class BarrierManager:
    """Registered on the manager node's agent."""

    def __init__(self, agent, runtime) -> None:
        self.agent = agent
        self.runtime = runtime
        self.engine = agent.engine
        self._generations: Dict[int, _Generation] = {}
        #: Completed generation count per barrier id (survives via the
        #: agent's barrier_done when the manager role moves).
        self._completed: Dict[int, int] = {}
        agent.register_service(BARRIER_SERVICE, self._serve)

    def _generation(self, barrier_id: int) -> _Generation:
        gen = self._generations.get(barrier_id)
        if gen is None:
            gen = _Generation(self.engine)
            self._generations[barrier_id] = gen
        return gen

    def _serve(self, body, src: int):
        barrier_id, node, gen_no, ts_blob, entries = body
        manager = self.runtime.recovery_manager
        if manager is not None and manager.active is not None:
            # Recovery in progress: turn the arrival away so the caller
            # parks at the rendezvous and re-arrives afterwards (its
            # pending release work has already completed by the time it
            # reaches the barrier, satisfying section 4.5.2's
            # no-pending-releases precondition).
            return (ABORTED, []), 8
        completed = max(self._completed.get(barrier_id, 0),
                        self.agent.barrier_done.get(barrier_id, 0))
        if gen_no < completed:
            # The caller's generation finished earlier but its reply
            # died with the previous manager node.
            return (STALE_DONE, []), 8
        gen = self._generation(barrier_id)
        gen.arrivals.append((node, ts_blob, entries))
        if (self.runtime.recovery_manager is not None
                and len(gen.arrivals) == 1):
            # FT: watch this generation for missing participants -- a
            # node that dies while others sit at the barrier would
            # otherwise never be detected (nobody talks to it).
            self.agent.node.spawn(self._watchdog(gen),
                                  f"barwatch{barrier_id}")
        yield Delay(self.agent.costs.barrier_per_node_us)
        expected = self.runtime.expected_barrier_nodes()
        if len(gen.arrivals) >= expected and not gen.event.settled:
            self._release(barrier_id, gen)
        yield gen.event
        reply = gen.result
        size = self._reply_bytes(reply)
        return reply, size

    def _watchdog(self, gen: _Generation):
        from repro.sim import timeout_wait
        while not gen.event.settled:
            ok, _value = yield from timeout_wait(
                self.engine, gen.event,
                self.agent.costs.heartbeat_timeout_us * 3)
            if ok or gen.event.settled:
                return
            arrived = {node for node, _ts, _e in gen.arrivals}
            missing = self.runtime.expected_barrier_node_ids() - arrived
            for node in sorted(missing):
                alive = yield from self.agent.vmmc.probe(node)
                if not alive:
                    self.runtime.recovery_manager.report_failure(node)
                    return

    def _release(self, barrier_id: int, gen: _Generation) -> None:
        num_nodes = self.agent.config.num_nodes
        merged = VectorTimestamp(num_nodes)
        union: List[Tuple[int, int, List[int]]] = []
        for node, ts_blob, entries in gen.arrivals:
            merged.merge(VectorTimestamp.decode(num_nodes, ts_blob))
            for interval, pages in entries:
                union.append((node, interval, pages))
        gen.result = (merged.encode(), union)
        # Next arrival at this id starts a fresh generation.
        self._generations.pop(barrier_id)
        self._completed[barrier_id] = max(
            self._completed.get(barrier_id, 0),
            self.agent.barrier_done.get(barrier_id, 0)) + 1
        gen.event.succeed(None)

    def _reply_bytes(self, reply) -> int:
        if reply[0] == ABORTED:
            return 8
        merged_blob, union = reply
        return len(merged_blob) + sum(
            8 * (1 + len(pages)) for _n, _i, pages in union)

    def abort_pending(self) -> None:
        """Recovery: release every in-flight generation with the abort
        sentinel so participants can reach the recovery rendezvous."""
        pending, self._generations = self._generations, {}
        for gen in pending.values():
            gen.result = (ABORTED, [])
            if not gen.event.settled:
                gen.event.succeed(None)
