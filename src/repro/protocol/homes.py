"""Home assignment for pages and locks, with failure reconfiguration.

Every shared page has a *primary home* chosen by the application at
allocation time (paper section 4.2); the extended protocol adds a
*secondary home*, "initially the node immediately following the primary
home in node order". Locks are distributed round-robin and get the same
primary/secondary treatment.

After a failure the mapping is recomputed by walking the node ring and
skipping dead nodes -- a pure function of (original hint, failed set),
so every live node derives the identical new map independently, and the
two replicas of any page or lock are guaranteed to sit on distinct
nodes under any sequence of (non-simultaneous) failures (section 4.5.1).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable

from repro.errors import ProtocolError, UnrecoverableFailure


class HomeMap:
    """Deterministic page/lock home directory shared by all nodes.

    Each node holds its own copy; :meth:`exclude` is called with the
    same failed node on every live node, keeping the copies identical
    without communication.
    """

    def __init__(self, num_nodes: int, page_hint: Dict[int, int],
                 num_locks: int) -> None:
        if num_nodes < 1:
            raise ProtocolError("need at least one node")
        self.num_nodes = num_nodes
        self.num_locks = num_locks
        # Kept by reference: the address space registers hints as the
        # application allocates segments, and the map sees them live.
        self._page_hint = page_hint
        self._failed: set[int] = set()
        #: Reconfiguration epoch: bumped on every exclusion, so
        #: auditors can tell which map generation routed a message.
        self.epoch = 0

    # -- ring walking ---------------------------------------------------------

    def _next_live(self, start: int) -> int:
        """First live node at or after ``start`` in ring order."""
        for step in range(self.num_nodes):
            node = (start + step) % self.num_nodes
            if node not in self._failed:
                return node
        raise UnrecoverableFailure("all nodes have failed")

    def live_count(self) -> int:
        return self.num_nodes - len(self._failed)

    @property
    def failed(self) -> FrozenSet[int]:
        return frozenset(self._failed)

    def exclude(self, node: int) -> None:
        """Mark ``node`` dead and remap everything it was hosting."""
        if not 0 <= node < self.num_nodes:
            raise ProtocolError(f"no node {node}")
        self._failed.add(node)
        self.epoch += 1
        if self.live_count() < 2:
            raise UnrecoverableFailure(
                "fewer than two live nodes remain: replication impossible")

    # -- pages ----------------------------------------------------------------

    def page_hint(self, page_id: int) -> int:
        try:
            return self._page_hint[page_id]
        except KeyError:
            raise ProtocolError(f"page {page_id} has no home hint "
                                "(unallocated page?)") from None

    def primary_home(self, page_id: int) -> int:
        return self._next_live(self.page_hint(page_id))

    def secondary_home(self, page_id: int) -> int:
        primary = self.primary_home(page_id)
        secondary = self._next_live(primary + 1)
        if secondary == primary:
            raise UnrecoverableFailure(
                "cannot place page replicas on distinct nodes")
        return secondary

    def allocated_pages(self) -> list[int]:
        """All pages with a home hint, i.e. allocated by the app."""
        return sorted(self._page_hint)

    def pages_homed_at(self, node: int, role: str = "primary"
                       ) -> list[int]:
        """All pages whose current primary/secondary home is ``node``."""
        picker = (self.primary_home if role == "primary"
                  else self.secondary_home)
        return sorted(p for p in self._page_hint if picker(p) == node)

    # -- locks ----------------------------------------------------------------

    def lock_hint(self, lock_id: int) -> int:
        if not 0 <= lock_id < self.num_locks:
            raise ProtocolError(f"lock {lock_id} out of range")
        return lock_id % self.num_nodes

    def lock_primary(self, lock_id: int) -> int:
        return self._next_live(self.lock_hint(lock_id))

    def lock_secondary(self, lock_id: int) -> int:
        primary = self.lock_primary(lock_id)
        secondary = self._next_live(primary + 1)
        if secondary == primary:
            raise UnrecoverableFailure(
                "cannot place lock replicas on distinct nodes")
        return secondary

    # -- checkpoint backups -----------------------------------------------------

    def backup_node(self, node: int) -> int:
        """Where ``node`` ships its thread checkpoints (next live node)."""
        backup = self._next_live(node + 1)
        if backup == node:
            raise UnrecoverableFailure("no distinct backup node available")
        return backup

    def barrier_manager(self) -> int:
        """The node hosting barrier managers (lowest live node)."""
        return self._next_live(0)

    def copy(self) -> "HomeMap":
        clone = HomeMap(self.num_nodes, self._page_hint, self.num_locks)
        clone._failed = set(self._failed)
        clone.epoch = self.epoch
        return clone
