"""Home assignment for pages and locks, with failure reconfiguration.

Every shared page has a *primary home* chosen by the application at
allocation time (paper section 4.2); the extended protocol adds a
*secondary home*, "initially the node immediately following the primary
home in node order". Locks are distributed round-robin and get the same
primary/secondary treatment.

After a failure the mapping is recomputed by walking the node ring and
skipping dead nodes -- a pure function of (original hint, failed set),
so every live node derives the identical new map independently, and the
two replicas of any page or lock are guaranteed to sit on distinct
nodes under any sequence of (non-simultaneous) failures (section 4.5.1).

Recovery's re-replication phase may *override* the ring for secondary
homes and checkpoint backups (:meth:`HomeMap.reassign_secondary` and
friends): the ring piles every replica the dead node hosted onto its
successor, while an election can spread that load over all survivors.
Overrides are part of the deterministic map state -- they are installed
by the (deterministic) recovery coordinator, bump the epoch like an
exclusion does, are cloned by :meth:`HomeMap.copy`, and are pruned
automatically when a later exclusion invalidates them (target died, or
the ring moved the primary onto the override target).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable

from repro.errors import ProtocolError, UnrecoverableFailure


class HomeMap:
    """Deterministic page/lock home directory shared by all nodes.

    Each node holds its own copy; :meth:`exclude` is called with the
    same failed node on every live node, keeping the copies identical
    without communication.
    """

    def __init__(self, num_nodes: int, page_hint: Dict[int, int],
                 num_locks: int) -> None:
        if num_nodes < 1:
            raise ProtocolError("need at least one node")
        self.num_nodes = num_nodes
        self.num_locks = num_locks
        # Kept by reference: the address space registers hints as the
        # application allocates segments, and the map sees them live.
        self._page_hint = page_hint
        self._failed: set[int] = set()
        #: Re-replication overrides (page/lock -> secondary, ward ->
        #: backup). Absent keys fall back to the ring walk.
        self._secondary_override: Dict[int, int] = {}
        self._lock_secondary_override: Dict[int, int] = {}
        self._backup_override: Dict[int, int] = {}
        #: Reconfiguration epoch: bumped on every exclusion and every
        #: re-replication override, so auditors can tell which map
        #: generation routed a message.
        self.epoch = 0

    # -- ring walking ---------------------------------------------------------

    def _next_live(self, start: int) -> int:
        """First live node at or after ``start`` in ring order."""
        for step in range(self.num_nodes):
            node = (start + step) % self.num_nodes
            if node not in self._failed:
                return node
        raise UnrecoverableFailure("all nodes have failed")

    def live_count(self) -> int:
        return self.num_nodes - len(self._failed)

    @property
    def failed(self) -> FrozenSet[int]:
        return frozenset(self._failed)

    def exclude(self, node: int) -> None:
        """Mark ``node`` dead and remap everything it was hosting."""
        if not 0 <= node < self.num_nodes:
            raise ProtocolError(f"no node {node}")
        self._failed.add(node)
        self.epoch += 1
        if self.live_count() < 2:
            raise UnrecoverableFailure(
                "fewer than two live nodes remain: replication impossible")
        self._prune_overrides()

    def _prune_overrides(self) -> None:
        """Drop overrides the new failed set invalidates: a dead
        target, or a ring primary that moved onto the override target
        (the replicas would coincide). Pruned entries fall back to the
        ring, and the recovery of whichever node broke them re-elects;
        the lost-replica scan compares against the *pre-exclusion* map
        copy, so a pruned page still shows up as needing a secondary."""
        for page in list(self._secondary_override):
            target = self._secondary_override[page]
            if target in self._failed or target == self.primary_home(page):
                del self._secondary_override[page]
        for lock_id in list(self._lock_secondary_override):
            target = self._lock_secondary_override[lock_id]
            if target in self._failed \
                    or target == self.lock_primary(lock_id):
                del self._lock_secondary_override[lock_id]
        for ward in list(self._backup_override):
            if ward in self._failed \
                    or self._backup_override[ward] in self._failed:
                del self._backup_override[ward]

    # -- re-replication overrides ---------------------------------------------

    def _check_reassign(self, kind: str, target: int,
                        primary: int) -> None:
        if not 0 <= target < self.num_nodes:
            raise ProtocolError(f"no node {target}")
        if target in self._failed:
            raise ProtocolError(
                f"cannot place {kind} replica on dead node {target}")
        if target == primary:
            raise ProtocolError(
                f"{kind} replica must not share node {primary} with "
                f"its primary")

    def reassign_secondary(self, page_id: int, target: int) -> None:
        """Elect ``target`` as ``page_id``'s secondary home."""
        self._check_reassign("page", target, self.primary_home(page_id))
        self._secondary_override[page_id] = target
        self.epoch += 1

    def reassign_lock_secondary(self, lock_id: int, target: int) -> None:
        """Elect ``target`` as ``lock_id``'s secondary home."""
        self._check_reassign("lock", target, self.lock_primary(lock_id))
        self._lock_secondary_override[lock_id] = target
        self.epoch += 1

    def reassign_backup(self, ward: int, target: int) -> None:
        """Elect ``target`` as ``ward``'s checkpoint backup."""
        self._check_reassign("backup", target, ward)
        self._backup_override[ward] = target
        self.epoch += 1

    # -- pages ----------------------------------------------------------------

    def page_hint(self, page_id: int) -> int:
        try:
            return self._page_hint[page_id]
        except KeyError:
            raise ProtocolError(f"page {page_id} has no home hint "
                                "(unallocated page?)") from None

    def primary_home(self, page_id: int) -> int:
        return self._next_live(self.page_hint(page_id))

    def secondary_home(self, page_id: int) -> int:
        override = self._secondary_override.get(page_id)
        if override is not None:
            return override
        primary = self.primary_home(page_id)
        secondary = self._next_live(primary + 1)
        if secondary == primary:
            raise UnrecoverableFailure(
                "cannot place page replicas on distinct nodes")
        return secondary

    def allocated_pages(self) -> list[int]:
        """All pages with a home hint, i.e. allocated by the app."""
        return sorted(self._page_hint)

    def pages_homed_at(self, node: int, role: str = "primary"
                       ) -> list[int]:
        """All pages whose current primary/secondary home is ``node``."""
        picker = (self.primary_home if role == "primary"
                  else self.secondary_home)
        return sorted(p for p in self._page_hint if picker(p) == node)

    # -- locks ----------------------------------------------------------------

    def lock_hint(self, lock_id: int) -> int:
        if not 0 <= lock_id < self.num_locks:
            raise ProtocolError(f"lock {lock_id} out of range")
        return lock_id % self.num_nodes

    def lock_primary(self, lock_id: int) -> int:
        return self._next_live(self.lock_hint(lock_id))

    def lock_secondary(self, lock_id: int) -> int:
        override = self._lock_secondary_override.get(lock_id)
        if override is not None:
            return override
        primary = self.lock_primary(lock_id)
        secondary = self._next_live(primary + 1)
        if secondary == primary:
            raise UnrecoverableFailure(
                "cannot place lock replicas on distinct nodes")
        return secondary

    # -- checkpoint backups -----------------------------------------------------

    def backup_node(self, node: int) -> int:
        """Where ``node`` ships its thread checkpoints (next live node,
        unless re-replication elected a different backup)."""
        override = self._backup_override.get(node)
        if override is not None:
            return override
        backup = self._next_live(node + 1)
        if backup == node:
            raise UnrecoverableFailure("no distinct backup node available")
        return backup

    def barrier_manager(self) -> int:
        """The node hosting barrier managers (lowest live node)."""
        return self._next_live(0)

    def copy(self) -> "HomeMap":
        clone = HomeMap(self.num_nodes, self._page_hint, self.num_locks)
        clone._failed = set(self._failed)
        clone._secondary_override = dict(self._secondary_override)
        clone._lock_secondary_override = dict(self._lock_secondary_override)
        clone._backup_override = dict(self._backup_override)
        clone.epoch = self.epoch
        return clone
