"""Lock synchronization algorithms (paper sections 3.2 and 4.3).

Two algorithms, each usable by the base and the extended protocol:

* :class:`QueueingLocks` -- GeNIMA's distributed queue lock. Each lock
  has a home that records only the *tail* of a virtual requester queue;
  requests are forwarded to the latest requester, and the previous
  holder grants directly to the next. Low traffic, but stateful -- the
  paper found its fault-tolerant variant prohibitively complex.

* :class:`PollingLocks` -- the paper's replacement: a centralized,
  *stateless* lock. Each lock is a per-node byte vector at its home;
  to acquire, a node writes 1 into its slot and reads back the whole
  vector: sole non-zero slot means acquired, otherwise reset and retry
  with randomized exponential backoff (avoiding livelock). Contention
  is higher, recovery is trivial.

Both provide intra-SMP handoff without any messages ("equivalent to a
few assembly instructions"), and both have fault-tolerant variants that
replicate lock state (the polling vector and the lock timestamp) to a
secondary home on every global acquire and release.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, Dict, Optional

from repro.errors import ProtocolError
from repro.protocol.signals import RecoverySignal
from repro.protocol.timestamps import VectorTimestamp
from repro.sim import Delay, Event

#: Region names exported by every node (any node can be a lock home).
LOCKVEC_REGION = "lockvec"
LOCKTS_REGION = "lockts"
#: Notify channel used by the queueing algorithm.
QLOCK_CHANNEL = "qlock"
QLOCK_SERVICE = "qlock"
QLOCK_MIRROR_CHANNEL = "qlock_mirror"


class _Status(enum.Enum):
    IDLE = 0        # this node does not hold and is not acquiring
    ACQUIRING = 1   # one local thread is acquiring globally
    HELD = 2        # a local thread holds the lock


class _NodeLockState:
    """Per-(node, lock) state enabling message-free intra-SMP handoff."""

    __slots__ = ("status", "waiters", "next_requester", "next_event",
                 "grant_event", "grant_ts")

    def __init__(self) -> None:
        self.status = _Status.IDLE
        self.waiters: Deque[Event] = deque()
        #: Queueing lock: successor forwarded by the home (we are tail).
        self.next_requester: Optional[int] = None
        self.next_event: Optional[Event] = None
        #: Queueing lock: wait for the direct grant from the previous
        #: holder (kept separate from next_event -- while queued we can
        #: simultaneously become the tail and receive a "next").
        self.grant_event: Optional[Event] = None
        self.grant_ts: Optional[VectorTimestamp] = None


class LockManagerBase:
    """Intra-node layer shared by both algorithms.

    The protocol agent calls :meth:`acquire`/:meth:`release`; the
    subclass implements the global (:meth:`_global_acquire` /
    :meth:`_global_release`) part.
    """

    def __init__(self, agent) -> None:
        self.agent = agent
        self.engine = agent.engine
        self._states: Dict[int, _NodeLockState] = {}
        # One immutable Delay per fixed charge instead of one per op.
        self._delay_op = Delay(agent.costs.lock_op_us)

    def _state(self, lock_id: int) -> _NodeLockState:
        st = self._states.get(lock_id)
        if st is None:
            st = _NodeLockState()
            self._states[lock_id] = st
        return st

    def acquire(self, lock_id: int, op: Optional[int] = None):
        """Generator returning the grant timestamp (None when no
        consistency action is needed: first-ever acquire or intra-node
        handoff). ``op`` is the causal-trace operation id, stamped onto
        the global acquire's messages (intra-node handoff sends none)."""
        st = self._state(lock_id)
        self.agent.counters.lock_acquires += 1
        while True:
            if st.status is _Status.IDLE:
                st.status = _Status.ACQUIRING
                try:
                    ts = yield from self._global_acquire(lock_id, op)
                except BaseException:
                    st.status = _Status.IDLE
                    self._wake_local_waiters(lock_id)
                    raise
                st.status = _Status.HELD
                st.grant_ts = ts
                return ts
            # A local thread holds or is acquiring: queue locally. A
            # "handoff" wake means we own the lock without messages or
            # invalidations (same node => updates already visible); a
            # "retry" wake means the holder released globally (or its
            # acquire aborted) and we must contend from scratch.
            # Named per lock so stall diagnostics (the obs watchdog's
            # wait-for graph) can tell which lock the thread queues on.
            ev = Event(self.engine, f"lock{lock_id}.localwait")
            st.waiters.append(ev)
            outcome = yield from self.agent.blocked_wait(ev)
            if outcome == "handoff":
                return None

    def _wake_local_waiters(self, lock_id: int) -> None:
        """Wake queued local waiters to re-contend (the lock left this
        node, or the in-progress acquire aborted)."""
        st = self._state(lock_id)
        while st.waiters:
            st.waiters.popleft().succeed("retry")

    def release(self, lock_id: int, ts: VectorTimestamp):
        """Generator. ``ts`` is the releasing node's (just committed)
        vector timestamp, handed to the next acquirer."""
        st = self._state(lock_id)
        if st.status is not _Status.HELD:
            raise ProtocolError(
                f"node {self.agent.node_id}: release of lock {lock_id} "
                "not held")
        if st.waiters:
            # Intra-SMP handoff: no messages (paper section 3.2 / 4.3).
            st.waiters.popleft().succeed("handoff")
            return
        # Keep HELD until the global release completes: if it fails
        # against a dying lock home, the recovery retry re-enters here
        # and must still own the lock (deposits are idempotent).
        yield from self._global_release(lock_id, ts)
        st.status = _Status.IDLE
        # Anyone who queued while the global release was in flight must
        # now contend globally.
        self._wake_local_waiters(lock_id)

    # -- subclass interface ---------------------------------------------------

    def _global_acquire(self, lock_id: int, op: Optional[int] = None):
        raise NotImplementedError
        yield  # pragma: no cover

    def _global_release(self, lock_id: int, ts: VectorTimestamp):
        raise NotImplementedError
        yield  # pragma: no cover


class PollingLocks(LockManagerBase):
    """Centralized polling lock (the extended protocol's choice).

    With ``replicate=True`` every global acquire/release also updates
    the secondary lock home, so that after a failure the surviving home
    carries current state and "lock synchronization can resume directly
    using the two new lock homes" (section 4.5.1).
    """

    def __init__(self, agent, replicate: bool = False) -> None:
        super().__init__(agent)
        self.replicate = replicate

    # Region layout helpers ----------------------------------------------------

    def _vec_base(self, lock_id: int) -> int:
        return lock_id * self.agent.config.num_nodes

    def _ts_size(self) -> int:
        return 4 * self.agent.config.num_nodes

    def _homes(self, lock_id: int) -> list[int]:
        homes = [self.agent.homes.lock_primary(lock_id)]
        if self.replicate:
            homes.append(self.agent.homes.lock_secondary(lock_id))
        return homes

    def _global_acquire(self, lock_id: int, op: Optional[int] = None):
        agent = self.agent
        costs = agent.costs
        n = agent.config.num_nodes
        me = agent.node_id
        vec_base = self._vec_base(lock_id)
        backoff = costs.lock_backoff_min_us
        while True:
            # The agent aborts synchronization when recovery is pending;
            # polling loops are the paper's natural abort points.
            agent.check_recovery_abort()
            home = agent.homes.lock_primary(lock_id)
            yield self._delay_op
            yield from agent.deposit(
                home, LOCKVEC_REGION, vec_base + me,
                b"\x01", wait=True, op=op)
            vec = yield from agent.fetch(
                home, LOCKVEC_REGION, vec_base, n, op=op)
            # "Any slot other than mine non-zero" via C-level byte
            # counting (the generator version dominated the poll loop).
            contended = (n - vec.count(0) - (1 if vec[me] else 0)) > 0
            if not contended:
                break
            agent.counters.lock_retries += 1
            yield from agent.deposit(
                home, LOCKVEC_REGION, vec_base + me,
                b"\x00", wait=True, op=op)
            # FT: a dead lock holder leaves its slot set forever; after
            # a while, probe the apparent holders (section 4.1's
            # heart-beat principle applied to lock spinning).
            manager = getattr(agent.runtime, "recovery_manager", None)
            if manager is not None and \
                    agent.counters.lock_retries % 8 == 0:
                for other in range(n):
                    if other != me and vec[other]:
                        alive = yield from agent.vmmc.probe(other)
                        if not alive:
                            manager.report_failure(other)
                agent.check_recovery_abort()
            jitter = 0.5 + agent.rng.random()
            yield Delay(backoff * jitter)
            backoff = min(backoff * 2.0, costs.lock_backoff_max_us)
        # Acquired: replicate holder state, then read the lock timestamp.
        if self.replicate:
            secondary = agent.homes.lock_secondary(lock_id)
            yield from agent.deposit(
                secondary, LOCKVEC_REGION, self._vec_base(lock_id) + me,
                b"\x01", wait=True, op=op)
        blob = yield from agent.fetch(
            home, LOCKTS_REGION, lock_id * self._ts_size(), self._ts_size(),
            op=op)
        if blob == bytes(self._ts_size()):
            return None  # first acquire ever: nothing to invalidate
        return VectorTimestamp.decode(n, blob)

    def _global_release(self, lock_id: int, ts: VectorTimestamp):
        agent = self.agent
        me = agent.node_id
        blob = ts.encode()
        # Secondary first, primary last: the copy that acquirers consult
        # is updated last, the same serialization rule as page diffs.
        for home in reversed(self._homes(lock_id)):
            # FIFO per destination orders the timestamp before the slot
            # clear, so a winner always reads a current timestamp.
            yield from agent.deposit(
                home, LOCKTS_REGION, lock_id * self._ts_size(), blob)
            yield from agent.deposit(
                home, LOCKVEC_REGION, self._vec_base(lock_id) + me, b"\x00")
        yield self._delay_op


class QueueingLocks(LockManagerBase):
    """GeNIMA's distributed queueing lock.

    The home records the queue tail; requests forward to the previous
    tail; holders grant directly to their successor. With
    ``mirror=True`` (fault-tolerant variant) the home mirrors each state
    change to the lock's secondary home -- reproducing the messaging
    cost of the scheme the paper built and then abandoned for its
    complexity (recovery with this algorithm is not supported here;
    use PollingLocks for runs with failures, as the paper does).
    """

    def __init__(self, agent, mirror: bool = False) -> None:
        super().__init__(agent)
        self.mirror = mirror
        #: Home-side state: lock -> {"tail": node|None, "ts": blob|None}.
        self.home_state: Dict[int, Dict[str, object]] = {}
        agent.register_service(QLOCK_SERVICE, self._serve)
        agent.register_notify(QLOCK_CHANNEL, self._on_notify)
        agent.register_notify(QLOCK_MIRROR_CHANNEL, self._on_mirror)

    def _home_entry(self, lock_id: int) -> Dict[str, object]:
        entry = self.home_state.get(lock_id)
        if entry is None:
            entry = {"tail": None, "ts": None}
            self.home_state[lock_id] = entry
        return entry

    # -- home-side service -----------------------------------------------------

    def _serve(self, body, src: int):
        op = body[0]
        agent = self.agent
        yield self._delay_op
        if op == "req":
            _op, lock_id, requester = body
            entry = self._home_entry(lock_id)
            tail = entry["tail"]
            entry["tail"] = requester
            yield from self._mirror_update(lock_id, entry)
            if tail is None:
                return ("granted", entry["ts"]), 8 + self._ts_bytes(entry)
            # Forward to the previous tail; it will grant on release.
            yield from agent.notify(tail, QLOCK_CHANNEL,
                                    ("next", lock_id, requester))
            return ("queued", None), 8
        if op == "rel":
            _op, lock_id, holder, ts_blob = body
            entry = self._home_entry(lock_id)
            if entry["tail"] == holder:
                entry["tail"] = None
                entry["ts"] = ts_blob
                yield from self._mirror_update(lock_id, entry)
                return ("clear",), 8
            # Someone queued behind the holder; a "next" notification is
            # already on its way to it.
            return ("expect_next",), 8
        raise ProtocolError(f"unknown qlock op {op!r}")

    def _ts_bytes(self, entry) -> int:
        blob = entry["ts"]
        return len(blob) if blob else 0

    def _mirror_update(self, lock_id: int, entry) -> object:
        if self.mirror:
            secondary = self.agent.homes.lock_secondary(lock_id)
            if secondary != self.agent.node_id:
                yield from self.agent.notify(
                    secondary, QLOCK_MIRROR_CHANNEL,
                    (lock_id, entry["tail"], entry["ts"]))
        return None
        yield  # pragma: no cover (generator marker when mirror is False)

    def _on_mirror(self, msg) -> None:
        lock_id, tail, ts_blob = msg.payload[1]
        self.home_state[lock_id] = {"tail": tail, "ts": ts_blob}

    # -- requester-side notifications -------------------------------------------

    def _on_notify(self, msg) -> None:
        body = msg.payload[1]
        op = body[0]
        if op == "next":
            _op, lock_id, requester = body
            st = self._state(lock_id)
            st.next_requester = requester
            if st.next_event is not None and not st.next_event.settled:
                st.next_event.succeed(None)
        elif op == "grant":
            _op, lock_id, ts_blob = body
            st = self._state(lock_id)
            st.grant_ts = (VectorTimestamp.decode(
                self.agent.config.num_nodes, ts_blob)
                if ts_blob else None)
            if st.grant_event is not None and not st.grant_event.settled:
                st.grant_event.succeed("granted")
        else:
            raise ProtocolError(f"unknown qlock notify {op!r}")

    # -- global acquire/release ---------------------------------------------------

    def _global_acquire(self, lock_id: int, op: Optional[int] = None):
        agent = self.agent
        st = self._state(lock_id)
        home = agent.homes.lock_primary(lock_id)
        yield self._delay_op
        st.grant_event = Event(self.engine, f"qlock{lock_id}.grant")
        reply = yield from agent.call_service(
            home, QLOCK_SERVICE, ("req", lock_id, agent.node_id), op=op)
        if reply[0] == "granted":
            st.grant_event = None
            blob = reply[1]
            return (VectorTimestamp.decode(agent.config.num_nodes, blob)
                    if blob else None)
        # Queued: wait for the direct grant from the previous holder.
        result = yield from agent.blocked_wait(st.grant_event)
        st.grant_event = None
        if result != "granted":
            raise ProtocolError("queue lock wait ended without grant")
        return st.grant_ts

    def _global_release(self, lock_id: int, ts: VectorTimestamp):
        agent = self.agent
        st = self._state(lock_id)
        home = agent.homes.lock_primary(lock_id)
        blob = ts.encode()
        reply = yield from agent.call_service(
            home, QLOCK_SERVICE, ("rel", lock_id, agent.node_id, blob))
        if reply[0] == "clear":
            st.next_requester = None
            return
        # expect_next: wait for (or use) the successor, grant directly.
        if st.next_requester is None:
            st.next_event = Event(self.engine, f"qlock{lock_id}.next")
            yield from agent.blocked_wait(st.next_event)
            st.next_event = None
        successor = st.next_requester
        st.next_requester = None
        yield from agent.notify(successor, QLOCK_CHANNEL,
                                ("grant", lock_id, blob),
                                body_bytes=16 + len(blob))


def make_lock_manager(agent, algorithm: str, fault_tolerant: bool):
    """Factory mapping config to a lock manager instance."""
    if algorithm == "polling":
        return PollingLocks(agent, replicate=fault_tolerant)
    if algorithm == "queueing":
        return QueueingLocks(agent, mirror=fault_tolerant)
    raise ProtocolError(f"unknown lock algorithm {algorithm!r}")
