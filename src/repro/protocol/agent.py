"""Base SVM protocol agent: GeNIMA, home-based lazy release consistency.

One :class:`SvmNodeAgent` runs per node and implements paper section
3.2: intervals delimited by releases, a common per-SMP update list,
twins and diffs, eager diff propagation to home nodes at releases,
timestamp-driven invalidations at acquires, and whole-page fetches from
home on post-invalidation faults.

The agent works on real bytes: application reads/writes go through a
software page table into a working page store; diffs are computed from
real twins and applied at real home copies across the simulated wire.

Correctness under asynchrony is enforced with per-page *version
vectors*: every write notice records which writer interval invalidated
the page, and a fetch (or a home's own post-acquire access) is held
until the home copy has absorbed diffs up to the required versions --
the standard HLRC mechanism that makes eager asynchronous diff
propagation safe.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.cluster import Cluster, Hooks
from repro.errors import ProtectionFault, ProtocolError
from repro.memory import (
    Access,
    Diff,
    PageStore,
    PageTable,
    apply_diff,
    compute_diff,
)
from repro.metrics import Category, NodeCounters
from repro.metrics.latency import PAGE_FAULT, LatencyBook
from repro.protocol.barrier import ABORTED, BARRIER_SERVICE, STALE_DONE
from repro.protocol.homes import HomeMap
from repro.protocol.signals import RecoverySignal
from repro.protocol.locks import (
    LOCKTS_REGION,
    LOCKVEC_REGION,
    make_lock_manager,
)
from repro.protocol.timestamps import VectorTimestamp
from repro.sim import Delay, Event, Mutex

#: Notify channel carrying encoded diffs to home nodes.
DIFF_CHANNEL = "svm_diff"
#: Service returning write-notice lists for an interval range.
GET_INTERVALS_SERVICE = "svm_get_intervals"
#: Service returning a page's current home copy (version-gated).
FETCH_PAGE_SERVICE = "svm_fetch_page"

#: Wire size of one write notice (page id + interval tag).
WRITE_NOTICE_BYTES = 8


class SvmNodeAgent:
    """GeNIMA protocol state and operations for one node."""

    #: Protocol variant name (the FT subclass overrides).
    variant = "base"

    #: Class-wide switch for the synchronous batched fast path. When
    #: off, every access runs the per-access generator path -- the
    #: reference oracle the equivalence tests compare against (same
    #: pattern as ``compute_diff_reference``).
    fast_path_enabled = True

    def __init__(self, cluster: Cluster, node_id: int, homes: HomeMap,
                 runtime) -> None:
        self.cluster = cluster
        self.node = cluster.node(node_id)
        self.node_id = node_id
        self.engine = cluster.engine
        self.config = cluster.config
        self.costs = cluster.config.costs
        self.homes = homes
        self.runtime = runtime
        self.vmmc = self.node.vmmc
        self.rng = self.node.rng
        self.hooks = cluster.hooks
        self.address_space = cluster.address_space
        self.counters = NodeCounters()
        #: Per-operation latency samples (section 5.3's averages).
        self.latency = LatencyBook()

        num_pages = self.config.shared_pages
        page_size = self.config.memory.page_size
        self.page_size = page_size
        self.working = PageStore("working", num_pages, page_size)
        self.node.regions.export_region(self.working)
        self.page_table = PageTable(num_pages)

        # Lock regions (this node may be home for any lock).
        n = self.config.num_nodes
        self.node.regions.export(
            LOCKVEC_REGION, self.config.num_locks * n)
        self.node.regions.export(
            LOCKTS_REGION, self.config.num_locks * 4 * n)

        # LRC state -------------------------------------------------------
        self.ts = VectorTimestamp(n)
        #: Own interval counter (== self.ts[self.node_id]).
        self.interval_no = 0
        #: node -> interval -> list of updated pages (write notices).
        #: Normally only our own entries; recovery merges a dead node's.
        self.interval_log: Dict[int, Dict[int, List[int]]] = {node_id: {}}
        #: Pages updated in the currently open interval, in write order.
        self.update_list: "OrderedDict[int, None]" = OrderedDict()
        #: Interval number as of the last barrier we passed (what remote
        #: nodes are guaranteed to have seen of us via that barrier).
        self.last_barrier_interval = 0

        # Version gating ----------------------------------------------------
        #: Home side: page -> writer node -> highest interval applied.
        self.page_versions: Dict[int, Dict[int, int]] = {}
        #: Consumer side: page -> writer node -> interval required
        #: before the page may be used again.
        self.required_versions: Dict[int, Dict[int, int]] = {}
        self._version_events: Dict[int, Event] = {}

        #: Local diffs of dirty pages that had to be invalidated before
        #: their release (false sharing across an acquire).
        self._pending_local_diffs: Dict[int, Diff] = {}
        self._fault_mutexes: Dict[int, Mutex] = {}
        #: FT page locking (unused in base, checked in shared paths).
        self._page_unlock_events: Dict[int, Event] = {}

        # Intra-node barrier bookkeeping: (bar_id, epoch) -> state dict,
        # plus completed-generation counts per barrier id.
        self._local_barriers: Dict[object, Dict[str, object]] = {}
        self.barrier_done: Dict[int, int] = {}

        #: Optional ``fn(page, offset, data)`` observing every
        #: application store (repro.verify's shadow oracle). A plain
        #: attribute, not a hook: the write path is hot and a single
        #: None check is all the disabled case may cost.
        self.write_observer = None

        #: Instance switch for the batched fast path (class default,
        #: overridable per run via REPRO_NO_FAST_PATH for A/B oracles).
        self.fast_path = (self.fast_path_enabled
                          and not os.environ.get("REPRO_NO_FAST_PATH"))

        # Services / notify handlers ---------------------------------------
        self._services: Dict[str, object] = {}
        self._notify_handlers: Dict[str, object] = {}
        self.register_service(GET_INTERVALS_SERVICE,
                              self._serve_get_intervals)
        self.register_service(FETCH_PAGE_SERVICE, self._serve_fetch_page)
        self.register_notify(DIFF_CHANNEL, self._on_diff)

        self.locks = make_lock_manager(
            self, self.config.protocol.lock_algorithm,
            fault_tolerant=self.config.protocol.is_ft
            and self.config.protocol.replicate_locks)

    # ------------------------------------------------------------------
    # Communication helpers with same-node fast paths
    # ------------------------------------------------------------------

    def deposit(self, dst: int, region: str, offset: int, data: bytes,
                wait: bool = False, op: Optional[int] = None):
        if dst == self.node_id:
            yield from self.node.mem_copy(len(data))
            self.node.regions.lookup(region).write(offset, data)
            return None
        return (yield from self.vmmc.remote_deposit(
            dst, region, offset, data, wait=wait, op=op))

    def fetch(self, dst: int, region: str, offset: int, size: int,
              op: Optional[int] = None):
        if dst == self.node_id:
            yield from self.node.mem_copy(size)
            return self.node.regions.lookup(region).read(offset, size)
        return (yield from self.vmmc.remote_fetch(
            dst, region, offset, size, op=op))

    def call_service(self, dst: int, name: str, body,
                     request_bytes: Optional[int] = None,
                     op: Optional[int] = None):
        if dst == self.node_id:
            handler = self._services[name]
            payload, _size = yield from handler(body, self.node_id)
            return payload
        return (yield from self.vmmc.call(dst, name, body, request_bytes,
                                          op=op))

    def notify(self, dst: int, channel: str, body,
               body_bytes: Optional[int] = None, wait: bool = False,
               op: Optional[int] = None):
        if dst == self.node_id:
            handler = self._notify_handlers[channel]
            result = handler(_LocalMessage(self.node_id, channel, body, op))
            if result is not None and hasattr(result, "send"):
                yield from result
            return None
        return (yield from self.vmmc.notify(
            dst, channel, body, body_bytes=body_bytes, wait=wait, op=op))

    def register_service(self, name: str, handler) -> None:
        self._services[name] = handler
        self.node.nic.register_service(name, handler)

    def register_notify(self, channel: str, handler) -> None:
        self._notify_handlers[channel] = handler
        self.node.nic.register_notify_handler(channel, handler)

    def check_recovery_abort(self) -> None:
        """FT hook: raise when a recovery is pending (base: never)."""

    def blocked_wait(self, event: Event):
        """Wait on a local handoff event. The FT subclass registers the
        wait with the recovery rendezvous (a thread blocked on another
        local thread counts as quiescent); the base protocol has no
        recovery, so this is a plain wait."""
        result = yield event
        return result

    # ------------------------------------------------------------------
    # Application-facing memory access
    # ------------------------------------------------------------------

    def read(self, thread, addr: int, size: int):
        """Generator returning ``size`` bytes at shared address ``addr``."""
        out = bytearray()
        remaining = size
        pos = addr
        while remaining > 0:
            page, offset = self.address_space.locate(pos)
            chunk = min(remaining, self.page_size - offset)
            yield from self._ensure_readable(thread, page)
            out += self.working.read_span(page, offset, chunk)
            pos += chunk
            remaining -= chunk
        return bytes(out)

    def write(self, thread, addr: int, data: bytes):
        """Generator writing ``data`` at shared address ``addr``."""
        pos = addr
        view = memoryview(data)
        while len(view) > 0:
            page, offset = self.address_space.locate(pos)
            chunk = min(len(view), self.page_size - offset)
            yield from self._ensure_writable(thread, page)
            # No yields between the final protection check (inside
            # _ensure_writable) and the store: the write is atomic with
            # respect to concurrent releases downgrading the page.
            self.working.write_span(page, offset, view[:chunk])
            # Dirty-region tracking: diffs scan only written extents.
            self.page_table.record_write(page, offset, offset + chunk)
            if self.write_observer is not None:
                self.write_observer(page, offset, bytes(view[:chunk]))
            pos += chunk
            view = view[chunk:]
        return None

    # -- batched synchronous fast path ---------------------------------------
    #
    # An access whose pages all hold sufficient rights completes with
    # zero scheduler yields and zero simulated time in the per-access
    # path too (_ensure_readable/_ensure_writable return without
    # yielding), so serving it synchronously is bit-identical in
    # simulated behaviour; the win is host-side only. The probe is
    # all-or-nothing *before* any copy: on the first page lacking
    # rights the caller falls back to the per-access generator path,
    # which re-runs the page walk with its original fault sequence.

    def _fast_path_ok(self) -> bool:
        """Whether the synchronous fast path may serve accesses now
        (the FT subclass also requires no recovery to be pending)."""
        return self.fast_path

    def try_read_fast(self, thread, addr: int,
                      size: int) -> Optional[memoryview]:
        """Synchronous read of ``[addr, addr + size)``; ``None`` when
        any touched page lacks read rights (caller takes the slow
        path). The returned view aliases the working store: consume or
        copy it before yielding to the simulation."""
        if not self._fast_path_ok():
            return None
        if size <= 0:
            # The per-access path serves empty reads without touching
            # the page table; match it exactly.
            return memoryview(b"")
        page_size = self.page_size
        if not self.page_table.can_read_span(
                addr // page_size, (addr + size - 1) // page_size):
            return None
        return self.working.flat_view(addr, size)

    def try_write_fast(self, thread, addr: int, data) -> bool:
        """Synchronous write; ``False`` when any touched page lacks
        write rights (no bytes are stored -- the caller's slow path
        redoes the whole span with its original fault sequence)."""
        if not self._fast_path_ok():
            return False
        size = getattr(data, "nbytes", None)
        if size is None:
            size = len(data)
        if size <= 0:
            return True  # the per-access path is a no-op for empty writes
        page_size = self.page_size
        first = addr // page_size
        last = (addr + size - 1) // page_size
        if not self.page_table.can_write_span(first, last):
            return False
        self.working.flat_write(addr, data)
        # Per-page bookkeeping identical to the per-access path:
        # dirty-region extents and shadow-oracle observations are both
        # page-relative.
        record_write = self.page_table.record_write
        observer = self.write_observer
        if first == last:
            offset = addr - first * page_size
            record_write(first, offset, offset + size)
            if observer is not None:
                observer(first, offset, bytes(memoryview(data).cast("B"))
                         if not isinstance(data, bytes) else data)
            return True
        view = memoryview(data).cast("B")
        pos = addr
        consumed = 0
        while consumed < size:
            page, offset = divmod(pos, page_size)
            chunk = min(size - consumed, page_size - offset)
            record_write(page, offset, offset + chunk)
            if observer is not None:
                observer(page, offset,
                         bytes(view[consumed:consumed + chunk]))
            pos += chunk
            consumed += chunk
        return True

    def _ensure_readable(self, thread, page: int):
        while True:
            try:
                self.page_table.check_read(page)
                return
            except ProtectionFault:
                yield from self._handle_fault(thread, page, write=False)

    def _ensure_writable(self, thread, page: int):
        while True:
            try:
                self.page_table.check_write(page)
                return
            except ProtectionFault:
                yield from self._handle_fault(thread, page, write=True)

    # ------------------------------------------------------------------
    # Page-fault handling
    # ------------------------------------------------------------------

    def _fault_mutex(self, page: int) -> Mutex:
        mtx = self._fault_mutexes.get(page)
        if mtx is None:
            mtx = Mutex(self.engine, f"fault{page}")
            self._fault_mutexes[page] = mtx
        return mtx

    def _handle_fault(self, thread, page: int, write: bool):
        thread.clock.push(Category.DATA_WAIT)
        fault_start = self.engine.now
        mtx = self._fault_mutex(page)
        fault_observed = False
        tracer = self.cluster.optrace
        fault_op = None
        try:
            yield from self.blocked_wait(mtx.acquire())
            try:
                # A recovery may have started while we queued behind
                # another faulting thread; park before touching state.
                self.check_recovery_abort()
                entry = self.page_table.entry(page)
                # Re-check: another local thread may have resolved it.
                if write and entry.access is Access.READ_WRITE:
                    return
                if not write and entry.access is not Access.INVALID:
                    return
                self.counters.page_faults += 1
                if write:
                    self.counters.write_faults += 1
                else:
                    self.counters.read_faults += 1
                self.hooks.fire(Hooks.PAGE_FAULT, self.node_id, page=page,
                                write=write, tid=thread.thread_id)
                fault_observed = True
                if tracer is not None:
                    fault_op = tracer.mint(
                        "page_fault", self.node_id,
                        f"fault page {page} ({'write' if write else 'read'})")
                yield Delay(self.costs.page_fault_handler_us)
                # FT: faults on pages locked by an outstanding release
                # stall until the release completes (paper Fig 4).
                yield from self._wait_page_unlocked(page)
                if entry.access is Access.INVALID:
                    yield from self._load_page(thread, page, op=fault_op)
                if write:
                    yield from self._make_writable(thread, page)
            finally:
                mtx.release()
        finally:
            if fault_observed:
                # Balanced with PAGE_FAULT even when the service is cut
                # short (recovery abort, node death): the span end fires
                # from the finally so trace spans always close.
                self.hooks.fire(Hooks.PAGE_FAULT_DONE, self.node_id,
                                page=page, write=write,
                                tid=thread.thread_id)
            if fault_op is not None:
                tracer.finish(fault_op)
            self.latency.record(PAGE_FAULT, self.engine.now - fault_start)
            thread.clock.pop(Category.DATA_WAIT)

    def _wait_page_unlocked(self, page: int):
        while self.page_table.entry(page).locked:
            self.counters.page_lock_stalls += 1
            ev = self._page_unlock_events.get(page)
            if ev is None or ev.settled:
                ev = Event(self.engine, f"unlock{page}")
                self._page_unlock_events[page] = ev
            yield from self.blocked_wait(ev)

    def _unlock_pages(self, pages) -> None:
        for page in pages:
            entry = self.page_table.entry(page)
            entry.locked = False
            ev = self._page_unlock_events.pop(page, None)
            if ev is not None and not ev.settled:
                ev.succeed(None)

    def _load_page(self, thread, page: int, op: Optional[int] = None):
        """Bring an INVALID page up to date (base protocol)."""
        home = self.homes.primary_home(page)
        if home == self.node_id:
            # The working copy *is* the home copy; it only needs to wait
            # for any required remote diffs to be applied.
            yield from self._wait_local_versions(page)
            entry = self.page_table.entry(page)
            if entry.dirty:
                entry.access = Access.READ_WRITE
            else:
                entry.access = Access.READ_ONLY
            self.counters.local_page_fetches += 1
            return
        required = dict(self.required_versions.get(page, {}))
        self.counters.remote_page_fetches += 1
        data = yield from self.call_service(
            home, FETCH_PAGE_SERVICE, (page, required), op=op)
        yield from self.node.mem_copy(self.page_size)
        self._install_fetched(page, data)

    def _install_fetched(self, page: int, data: bytes) -> None:
        entry = self.page_table.entry(page)
        pending = self._pending_local_diffs.pop(page, None)
        if pending is not None:
            # The page was dirty when invalidated: rebase our
            # un-released writes onto the fresh home copy. The page
            # must re-enter the current update list -- its previous
            # membership was consumed by an earlier commit.
            buf = bytearray(data)
            apply_diff(buf, pending)
            self.working.write_page(page, bytes(buf))
            entry.twin = bytes(data)
            entry.dirty = True
            # Fresh twin: the rebased runs are the only changed extents.
            entry.dirty_regions = [
                [offset, offset + len(run)] for offset, run in pending.runs]
            self.update_list[page] = None
            entry.access = Access.READ_WRITE
        else:
            self.working.write_page(page, data)
            entry.access = Access.READ_ONLY

    def _make_writable(self, thread, page: int):
        """READ_ONLY -> READ_WRITE: create a twin, join the update list."""
        entry = self.page_table.entry(page)
        if entry.access is Access.READ_WRITE:
            if entry.dirty:
                # Another path (pending-diff rebase) may have made the
                # page writable; dirtiness must imply list membership.
                self.update_list[page] = None
            return
        if self._twin_needed(page):
            if entry.twin is None:
                yield from self.node.mem_copy(self.page_size)
                entry.twin = self.working.read_page(page)
                entry.dirty_regions = []
                self.counters.twins_created += 1
        entry.dirty = True
        self.update_list[page] = None
        entry.access = Access.READ_WRITE

    def _twin_needed(self, page: int) -> bool:
        """Base protocol: home nodes keep no twins for their own pages
        (their working copy is canonical and they never diff them)."""
        return self.homes.primary_home(page) != self.node_id

    # ------------------------------------------------------------------
    # Version gating
    # ------------------------------------------------------------------

    def _version_satisfied(self, page: int,
                           required: Dict[int, int]) -> bool:
        have = self.page_versions.get(page, {})
        return all(have.get(node, 0) >= interval
                   for node, interval in required.items())

    def _version_event(self, page: int) -> Event:
        ev = self._version_events.get(page)
        if ev is None or ev.settled:
            ev = Event(self.engine, f"ver{page}")
            self._version_events[page] = ev
        return ev

    def _bump_version(self, page: int, writer: int, interval: int) -> None:
        versions = self.page_versions.setdefault(page, {})
        if versions.get(writer, 0) < interval:
            versions[writer] = interval
        ev = self._version_events.pop(page, None)
        if ev is not None and not ev.settled:
            ev.succeed(None)

    def _wait_versions(self, page: int, required: Dict[int, int]):
        from repro.sim import timeout_wait
        manager = getattr(self.runtime, "recovery_manager", None)
        while not self._version_satisfied(page, required):
            # Version waits are aborted (events failed) when a recovery
            # begins, since the awaited diff may have died with the
            # failed node; check before re-arming.
            self.check_recovery_abort()
            ev = self._version_event(page)
            if manager is None:
                yield ev
                continue
            # FT: a writer that dies mid-propagation would leave this
            # wait hanging; probe unsatisfied writers on timeout.
            ok, _value = yield from timeout_wait(
                self.engine, ev, self.costs.heartbeat_timeout_us)
            if ok:
                continue
            have = self.page_versions.get(page, {})
            for writer, interval in required.items():
                if have.get(writer, 0) >= interval or \
                        writer == self.node_id:
                    continue
                alive = yield from self.vmmc.probe(writer)
                if not alive:
                    manager.report_failure(writer)

    def _wait_local_versions(self, page: int):
        required = self.required_versions.get(page, {})
        yield from self._wait_versions(page, dict(required))

    # ------------------------------------------------------------------
    # Services
    # ------------------------------------------------------------------

    def _serve_fetch_page(self, body, src: int):
        page, required = body
        yield from self._wait_versions(page, required)
        data = self._fetch_store(page).read_page(page)
        return data, self.page_size

    def _fetch_store(self, page: int) -> PageStore:
        """Which store acquirers' fetches are served from (base: the
        working copy; the FT subclass serves the committed copy)."""
        return self.working

    def _serve_get_intervals(self, body, src: int):
        target, first, last = body
        log = self.interval_log.get(target, {})
        entries = [(i, log[i]) for i in range(first, last + 1) if i in log]
        size = sum(WRITE_NOTICE_BYTES * (1 + len(pages))
                   for _i, pages in entries) or 8
        yield Delay(self.costs.write_notice_per_entry_us * len(entries))
        return entries, size

    def _on_diff(self, msg):
        """Apply an incoming diff at this (home) node. Generator run at
        NIC level so diffs from one writer apply in FIFO order."""
        writer, interval, diff = msg.payload[1]
        yield Delay(self.costs.diff_apply_us(max(diff.changed_bytes, 1)))
        self._apply_home_diff(diff, writer)
        self._bump_version(diff.page_id, writer, interval)

    def _apply_home_diff(self, diff: Diff, writer: int) -> None:
        """Where incoming diffs land (base: the working copy)."""
        buf = self.working.page_view(diff.page_id)
        for offset, data in diff.runs:
            buf[offset:offset + len(data)] = data

    # ------------------------------------------------------------------
    # Interval commitment and diff propagation
    # ------------------------------------------------------------------

    def _commit_interval(self, thread):
        """End the current interval; returns the committed page list."""
        if not self.update_list:
            return []
        self.interval_no += 1
        self.ts[self.node_id] = self.interval_no
        pages = list(self.update_list)
        self.update_list.clear()
        self.interval_log[self.node_id][self.interval_no] = pages
        yield Delay(self.costs.commit_per_page_us * len(pages))
        for page in pages:
            if self.homes.primary_home(page) == self.node_id:
                # Our working copy is the home copy: the committed
                # interval is immediately fetchable.
                self._bump_version(page, self.node_id, self.interval_no)
        self.hooks.fire(Hooks.RELEASE_COMMITTED, self.node_id,
                        interval=self.interval_no, pages=pages)
        return pages

    def _propagate_updates(self, thread, pages: List[int], interval: int,
                           op: Optional[int] = None):
        """Send diffs of the committed pages to their homes (base: one
        home, no diffs for our own home pages)."""
        for page in pages:
            entry = self.page_table.entry(page)
            home = self.homes.primary_home(page)
            if home == self.node_id:
                self._finish_page_release(page)
                continue
            yield from thread.clock.in_category(
                Category.DIFF, self._diff_and_send(page, entry, home,
                                                   interval, op=op))
            self._finish_page_release(page)
        return None

    def _diff_and_send(self, page: int, entry, home: int, interval: int,
                       op: Optional[int] = None):
        yield Delay(self.costs.diff_compute_us(self.page_size))
        if entry.twin is not None:
            twin, regions = entry.twin, entry.dirty_regions
        else:
            twin, regions = bytes(self.page_size), None
        # page_view, not read_page: compute_diff only reads the page
        # and copies the changed runs out, so the 4 KiB snapshot copy
        # is pure overhead.
        diff = compute_diff(page, twin, self.working.page_view(page),
                            regions=regions)
        self.counters.pages_diffed += 1
        if home == self.node_id or (
                self.config.protocol.is_ft
                and self.homes.secondary_home(page) == self.node_id):
            self.counters.home_pages_diffed += 1
        if diff.is_empty:
            # Still announce the interval so version gating can advance.
            diff = Diff(page, ())
        self.counters.diff_messages += 1
        self.counters.diff_bytes_sent += diff.wire_bytes
        # In-simulation fast path: the message carries the (immutable)
        # Diff itself -- real run bytes, no encode/decode round trip --
        # while the wire cost model still charges the serialized size.
        yield from self.notify(home, DIFF_CHANNEL,
                               (self.node_id, interval, diff),
                               body_bytes=diff.wire_bytes, op=op)
        return diff

    def _finish_page_release(self, page: int) -> None:
        entry = self.page_table.entry(page)
        entry.dirty = False
        entry.twin = None
        entry.dirty_regions = None
        # A pending rebase record saved by an invalidate-while-dirty is
        # satisfied by this commit (the diff just computed contains the
        # very runs it preserved). Keeping it would rebase stale bytes
        # over a *fresh* copy at the next fetch, silently reverting any
        # remote writes landed in between (a lost-update divergence).
        self._pending_local_diffs.pop(page, None)
        if entry.access is Access.READ_WRITE:
            entry.access = Access.READ_ONLY

    # ------------------------------------------------------------------
    # Acquire / release / barrier operations (called by the thread API)
    # ------------------------------------------------------------------

    def acquire_op(self, thread, lock_id: int):
        yield Delay(self.costs.acquire_base_us)
        self.hooks.fire(Hooks.ACQUIRE_START, self.node_id, lock=lock_id,
                        tid=thread.thread_id)
        tracer = self.cluster.optrace
        acq_op = None
        if tracer is not None:
            acq_op = tracer.mint("lock_acquire", self.node_id,
                                 f"lock {lock_id} acquire")
        try:
            grant_ts = yield from self.locks.acquire(lock_id, op=acq_op)
            self.counters.acquires += 1
            yield from thread.clock.in_category(
                Category.PROTOCOL,
                self._apply_incoming_ts(grant_ts, op=acq_op))
        finally:
            if acq_op is not None:
                tracer.finish(acq_op)
        self.hooks.fire(Hooks.LOCK_ACQUIRED, self.node_id, lock=lock_id,
                        tid=thread.thread_id)
        return None

    def release_op(self, thread, lock_id: int):
        self.counters.releases += 1
        self.hooks.fire(Hooks.RELEASE_START, self.node_id, lock=lock_id,
                        tid=thread.thread_id)
        yield Delay(self.costs.release_base_us)
        pages = yield from thread.clock.in_category(
            Category.PROTOCOL, self._commit_interval(thread))
        interval = self.interval_no
        # Base protocol: hand the lock over before propagating diffs
        # (version gating keeps fetches correct).
        yield from self.locks.release(lock_id, self.ts.copy())
        self.hooks.fire(Hooks.LOCK_RELEASED, self.node_id, lock=lock_id,
                        tid=thread.thread_id)
        yield from self._propagate_updates(thread, pages, interval)
        self.hooks.fire(Hooks.RELEASE_DONE, self.node_id, lock=lock_id,
                        tid=thread.thread_id)
        return None

    def _apply_incoming_ts(self, grant_ts: Optional[VectorTimestamp],
                           op: Optional[int] = None):
        """Fetch and apply the write notices implied by a grant."""
        if grant_ts is None:
            return None
        missing = self.ts.missing_intervals(grant_ts)
        for node, first, last in missing:
            if node == self.node_id:
                continue
            source = self.runtime.interval_source(node)
            entries = yield from self.call_service(
                source, GET_INTERVALS_SERVICE, (node, first, last), op=op)
            yield from self._apply_write_notices(node, entries)
        self.ts.merge(grant_ts)
        return None

    def _apply_write_notices(self, writer: int,
                             entries: List[Tuple[int, List[int]]]):
        for interval, pages in entries:
            if interval <= self.ts[writer]:
                continue  # already applied
            for page in pages:
                self.counters.write_notices += 1
                yield Delay(self.costs.invalidate_per_page_us)
                self._invalidate_page(page, writer, interval)
        return None

    def _invalidate_page(self, page: int, writer: int,
                         interval: int) -> None:
        required = self.required_versions.setdefault(page, {})
        if required.get(writer, 0) < interval:
            required[writer] = interval
        entry = self.page_table.entry(page)
        self.counters.invalidations += 1
        if entry.dirty and self._twin_needed(page):
            # False sharing across an acquire: preserve our un-released
            # writes as a pending diff, rebased after the re-fetch.
            if entry.twin is not None:
                pending = compute_diff(
                    page, entry.twin, self.working.page_view(page),
                    regions=entry.dirty_regions)
                existing = self._pending_local_diffs.get(page)
                if existing is not None:
                    merged_runs = existing.runs + pending.runs
                    pending = Diff(page, merged_runs)
                self._pending_local_diffs[page] = pending
        entry.access = Access.INVALID

    def barrier_op(self, thread, barrier_id: int,
                   epoch: Optional[int] = None):
        """Global barrier, generation-aware.

        ``epoch`` is the caller's persistent count of completed passes
        through this barrier (tracked in checkpointable kernel state).
        A thread replaying after a migration may re-arrive at a barrier
        whose generation already completed -- with its node's
        participation -- and must pass straight through; this is what
        makes barrier re-execution idempotent (required by the recovery
        replay semantics, see apps/base.py).
        """
        done = self.barrier_done.get(barrier_id, 0)
        if epoch is None:
            epoch = done
        if epoch < done:
            # Stale re-arrival: this generation completed earlier.
            yield Delay(self.costs.barrier_per_node_us)
            return None
        self.hooks.fire(Hooks.BARRIER_ENTER, self.node_id,
                        barrier=barrier_id, thread=thread.thread_id)
        state = self._local_barrier_state(barrier_id, epoch)
        if not state["released"]:
            state["arrived"] += 1
            # Exactly one leader per generation runs the internode
            # protocol, even if the local thread count changes under a
            # migration while the generation is open.
            is_leader = (state["arrived"] >= self._local_thread_count()
                         and not state["leader"])
            if not is_leader:
                ev = state.get("straggler_event")
                if ev is not None and not ev.settled:
                    ev.succeed(None)
                yield from self.blocked_wait(state["event"])
            else:
                state["leader"] = True
                self.counters.barriers += 1
                tracer = self.cluster.optrace
                bar_op = None
                if tracer is not None:
                    bar_op = tracer.mint("barrier", self.node_id,
                                         f"barrier {barrier_id}")
                try:
                    yield from self._internode_barrier(thread, barrier_id,
                                                       state, op=bar_op)
                finally:
                    if bar_op is not None:
                        tracer.finish(bar_op)
                # max(): recovery reconciliation may have advanced the
                # generation count past this epoch while we were parked.
                self.barrier_done[barrier_id] = max(
                    self.barrier_done.get(barrier_id, 0), epoch + 1)
                state["released"] = True
                self._local_barriers.pop((barrier_id, epoch - 1), None)
                if not state["event"].settled:
                    state["event"].succeed(None)
        self.hooks.fire(Hooks.BARRIER_EXIT, self.node_id,
                        barrier=barrier_id, thread=thread.thread_id)
        return None

    def _local_barrier_state(self, barrier_id: int,
                             epoch: int) -> Dict[str, object]:
        state = self._local_barriers.get((barrier_id, epoch))
        if state is None:
            state = {"bid": barrier_id, "epoch": epoch,
                     "arrived": 0, "released": False, "leader": False,
                     "event": Event(self.engine, f"bar{barrier_id}.{epoch}")}
            self._local_barriers[(barrier_id, epoch)] = state
        return state

    def _local_thread_count(self) -> int:
        return self.runtime.threads_on_node(self.node_id)

    def _gather_local_stragglers(self, state):
        """Wait until every *current* local thread has arrived.

        A no-op in normal operation (the leader is by definition the
        last arrival); needed when a migrated thread joins this node
        while a barrier generation is open -- the leader must see its
        arrival (and commit its updates) before exchanging.
        """
        while state["arrived"] < self._local_thread_count():
            if self.barrier_done.get(state["bid"], 0) > state["epoch"]:
                # Recovery reconciliation advanced the generation count
                # past this epoch: the generation completed globally
                # (with this node's participation) and the remaining
                # local threads are at later epochs. Tell the caller
                # the generation is stale so it skips the exchange.
                state["straggler_event"] = None
                return True
            ev = Event(self.engine, "straggler")
            state["straggler_event"] = ev
            if state["arrived"] >= self._local_thread_count():
                break
            yield from self.blocked_wait(ev)
        state["straggler_event"] = None
        return False

    def _internode_barrier(self, thread, barrier_id: int, state,
                           op: Optional[int] = None):
        yield from self._gather_local_stragglers(state)
        yield Delay(self.costs.release_base_us)
        pages = yield from thread.clock.in_category(
            Category.PROTOCOL, self._commit_interval(thread))
        interval = self.interval_no
        yield from self._propagate_updates(thread, pages, interval, op=op)
        # Ship every interval other nodes may not have seen yet.
        own_log = self.interval_log[self.node_id]
        entries = [(i, own_log[i]) for i in sorted(own_log)
                   if i > self.last_barrier_interval]
        body_bytes = (self.ts.wire_bytes + 8 + sum(
            WRITE_NOTICE_BYTES * (1 + len(p)) for _i, p in entries))
        manager = self.runtime.barrier_manager_node()
        gen_no = self.barrier_done.get(barrier_id, 0)
        reply = yield from self.call_service(
            manager, BARRIER_SERVICE,
            (barrier_id, self.node_id, gen_no, self.ts.encode(), entries),
            request_bytes=body_bytes, op=op)
        if reply[0] == ABORTED:
            raise RecoverySignal()
        self.last_barrier_interval = self.interval_no
        if reply[0] == STALE_DONE:
            # Our generation completed before the old manager died; the
            # recovery exchange already delivered its effects.
            return None
        merged_blob, all_entries = reply
        merged = VectorTimestamp.decode(self.config.num_nodes, merged_blob)
        yield from thread.clock.in_category(
            Category.PROTOCOL,
            self._apply_barrier_notices(all_entries))
        self.ts.merge(merged)
        self._trim_interval_log()
        return None

    def _trim_interval_log(self) -> None:
        """Garbage-collect write-notice history after a barrier.

        Every interval up to ``last_barrier_interval`` was distributed
        to all nodes by the barrier reply, so no future acquirer can
        request it; discarding the entries bounds protocol metadata
        (the log-trimming problem the paper's related-work section
        holds against log-based schemes is solved here by the barrier's
        global distribution).
        """
        own = self.interval_log[self.node_id]
        stale = [i for i in own if i <= self.last_barrier_interval]
        for interval in stale:
            del own[interval]
        self.counters.intervals_trimmed += len(stale)

    def _apply_barrier_notices(self, all_entries):
        for node, interval, pages in all_entries:
            if node == self.node_id:
                continue
            yield from self._apply_write_notices(node, [(interval, pages)])
        return None


class _LocalMessage:
    """Shim so local notify delivery matches the NIC message shape."""

    __slots__ = ("src", "payload", "op")

    def __init__(self, src: int, channel: str, body, op=None) -> None:
        self.src = src
        self.payload = (channel, body)
        self.op = op
