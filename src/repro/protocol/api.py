"""Application-facing shared-memory API.

A :class:`SvmThread` is what an application kernel sees: shared-memory
reads/writes, lock acquire/release, barriers, and a ``compute`` call
charging modelled CPU time. All methods are generators (run under the
simulation); the typed helpers move numpy arrays in and out of shared
pages so kernels can do real arithmetic on real shared data.

Time accounting happens here: each operation pushes its coarse category
(LOCK, BARRIER; page faults push DATA_WAIT inside the agent), so the
per-thread clock can reproduce both of the paper's breakdown formats.
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING

import numpy as np

from repro.metrics import Category, ThreadClock
from repro.metrics.latency import BARRIER_WAIT, LOCK_WAIT, RELEASE
from repro.sim import Delay

if TYPE_CHECKING:  # pragma: no cover
    from repro.protocol.agent import SvmNodeAgent

#: Little-endian scalar codecs; identical wire bytes to
#: ``np.int64(v).tobytes()`` / ``np.float64(v).tobytes()`` on the
#: little-endian hosts this runs on, without the numpy scalar boxing.
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")


class SvmThread:
    """One application compute thread bound to a node agent."""

    def __init__(self, agent: "SvmNodeAgent", thread_id: int,
                 clock: ThreadClock) -> None:
        self.agent = agent
        self.thread_id = thread_id
        self.clock = clock

    @property
    def node_id(self) -> int:
        return self.agent.node_id

    def rebind(self, agent: "SvmNodeAgent") -> None:
        """Recovery: the thread now executes on a different node."""
        self.agent = agent

    # -- compute ------------------------------------------------------------

    def compute(self, us: float):
        """Charge ``us`` microseconds of application CPU time."""
        if us > 0:
            yield Delay(us)
        return None

    # -- raw shared memory -----------------------------------------------------
    #
    # Every accessor first offers the span to the agent's synchronous
    # fast path: one page-table probe over the whole page-aligned span
    # and, when every touched page already holds sufficient access, an
    # immediate contiguous copy with zero scheduler yields. The first
    # page lacking rights falls back to the per-access protocol path
    # (the reference oracle), which re-walks the span with its original
    # fault sequence -- so simulated time, fault counts, and event
    # ordering are bit-identical either way.

    def read(self, addr: int, size: int):
        """Generator returning ``size`` bytes of shared memory."""
        view = self.agent.try_read_fast(self, addr, size)
        if view is not None:
            return bytes(view)
        return (yield from self.agent.read(self, addr, size))

    def write(self, addr: int, data: bytes):
        """Generator writing ``data`` into shared memory."""
        if self.agent.try_write_fast(self, addr, data):
            return None
        return (yield from self.agent.write(self, addr, data))

    # -- batched spans ---------------------------------------------------------

    def read_span(self, addr: int, size: int):
        """Generator: batched read of a (possibly multi-page) span.

        Semantically identical to :meth:`read`; the name marks call
        sites converted to batched access on purpose (one span access
        instead of a per-element loop).
        """
        view = self.agent.try_read_fast(self, addr, size)
        if view is not None:
            return bytes(view)
        return (yield from self.agent.read(self, addr, size))

    def write_span(self, addr: int, data):
        """Generator: batched write of a (possibly multi-page) span.

        Accepts any contiguous bytes-like object (bytes, memoryview,
        numpy buffer) without an intermediate copy on the fast path.
        """
        if self.agent.try_write_fast(self, addr, data):
            return None
        return (yield from self.agent.write(self, addr, data))

    # -- typed shared memory ------------------------------------------------------

    def read_array(self, addr: int, dtype, count: int):
        """Generator returning a numpy array copied out of shared memory."""
        dtype = np.dtype(dtype)
        size = dtype.itemsize * count
        view = self.agent.try_read_fast(self, addr, size)
        if view is not None:
            return np.frombuffer(view, dtype=dtype).copy()
        raw = yield from self.agent.read(self, addr, size)
        return np.frombuffer(raw, dtype=dtype).copy()

    def write_array(self, addr: int, array) -> object:
        """Generator writing a numpy array into shared memory."""
        arr = np.atleast_1d(np.ascontiguousarray(array))
        if self.agent.try_write_fast(self, addr, arr.data.cast("B")):
            return None
        return (yield from self.agent.write(self, addr, arr.tobytes()))

    def read_i64(self, addr: int):
        view = self.agent.try_read_fast(self, addr, 8)
        if view is not None:
            return _I64.unpack(view)[0]
        raw = yield from self.agent.read(self, addr, 8)
        return int(np.frombuffer(raw, dtype=np.int64)[0])

    def write_i64(self, addr: int, value: int):
        data = _I64.pack(value)
        if self.agent.try_write_fast(self, addr, data):
            return None
        return (yield from self.agent.write(self, addr, data))

    def read_f64(self, addr: int):
        view = self.agent.try_read_fast(self, addr, 8)
        if view is not None:
            return _F64.unpack(view)[0]
        raw = yield from self.agent.read(self, addr, 8)
        return float(np.frombuffer(raw, dtype=np.float64)[0])

    def write_f64(self, addr: int, value: float):
        data = _F64.pack(value)
        if self.agent.try_write_fast(self, addr, data):
            return None
        return (yield from self.agent.write(self, addr, data))

    # -- synchronization -------------------------------------------------------------

    def acquire(self, lock_id: int):
        """Generator: acquire a shared lock (LRC acquire semantics)."""
        self.clock.push(Category.LOCK)
        start = self.agent.engine.now
        try:
            yield from self.agent.acquire_op(self, lock_id)
        finally:
            self.agent.latency.record(LOCK_WAIT,
                                      self.agent.engine.now - start)
            self.clock.pop(Category.LOCK)
        return None

    def release(self, lock_id: int):
        """Generator: release a shared lock (commits + propagates)."""
        self.clock.push(Category.LOCK)
        start = self.agent.engine.now
        try:
            yield from self.agent.release_op(self, lock_id)
        finally:
            self.agent.latency.record(RELEASE,
                                      self.agent.engine.now - start)
            self.clock.pop(Category.LOCK)
        return None

    def barrier(self, barrier_id: int, epoch=None):
        """Generator: global barrier (commit, all-to-all, invalidate).

        Application kernels should call ``ctx.barrier`` instead, which
        tracks the checkpointable ``epoch`` automatically.
        """
        self.clock.push(Category.BARRIER)
        start = self.agent.engine.now
        try:
            yield from self.agent.barrier_op(self, barrier_id, epoch)
        finally:
            self.agent.latency.record(BARRIER_WAIT,
                                      self.agent.engine.now - start)
            self.clock.pop(Category.BARRIER)
        return None

    def critical(self, lock_id: int, body):
        """Generator helper: acquire, run ``body`` generator, release."""
        yield from self.acquire(lock_id)
        try:
            result = yield from body
        finally:
            yield from self.release(lock_id)
        return result
