"""Control-flow signals used by the fault-tolerant protocol.

These are exceptions by mechanism but not errors: they unwind a thread
out of whatever protocol operation it was in so it can join the global
recovery phase (paper section 4.5). They deliberately do not derive
from ReproError so that application-level error handling cannot swallow
them.
"""

from __future__ import annotations

from typing import Optional


class RecoverySignal(Exception):
    """A node failure was detected; the thread must join recovery."""

    def __init__(self, failed_node: Optional[int] = None) -> None:
        self.failed_node = failed_node
        super().__init__(f"recovery pending (failed node: {failed_node})")
