"""Vector timestamps for lazy release consistency.

Each node numbers its *intervals* (segments of execution between
releases). A vector timestamp holds, per node, the highest interval of
that node whose updates have been applied locally. Lock grants and
barrier releases carry timestamps; comparing the incoming timestamp
with the local one tells the acquirer exactly which remote intervals'
write notices it must fetch and apply (paper section 3.2).
"""

from __future__ import annotations

import struct
from typing import Iterable, Iterator, List, Tuple

from repro.errors import ProtocolError


class VectorTimestamp:
    """A per-node vector of applied interval numbers."""

    __slots__ = ("_v",)

    def __init__(self, num_nodes: int,
                 values: Iterable[int] | None = None) -> None:
        if values is not None:
            self._v = list(values)
            if len(self._v) != num_nodes:
                raise ProtocolError("timestamp length mismatch")
        else:
            self._v = [0] * num_nodes

    @property
    def num_nodes(self) -> int:
        return len(self._v)

    def __getitem__(self, node: int) -> int:
        return self._v[node]

    def __setitem__(self, node: int, value: int) -> None:
        if value < self._v[node]:
            raise ProtocolError(
                f"timestamp for node {node} moving backwards: "
                f"{self._v[node]} -> {value}")
        self._v[node] = value

    def __iter__(self) -> Iterator[int]:
        return iter(self._v)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VectorTimestamp) and self._v == other._v

    def __repr__(self) -> str:
        return f"VT{self._v}"

    def copy(self) -> "VectorTimestamp":
        return VectorTimestamp(len(self._v), self._v)

    def merge(self, other: "VectorTimestamp") -> None:
        """Pointwise max, in place."""
        if other.num_nodes != self.num_nodes:
            raise ProtocolError("merging timestamps of different widths")
        self._v = [max(a, b) for a, b in zip(self._v, other._v)]

    def dominates(self, other: "VectorTimestamp") -> bool:
        """True if self >= other pointwise."""
        return all(a >= b for a, b in zip(self._v, other._v))

    def missing_intervals(self, newer: "VectorTimestamp"
                          ) -> List[Tuple[int, int, int]]:
        """Intervals present in ``newer`` but not here.

        Returns ``(node, first, last)`` triples covering intervals
        ``first..last`` inclusive, in node order.
        """
        out: List[Tuple[int, int, int]] = []
        for node, (mine, theirs) in enumerate(zip(self._v, newer._v)):
            if theirs > mine:
                out.append((node, mine + 1, theirs))
        return out

    # -- wire form (4 bytes per node, as a real implementation would) ----

    def encode(self) -> bytes:
        return struct.pack(f"<{len(self._v)}I", *self._v)

    @classmethod
    def decode(cls, num_nodes: int, blob: bytes) -> "VectorTimestamp":
        expected = 4 * num_nodes
        if len(blob) != expected:
            raise ProtocolError(
                f"timestamp blob of {len(blob)} bytes, expected {expected}")
        return cls(num_nodes, struct.unpack(f"<{num_nodes}I", blob))

    @property
    def wire_bytes(self) -> int:
        return 4 * len(self._v)
