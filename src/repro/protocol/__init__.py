"""SVM protocols: base GeNIMA (HLRC) and fault-tolerant extensions.

Public surface::

    from repro.protocol import (
        SvmNodeAgent, SvmThread, HomeMap, VectorTimestamp,
        BarrierManager, RecoverySignal,
    )
"""

from repro.protocol.agent import SvmNodeAgent
from repro.protocol.api import SvmThread
from repro.protocol.barrier import BarrierManager
from repro.protocol.homes import HomeMap
from repro.protocol.locks import PollingLocks, QueueingLocks, make_lock_manager
from repro.protocol.signals import RecoverySignal
from repro.protocol.timestamps import VectorTimestamp

__all__ = [
    "SvmNodeAgent",
    "SvmThread",
    "BarrierManager",
    "HomeMap",
    "VectorTimestamp",
    "PollingLocks",
    "QueueingLocks",
    "make_lock_manager",
    "RecoverySignal",
]
