"""Per-node software page table.

In the real system, page protection hardware (mprotect) raises a fault
on the first read of an invalid page or the first write to a read-only
page, and the SVM protocol's segv handler takes over. Here every
application access is routed through :class:`PageTable`, which raises
:class:`~repro.errors.ProtectionFault` at exactly the same points; the
protocol layer catches the fault and runs its handler.

Storage is a slot-indexed list (page id -> entry, ``None`` until first
touch) rather than a dict: the access checks and span probes on the
fault/fast paths become plain list indexing, and
:class:`PageTableEntry` is a ``__slots__`` class so each entry is a
single compact allocation.
"""

from __future__ import annotations

import enum
from typing import List, Optional

from repro.errors import MemoryError_, ProtectionFault

#: Above this many tracked extents, dirty-region bookkeeping would cost
#: more than it saves; the extents collapse to their convex hull.
MAX_DIRTY_REGIONS = 64


class Access(enum.Enum):
    """Protection state of a page at one node."""

    INVALID = 0      # any access faults
    READ_ONLY = 1    # writes fault (used to catch the first write: twin)
    READ_WRITE = 2   # no faults


class PageTableEntry:
    """Protection and protocol state of one page at one node."""

    __slots__ = ("access", "twin", "dirty", "dirty_regions", "locked",
                 "faults")

    def __init__(self) -> None:
        self.access = Access.INVALID
        #: Twin snapshot taken at the first write of the current
        #: interval; None when the page is clean.
        self.twin: Optional[bytes] = None
        #: True while the page sits in the current interval's update list.
        self.dirty = False
        #: Written ``[start, end)`` extents since the twin was taken,
        #: kept in write order and coalesced opportunistically. ``None``
        #: means tracking is off (no twin): diffs then scan the whole
        #: page. Extents are conservative supersets of the real changes,
        #: so diff computation restricted to them is exact.
        self.dirty_regions: Optional[List[List[int]]] = None
        #: FT protocol: page is locked during an outstanding release;
        #: page faults on it must stall (paper Fig 4).
        self.locked = False
        #: Count of faults taken on this page (diagnostics).
        self.faults = 0


class PageTable:
    """Protection and per-page protocol state for one node."""

    def __init__(self, num_pages: int) -> None:
        if num_pages <= 0:
            raise MemoryError_("page table needs >= 1 page")
        self.num_pages = num_pages
        #: page id -> entry; None until the page is first touched.
        self._entries: List[Optional[PageTableEntry]] = [None] * num_pages

    def entry(self, page_id: int) -> PageTableEntry:
        try:
            ent = self._entries[page_id]
        except IndexError:
            raise MemoryError_(f"page {page_id} out of range") from None
        if page_id < 0:
            raise MemoryError_(f"page {page_id} out of range")
        if ent is None:
            ent = PageTableEntry()
            self._entries[page_id] = ent
        return ent

    # -- access checks (the "MMU") -----------------------------------------

    def check_read(self, page_id: int) -> None:
        ent = self.entry(page_id)
        if ent.access is Access.INVALID:
            ent.faults += 1
            raise ProtectionFault(page_id, "read")

    def check_write(self, page_id: int) -> None:
        ent = self.entry(page_id)
        if ent.access is not Access.READ_WRITE:
            ent.faults += 1
            raise ProtectionFault(page_id, "write")

    # -- non-mutating probes (batched fast path) ------------------------------

    def can_read_span(self, first_page: int, last_page: int) -> bool:
        """True when every page of ``[first_page, last_page]`` is readable.

        A pure probe: unlike :meth:`check_read` it neither raises nor
        counts a fault, so the batched fast path can test a whole span
        and fall back to the faulting per-access path without
        double-counting the fault it is about to take.
        """
        if first_page < 0 or last_page >= self.num_pages:
            return False
        entries = self._entries
        invalid = Access.INVALID
        for page_id in range(first_page, last_page + 1):
            ent = entries[page_id]
            if ent is None or ent.access is invalid:
                return False
        return True

    def can_write_span(self, first_page: int, last_page: int) -> bool:
        """True when every page of ``[first_page, last_page]`` is writable."""
        if first_page < 0 or last_page >= self.num_pages:
            return False
        entries = self._entries
        read_write = Access.READ_WRITE
        for page_id in range(first_page, last_page + 1):
            ent = entries[page_id]
            if ent is None or ent.access is not read_write:
                return False
        return True

    # -- protection management ----------------------------------------------

    def set_access(self, page_id: int, access: Access) -> None:
        self.entry(page_id).access = access

    def invalidate(self, page_id: int) -> None:
        ent = self.entry(page_id)
        ent.access = Access.INVALID

    def dirty_pages(self) -> list[int]:
        return [pid for pid, ent in enumerate(self._entries)
                if ent is not None and ent.dirty]

    def clear_dirty(self, page_id: int) -> None:
        ent = self.entry(page_id)
        ent.dirty = False
        ent.twin = None
        ent.dirty_regions = None

    # -- dirty-region tracking ----------------------------------------------

    def start_dirty_tracking(self, page_id: int) -> None:
        """Begin recording written extents (called at twin creation)."""
        self.entry(page_id).dirty_regions = []

    def record_write(self, page_id: int, start: int, end: int) -> None:
        """Record one written extent; a no-op when tracking is off.

        Hot path: called on every store. The common sequential-write
        pattern (extent touching or overlapping the last one) extends
        in place; out-of-order extents append and are normalized when
        the diff is computed. Overflow collapses to the convex hull so
        bookkeeping stays O(1) per write.
        """
        ent = self._entries[page_id]
        if ent is None:
            return
        regions = ent.dirty_regions
        if regions is None:
            return
        if regions:
            last = regions[-1]
            if start <= last[1] and end >= last[0]:
                if start < last[0]:
                    last[0] = start
                if end > last[1]:
                    last[1] = end
                return
        regions.append([start, end])
        if len(regions) > MAX_DIRTY_REGIONS:
            lo = min(r[0] for r in regions)
            hi = max(r[1] for r in regions)
            ent.dirty_regions = [[lo, hi]]

    def total_faults(self) -> int:
        return sum(ent.faults for ent in self._entries if ent is not None)
