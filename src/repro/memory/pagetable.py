"""Per-node software page table.

In the real system, page protection hardware (mprotect) raises a fault
on the first read of an invalid page or the first write to a read-only
page, and the SVM protocol's segv handler takes over. Here every
application access is routed through :class:`PageTable`, which raises
:class:`~repro.errors.ProtectionFault` at exactly the same points; the
protocol layer catches the fault and runs its handler.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import MemoryError_, ProtectionFault


class Access(enum.Enum):
    """Protection state of a page at one node."""

    INVALID = 0      # any access faults
    READ_ONLY = 1    # writes fault (used to catch the first write: twin)
    READ_WRITE = 2   # no faults


@dataclass
class PageTableEntry:
    access: Access = Access.INVALID
    #: Twin snapshot taken at the first write of the current interval;
    #: None when the page is clean.
    twin: Optional[bytes] = None
    #: True while the page sits in the current interval's update list.
    dirty: bool = False
    #: FT protocol: page is locked during an outstanding release; page
    #: faults on it must stall (paper Fig 4).
    locked: bool = False
    #: Count of faults taken on this page (diagnostics).
    faults: int = 0


class PageTable:
    """Protection and per-page protocol state for one node."""

    def __init__(self, num_pages: int) -> None:
        if num_pages <= 0:
            raise MemoryError_("page table needs >= 1 page")
        self.num_pages = num_pages
        self._entries: Dict[int, PageTableEntry] = {}

    def entry(self, page_id: int) -> PageTableEntry:
        if not 0 <= page_id < self.num_pages:
            raise MemoryError_(f"page {page_id} out of range")
        ent = self._entries.get(page_id)
        if ent is None:
            ent = PageTableEntry()
            self._entries[page_id] = ent
        return ent

    # -- access checks (the "MMU") -----------------------------------------

    def check_read(self, page_id: int) -> None:
        ent = self.entry(page_id)
        if ent.access is Access.INVALID:
            ent.faults += 1
            raise ProtectionFault(page_id, "read")

    def check_write(self, page_id: int) -> None:
        ent = self.entry(page_id)
        if ent.access is not Access.READ_WRITE:
            ent.faults += 1
            raise ProtectionFault(page_id, "write")

    # -- protection management ----------------------------------------------

    def set_access(self, page_id: int, access: Access) -> None:
        self.entry(page_id).access = access

    def invalidate(self, page_id: int) -> None:
        ent = self.entry(page_id)
        ent.access = Access.INVALID

    def dirty_pages(self) -> list[int]:
        return sorted(pid for pid, ent in self._entries.items() if ent.dirty)

    def clear_dirty(self, page_id: int) -> None:
        ent = self.entry(page_id)
        ent.dirty = False
        ent.twin = None

    def total_faults(self) -> int:
        return sum(ent.faults for ent in self._entries.values())
