"""Page diffs: run-length encodings of modified bytes.

A *diff* is computed by comparing a page against its *twin* (the
snapshot taken before the first write in an interval) and consists of
the byte runs that changed. Diffs are how HLRC protocols propagate
updates: they solve false sharing because two nodes modifying disjoint
parts of the same page produce non-overlapping diffs that merge cleanly
at the home copy (paper section 3.2).

The encoding here is real: diffs serialize to bytes, travel over the
simulated wire, and are applied by patching the destination buffer.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterable, List, Tuple

from repro.errors import MemoryError_

#: Per-run header: offset (u32) + length (u32).
_RUN_HEADER = struct.Struct("<II")
#: Diff header: page id (u32) + run count (u32).
_DIFF_HEADER = struct.Struct("<II")


@dataclass(frozen=True)
class Diff:
    """The changed runs of one page."""

    page_id: int
    runs: Tuple[Tuple[int, bytes], ...]

    @property
    def is_empty(self) -> bool:
        return not self.runs

    @property
    def changed_bytes(self) -> int:
        return sum(len(data) for _offset, data in self.runs)

    @property
    def wire_bytes(self) -> int:
        """Size of the serialized diff (headers + payload)."""
        return (_DIFF_HEADER.size +
                len(self.runs) * _RUN_HEADER.size +
                self.changed_bytes)

    def encode(self) -> bytes:
        out = bytearray(_DIFF_HEADER.pack(self.page_id, len(self.runs)))
        for offset, data in self.runs:
            out += _RUN_HEADER.pack(offset, len(data))
            out += data
        return bytes(out)

    @classmethod
    def decode(cls, blob: bytes) -> "Diff":
        if len(blob) < _DIFF_HEADER.size:
            raise MemoryError_("truncated diff blob")
        page_id, nruns = _DIFF_HEADER.unpack_from(blob, 0)
        pos = _DIFF_HEADER.size
        runs: List[Tuple[int, bytes]] = []
        for _ in range(nruns):
            if pos + _RUN_HEADER.size > len(blob):
                raise MemoryError_("truncated diff run header")
            offset, length = _RUN_HEADER.unpack_from(blob, pos)
            pos += _RUN_HEADER.size
            if pos + length > len(blob):
                raise MemoryError_("truncated diff run payload")
            runs.append((offset, bytes(blob[pos:pos + length])))
            pos += length
        if pos != len(blob):
            raise MemoryError_("trailing bytes after diff")
        return cls(page_id, tuple(runs))


def compute_diff(page_id: int, twin: bytes, current: bytes,
                 merge_gap: int = 8) -> Diff:
    """Compare ``current`` against ``twin`` and return the changed runs.

    ``merge_gap``: adjacent changed runs separated by fewer than this
    many unchanged bytes are merged into one run -- real diff engines do
    this (word-granularity scans) and it keeps run counts realistic.
    """
    if len(twin) != len(current):
        raise MemoryError_(
            f"twin/page size mismatch: {len(twin)} vs {len(current)}")
    runs: List[Tuple[int, int]] = []  # (start, end) exclusive
    i = 0
    n = len(twin)
    while i < n:
        if twin[i] != current[i]:
            start = i
            while i < n and twin[i] != current[i]:
                i += 1
            if runs and start - runs[-1][1] < merge_gap:
                runs[-1] = (runs[-1][0], i)
            else:
                runs.append((start, i))
        else:
            i += 1
    return Diff(page_id, tuple(
        (start, bytes(current[start:end])) for start, end in runs))


def apply_diff(buf: bytearray, diff: Diff) -> None:
    """Patch ``buf`` in place with the runs of ``diff``."""
    for offset, data in diff.runs:
        if offset < 0 or offset + len(data) > len(buf):
            raise MemoryError_(
                f"diff run [{offset}, {offset + len(data)}) outside page "
                f"of size {len(buf)}")
        buf[offset:offset + len(data)] = data


def merge_diffs(page_id: int, diffs: Iterable[Diff],
                page_size: int) -> Diff:
    """Merge several diffs of the same page into one (later diffs win).

    Used when a releaser batches multiple intervals' worth of updates.
    """
    scratch_twin = bytearray(page_size)
    scratch = bytearray(page_size)
    touched = bytearray(page_size)  # 0/1 mask
    for diff in diffs:
        if diff.page_id != page_id:
            raise MemoryError_(
                f"cannot merge diff of page {diff.page_id} into {page_id}")
        for offset, data in diff.runs:
            scratch[offset:offset + len(data)] = data
            touched[offset:offset + len(data)] = b"\x01" * len(data)
    runs: List[Tuple[int, bytes]] = []
    i = 0
    while i < page_size:
        if touched[i]:
            start = i
            while i < page_size and touched[i]:
                i += 1
            runs.append((start, bytes(scratch[start:i])))
        else:
            i += 1
    del scratch_twin
    return Diff(page_id, tuple(runs))
