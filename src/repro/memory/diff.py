"""Page diffs: run-length encodings of modified bytes.

A *diff* is computed by comparing a page against its *twin* (the
snapshot taken before the first write in an interval) and consists of
the byte runs that changed. Diffs are how HLRC protocols propagate
updates: they solve false sharing because two nodes modifying disjoint
parts of the same page produce non-overlapping diffs that merge cleanly
at the home copy (paper section 3.2).

The encoding here is real: diffs serialize to bytes, travel over the
simulated wire, and are applied by patching the destination buffer.

Diff computation is the protocol's dominant host cost (the paper's
section 5.3 breakdown), so :func:`compute_diff` is vectorized: clean
spans are dismissed with ``memcmp``-speed equality, run boundaries in
short changed spans are found with a big-int XOR plus C-level
``translate``/``find`` scans, and long spans (>=
:data:`_NUMPY_SPAN_BYTES`) use a numpy boundary finder whose cost is
independent of how fragmented the page is. The per-byte implementation is retained as
:func:`compute_diff_reference`; property tests assert byte-for-byte
equivalence between the two.

When the caller has tracked which extents of the page were written
since the twin was taken (dirty-region tracking in the page table), it
passes them as ``regions`` and only those spans are scanned. The
contract is that every twin/current difference lies inside the given
regions; :mod:`tests.memory.test_dirty_tracking` guards it.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import MemoryError_

#: Per-run header: offset (u32) + length (u32).
_RUN_HEADER = struct.Struct("<II")
#: Diff header: page id (u32) + run count (u32).
_DIFF_HEADER = struct.Struct("<II")

#: translate() table mapping zero bytes to 0x00 and every nonzero byte
#: to 0x01, turning a XOR buffer into a changed-byte mask that C-level
#: ``bytes.find`` can scan for run boundaries.
_NONZERO = bytes([0]) + bytes([1]) * 255

#: Spans at least this long are scanned with the numpy boundary finder
#: instead of the big-int mask loop. The mask loop costs one Python
#: iteration (a handful of C ``find``/``rfind`` calls) *per run*, which
#: collapses on fragmented pages -- a 4 KB page with 128 separate runs
#: spent more time walking runs than a clean page spends on its memcmp.
#: The numpy path finds every run boundary with a fixed number of array
#: operations regardless of run count; its constant setup cost only
#: pays for itself on larger spans, so short spans (small pages, dirty
#: region extents) keep the big-int path.
_NUMPY_SPAN_BYTES = 1024


@dataclass(frozen=True)
class Diff:
    """The changed runs of one page."""

    page_id: int
    runs: Tuple[Tuple[int, bytes], ...]

    @property
    def is_empty(self) -> bool:
        return not self.runs

    @property
    def changed_bytes(self) -> int:
        return sum(len(data) for _offset, data in self.runs)

    @property
    def wire_bytes(self) -> int:
        """Size of the serialized diff (headers + payload)."""
        return (_DIFF_HEADER.size +
                len(self.runs) * _RUN_HEADER.size +
                self.changed_bytes)

    def encode(self) -> bytes:
        # Single preallocated buffer: no quadratic growth, one final copy.
        out = bytearray(self.wire_bytes)
        _DIFF_HEADER.pack_into(out, 0, self.page_id, len(self.runs))
        pos = _DIFF_HEADER.size
        for offset, data in self.runs:
            length = len(data)
            _RUN_HEADER.pack_into(out, pos, offset, length)
            pos += _RUN_HEADER.size
            out[pos:pos + length] = data
            pos += length
        return bytes(out)

    @classmethod
    def decode(cls, blob: bytes) -> "Diff":
        if len(blob) < _DIFF_HEADER.size:
            raise MemoryError_("truncated diff blob")
        page_id, nruns = _DIFF_HEADER.unpack_from(blob, 0)
        pos = _DIFF_HEADER.size
        runs: List[Tuple[int, bytes]] = []
        prev_end = 0
        for _ in range(nruns):
            if pos + _RUN_HEADER.size > len(blob):
                raise MemoryError_("truncated diff run header")
            offset, length = _RUN_HEADER.unpack_from(blob, pos)
            pos += _RUN_HEADER.size
            if pos + length > len(blob):
                raise MemoryError_("truncated diff run payload")
            if runs and offset < prev_end:
                raise MemoryError_(
                    f"diff runs out of order or overlapping: run at "
                    f"{offset} after run ending at {prev_end}")
            prev_end = offset + length
            # One slice copy; the old code wrapped the slice in bytes()
            # a second time.
            runs.append((offset, blob[pos:pos + length]))
            pos += length
        if pos != len(blob):
            raise MemoryError_("trailing bytes after diff")
        return cls(page_id, tuple(runs))


def _normalize_regions(regions: Sequence[Sequence[int]],
                       page_size: int) -> List[Tuple[int, int]]:
    """Clip, sort, and merge overlapping/adjacent (start, end) extents."""
    spans: List[Tuple[int, int]] = []
    for start, end in regions:
        start = max(0, start)
        end = min(page_size, end)
        if end > start:
            spans.append((start, end))
    if not spans:
        return []
    spans.sort()
    merged: List[List[int]] = [list(spans[0])]
    for start, end in spans[1:]:
        if start <= merged[-1][1]:
            if end > merged[-1][1]:
                merged[-1][1] = end
        else:
            merged.append([start, end])
    return [(s, e) for s, e in merged]


def _changed_runs(twin, current, lo: int, hi: int, merge_gap: int,
                  out: List[List[int]]) -> None:
    """Append the changed runs of ``[lo, hi)`` to ``out``, already
    coalesced under ``merge_gap``.

    ``twin``/``current`` are buffers supporting slicing (bytes or
    memoryview). A clean span costs one memcmp; otherwise a big-int XOR
    turns the span into a changed-byte mask and run boundaries come
    from C-level ``find``/``rfind``. Runs separated by at least
    ``merge_gap`` unchanged bytes split exactly where a byte-by-byte
    scan with the same policy would split, so scanning for the gap
    pattern directly keeps dense pages (alternating changed bytes) at
    a handful of C calls instead of one Python iteration per run.
    """
    if twin[lo:hi] == current[lo:hi]:  # one memcmp settles a clean span
        return
    if hi - lo >= _NUMPY_SPAN_BYTES:
        _changed_runs_numpy(twin, current, lo, hi, merge_gap, out)
        return
    gap = b"\x00" * max(1, merge_gap)
    xor = (int.from_bytes(twin[lo:hi], "little")
           ^ int.from_bytes(current[lo:hi], "little"))
    mask = xor.to_bytes(hi - lo, "little").translate(_NONZERO)
    start = mask.find(1)
    while start >= 0:
        split = mask.find(gap, start)
        if split < 0:
            out.append([lo + start, lo + mask.rfind(1) + 1])
            break
        out.append([lo + start, lo + mask.rfind(1, start, split) + 1])
        start = mask.find(1, split + len(gap))


def _changed_runs_numpy(twin, current, lo: int, hi: int, merge_gap: int,
                        out: List[List[int]]) -> None:
    """Numpy variant of :func:`_changed_runs` for long spans.

    All run boundaries are found with a constant number of vectorized
    passes: the changed-byte indices, the places where consecutive
    changed bytes are separated by an unchanged gap wide enough to
    split runs, and one fancy-index gather of the resulting run
    starts/ends. Two changed bytes at indices ``i < j`` belong to the
    same run exactly when the unchanged gap ``j - i - 1`` is smaller
    than ``merge_gap`` (and adjacent changed bytes, gap 0, always
    share a run), matching the reference scan's policy.
    """
    a = np.frombuffer(twin, dtype=np.uint8)
    b = np.frombuffer(current, dtype=np.uint8)
    idx = np.flatnonzero(a[lo:hi] != b[lo:hi])
    if idx.size == 0:
        return
    splits = np.flatnonzero(np.diff(idx) > max(merge_gap, 1))
    k = splits.size
    st = np.empty(k + 1, dtype=np.intp)
    st[0] = 0
    st[1:] = splits
    st[1:] += 1
    en = np.empty(k + 1, dtype=np.intp)
    en[:k] = splits
    en[k] = idx.size - 1
    starts = (idx[st] + lo).tolist()
    ends = (idx[en] + (lo + 1)).tolist()
    for start, end in zip(starts, ends):
        out.append([start, end])


def compute_diff(page_id: int, twin: bytes, current: bytes,
                 merge_gap: int = 8,
                 regions: Optional[Sequence[Sequence[int]]] = None) -> Diff:
    """Compare ``current`` against ``twin`` and return the changed runs.

    ``merge_gap``: adjacent changed runs separated by fewer than this
    many unchanged bytes are merged into one run -- real diff engines do
    this (word-granularity scans) and it keeps run counts realistic.

    ``regions``: optional iterable of ``(start, end)`` written extents.
    When given, only those spans are scanned -- the dirty-region fast
    path. The caller guarantees every changed byte lies inside the
    union of the regions; the result is then identical to a full scan.
    """
    n = len(twin)
    if n != len(current):
        raise MemoryError_(
            f"twin/page size mismatch: {n} vs {len(current)}")
    if regions is None:
        if twin == current:
            return Diff(page_id, ())
        spans: List[Tuple[int, int]] = [(0, n)]
    else:
        spans = _normalize_regions(regions, n)
    raw: List[List[int]] = []
    # memoryviews make the block compares and XOR slices zero-copy.
    mv_twin, mv_cur = memoryview(twin), memoryview(current)
    for lo, hi in spans:
        _changed_runs(mv_twin, mv_cur, lo, hi, merge_gap, raw)
    if not raw:
        return Diff(page_id, ())
    # Coalesce across stretch/span boundaries (in-stretch coalescing
    # already happened in _changed_runs). Gap bytes are unchanged, so
    # a merged run's payload (sliced from current) is identical to what
    # the byte-by-byte reference scan produces.
    merged: List[List[int]] = [raw[0]]
    for run in raw[1:]:
        if run[0] - merged[-1][1] < merge_gap:
            merged[-1][1] = run[1]
        else:
            merged.append(run)
    return Diff(page_id, tuple(
        (start, bytes(current[start:end])) for start, end in merged))


def compute_diff_reference(page_id: int, twin: bytes, current: bytes,
                           merge_gap: int = 8) -> Diff:
    """Byte-by-byte reference implementation of :func:`compute_diff`.

    Kept for the equivalence property tests and the perf-regression
    harness (the vectorized engine's speedup is measured against this).
    """
    if len(twin) != len(current):
        raise MemoryError_(
            f"twin/page size mismatch: {len(twin)} vs {len(current)}")
    runs: List[Tuple[int, int]] = []  # (start, end) exclusive
    i = 0
    n = len(twin)
    while i < n:
        if twin[i] != current[i]:
            start = i
            while i < n and twin[i] != current[i]:
                i += 1
            if runs and start - runs[-1][1] < merge_gap:
                runs[-1] = (runs[-1][0], i)
            else:
                runs.append((start, i))
        else:
            i += 1
    return Diff(page_id, tuple(
        (start, bytes(current[start:end])) for start, end in runs))


def apply_diff(buf: bytearray, diff: Diff) -> None:
    """Patch ``buf`` in place with the runs of ``diff``."""
    size = len(buf)
    for offset, data in diff.runs:
        if offset < 0 or offset + len(data) > size:
            raise MemoryError_(
                f"diff run [{offset}, {offset + len(data)}) outside page "
                f"of size {size}")
        buf[offset:offset + len(data)] = data


#: Scratch page reused across :func:`merge_diffs` calls. Merging is on
#: the release hot path (one call per batched page), and a fresh
#: page-sized bytearray per call was pure allocator churn: every byte
#: of every emitted run is written before it is read -- run payloads
#: first, then base-sourced gap fill -- so content left over from a
#: previous call can never leak into the output (pinned by the scratch
#: reuse tests in ``tests/memory/test_diff_equivalence.py``). The
#: simulator is single-threaded; parallel sweeps fork interpreters.
_MERGE_SCRATCH = bytearray(0)


def merge_diffs(page_id: int, diffs: Iterable[Diff], page_size: int,
                merge_gap: int = 8,
                base: Optional[bytes] = None) -> Diff:
    """Merge several diffs of the same page into one (later diffs win).

    Used when a releaser batches multiple intervals' worth of updates.

    Runs are coalesced like :func:`compute_diff`: overlapping or
    touching runs always merge; runs separated by a gap smaller than
    ``merge_gap`` additionally merge when ``base`` (the content of the
    page the merged diff will be applied against, e.g. the shared twin
    or the home copy) is provided to source the gap bytes from. Without
    ``base`` the gap content is unknown, so such runs stay separate --
    merging them would fabricate bytes.
    """
    global _MERGE_SCRATCH
    if len(_MERGE_SCRATCH) < page_size:
        _MERGE_SCRATCH = bytearray(page_size)
    scratch = _MERGE_SCRATCH
    intervals: List[List[int]] = []
    for diff in diffs:
        if diff.page_id != page_id:
            raise MemoryError_(
                f"cannot merge diff of page {diff.page_id} into {page_id}")
        for offset, data in diff.runs:
            end = offset + len(data)
            if offset < 0 or end > page_size:
                raise MemoryError_(
                    f"diff run [{offset}, {end}) outside page of size "
                    f"{page_size}")
            scratch[offset:end] = data
            intervals.append([offset, end])
    if not intervals:
        return Diff(page_id, ())
    intervals.sort()
    gap_limit = merge_gap if base is not None else 0
    if base is not None and len(base) != page_size:
        raise MemoryError_(
            f"merge base size {len(base)} != page size {page_size}")
    merged: List[List[int]] = [intervals[0]]
    for start, end in intervals[1:]:
        prev = merged[-1]
        gap = start - prev[1]
        if gap <= 0 or gap < gap_limit:
            if gap > 0:
                # Fill the unknown gap from the supplied base content.
                scratch[prev[1]:start] = base[prev[1]:start]
            if end > prev[1]:
                prev[1] = end
        else:
            merged.append([start, end])
    return Diff(page_id, tuple(
        (start, bytes(scratch[start:end])) for start, end in merged))
