"""Page stores: arrays of page copies exported to the network.

Each node owns several stores, all holding real bytes:

* the **working** store -- the copies application threads read/write;
* (extended protocol only) the **committed** store -- primary-home
  copies holding only completed releases;
* (extended protocol only) the **tentative** store -- secondary-home
  copies receiving the first phase of diff propagation.

A store is a :class:`~repro.net.regions.MemoryRegion`, so remote nodes
deposit into it and fetch from it directly, the way VMMC maps remote
virtual memory.
"""

from __future__ import annotations

from repro.errors import MemoryError_
from repro.net.regions import MemoryRegion


class PageStore(MemoryRegion):
    """A named array of ``num_pages`` page-sized buffers."""

    def __init__(self, name: str, num_pages: int, page_size: int) -> None:
        if num_pages <= 0:
            raise MemoryError_(f"page store {name!r} needs >= 1 page")
        super().__init__(name, num_pages * page_size)
        self.num_pages = num_pages
        self.page_size = page_size

    def _page_base(self, page_id: int) -> int:
        if not 0 <= page_id < self.num_pages:
            raise MemoryError_(
                f"store {self.name!r}: page {page_id} out of range "
                f"[0, {self.num_pages})")
        return page_id * self.page_size

    def read_page(self, page_id: int) -> bytes:
        base = self._page_base(page_id)
        return self.read(base, self.page_size)

    def write_page(self, page_id: int, data: bytes) -> None:
        if len(data) != self.page_size:
            raise MemoryError_(
                f"store {self.name!r}: page write of {len(data)} bytes "
                f"(page size {self.page_size})")
        self.write(self._page_base(page_id), data)

    def page_view(self, page_id: int) -> memoryview:
        """Mutable view of one page for zero-copy local access."""
        base = self._page_base(page_id)
        return memoryview(self.view())[base:base + self.page_size]

    def read_span(self, page_id: int, offset: int, size: int) -> bytes:
        base = self._page_base(page_id)
        if offset < 0 or offset + size > self.page_size:
            raise MemoryError_(
                f"store {self.name!r}: span [{offset}, {offset + size}) "
                f"outside page size {self.page_size}")
        return self.read(base + offset, size)

    def write_span(self, page_id: int, offset: int, data: bytes) -> None:
        base = self._page_base(page_id)
        if offset < 0 or offset + len(data) > self.page_size:
            raise MemoryError_(
                f"store {self.name!r}: span [{offset}, "
                f"{offset + len(data)}) outside page size {self.page_size}")
        self.write(base + offset, data)

    def flat_view(self, addr: int, size: int) -> memoryview:
        """Zero-copy view of ``[addr, addr + size)`` in store-flat bytes.

        The shared address space maps linearly onto the store buffer
        (``addr == page_id * page_size + offset``), so a span crossing
        page boundaries is still one contiguous slice. Callers must
        consume or copy the view before yielding to the simulation.
        """
        return self.read_view(addr, size)

    def flat_write(self, addr: int, data) -> None:
        """Single contiguous store of a (possibly multi-page) span."""
        self.write_from(addr, data)

    def copy_page_from(self, other: "PageStore", page_id: int) -> None:
        """Local page copy between two stores of the same geometry."""
        if other.page_size != self.page_size:
            raise MemoryError_("page size mismatch between stores")
        self.write_page(page_id, other.read_page(page_id))
