"""Paged shared-memory substrate: real bytes, twins, diffs, protection.

Public surface::

    from repro.memory import (
        AddressSpace, Segment, PageStore, PageTable, Access,
        Diff, compute_diff, apply_diff, merge_diffs,
    )
"""

from repro.memory.address import AddressSpace, HomePolicy, Segment
from repro.memory.diff import Diff, apply_diff, compute_diff, merge_diffs
from repro.memory.pagestore import PageStore
from repro.memory.pagetable import Access, PageTable, PageTableEntry

__all__ = [
    "AddressSpace",
    "Segment",
    "HomePolicy",
    "PageStore",
    "PageTable",
    "PageTableEntry",
    "Access",
    "Diff",
    "compute_diff",
    "apply_diff",
    "merge_diffs",
]
