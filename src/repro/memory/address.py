"""Shared virtual address space layout.

All nodes see one flat shared address space of ``num_pages`` pages.
Applications carve it into named *segments* before the parallel phase,
choosing the primary-home distribution for each segment -- the paper
notes that "the assignment of primary homes to pages is performed by
the application in a way that maximizes parallelism" (section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Union

from repro.errors import MemoryError_

#: How a segment's pages map to primary home nodes:
#: an int pins every page to that node; "block" splits the segment into
#: contiguous per-node blocks; "round_robin" interleaves pages; a
#: callable maps page-index-within-segment -> node id.
HomePolicy = Union[int, str, Callable[[int], int]]


@dataclass(frozen=True)
class Segment:
    """A named contiguous range of shared pages."""

    name: str
    base_page: int
    num_pages: int
    page_size: int

    @property
    def base_addr(self) -> int:
        return self.base_page * self.page_size

    @property
    def size_bytes(self) -> int:
        return self.num_pages * self.page_size

    def addr(self, offset: int) -> int:
        """Absolute shared address of byte ``offset`` in this segment."""
        if not 0 <= offset < self.size_bytes:
            raise MemoryError_(
                f"segment {self.name!r}: offset {offset} outside "
                f"[0, {self.size_bytes})")
        return self.base_addr + offset

    def page(self, index: int) -> int:
        """Absolute page id of the ``index``-th page of this segment."""
        if not 0 <= index < self.num_pages:
            raise MemoryError_(
                f"segment {self.name!r}: page index {index} outside "
                f"[0, {self.num_pages})")
        return self.base_page + index


class AddressSpace:
    """Flat shared space + segment allocator + home hints."""

    def __init__(self, num_pages: int, page_size: int,
                 num_nodes: int) -> None:
        if num_pages <= 0 or num_nodes <= 0:
            raise MemoryError_("bad address space geometry")
        self.num_pages = num_pages
        self.page_size = page_size
        self.num_nodes = num_nodes
        self._next_page = 0
        self._segments: Dict[str, Segment] = {}
        #: page id -> primary home node chosen at allocation.
        self.home_hint: Dict[int, int] = {}

    @property
    def pages_allocated(self) -> int:
        return self._next_page

    def alloc(self, name: str, nbytes: int,
              home: HomePolicy = "block") -> Segment:
        """Allocate a page-aligned segment of at least ``nbytes``."""
        if name in self._segments:
            raise MemoryError_(f"segment {name!r} already allocated")
        if nbytes <= 0:
            raise MemoryError_(f"segment {name!r}: size must be positive")
        num_pages = -(-nbytes // self.page_size)  # ceil division
        if self._next_page + num_pages > self.num_pages:
            raise MemoryError_(
                f"out of shared pages allocating {name!r}: need "
                f"{num_pages}, have {self.num_pages - self._next_page}")
        seg = Segment(name, self._next_page, num_pages, self.page_size)
        self._next_page += num_pages
        self._segments[name] = seg
        self._assign_homes(seg, home)
        return seg

    def _assign_homes(self, seg: Segment, home: HomePolicy) -> None:
        for index in range(seg.num_pages):
            if isinstance(home, int):
                node = home
            elif home == "block":
                node = min(index * self.num_nodes // seg.num_pages,
                           self.num_nodes - 1)
            elif home == "round_robin":
                node = index % self.num_nodes
            elif callable(home):
                node = home(index)
            else:
                raise MemoryError_(f"unknown home policy {home!r}")
            if not 0 <= node < self.num_nodes:
                raise MemoryError_(
                    f"home policy for {seg.name!r} produced node {node} "
                    f"outside [0, {self.num_nodes})")
            self.home_hint[seg.page(index)] = node

    def segment(self, name: str) -> Segment:
        try:
            return self._segments[name]
        except KeyError:
            raise MemoryError_(f"no segment named {name!r}") from None

    def segments(self) -> Dict[str, Segment]:
        """All allocated segments by name (a copy; safe to iterate)."""
        return dict(self._segments)

    def locate(self, addr: int) -> tuple[int, int]:
        """Map an absolute address to ``(page_id, offset_in_page)``."""
        if not 0 <= addr < self.num_pages * self.page_size:
            raise MemoryError_(f"address {addr} outside shared space")
        return divmod(addr, self.page_size)

    def span_pages(self, addr: int, size: int) -> list[int]:
        """All page ids touched by ``[addr, addr + size)``."""
        if size <= 0:
            raise MemoryError_("span size must be positive")
        first, _ = self.locate(addr)
        last, last_off = self.locate(addr + size - 1)
        return list(range(first, last + 1))
