"""Parallel experiment orchestration with content-addressed caching.

The paper's evaluation is a matrix of *independent* simulations; this
package runs such matrices concurrently over a process pool and never
re-runs a cell whose inputs have not changed:

* :mod:`repro.parallel.spec` -- picklable, canonicalizable run specs;
* :mod:`repro.parallel.runners` -- worker-side spec execution
  (application runs and model-check replays) producing JSON summaries;
* :mod:`repro.parallel.summary` -- :class:`RunSummary`, a light view
  over a summary dict with the ``RunResult`` attribute surface the
  figure pipeline consumes;
* :mod:`repro.parallel.cache` -- the content-addressed result cache
  (spec hash x code fingerprint -> JSON under ``results/cache/``);
* :mod:`repro.parallel.pool` -- the orchestrator: fan-out over
  ``ProcessPoolExecutor``, progress streaming, failure isolation with
  bounded retry, ``REPRO_JOBS``/``--jobs`` control.
"""

from repro.parallel.cache import ResultCache, code_fingerprint, spec_key
from repro.parallel.pool import SpecResult, resolve_jobs, run_specs
from repro.parallel.spec import RunSpec, app_spec, model_check_spec
from repro.parallel.summary import RunSummary

__all__ = [
    "ResultCache",
    "RunSpec",
    "RunSummary",
    "SpecResult",
    "app_spec",
    "code_fingerprint",
    "model_check_spec",
    "resolve_jobs",
    "run_specs",
    "spec_key",
]
