"""Content-addressed result cache.

A cached entry is keyed by ``sha256(canonical spec JSON + code
fingerprint)``:

* the *spec* part means two experiments with identical configuration,
  seeds and fault plans share an entry, while any parameter change --
  one seed, one protocol knob -- misses;
* the *code fingerprint* part (a digest over every ``.py`` file under
  ``src/repro/``) means touching the simulator invalidates everything,
  so a cached summary is always exactly what re-running the current
  code would produce. Simulations are deterministic, which is what
  makes this sound.

Entries live as JSON under ``results/cache/<k[:2]>/<key>.json``
(sharded to keep directories small); writes are atomic
(tmp + ``os.replace``) so a crashed or concurrent sweep never leaves a
truncated entry.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
from typing import Any, Dict, Optional

from repro.parallel.spec import RunSpec

#: Repository root (…/src/repro/parallel/cache.py -> parents[3]).
_REPO_ROOT = pathlib.Path(__file__).resolve().parents[3]
_SRC_ROOT = pathlib.Path(__file__).resolve().parents[1]

#: Default cache location, overridable for tests and CI.
DEFAULT_CACHE_DIR = _REPO_ROOT / "results" / "cache"

_fingerprint_memo: Dict[str, str] = {}


def code_fingerprint(root: Optional[pathlib.Path] = None) -> str:
    """Digest of every Python source file under ``src/repro/``.

    Memoized per path: the tree cannot change under a running sweep
    without invalidating the sweep itself.
    """
    root = pathlib.Path(root) if root is not None else _SRC_ROOT
    memo_key = str(root)
    cached = _fingerprint_memo.get(memo_key)
    if cached is not None:
        return cached
    h = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        h.update(rel.encode())
        h.update(b"\0")
        h.update(path.read_bytes())
        h.update(b"\0")
    digest = h.hexdigest()
    _fingerprint_memo[memo_key] = digest
    return digest


def spec_key(spec: RunSpec, fingerprint: Optional[str] = None) -> str:
    """The content address of one experiment under the current code."""
    if fingerprint is None:
        fingerprint = code_fingerprint()
    blob = spec.canonical_json() + "\0" + fingerprint
    return hashlib.sha256(blob.encode()).hexdigest()


class ResultCache:
    """Filesystem-backed map from spec key to result summary JSON."""

    def __init__(self, root: Optional[pathlib.Path] = None) -> None:
        if root is None:
            env = os.environ.get("REPRO_CACHE_DIR")
            root = pathlib.Path(env) if env else DEFAULT_CACHE_DIR
        self.root = pathlib.Path(root)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored entry, or None (corrupt entries read as misses)."""
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(self, key: str, spec: RunSpec, summary: Dict[str, Any],
            fingerprint: Optional[str] = None) -> None:
        """Atomically store a result summary for ``key``."""
        if fingerprint is None:
            fingerprint = code_fingerprint()
        entry = {
            "key": key,
            "spec": spec.to_dict(),
            "code_fingerprint": fingerprint,
            "summary": summary,
        }
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def clear(self) -> int:
        """Remove every entry; returns the number removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for path in self.root.rglob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
