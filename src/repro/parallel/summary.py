"""JSON-portable run summaries with a ``RunResult``-shaped surface.

Worker processes cannot cheaply ship a full :class:`RunResult` back to
the orchestrator (thread clocks and latency books are large and carry
engine references), and the cache must store results as plain JSON.
:class:`RunSummary` is the answer: a dict of scalars extracted from a
``RunResult`` -- breakdown components, aggregate counters, recovery
count, and a checksum of the final shared-memory contents -- exposed
through small view objects so that the figure pipeline's accessors
(``r.breakdown.four_component()``, ``r.counters.total.page_faults``,
``r.counters.home_diff_fraction``, ``r.elapsed_us``) work unchanged.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Optional


class _CounterTotals:
    """Attribute view over the aggregated counter dict."""

    def __init__(self, totals: Dict[str, int]) -> None:
        self.__dict__.update(totals)

    def __repr__(self) -> str:  # debugging aid
        return f"_CounterTotals({self.__dict__})"


class _CountersView:
    """The ``RunCounters`` surface: ``.total`` plus derived fractions."""

    def __init__(self, totals: Dict[str, int], home_diff_fraction: float,
                 mean_checkpoint_bytes: float) -> None:
        self.total = _CounterTotals(totals)
        self.home_diff_fraction = home_diff_fraction
        self.mean_checkpoint_bytes = mean_checkpoint_bytes


class _BreakdownView:
    """The ``Breakdown`` surface used by figures and benchmarks."""

    def __init__(self, four: Dict[str, float],
                 six: Dict[str, float]) -> None:
        self._four = four
        self._six = six

    def four_component(self) -> Dict[str, float]:
        return dict(self._four)

    def six_component(self) -> Dict[str, float]:
        return dict(self._six)


class RunSummary:
    """A run result reduced to JSON scalars (see module docstring)."""

    def __init__(self, data: Dict[str, Any]) -> None:
        self._data = data
        self.elapsed_us: float = data["elapsed_us"]
        self.recoveries: int = data.get("recoveries", 0)
        self.data_checksum: Optional[str] = data.get("data_checksum")
        self.breakdown = _BreakdownView(data.get("four_component", {}),
                                        data.get("six_component", {}))
        self.counters = _CountersView(
            data.get("counters", {}),
            data.get("home_diff_fraction", 0.0),
            data.get("mean_checkpoint_bytes", 0.0))

    def to_dict(self) -> Dict[str, Any]:
        return self._data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunSummary":
        return cls(data)

    @classmethod
    def from_run_result(cls, result,
                        data_checksum: Optional[str] = None
                        ) -> "RunSummary":
        """Extract the portable summary from a live ``RunResult``."""
        total = result.counters.total
        counters = {name: getattr(total, name)
                    for name in sorted(total.__dataclass_fields__)}
        data = {
            "elapsed_us": result.elapsed_us,
            "recoveries": result.recoveries,
            "counters": counters,
            "home_diff_fraction": result.counters.home_diff_fraction,
            "mean_checkpoint_bytes": result.counters.mean_checkpoint_bytes,
            "four_component": result.breakdown.four_component(),
            "six_component": result.breakdown.six_component(),
            "data_checksum": data_checksum,
            "latency_hist": result.latency.to_dict(),
        }
        return cls(data)

    @property
    def latency(self):
        """The run's :class:`~repro.metrics.latency.LatencyBook`,
        restored from the portable histogram serialization (merge-safe:
        workers ship sparse bucket dicts, the orchestrator rebuilds and
        merges them bit-identically regardless of job count)."""
        from repro.metrics.latency import LatencyBook
        return LatencyBook.from_dict(self._data.get("latency_hist", {}))

    def fingerprint(self) -> str:
        """Order-insensitive digest for bit-identity assertions."""
        import json
        blob = json.dumps(self._data, sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()
