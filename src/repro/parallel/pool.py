"""The process-pool experiment orchestrator.

``run_specs`` takes a list of :class:`RunSpec` and returns one
:class:`SpecResult` per spec, in input order:

* cached results are served without running anything (the cache key
  covers configuration *and* code, see :mod:`repro.parallel.cache`);
* misses fan out over a ``ProcessPoolExecutor`` (``fork`` start method
  where available -- workers inherit the imported simulator);
* a worker crash (``BrokenProcessPool``) or spec timeout marks that
  spec failed and is retried a bounded number of times on a fresh
  pool; a deterministic in-spec exception is *not* retried (it would
  fail identically) but never stops the other specs;
* ``jobs=1`` (or a single spec) runs everything in-process through the
  exact same ``execute_payload`` path, which is what makes
  serial-vs-parallel bit-identity a testable invariant;
* progress streams through an optional callback as each spec settles.

Worker count resolution order: explicit ``jobs`` argument, then the
``REPRO_JOBS`` environment variable, then ``os.cpu_count()``.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.parallel.cache import ResultCache, code_fingerprint, spec_key
from repro.parallel.runners import execute_payload
from repro.parallel.spec import RunSpec

#: status values a SpecResult can carry.
STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_TIMEOUT = "timeout"
STATUS_CRASHED = "crashed"

ProgressFn = Callable[["SpecResult", int, int], None]


@dataclass
class SpecResult:
    """Outcome of one spec: summary on success, diagnostics otherwise."""

    spec: RunSpec
    status: str
    summary: Optional[Dict[str, Any]] = None
    error: str = ""
    cached: bool = False
    attempts: int = 1
    wall_s: float = 0.0
    key: str = ""

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: explicit arg > ``REPRO_JOBS`` > ``os.cpu_count()``."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS")
        if env:
            jobs = int(env)
    if jobs is None:
        jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def _mp_context():
    import multiprocessing
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover -- non-POSIX platforms
        return multiprocessing.get_context()


@dataclass
class _Pending:
    index: int
    payload: Dict[str, Any]
    attempts: int = 0


def run_specs(specs: Sequence[RunSpec],
              jobs: Optional[int] = None,
              cache: bool = True,
              cache_dir=None,
              progress: Optional[ProgressFn] = None,
              retries: int = 1,
              timeout_s: Optional[float] = None) -> List[SpecResult]:
    """Run ``specs``, concurrently and cache-aware. See module docs."""
    specs = list(specs)
    jobs = resolve_jobs(jobs)
    store = ResultCache(cache_dir) if cache else None
    fingerprint = code_fingerprint()
    total = len(specs)
    results: List[Optional[SpecResult]] = [None] * total
    done = 0

    def settle(res: SpecResult) -> None:
        nonlocal done
        results[res_index[id(res)]] = res
        done += 1
        if progress is not None:
            progress(res, done, total)

    # Identity map instead of storing the index on the result: keeps
    # SpecResult a plain value for callers.
    res_index: Dict[int, int] = {}

    def make_result(index: int, **kw) -> SpecResult:
        res = SpecResult(spec=specs[index], key=keys[index], **kw)
        res_index[id(res)] = index
        return res

    keys = [spec_key(spec, fingerprint) for spec in specs]

    # -- pass 1: cache ---------------------------------------------------
    pending: List[_Pending] = []
    for i, spec in enumerate(specs):
        entry = store.get(keys[i]) if store is not None else None
        if entry is not None:
            settle(make_result(i, status=STATUS_OK,
                               summary=entry["summary"], cached=True))
            continue
        payload = {"spec": spec.to_dict(), "timeout_s": timeout_s}
        pending.append(_Pending(index=i, payload=payload))

    def record(p: _Pending, outcome: Dict[str, Any]) -> None:
        status = outcome["status"]
        res = make_result(p.index, status=status,
                          summary=outcome.get("summary"),
                          error=outcome.get("error", ""),
                          attempts=p.attempts,
                          wall_s=outcome.get("wall_s", 0.0))
        if status == STATUS_OK and store is not None:
            store.put(keys[p.index], specs[p.index], res.summary,
                      fingerprint=fingerprint)
        settle(res)

    # -- pass 2: execute misses ------------------------------------------
    if not pending:
        return [r for r in results if r is not None]

    def wants_retry(p: _Pending, outcome: Dict[str, Any]) -> bool:
        """Timeouts are load-sensitive, so they get the bounded retry
        too; deterministic in-spec errors would fail identically and
        are recorded immediately."""
        return (outcome["status"] == STATUS_TIMEOUT
                and p.attempts <= retries)

    if jobs == 1 or len(pending) == 1:
        for p in pending:
            while True:
                p.attempts += 1
                outcome = execute_payload(p.payload)
                if not wants_retry(p, outcome):
                    record(p, outcome)
                    break
        return [r for r in results if r is not None]

    queue = list(pending)
    while queue:
        retry_round: List[_Pending] = []
        executor = ProcessPoolExecutor(max_workers=jobs,
                                       mp_context=_mp_context())
        try:
            futures = {}
            for p in queue:
                p.attempts += 1
                futures[executor.submit(execute_payload, p.payload)] = p
            not_done = set(futures)
            broken = False
            while not_done:
                finished, not_done = wait(not_done,
                                          return_when=FIRST_COMPLETED)
                for fut in finished:
                    p = futures[fut]
                    try:
                        outcome = fut.result()
                        if wants_retry(p, outcome):
                            retry_round.append(p)
                        else:
                            record(p, outcome)
                    except BrokenProcessPool:
                        broken = True
                        if p.attempts <= retries:
                            retry_round.append(p)
                        else:
                            record(p, {"status": STATUS_CRASHED,
                                       "error": "worker process died "
                                                f"(after {p.attempts} "
                                                "attempts)"})
                    except Exception as exc:  # noqa: BLE001
                        record(p, {"status": STATUS_ERROR,
                                   "error": f"{type(exc).__name__}: "
                                            f"{exc}"})
                if broken:
                    # The pool is unusable; everything still in flight
                    # must be retried (or failed out) on a fresh one.
                    for fut in not_done:
                        p = futures[fut]
                        if p.attempts <= retries:
                            retry_round.append(p)
                        else:
                            record(p, {"status": STATUS_CRASHED,
                                       "error": "worker process died"})
                    break
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
        queue = retry_round

    return [r for r in results if r is not None]
