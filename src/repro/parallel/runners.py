"""Worker-side execution of run specs.

``execute_payload`` is the function the pool pickles into workers: it
looks up the spec's runner, applies deterministic per-spec seeding, an
optional wall-clock timeout (``SIGALRM``), and converts every outcome
-- success, simulation error, timeout -- into a plain dict, so a bad
spec never takes the worker (or the sweep) down with it.

Runners registered here:

* ``app`` -- one cell of the paper's evaluation matrix (an application
  under one protocol variant), summarized with breakdowns, aggregate
  counters and a sha256 checksum of the final shared memory;
* ``model_check`` -- one fault-injection model-check case (the seed
  sweep's unit of work), classified ``ok``/divergent.
"""

from __future__ import annotations

import hashlib
import random
import signal
import time
import traceback
from typing import Any, Callable, Dict

from repro.parallel.spec import RunSpec


class _SpecTimeout(Exception):
    """Raised inside a worker when a spec exceeds its time budget."""


def _data_checksum(runtime) -> str:
    """sha256 over the authoritative (home) copy of every segment.

    Read through ``debug_read`` so base and extended protocols are
    checksummed through the same access path the verifier uses.
    """
    space = runtime.cluster.address_space
    segments = space.segments()
    h = hashlib.sha256()
    for name in sorted(segments):
        seg = segments[name]
        h.update(name.encode())
        h.update(runtime.debug_read(seg.base_addr, seg.size_bytes))
    return h.hexdigest()


def _run_app(params: Dict[str, Any]) -> Dict[str, Any]:
    from repro.harness.experiments import (
        evaluation_config,
        workload_factories,
    )
    from repro.harness.runner import SvmRuntime
    from repro.parallel.summary import RunSummary

    factory = workload_factories(params["scale"])[params["app_name"]]
    config = evaluation_config(
        params["variant"],
        threads_per_node=params["threads_per_node"],
        num_nodes=params["num_nodes"],
        seed=params["seed"],
        lock_algorithm=params["lock_algorithm"],
        **params.get("protocol_overrides", {}))
    runtime = SvmRuntime(config, factory())
    result = runtime.run(verify=params.get("verify", True))
    return RunSummary.from_run_result(
        result, data_checksum=_data_checksum(runtime)).to_dict()


def _run_model_check(params: Dict[str, Any]) -> Dict[str, Any]:
    from repro.verify.replay import ReplayScenario, build_runtime

    runtime = build_runtime(ReplayScenario(
        program_seed=params["program_seed"],
        cluster_seed=params["cluster_seed"],
        plan_seed=params["plan_seed"],
        failures=params["failures"],
        num_nodes=params.get("num_nodes", 4),
        during_recovery_prob=params.get("during_recovery_prob", 0.0),
        min_gap_us=params.get("min_gap_us", 0.0)))
    checker = None
    if params.get("check"):
        from repro.verify import RecoveryInvariantChecker
        checker = RecoveryInvariantChecker(runtime, strict=False)
    recorder = None
    if params.get("trace_digest"):
        # Observability determinism probe: the flight-recorder trace is
        # a function of the seeds alone, so its digest must not depend
        # on worker placement or job count.
        from repro.obs import FlightRecorder
        recorder = FlightRecorder(runtime)
    tracer = None
    if params.get("optrace_digest"):
        # Same determinism contract for causal operation traces.
        from repro.obs.optrace import OpTracer
        tracer = OpTracer(runtime)
    status, detail = "ok", ""
    try:
        result = runtime.run(max_sim_us=params.get("max_sim_us"))
        if checker is not None and checker.finalize():
            status = "INVARIANT"
            detail = "; ".join(str(f) for f in checker.violations[:3])
    except _SpecTimeout:
        raise
    except Exception as exc:  # noqa: BLE001 -- classified, not hidden
        return {"status": type(exc).__name__, "detail": str(exc),
                "elapsed_us": runtime.engine.now}
    summary = {"status": status, "detail": detail,
               "elapsed_us": result.elapsed_us,
               "recoveries": result.recoveries,
               "exposed_window_us": result.exposed_window_us,
               "data_checksum": _data_checksum(runtime)}
    if recorder is not None:
        summary["trace_digest"] = recorder.digest()
    if tracer is not None:
        summary["optrace_digest"] = tracer.digest()
    return summary


RUNNERS: Dict[str, Callable[[Dict[str, Any]], Dict[str, Any]]] = {
    "app": _run_app,
    "model_check": _run_model_check,
}


def execute_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one spec; never raises (every outcome becomes a dict).

    ``payload`` carries the spec dict plus orchestration options; the
    same function serves the in-process ``--jobs 1`` path and the
    worker processes, so serial and parallel runs execute identical
    code.
    """
    spec = RunSpec.from_dict(payload["spec"])
    timeout_s = payload.get("timeout_s")
    started = time.perf_counter()

    # Deterministic per-spec seeding: the simulator draws only from its
    # own seeded Random instances, but any library code that touches
    # the global RNG sees the same stream regardless of worker
    # placement or completion order.
    seed = int(hashlib.sha256(
        spec.canonical_json().encode()).hexdigest()[:16], 16)
    random.seed(seed)

    runner = RUNNERS.get(spec.kind)
    if runner is None:
        return {"status": "error", "summary": None,
                "error": f"unknown runner {spec.kind!r}",
                "wall_s": 0.0}

    old_handler = None
    if timeout_s is not None:
        def _on_alarm(_signum, _frame):
            raise _SpecTimeout(
                f"spec {spec.label!r} exceeded {timeout_s}s")
        old_handler = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        summary = runner(spec.params)
        return {"status": "ok", "summary": summary, "error": "",
                "wall_s": time.perf_counter() - started}
    except _SpecTimeout as exc:
        return {"status": "timeout", "summary": None, "error": str(exc),
                "wall_s": time.perf_counter() - started}
    except Exception:  # noqa: BLE001 -- isolate the failing spec
        return {"status": "error", "summary": None,
                "error": traceback.format_exc(limit=20),
                "wall_s": time.perf_counter() - started}
    finally:
        if timeout_s is not None:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, old_handler)
