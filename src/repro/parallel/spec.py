"""Run specifications: the unit of work the orchestrator schedules.

A :class:`RunSpec` is a *value*: a runner name plus JSON-serializable
parameters that fully determine one simulation (workload factory name
and scale, cluster/protocol/memory configuration, seeds, fault plan).
Being a value makes it picklable for worker processes and hashable for
the content-addressed cache -- two specs with the same canonical JSON
are the same experiment.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

_ALLOWED_SCALARS = (str, int, float, bool, type(None))


def _check_canonical(value: Any, path: str) -> None:
    """Reject params the cache key could not represent stably."""
    if isinstance(value, _ALLOWED_SCALARS):
        return
    if isinstance(value, dict):
        for k, v in value.items():
            if not isinstance(k, str):
                raise TypeError(
                    f"spec param {path}: dict keys must be str, got {k!r}")
            _check_canonical(v, f"{path}.{k}")
        return
    if isinstance(value, (list, tuple)):
        for i, v in enumerate(value):
            _check_canonical(v, f"{path}[{i}]")
        return
    raise TypeError(
        f"spec param {path}: {type(value).__name__} is not "
        "JSON-canonicalizable (use str/int/float/bool/None/dict/list)")


def _normalize(value: Any) -> Any:
    """Tuples -> lists so equal specs canonicalize identically."""
    if isinstance(value, dict):
        return {k: _normalize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_normalize(v) for v in value]
    return value


@dataclass(frozen=True)
class RunSpec:
    """One schedulable simulation.

    ``kind`` names a runner registered in :mod:`repro.parallel.runners`;
    ``params`` are its keyword arguments; ``tag`` is a display label
    only -- it never enters the cache key.
    """

    kind: str
    params: Dict[str, Any] = field(default_factory=dict)
    tag: Optional[str] = None

    def __post_init__(self) -> None:
        _check_canonical(self.params, self.kind)
        object.__setattr__(self, "params", _normalize(self.params))

    def canonical_json(self) -> str:
        """Stable serialization: the identity of this experiment."""
        return json.dumps({"kind": self.kind, "params": self.params},
                          sort_keys=True, separators=(",", ":"))

    @property
    def label(self) -> str:
        return self.tag if self.tag is not None else self.canonical_json()

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "params": self.params, "tag": self.tag}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "RunSpec":
        return cls(kind=d["kind"], params=d.get("params", {}),
                   tag=d.get("tag"))


def app_spec(app_name: str, variant: str, threads_per_node: int = 1,
             scale: str = "bench", num_nodes: int = 8, seed: int = 2003,
             lock_algorithm: str = "polling", verify: bool = True,
             tag: Optional[str] = None,
             **protocol_overrides) -> RunSpec:
    """One cell of the paper's evaluation matrix (mirrors ``run_app``)."""
    params = {
        "app_name": app_name,
        "variant": variant,
        "threads_per_node": threads_per_node,
        "scale": scale,
        "num_nodes": num_nodes,
        "seed": seed,
        "lock_algorithm": lock_algorithm,
        "verify": verify,
        "protocol_overrides": dict(protocol_overrides),
    }
    if tag is None:
        tag = f"{app_name}/{variant}/t{threads_per_node}/s{seed}"
    return RunSpec(kind="app", params=params, tag=tag)


def model_check_spec(program_seed: int, cluster_seed: int,
                     plan_seed: int, failures: int, check: bool = False,
                     max_sim_us: float = 200_000.0,
                     num_nodes: int = 4,
                     during_recovery_prob: float = 0.0,
                     min_gap_us: float = 0.0,
                     tag: Optional[str] = None) -> RunSpec:
    """One fault-injection model-check case (mirrors the seed sweep)."""
    params = {
        "program_seed": program_seed,
        "cluster_seed": cluster_seed,
        "plan_seed": plan_seed,
        "failures": failures,
        "check": check,
        "max_sim_us": max_sim_us,
    }
    if num_nodes != 4:
        # Only non-default so the content-addressed cache keys of every
        # 4-node sweep already on disk stay valid.
        params["num_nodes"] = num_nodes
    if during_recovery_prob != 0.0:
        # Same cache-stability rule as num_nodes.
        params["during_recovery_prob"] = during_recovery_prob
    if min_gap_us != 0.0:
        params["min_gap_us"] = min_gap_us
    if tag is None:
        tag = (f"mc/{program_seed}/{cluster_seed}/"
               f"{plan_seed}x{failures}")
        if num_nodes != 4:
            tag += f"/n{num_nodes}"
        if during_recovery_prob != 0.0:
            tag += f"/d{during_recovery_prob:g}"
    return RunSpec(kind="model_check", params=params, tag=tag)
