"""Application kernel framework.

Kernels are SPMD generator functions running one per thread against the
:class:`~repro.protocol.api.SvmThread` API. To support the paper's
thread migration (section 4.4) without native stack snapshots, kernels
keep all control-flow state that must survive a failure in an explicit,
checkpointable ``ctx.state`` dict, using the resumable helpers below.

The contract: re-invoking ``kernel(ctx)`` with a ``ctx.state`` captured
at any point must deterministically replay the un-checkpointed suffix.
This is exactly the guarantee the paper's rollback needs -- no shared
write performed after the last checkpoint was propagated, so replaying
those writes (with identical values) is safe.

**Non-idempotent (read-modify-write) shared updates** need one extra
rule. The protocol checkpoints thread state at every release and
propagates all writes performed up to that release; a replayed RMW
would re-read its own propagated result and apply the modification
twice. Kernels therefore must advance their persistent continuation
*atomically with* the final shared write of a critical section, before
the release::

    for i in ctx.range("i", n):
        yield from ctx.svm.acquire(lock)
        v = yield from ctx.svm.read_i64(addr)
        yield from ctx.svm.write_i64(addr, v + 1)
        ctx.state["i"] = i + 1          # <- before the release
        yield from ctx.svm.release(lock)

(The assignment runs in the same scheduler step as the write's
completion, so a checkpoint can never observe the write without the
advanced continuation. Pure writes -- values computed from other data
-- are idempotent under replay and need no advance; this mirrors the
paper's exact-stack checkpoint at points A/B, where the saved context
always matches the propagated updates.) Corollaries: a release should
be the last shared operation of its loop body, and one-shot phases
should call ``ctx.done(...)`` before the barrier that publishes them.

Helpers:

* ``for i in ctx.range("i", n):`` -- a loop whose index persists in
  ``ctx.state["i"]``; restored threads continue from the saved index.
  On completion the counter parks at ``stop``: a loop name identifies
  one dynamic loop instance, so inner loops embed the outer index in
  their name (see :meth:`AppContext.range`).
* ``if ctx.pending("init"): ...; ctx.done("init")`` -- one-shot phase
  guard; the marker is set only after the block completes.
* ``yield from ctx.barrier(bid, key=...)`` -- replay-safe barriers;
  the key identifies the dynamic call instance (mandatory in loops).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional

from repro.errors import ApplicationError
from repro.protocol.api import SvmThread


class AppContext:
    """Per-thread execution context handed to kernels."""

    def __init__(self, svm: SvmThread, tid: int, nthreads: int,
                 state: Optional[Dict[str, Any]] = None) -> None:
        self.svm = svm
        self.tid = tid
        self.nthreads = nthreads
        #: Checkpointable kernel state. Everything a kernel needs to
        #: resume after migration must live here.
        self.state: Dict[str, Any] = state if state is not None else {}

    # -- resumable control flow ------------------------------------------------

    def range(self, name, stop: int, start: int = 0,
              step: int = 1) -> Iterator[int]:
        """A loop counter that persists across checkpoints.

        The live index is ``ctx.state[name]``; on completion it stays
        at ``stop`` so a checkpoint taken *after* the loop never causes
        a replay to redo propagated iterations (read-modify-write
        loops would double-apply).

        Consequence: a loop name identifies one *dynamic loop
        instance*. An inner loop executed once per outer iteration
        must embed the outer index in its name::

            for r in ctx.range("round", rounds):
                for m in ctx.range(("mol", r), n):   # unique per round
                    ...

        (Alternatively call ``ctx.reset(name)`` at the top of the
        outer body -- safe there because the reset is synchronous with
        body entry -- but per-instance names are preferred; stale
        counters of finished instances are just small state entries.)
        """
        if step <= 0:
            raise ApplicationError("ctx.range needs a positive step")
        i = self.state.get(name, start)
        while i < stop:
            yield i
            i += step
            self.state[name] = i
        self.state[name] = max(i, stop)

    def pending(self, name: str) -> bool:
        """True until :meth:`done` is called for ``name``."""
        return not self.state.get(("done", name), False)

    def done(self, name: str) -> None:
        self.state[("done", name)] = True

    def reset(self, name: str) -> None:
        """Clear a phase marker or loop counter."""
        self.state.pop(name, None)
        self.state.pop(("done", name), None)

    def barrier(self, barrier_id: int, key=None):
        """Generator: replay-safe global barrier.

        Two pieces of persistent state make barrier re-execution after
        a migration correct:

        * a per-barrier *epoch counter* (how many generations of this
          barrier id this thread has completed) -- the protocol uses it
          to let stale re-arrivals at already-completed generations
          pass through;
        * a per-*dynamic-instance* done marker keyed by ``key`` -- a
          replayed kernel that re-reaches a barrier call whose instance
          already completed before the checkpoint skips it entirely
          (otherwise the re-call would consume a *future* epoch and
          wait for a generation nobody else will join).

        ``key`` must uniquely identify the call instance within the
        kernel: pass the loop indices for barriers inside loops
        (``ctx.barrier(B, key=step)``). When ``key`` is omitted the
        barrier id itself is the key, which is only correct for a
        barrier id used by **at most one call per kernel run** --
        never omit the key inside a loop.
        """
        count_key = ("__bar__", barrier_id)
        done_key = ("__bardone__", barrier_id,
                    key if key is not None else "@once")
        if self.state.get(done_key):
            return None  # this dynamic instance completed pre-checkpoint
        epoch = self.state.get(count_key, 0)
        yield from self.svm.barrier(barrier_id, epoch)
        self.state[done_key] = True
        self.state[count_key] = epoch + 1
        return None

    def reset_barrier_keys(self, barrier_id: int, key) -> None:
        """Drop the done marker of an old barrier instance (bounded
        state for long-running loops: prune iteration i-1's keys when
        iteration i completes)."""
        self.state.pop(("__bardone__", barrier_id, key), None)


class Workload:
    """Base class for application workloads.

    Subclasses define:

    * :meth:`setup` -- allocate shared segments and record addresses
      (runs at host level before the simulation starts);
    * :meth:`init_kernel` -- per-thread initialization (data population,
      first-touch placement). Runs before the timed region.
    * :meth:`kernel` -- the timed SPMD computation.
    * :meth:`verify` -- check the final shared-memory contents; raise
      :class:`ApplicationError` on any mismatch. This is what makes
      fault-injection runs falsifiable.
    """

    #: Human-readable name (matches the paper's figures).
    name = "workload"
    #: Barrier ids 0..7 are free for workloads; the runtime reserves
    #: the top ids of the configured barrier range.
    BARRIER_A = 0
    BARRIER_B = 1
    BARRIER_C = 2

    def required_pages(self, config) -> int:
        """Shared pages this workload needs (for config validation)."""
        return 0

    def setup(self, runtime) -> None:
        raise NotImplementedError

    def init_kernel(self, ctx: AppContext):
        """Default: no initialization phase."""
        return None
        yield  # pragma: no cover

    def kernel(self, ctx: AppContext):
        raise NotImplementedError
        yield  # pragma: no cover

    def verify(self, runtime) -> None:
        """Default: nothing to check."""

