"""Parameterized synthetic workload for microbenchmarks and ablations.

Lets a benchmark dial the exact sharing characteristics the paper's
discussion attributes behaviour to: pages written per interval, the
fraction landing on the writer's own home pages, lock count and
contention, release frequency, and compute grain.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppContext, Workload
from repro.errors import ApplicationError


class SyntheticWorkload(Workload):
    """Configurable lock/barrier workload over real shared pages."""

    name = "synthetic"

    def __init__(self,
                 iterations: int = 10,
                 pages_per_interval: int = 2,
                 home_fraction: float = 0.5,
                 bytes_per_page: int = 64,
                 num_locks: int = 4,
                 compute_us: float = 20.0,
                 sync: str = "locks",
                 seed: int = 23) -> None:
        if sync not in ("locks", "barriers"):
            raise ApplicationError(f"unknown sync mode {sync!r}")
        self.iterations = iterations
        self.pages_per_interval = pages_per_interval
        self.home_fraction = home_fraction
        self.bytes_per_page = bytes_per_page
        self.num_locks = num_locks
        self.compute_us = compute_us
        self.sync = sync
        self.seed = seed
        self.own = None
        self.remote = None

    def setup(self, runtime) -> None:
        total = runtime.config.total_threads
        nodes = runtime.config.num_nodes
        page = runtime.config.memory.page_size
        span = self.pages_per_interval * page
        # One own-homed region and one remote-homed region per thread.
        self.own = runtime.alloc("syn_own", total * span,
                                 home=lambda i: (i // self.pages_per_interval
                                                 ) % nodes)
        self.remote = runtime.alloc(
            "syn_remote", total * span,
            home=lambda i: ((i // self.pages_per_interval) + 1) % nodes)

    def kernel(self, ctx: AppContext):
        page = ctx.svm.agent.page_size
        span = self.pages_per_interval * page
        own_base = self.own.addr(ctx.tid * span)
        remote_base = self.remote.addr(ctx.tid * span)
        n_home = int(round(self.pages_per_interval * self.home_fraction))
        rng = np.random.default_rng(self.seed + ctx.tid)
        payloads = rng.integers(1, 255, size=self.iterations)

        for i in ctx.range("i", self.iterations):
            yield from ctx.svm.compute(self.compute_us)
            fill = bytes([int(payloads[i])]) * self.bytes_per_page
            for p in range(self.pages_per_interval):
                base = own_base if p < n_home else remote_base
                yield from ctx.svm.write(base + p * page, fill)
            if self.sync == "locks":
                lock = i % self.num_locks
                yield from ctx.svm.acquire(lock)
                ctx.state["i"] = i + 1
                yield from ctx.svm.release(lock)
            else:
                yield from ctx.barrier(self.BARRIER_A, key=i)
        yield from ctx.barrier(self.BARRIER_B)
        return None

    def verify(self, runtime) -> None:
        total = runtime.config.total_threads
        page = runtime.config.memory.page_size
        span = self.pages_per_interval * page
        n_home = int(round(self.pages_per_interval * self.home_fraction))
        for tid in range(total):
            rng = np.random.default_rng(self.seed + tid)
            payloads = rng.integers(1, 255, size=self.iterations)
            expected = bytes([int(payloads[-1])]) * self.bytes_per_page
            for p in range(self.pages_per_interval):
                seg = self.own if p < n_home else self.remote
                got = runtime.debug_read(
                    seg.addr(tid * span + p * page), self.bytes_per_page)
                if got != expected:
                    raise ApplicationError(
                        f"thread {tid} page {p}: final payload wrong")
