"""Water-Nsquared: SPLASH-2's O(n^2) molecular dynamics code
(paper configuration: 4096 molecules).

Sharing characteristics reproduced (paper section 5.3):

* one lock per molecule plus a handful of global locks (the paper's
  4105 = 4096 + 9); force accumulation acquires/releases them at high
  frequency, which is why Water-Nsquared takes by far the most
  checkpoints (10 277 at one thread/node) and shows >2x lock wait
  growth under the extended protocol;
* force pages are written by every thread (about a quarter of the
  diffed pages are the writer's own home pages); position pages are
  owner-written.

Physics, simplified but real: a deterministic pairwise force, a
leapfrog-style position/velocity update, and a lock-protected global
potential-energy reduction. As in SPLASH-2, each process accumulates
pair forces into a *private* array first and then adds it into the
shared force array under per-molecule locks -- which is also exactly
the structure the recovery replay contract wants (the private array is
recomputed deterministically on replay; the locked global additions
advance persistent state before each release).
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppContext, Workload
from repro.errors import ApplicationError

#: Modelled CPU cost of one pairwise force evaluation, in us.
PAIR_FORCE_US = 12.0
#: Modelled cost of one molecule's predict/correct update.
UPDATE_US = 6.0

#: Global lock ids (after the per-molecule locks).
ENERGY_LOCK_OFFSET = 0
NUM_GLOBAL_LOCKS = 9


class WaterNsquared(Workload):
    """All-pairs molecular dynamics with per-molecule locks."""

    name = "WaterNsq"

    def __init__(self, molecules: int = 64, steps: int = 2,
                 seed: int = 11) -> None:
        self.n = molecules
        self.steps = steps
        self.seed = seed
        self.dt = 1e-3
        self.pos = None
        self.vel = None
        self.forces = None
        self.energy = None

    _VEC = 3 * 8  # one 3-vector of float64

    def required_pages(self, config) -> int:
        return 4 + 3 * self.n * self._VEC // config.memory.page_size

    def num_locks_needed(self) -> int:
        return self.n + NUM_GLOBAL_LOCKS

    def mol_lock(self, m: int) -> int:
        return NUM_GLOBAL_LOCKS + m

    def _my_mols(self, ctx) -> range:
        per = self.n // ctx.nthreads
        lo = ctx.tid * per
        hi = self.n if ctx.tid == ctx.nthreads - 1 else lo + per
        return range(lo, hi)

    def _my_pairs(self, ctx):
        """SPLASH's decomposition: thread t computes pairs (i, j) for
        its own i against all j > i."""
        for i in self._my_mols(ctx):
            for j in range(i + 1, self.n):
                yield i, j

    def setup(self, runtime) -> None:
        self.pos = runtime.alloc("water_pos", self.n * self._VEC,
                                 home="block")
        self.vel = runtime.alloc("water_vel", self.n * self._VEC,
                                 home="block")
        self.forces = runtime.alloc("water_forces", self.n * self._VEC,
                                    home="block")
        self.energy = runtime.alloc("water_energy", 8, home=0)

    def _initial_state(self):
        rng = np.random.default_rng(self.seed)
        pos = rng.uniform(0.0, 10.0, size=(self.n, 3))
        vel = rng.standard_normal((self.n, 3)) * 0.1
        return pos, vel

    def init_kernel(self, ctx: AppContext):
        pos0, vel0 = self._initial_state()
        mols = self._my_mols(ctx)
        lo, hi = mols.start, mols.stop
        # Our molecule block is contiguous in every array: three span
        # writes instead of three writes per molecule.
        yield from ctx.svm.write_array(self.pos.addr(lo * self._VEC),
                                       pos0[lo:hi])
        yield from ctx.svm.write_array(self.vel.addr(lo * self._VEC),
                                       vel0[lo:hi])
        yield from ctx.svm.write_array(self.forces.addr(lo * self._VEC),
                                       np.zeros((hi - lo, 3)))
        return None

    @staticmethod
    def pair_force(pi: np.ndarray, pj: np.ndarray) -> np.ndarray:
        d = pi - pj
        return d / (d @ d + 1.0)

    def kernel(self, ctx: AppContext):
        for _step in ctx.range("step", self.steps):
            # -- predict: integrate own positions (owner-computes) ----
            # Batched: our block is contiguous, so the whole phase is
            # two span reads, one aggregate compute charge, one span
            # write.
            if ctx.pending("predict"):
                mols = self._my_mols(ctx)
                lo, hi = mols.start, mols.stop
                p = yield from ctx.svm.read_array(
                    self.pos.addr(lo * self._VEC), np.float64,
                    3 * (hi - lo))
                v = yield from ctx.svm.read_array(
                    self.vel.addr(lo * self._VEC), np.float64,
                    3 * (hi - lo))
                yield from ctx.svm.compute(UPDATE_US * (hi - lo))
                yield from ctx.svm.write_array(
                    self.pos.addr(lo * self._VEC), p + v * self.dt)
                ctx.done("predict")
            yield from ctx.barrier(self.BARRIER_A, key=_step)

            # -- interf: private accumulation, then locked global adds.
            # The private array is recomputed deterministically on a
            # replay; positions are read-only in this phase.
            positions = yield from ctx.svm.read_array(
                self.pos.addr(0), np.float64, 3 * self.n)
            positions = positions.reshape(self.n, 3)
            local_f = np.zeros((self.n, 3))
            npairs = 0
            for i, j in self._my_pairs(ctx):
                f = self.pair_force(positions[i], positions[j])
                local_f[i] += f
                local_f[j] -= f
                npairs += 1
            yield from ctx.svm.compute(PAIR_FORCE_US * npairs)
            local_energy = float(np.sum(local_f[:, 0] ** 2))

            for m in ctx.range(("mol", _step), self.n):
                if not np.any(local_f[m]):
                    continue
                yield from ctx.svm.acquire(self.mol_lock(m))
                f = yield from ctx.svm.read_array(
                    self.forces.addr(m * self._VEC), np.float64, 3)
                yield from ctx.svm.write_array(
                    self.forces.addr(m * self._VEC), f + local_f[m])
                ctx.state[("mol", _step)] = m + 1  # RMW replay contract
                yield from ctx.svm.release(self.mol_lock(m))

            # -- global potential-energy reduction under a global lock.
            if ctx.pending("energy"):
                yield from ctx.svm.acquire(ENERGY_LOCK_OFFSET)
                e = yield from ctx.svm.read_f64(self.energy.addr(0))
                yield from ctx.svm.write_f64(self.energy.addr(0),
                                             e + local_energy)
                ctx.done("energy")  # before release: replay contract
                yield from ctx.svm.release(ENERGY_LOCK_OFFSET)
            yield from ctx.barrier(self.BARRIER_B, key=_step)

            # -- correct: velocity update + force reset (own mols) ----
            if ctx.pending("correct"):
                mols = self._my_mols(ctx)
                lo, hi = mols.start, mols.stop
                f = yield from ctx.svm.read_array(
                    self.forces.addr(lo * self._VEC), np.float64,
                    3 * (hi - lo))
                v = yield from ctx.svm.read_array(
                    self.vel.addr(lo * self._VEC), np.float64,
                    3 * (hi - lo))
                yield from ctx.svm.compute(UPDATE_US * (hi - lo))
                yield from ctx.svm.write_array(
                    self.vel.addr(lo * self._VEC), v + f * self.dt)
                yield from ctx.svm.write_array(
                    self.forces.addr(lo * self._VEC),
                    np.zeros((hi - lo, 3)))
                ctx.done("correct")
            yield from ctx.barrier(self.BARRIER_C, key=_step)
            ctx.reset("predict")
            ctx.reset("energy")
            ctx.reset("correct")
        return None

    # -- verification --------------------------------------------------------

    def _serial_reference(self):
        """The same computation, serially, in plain numpy."""
        pos, vel = self._initial_state()
        for _step in range(self.steps):
            pos = pos + vel * self.dt
            forces = np.zeros((self.n, 3))
            for i in range(self.n):
                for j in range(i + 1, self.n):
                    f = self.pair_force(pos[i], pos[j])
                    forces[i] += f
                    forces[j] -= f
            vel = vel + forces * self.dt
        return pos, vel

    def verify(self, runtime) -> None:
        want_pos, want_vel = self._serial_reference()
        got_pos = runtime.debug_read_array(
            self.pos.addr(0), np.float64, 3 * self.n).reshape(self.n, 3)
        got_vel = runtime.debug_read_array(
            self.vel.addr(0), np.float64, 3 * self.n).reshape(self.n, 3)
        if not np.allclose(got_pos, want_pos, rtol=1e-9, atol=1e-12):
            raise ApplicationError("Water-Nsquared positions diverge "
                                   "from the serial reference")
        if not np.allclose(got_vel, want_vel, rtol=1e-8, atol=1e-11):
            raise ApplicationError("Water-Nsquared velocities diverge "
                                   "from the serial reference")
