"""Application workloads: SPLASH-2 re-implementations and synthetics.

The six applications match the paper's evaluation suite (section 5.1);
each reproduces its original's sharing pattern (home-page-diff ratio,
lock count, release frequency) and computes a real, verifiable result
through the simulated shared memory.
"""

from repro.apps.base import AppContext, Workload
from repro.apps.fft import FFT
from repro.apps.kvstore import KVStore
from repro.apps.lu import LU
from repro.apps.ocean import Ocean
from repro.apps.radix import RadixSort
from repro.apps.randomprog import RandomProgram
from repro.apps.synthetic import SyntheticWorkload
from repro.apps.volrend import Volrend
from repro.apps.water_nsquared import WaterNsquared
from repro.apps.water_spatial import WaterSpatial

__all__ = [
    "AppContext",
    "Workload",
    "FFT",
    "KVStore",
    "LU",
    "Ocean",
    "WaterNsquared",
    "WaterSpatial",
    "RadixSort",
    "RandomProgram",
    "Volrend",
    "SyntheticWorkload",
]
