"""RadixLocal: SPLASH-2's parallel radix sort
(paper configuration: 4M integer keys).

Per digit pass: each thread histograms its own keys (local pages),
merges its counts into a shared global histogram under bucket-group
locks (the paper's 66 locks), thread 0 prefix-sums the histogram, and
every thread permutes its keys into the globally-ranked positions of
the destination array -- scattered writes across *other* threads' home
pages, which is why only ~12% of the pages this application diffs are
the writer's own home pages (the lowest of the suite) and why its
extended-protocol overhead is the smallest (20% / 24%).
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppContext, Workload
from repro.errors import ApplicationError

#: Modelled cost of histogramming one key.
HIST_US_PER_KEY = 2.0
#: Modelled cost of permuting one key.
PERMUTE_US_PER_KEY = 4.0

#: Global locks: one per bucket group plus two coordination locks
#: (the paper's 66 = 64 + 2).
NUM_COORD_LOCKS = 2


class RadixSort(Workload):
    """LSD radix sort over int64 keys."""

    name = "RadixLocal"

    def __init__(self, keys: int = 2048, radix_bits: int = 4,
                 key_bits: int = 16, seed: int = 5) -> None:
        self.n = keys
        self.radix_bits = radix_bits
        self.radix = 1 << radix_bits
        self.key_bits = key_bits
        self.passes = key_bits // radix_bits
        self.seed = seed
        self.src = None
        self.dst = None
        self.hist = None

    _ITEM = 8

    def required_pages(self, config) -> int:
        return 4 + (2 * self.n + self.radix * 2) * self._ITEM \
            // config.memory.page_size

    def bucket_lock(self, bucket: int) -> int:
        return NUM_COORD_LOCKS + bucket

    def num_locks_needed(self) -> int:
        return NUM_COORD_LOCKS + self.radix

    def _my_range(self, ctx) -> range:
        per = self.n // ctx.nthreads
        lo = ctx.tid * per
        hi = self.n if ctx.tid == ctx.nthreads - 1 else lo + per
        return range(lo, hi)

    def setup(self, runtime) -> None:
        self.src = runtime.alloc("radix_a", self.n * self._ITEM,
                                 home="block")
        self.dst = runtime.alloc("radix_b", self.n * self._ITEM,
                                 home="block")
        # Global histogram: per-bucket total plus per-bucket/thread
        # offsets would be the full SPLASH structure; we keep the
        # per-bucket-per-thread matrix so ranks are exact.
        total = runtime.config.total_threads
        self.hist = runtime.alloc(
            "radix_hist", self.radix * (total + 1) * self._ITEM, home=0)

    def _keys(self) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        return rng.integers(0, 1 << self.key_bits, size=self.n,
                            dtype=np.int64)

    def init_kernel(self, ctx: AppContext):
        keys = self._keys()
        rng_ = self._my_range(ctx)
        yield from ctx.svm.write_array(
            self.src.addr(rng_.start * self._ITEM),
            keys[rng_.start:rng_.stop])
        return None

    def _hist_addr(self, bucket: int, slot: int, nthreads: int) -> int:
        return self.hist.addr(
            (bucket * (nthreads + 1) + slot) * self._ITEM)

    def kernel(self, ctx: AppContext):
        nt = ctx.nthreads
        for p in ctx.range("pass", self.passes):
            # Derive the ping-pong buffers from the pass number (not a
            # running swap) so a replay resuming mid-sort picks the
            # correct direction.
            src_seg = self.src if p % 2 == 0 else self.dst
            dst_seg = self.dst if p % 2 == 0 else self.src
            shift = p * self.radix_bits
            mask = self.radix - 1
            rng_ = self._my_range(ctx)

            # Zero our column of the histogram (thread 0 zeroes totals).
            # Column slots are strided (bucket-major layout), so these
            # stay per-access; the scalar accessor writes the same
            # bytes as a one-element array without the numpy boxing.
            if ctx.pending("zero"):
                for b in range(self.radix):
                    yield from ctx.svm.write_i64(
                        self._hist_addr(b, ctx.tid + 1, nt), 0)
                    if ctx.tid == 0:
                        yield from ctx.svm.write_i64(
                            self._hist_addr(b, 0, nt), 0)
                ctx.done("zero")
            yield from ctx.barrier(self.BARRIER_A, key=p)

            # Local histogram of our keys.
            mine = yield from ctx.svm.read_array(
                src_seg.addr(rng_.start * self._ITEM), np.int64,
                len(rng_))
            yield from ctx.svm.compute(HIST_US_PER_KEY * len(rng_))
            buckets = (mine >> shift) & mask
            local_counts = np.bincount(buckets, minlength=self.radix)

            # Publish our per-bucket counts and add to the bucket
            # totals under the bucket-group locks (RMW).
            for b in ctx.range(("bkt", p), self.radix):
                count = int(local_counts[b])
                yield from ctx.svm.write_i64(
                    self._hist_addr(b, ctx.tid + 1, nt), count)
                yield from ctx.svm.acquire(self.bucket_lock(b))
                total = yield from ctx.svm.read_i64(
                    self._hist_addr(b, 0, nt))
                yield from ctx.svm.write_i64(
                    self._hist_addr(b, 0, nt), total + count)
                ctx.state[("bkt", p)] = b + 1  # RMW replay contract
                yield from ctx.svm.release(self.bucket_lock(b))
            yield from ctx.barrier(self.BARRIER_B, key=p)

            # Everybody reads the full histogram and computes global
            # ranks: rank(bucket, thread) = sum of totals of smaller
            # buckets + counts of lower-numbered threads in our bucket.
            flat = yield from ctx.svm.read_array(
                self.hist.addr(0), np.int64, self.radix * (nt + 1))
            table = flat.reshape(self.radix, nt + 1)
            bucket_base = np.concatenate(
                ([0], np.cumsum(table[:, 0])))[:-1]
            my_base = {
                b: int(bucket_base[b] + table[b, 1:ctx.tid + 1].sum())
                for b in range(self.radix)}

            # Permute our keys into the destination array (scattered
            # remote writes).
            if ctx.pending("permute"):
                yield from ctx.svm.compute(PERMUTE_US_PER_KEY * len(rng_))
                offsets = dict(my_base)
                for key in mine:
                    key = int(key)
                    b = (key >> shift) & mask
                    target = offsets[b]
                    offsets[b] = target + 1
                    yield from ctx.svm.write_i64(
                        dst_seg.addr(target * self._ITEM), key)
                ctx.done("permute")
            yield from ctx.barrier(self.BARRIER_C, key=p)
            ctx.reset("zero")
            ctx.reset("permute")
        return None

    def _result_segment(self):
        return self.src if self.passes % 2 == 0 else self.dst

    def verify(self, runtime) -> None:
        got = runtime.debug_read_array(
            self._result_segment().addr(0), np.int64, self.n)
        want = np.sort(self._keys(), kind="stable")
        if not np.array_equal(got, want):
            raise ApplicationError("radix sort output is not the "
                                   "sorted key sequence")
