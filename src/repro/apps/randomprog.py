"""Randomized SPMD programs for protocol model-checking.

A :class:`RandomProgram` is a reproducible, seed-generated parallel
program built from the primitives whose interactions the protocols
must get right:

* owner writes (pure, idempotent) to per-thread blocks;
* lock-protected read-modify-writes on shared counters (the
  non-idempotent case that stresses checkpoint/replay);
* cross-thread reads after barriers;
* compute delays that shift interleavings.

The generator also computes the program's *expected final memory*
analytically, so any run -- base or extended protocol, failure-free or
under a random fault plan -- is verified bit-exactly. Combined with
hypothesis over (program seed, cluster seed, fault plan), this is a
randomized model check of the whole stack.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.apps.base import AppContext, Workload
from repro.errors import ApplicationError

#: Action kinds within a phase.
OWN_WRITE = "own_write"
RMW = "rmw"
READ = "read"
COMPUTE = "compute"
#: Write to this thread's byte-slice of a page every thread writes --
#: false sharing, exercising diff merging and the pending-diff rebase.
SHARED_WRITE = "shared_write"


@dataclass(frozen=True)
class Action:
    kind: str
    #: OWN_WRITE: (block_slot, value); RMW: (counter, lock, amount);
    #: READ: (block owner tid, slot); COMPUTE: (microseconds,).
    args: Tuple


class RandomProgram(Workload):
    """A generated phase-structured SPMD program."""

    name = "randomprog"

    def __init__(self, program_seed: int = 1, phases: int = 4,
                 actions_per_phase: int = 5, counters: int = 4,
                 slots_per_thread: int = 8,
                 nthreads_hint: int = 4) -> None:
        self.program_seed = program_seed
        self.phases = phases
        self.actions_per_phase = actions_per_phase
        self.ncounters = counters
        self.slots = slots_per_thread
        self.nthreads_hint = nthreads_hint
        self.counters_seg = None
        self.blocks_seg = None

    _ITEM = 8

    def counter_lock(self, counter: int) -> int:
        return 1 + counter

    # -- program generation ----------------------------------------------------

    def thread_program(self, tid: int) -> List[List[Action]]:
        """The per-thread action lists, one list per phase.

        Deterministic in (program_seed, tid): generation is replayed
        identically by the kernel, the verifier, and any migrated
        resumption of the thread.
        """
        rng = random.Random(self.program_seed * 7919 + tid)
        program: List[List[Action]] = []
        for phase in range(self.phases):
            actions: List[Action] = []
            for index in range(rng.randint(1, self.actions_per_phase)):
                kind = rng.choices(
                    (OWN_WRITE, RMW, READ, COMPUTE, SHARED_WRITE),
                    weights=(3, 3, 2, 2, 2))[0]
                if kind == OWN_WRITE:
                    slot = rng.randrange(self.slots)
                    value = rng.randrange(1, 1 << 30)
                    actions.append(Action(OWN_WRITE, (slot, value)))
                elif kind == RMW:
                    counter = rng.randrange(self.ncounters)
                    amount = rng.randrange(1, 100)
                    actions.append(Action(RMW, (counter, amount)))
                elif kind == READ:
                    owner = rng.randrange(self.nthreads_hint)
                    slot = rng.randrange(self.slots)
                    actions.append(Action(READ, (owner, slot)))
                elif kind == COMPUTE:
                    actions.append(Action(COMPUTE,
                                          (rng.uniform(1.0, 15.0),)))
                else:
                    value = rng.randrange(1, 256)
                    actions.append(Action(SHARED_WRITE, (value,)))
            program.append(actions)
        return program

    # -- allocation ------------------------------------------------------------

    def setup(self, runtime) -> None:
        total = runtime.config.total_threads
        if total != self.nthreads_hint:
            raise ApplicationError(
                f"program generated for {self.nthreads_hint} threads, "
                f"cluster has {total}")
        self.counters_seg = runtime.alloc(
            "rand_counters", self.ncounters * self._ITEM, home=0)
        self.blocks_seg = runtime.alloc(
            "rand_blocks", total * self.slots * self._ITEM, home="block")
        # One page written by every thread in disjoint byte slices.
        self.shared_seg = runtime.alloc(
            "rand_shared", runtime.config.memory.page_size, home=0)

    def _counter_addr(self, counter: int) -> int:
        return self.counters_seg.addr(counter * self._ITEM)

    def _slot_addr(self, tid: int, slot: int) -> int:
        return self.blocks_seg.addr(
            (tid * self.slots + slot) * self._ITEM)

    def _shared_slice(self, tid: int, nthreads: int) -> tuple:
        width = self.shared_seg.size_bytes // nthreads
        return self.shared_seg.addr(tid * width), width

    # -- kernel ------------------------------------------------------------------

    def init_kernel(self, ctx: AppContext):
        # Progress markers: a checkpoint-restored thread must not
        # re-run initialization writes it already performed. The zero
        # writes are idempotent against *initial* memory, but a replay
        # after other threads have published real values would wipe
        # them (a restored tid 0 re-zeroing the counters page destroys
        # every RMW committed since -- a lost-update divergence).
        if ctx.tid == 0 and ctx.pending("init_counters"):
            zeros = np.zeros(self.ncounters, dtype=np.int64)
            yield from ctx.svm.write_array(self._counter_addr(0), zeros)
            ctx.done("init_counters")
        if ctx.pending("init_slots"):
            zeros = np.zeros(self.slots, dtype=np.int64)
            yield from ctx.svm.write_array(self._slot_addr(ctx.tid, 0),
                                           zeros)
            ctx.done("init_slots")
        return None

    def kernel(self, ctx: AppContext):
        program = self.thread_program(ctx.tid)
        for phase in ctx.range("phase", self.phases):
            actions = program[phase]
            for index in ctx.range(("act", phase), len(actions)):
                action = actions[index]
                if action.kind == OWN_WRITE:
                    slot, value = action.args
                    yield from ctx.svm.write_i64(
                        self._slot_addr(ctx.tid, slot), value)
                elif action.kind == RMW:
                    counter, amount = action.args
                    lock = self.counter_lock(counter)
                    yield from ctx.svm.acquire(lock)
                    current = yield from ctx.svm.read_i64(
                        self._counter_addr(counter))
                    yield from ctx.svm.write_i64(
                        self._counter_addr(counter), current + amount)
                    # RMW replay contract: advance before the release.
                    ctx.state[("act", phase)] = index + 1
                    yield from ctx.svm.release(lock)
                elif action.kind == SHARED_WRITE:
                    value = action.args[0]
                    addr, width = self._shared_slice(ctx.tid,
                                                     ctx.nthreads)
                    yield from ctx.svm.write(
                        addr, bytes([value]) * min(width, 32))
                elif action.kind == READ:
                    owner, slot = action.args
                    value = yield from ctx.svm.read_i64(
                        self._slot_addr(owner, slot))
                    self._check_read(ctx.tid, phase, owner, slot, value)
                else:
                    yield from ctx.svm.compute(action.args[0])
            yield from ctx.barrier(self.BARRIER_A, key=phase)
        return None

    # -- verification ----------------------------------------------------------------

    def _expected_slots_after_phase(self, nthreads: int,
                                    upto_phase: int
                                    ) -> Dict[Tuple[int, int], int]:
        """Slot values once every thread finished phases < upto_phase."""
        values: Dict[Tuple[int, int], int] = {}
        for tid in range(nthreads):
            program = self.thread_program(tid)
            for phase in range(min(upto_phase, self.phases)):
                for action in program[phase]:
                    if action.kind == OWN_WRITE:
                        slot, value = action.args
                        values[(tid, slot)] = value
        return values

    def _check_read(self, reader: int, phase: int, owner: int,
                    slot: int, value: int) -> None:
        """Cross-thread reads must observe the owner's last write from
        any *completed* phase (phases are barrier-separated; the owner
        may also have overwritten the slot in the current phase)."""
        legal = {0}
        published = self._expected_slots_after_phase(
            self.nthreads_hint, phase)
        if (owner, slot) in published:
            legal = {published[(owner, slot)]}
        # Values from the owner's current, un-barriered phase are also
        # legal (the reader may race ahead within the phase only for
        # its own slots; for others the protocol may legitimately show
        # the newer value once propagated).
        for action in self.thread_program(owner)[phase]:
            if action.kind == OWN_WRITE and action.args[0] == slot:
                legal.add(action.args[1])
        if value not in legal:
            raise ApplicationError(
                f"thread {reader} phase {phase} read slot "
                f"({owner},{slot}) = {value}, legal {legal}")

    def verify(self, runtime) -> None:
        total = runtime.config.total_threads
        # Counters: the sum of every generated RMW amount.
        expected = np.zeros(self.ncounters, dtype=np.int64)
        for tid in range(total):
            for actions in self.thread_program(tid):
                for action in actions:
                    if action.kind == RMW:
                        counter, amount = action.args
                        expected[counter] += amount
        got = runtime.debug_read_array(self._counter_addr(0), np.int64,
                                       self.ncounters)
        if not np.array_equal(got, expected):
            raise ApplicationError(
                f"counters {got.tolist()} != expected "
                f"{expected.tolist()} (an RMW was lost or doubled)")
        # Blocks: the last write of each slot across all phases.
        final = self._expected_slots_after_phase(total, self.phases)
        for (tid, slot), value in final.items():
            cell = runtime.debug_read_array(
                self._slot_addr(tid, slot), np.int64, 1)[0]
            if cell != value:
                raise ApplicationError(
                    f"slot ({tid},{slot}) = {cell} != {value}")
        # Falsely-shared page: each thread's slice holds its own last
        # shared write (diff merging must never leak across slices).
        for tid in range(total):
            last = None
            for actions in self.thread_program(tid):
                for action in actions:
                    if action.kind == SHARED_WRITE:
                        last = action.args[0]
            if last is None:
                continue
            addr, width = self._shared_slice(tid, total)
            got = runtime.debug_read(addr, min(width, 32))
            if got != bytes([last]) * min(width, 32):
                raise ApplicationError(
                    f"false-shared slice of thread {tid} corrupted: "
                    f"expected {last}, got {got[:4].hex()}...")
