"""KVStore: a server-style transactional workload.

The paper's future-work section asks how the approach performs on "a
broader application domain that includes server and other
non-scientific applications" (section 6). This workload is that
experiment: a partitioned key-value store processing read-modify-write
transactions under per-bucket locks -- the sharing pattern of a
transaction-processing backend rather than a scientific kernel:

* fine-grained, high-frequency lock traffic (like Water-Nsquared but
  with *random* access: no owner-computes locality at all);
* every transaction is a cross-bucket RMW, so replay correctness
  leans fully on the advance-before-release contract;
* a deterministic per-thread operation stream makes the final store
  contents verifiable against a serial replay.

Each transaction transfers an amount between two buckets (credit /
debit under two locks in canonical order -- the classic deadlock-free
discipline) and bumps a per-bucket version counter; verification
replays the global, timestamp-ordered transaction history serially.
Conservation (the grand total never changes) doubles as an invariant.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppContext, Workload
from repro.errors import ApplicationError

#: Modelled CPU cost of transaction logic around the shared accesses.
TXN_US = 8.0


class KVStore(Workload):
    """Bank-style transfers over a lock-partitioned shared table."""

    name = "KVStore"

    def __init__(self, buckets: int = 32, txns_per_thread: int = 12,
                 initial_balance: int = 1000, seed: int = 29) -> None:
        self.buckets = buckets
        self.txns = txns_per_thread
        self.initial = initial_balance
        self.seed = seed
        self.table = None   # per-bucket: [balance, version] int64 pairs

    _ROW = 16  # two int64 per bucket

    def bucket_lock(self, bucket: int) -> int:
        return 1 + bucket

    def num_locks_needed(self) -> int:
        return 1 + self.buckets

    def _row_addr(self, bucket: int) -> int:
        return self.table.addr(bucket * self._ROW)

    def setup(self, runtime) -> None:
        self.table = runtime.alloc("kv_table", self.buckets * self._ROW,
                                   home="round_robin")

    def init_kernel(self, ctx: AppContext):
        per = self.buckets // ctx.nthreads
        lo = ctx.tid * per
        hi = self.buckets if ctx.tid == ctx.nthreads - 1 else lo + per
        # Our bucket rows are contiguous: one batched span write of the
        # [balance, version] pairs.
        rows = np.zeros((hi - lo, 2), dtype=np.int64)
        rows[:, 0] = self.initial
        yield from ctx.svm.write_array(self._row_addr(lo), rows)
        return None

    def _stream(self, tid: int):
        """The deterministic transaction stream of one thread."""
        rng = np.random.default_rng(self.seed * 977 + tid)
        for _ in range(self.txns):
            src = int(rng.integers(0, self.buckets))
            dst = int(rng.integers(0, self.buckets - 1))
            if dst >= src:
                dst += 1
            amount = int(rng.integers(1, 50))
            yield src, dst, amount

    def kernel(self, ctx: AppContext):
        stream = list(self._stream(ctx.tid))
        for i in ctx.range("txn", len(stream)):
            src, dst, amount = stream[i]
            first, second = sorted((src, dst))
            yield from ctx.svm.acquire(self.bucket_lock(first))
            yield from ctx.svm.acquire(self.bucket_lock(second))
            yield from ctx.svm.compute(TXN_US)
            row_src = yield from ctx.svm.read_array(
                self._row_addr(src), np.int64, 2)
            row_dst = yield from ctx.svm.read_array(
                self._row_addr(dst), np.int64, 2)
            yield from ctx.svm.write_array(
                self._row_addr(src),
                np.array([row_src[0] - amount, row_src[1] + 1],
                         dtype=np.int64))
            yield from ctx.svm.write_array(
                self._row_addr(dst),
                np.array([row_dst[0] + amount, row_dst[1] + 1],
                         dtype=np.int64))
            # RMW replay contract: the continuation advances atomically
            # with the final shared write, before the releases.
            ctx.state["txn"] = i + 1
            yield from ctx.svm.release(self.bucket_lock(second))
            yield from ctx.svm.release(self.bucket_lock(first))
        yield from ctx.barrier(self.BARRIER_A)
        return None

    def verify(self, runtime) -> None:
        table = runtime.debug_read_array(
            self.table.addr(0), np.int64,
            2 * self.buckets).reshape(self.buckets, 2)
        total_threads = runtime.config.total_threads
        # Conservation: transfers never create or destroy balance.
        expected_total = self.buckets * self.initial
        if int(table[:, 0].sum()) != expected_total:
            raise ApplicationError(
                f"balance not conserved: {int(table[:, 0].sum())} != "
                f"{expected_total}")
        # Version counters: every transaction bumps exactly two rows.
        expected_versions = 2 * self.txns * total_threads
        if int(table[:, 1].sum()) != expected_versions:
            raise ApplicationError(
                f"version counters {int(table[:, 1].sum())} != "
                f"{expected_versions} (a transaction was lost or "
                "double-applied)")
        # Per-bucket net balance matches the serial replay of all
        # streams (transfers commute on balances).
        net = np.zeros(self.buckets, dtype=np.int64)
        for tid in range(total_threads):
            for src, dst, amount in self._stream(tid):
                net[src] -= amount
                net[dst] += amount
        expected = self.initial + net
        if not np.array_equal(table[:, 0], expected):
            raise ApplicationError("per-bucket balances diverge from "
                                   "the serial replay")
