"""Water-SpatialFL: SPLASH-2's spatial (linked-cell) water code
(paper configuration: 4096 molecules).

The simulation box is cut into cells; each thread owns a contiguous
band of cells and computes interactions only between molecules within
the cutoff radius. Force updates for *interior* pairs touch only the
owner's molecules -- which is why the paper measures >99% of the pages
this application diffs to be the writer's own home pages, and why its
extended-protocol overhead is dominated by home-page diffing (+20%)
rather than locks. Only *boundary* pairs (molecules in adjacent bands)
need lock-protected accumulation, giving the much smaller lock count
the paper reports (518 vs Water-Nsquared's 4105) and a much lower
release frequency.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppContext, Workload
from repro.errors import ApplicationError

PAIR_FORCE_US = 12.0
UPDATE_US = 6.0
NUM_GLOBAL_LOCKS = 6


class WaterSpatial(Workload):
    """Banded spatial decomposition with cutoff interactions."""

    name = "WaterSpFL"

    def __init__(self, molecules: int = 64, steps: int = 2,
                 cutoff: float = 2.5, seed: int = 13) -> None:
        self.n = molecules
        self.steps = steps
        self.cutoff = cutoff
        self.box = 10.0
        self.seed = seed
        self.pos = None
        self.vel = None
        self.forces = None

    _VEC = 3 * 8

    def required_pages(self, config) -> int:
        return 4 + 3 * self.n * self._VEC // config.memory.page_size

    def num_locks_needed(self, nthreads: int) -> int:
        return NUM_GLOBAL_LOCKS + nthreads  # one boundary lock per band

    def boundary_lock(self, band: int) -> int:
        return NUM_GLOBAL_LOCKS + band

    # -- spatial decomposition ------------------------------------------------
    # Molecules are sorted into bands by x coordinate at init time; the
    # arrays are laid out band-contiguous so bands map to page ranges.

    def _initial_state(self):
        rng = np.random.default_rng(self.seed)
        pos = rng.uniform(0.0, self.box, size=(self.n, 3))
        vel = rng.standard_normal((self.n, 3)) * 0.05
        return pos, vel

    def _band_of(self, x: float, nthreads: int) -> int:
        band = int(x / self.box * nthreads)
        return min(band, nthreads - 1)

    def _band_layout(self, nthreads: int):
        """Sorted molecule order and per-band index ranges."""
        pos, vel = self._initial_state()
        bands = np.array([self._band_of(p[0], nthreads) for p in pos])
        order = np.argsort(bands, kind="stable")
        sorted_bands = bands[order]
        ranges = []
        for band in range(nthreads):
            idx = np.nonzero(sorted_bands == band)[0]
            ranges.append((int(idx[0]), int(idx[-1]) + 1) if len(idx)
                          else (0, 0))
        return order, ranges, pos[order], vel[order]

    def setup(self, runtime) -> None:
        # First-touch placement: home each page at the node of the band
        # owning (the majority of) its molecules -- bands are unevenly
        # sized, so the uniform "block" policy would systematically
        # misalign band boundaries with page boundaries and destroy the
        # owner locality that gives this code its >99% home-page-diff
        # share in the paper.
        total = runtime.config.total_threads
        nodes = runtime.config.num_nodes
        page_size = runtime.config.memory.page_size
        _order, ranges, _pos, _vel = self._band_layout(total)

        def band_home(page_index: int) -> int:
            mid_mol = min((page_index * page_size + page_size // 2)
                          // self._VEC, self.n - 1)
            for band, (lo, hi) in enumerate(ranges):
                if lo <= mid_mol < hi:
                    return band % nodes
            return 0

        self.pos = runtime.alloc("spatial_pos", self.n * self._VEC,
                                 home=band_home)
        self.vel = runtime.alloc("spatial_vel", self.n * self._VEC,
                                 home=band_home)
        self.forces = runtime.alloc("spatial_forces", self.n * self._VEC,
                                    home=band_home)

    def init_kernel(self, ctx: AppContext):
        _order, ranges, pos, vel = self._band_layout(ctx.nthreads)
        lo, hi = ranges[ctx.tid]
        if hi > lo:
            # Band-contiguous layout: one span write per array.
            yield from ctx.svm.write_array(self.pos.addr(lo * self._VEC),
                                           pos[lo:hi])
            yield from ctx.svm.write_array(self.vel.addr(lo * self._VEC),
                                           vel[lo:hi])
            yield from ctx.svm.write_array(
                self.forces.addr(lo * self._VEC), np.zeros((hi - lo, 3)))
        return None

    @staticmethod
    def pair_force(pi, pj):
        d = pi - pj
        return d / (d @ d + 1.0)

    def _interactions(self, positions, lo, hi, next_lo, next_hi):
        """Pairs for one band: interior (i, j both in [lo, hi)) and
        boundary (i in band, j in the next band) within the cutoff."""
        dt_interior = []
        dt_boundary = []
        cut2 = self.cutoff ** 2
        for i in range(lo, hi):
            for j in range(i + 1, hi):
                d = positions[i] - positions[j]
                if d @ d < cut2:
                    dt_interior.append((i, j))
            for j in range(next_lo, next_hi):
                d = positions[i] - positions[j]
                if d @ d < cut2:
                    dt_boundary.append((i, j))
        return dt_interior, dt_boundary

    def kernel(self, ctx: AppContext):
        _order, ranges, _p, _v = self._band_layout(ctx.nthreads)
        lo, hi = ranges[ctx.tid]
        nxt = (ctx.tid + 1) % ctx.nthreads
        next_lo, next_hi = ranges[nxt] if nxt != ctx.tid else (0, 0)
        dt = 1e-3

        for _step in ctx.range("step", self.steps):
            if ctx.pending("predict"):
                if hi > lo:
                    p = yield from ctx.svm.read_array(
                        self.pos.addr(lo * self._VEC), np.float64,
                        3 * (hi - lo))
                    v = yield from ctx.svm.read_array(
                        self.vel.addr(lo * self._VEC), np.float64,
                        3 * (hi - lo))
                    yield from ctx.svm.compute(UPDATE_US * (hi - lo))
                    yield from ctx.svm.write_array(
                        self.pos.addr(lo * self._VEC), p + v * dt)
                ctx.done("predict")
            yield from ctx.barrier(self.BARRIER_A, key=_step)

            positions = yield from ctx.svm.read_array(
                self.pos.addr(0), np.float64, 3 * self.n)
            positions = positions.reshape(self.n, 3)
            interior, boundary = self._interactions(
                positions, lo, hi, next_lo, next_hi)
            yield from ctx.svm.compute(
                PAIR_FORCE_US * (len(interior) + len(boundary)))

            # Accumulate contributions (interior + boundary) privately,
            # then add them into the shared array per *band*, under
            # that band's cell lock: a neighbour updating our boundary
            # molecules takes the same lock, so all force RMWs on a
            # band serialize (SPLASH-2's cell-lock discipline). Most of
            # the volume is interior, so almost all locked additions go
            # to our own band's (home) pages.
            contrib = np.zeros((self.n, 3))
            for i, j in interior + boundary:
                f = self.pair_force(positions[i], positions[j])
                contrib[i] += f
                contrib[j] -= f
            own_touched = [m for m in range(lo, hi)
                           if np.any(contrib[m])]
            nb_touched = [m for m in range(self.n)
                          if not lo <= m < hi and np.any(contrib[m])]

            yield from ctx.svm.acquire(self.boundary_lock(ctx.tid))
            for k in ctx.range(("own_acc", _step), len(own_touched)):
                m = own_touched[k]
                cur = yield from ctx.svm.read_array(
                    self.forces.addr(m * self._VEC), np.float64, 3)
                yield from ctx.svm.write_array(
                    self.forces.addr(m * self._VEC), cur + contrib[m])
                ctx.state[("own_acc", _step)] = k + 1  # RMW replay contract
            yield from ctx.svm.release(self.boundary_lock(ctx.tid))

            if nb_touched:
                yield from ctx.svm.acquire(self.boundary_lock(nxt))
                for k in ctx.range(("nb_acc", _step), len(nb_touched)):
                    m = nb_touched[k]
                    cur = yield from ctx.svm.read_array(
                        self.forces.addr(m * self._VEC), np.float64, 3)
                    yield from ctx.svm.write_array(
                        self.forces.addr(m * self._VEC),
                        cur + contrib[m])
                    ctx.state[("nb_acc", _step)] = k + 1
                yield from ctx.svm.release(self.boundary_lock(nxt))
            yield from ctx.barrier(self.BARRIER_B, key=_step)

            if ctx.pending("correct"):
                if hi > lo:
                    f = yield from ctx.svm.read_array(
                        self.forces.addr(lo * self._VEC), np.float64,
                        3 * (hi - lo))
                    v = yield from ctx.svm.read_array(
                        self.vel.addr(lo * self._VEC), np.float64,
                        3 * (hi - lo))
                    yield from ctx.svm.compute(UPDATE_US * (hi - lo))
                    yield from ctx.svm.write_array(
                        self.vel.addr(lo * self._VEC), v + f * dt)
                    yield from ctx.svm.write_array(
                        self.forces.addr(lo * self._VEC),
                        np.zeros((hi - lo, 3)))
                ctx.done("correct")
            yield from ctx.barrier(self.BARRIER_C, key=_step)
            ctx.reset("predict")
            ctx.reset("correct")
        return None

    # -- verification --------------------------------------------------------

    def _serial_reference(self, nthreads: int):
        _order, ranges, pos, vel = self._band_layout(nthreads)
        dt = 1e-3
        cut2 = self.cutoff ** 2
        for _step in range(self.steps):
            pos = pos + vel * dt
            forces = np.zeros((self.n, 3))
            for t in range(nthreads):
                lo, hi = ranges[t]
                nxt = (t + 1) % nthreads
                nlo, nhi = ranges[nxt] if nxt != t else (0, 0)
                for i in range(lo, hi):
                    for j in range(i + 1, hi):
                        d = pos[i] - pos[j]
                        if d @ d < cut2:
                            f = self.pair_force(pos[i], pos[j])
                            forces[i] += f
                            forces[j] -= f
                    for j in range(nlo, nhi):
                        d = pos[i] - pos[j]
                        if d @ d < cut2:
                            f = self.pair_force(pos[i], pos[j])
                            forces[i] += f
                            forces[j] -= f
            vel = vel + forces * dt
        return pos, vel

    def verify(self, runtime) -> None:
        nthreads = runtime.config.total_threads
        want_pos, want_vel = self._serial_reference(nthreads)
        got_pos = runtime.debug_read_array(
            self.pos.addr(0), np.float64, 3 * self.n).reshape(self.n, 3)
        got_vel = runtime.debug_read_array(
            self.vel.addr(0), np.float64, 3 * self.n).reshape(self.n, 3)
        if not np.allclose(got_pos, want_pos, rtol=1e-9, atol=1e-12):
            raise ApplicationError("Water-Spatial positions diverge")
        if not np.allclose(got_vel, want_vel, rtol=1e-8, atol=1e-11):
            raise ApplicationError("Water-Spatial velocities diverge")
