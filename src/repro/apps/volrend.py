"""Volrend: SPLASH-2's volume renderer (paper dataset: "head").

Ray-casting with *dynamic task stealing*: image tiles are tasks handed
out through a lock-protected shared counter, so load balance is
emergent rather than static. The volume itself (a synthetic density
field standing in for the head CT dataset) is read-shared by everyone;
image tiles are written wherever the grabbing thread happens to run --
scattered writes over remote home pages plus high-frequency lock
traffic on the task queue, the combination that gives Volrend its
distinctive profile in the paper's figures.

The task-grab critical section follows the replay contract: the
grabbed tile id enters the persistent state *before* the release that
publishes the counter increment, so a recovered thread re-renders
exactly its in-flight tile (pure, idempotent writes) and no tile is
ever lost or double-grabbed.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppContext, Workload
from repro.errors import ApplicationError

#: Modelled CPU cost of casting one ray (sampling the volume), in us.
RAY_US = 40.0

TASK_LOCK = 0


class Volrend(Workload):
    """Tile-task ray casting over a shared synthetic volume."""

    name = "Volrend"

    def __init__(self, image_size: int = 16, tile: int = 4,
                 volume_size: int = 12, seed: int = 17) -> None:
        if image_size % tile:
            raise ApplicationError("image size must be a tile multiple")
        self.size = image_size
        self.tile = tile
        self.tiles_per_row = image_size // tile
        self.ntiles = self.tiles_per_row ** 2
        self.vsize = volume_size
        self.seed = seed
        self.volume = None
        self.image = None
        self.counter = None

    _ITEM = 8

    def required_pages(self, config) -> int:
        vol = self.vsize ** 3 * self._ITEM
        img = self.size * self.size * self._ITEM
        return 4 + (vol + img) // config.memory.page_size

    def setup(self, runtime) -> None:
        self.volume = runtime.alloc(
            "vol_data", self.vsize ** 3 * self._ITEM, home="block")
        self.image = runtime.alloc(
            "vol_image", self.size * self.size * self._ITEM, home="block")
        self.counter = runtime.alloc("vol_tasks", 8, home=0)

    def _volume_data(self) -> np.ndarray:
        """Synthetic 'head': a couple of gaussian blobs."""
        v = self.vsize
        grid = np.mgrid[0:v, 0:v, 0:v].astype(np.float64) / v
        x, y, z = grid
        blob1 = np.exp(-(((x - 0.5) ** 2 + (y - 0.45) ** 2
                          + (z - 0.5) ** 2) / 0.04))
        blob2 = 0.6 * np.exp(-(((x - 0.5) ** 2 + (y - 0.7) ** 2
                                + (z - 0.5) ** 2) / 0.01))
        return blob1 + blob2

    def init_kernel(self, ctx: AppContext):
        if ctx.tid == 0:
            data = self._volume_data().reshape(-1)
            yield from ctx.svm.write_array(self.volume.addr(0), data)
            yield from ctx.svm.write_i64(self.counter.addr(0), 0)
        return None

    # -- rendering -------------------------------------------------------------

    def _render_tile(self, volume: np.ndarray, tile_id: int) -> np.ndarray:
        """Cast one ray per pixel of the tile through the volume."""
        v = self.vsize
        ty, tx = divmod(tile_id, self.tiles_per_row)
        out = np.empty((self.tile, self.tile))
        for py in range(self.tile):
            for px in range(self.tile):
                iy = ty * self.tile + py
                ix = tx * self.tile + px
                # Orthographic ray along z at (ix, iy), front-to-back
                # compositing with absorption.
                gx = min(int(ix / self.size * v), v - 1)
                gy = min(int(iy / self.size * v), v - 1)
                acc = 0.0
                transparency = 1.0
                for gz in range(v):
                    sample = volume[gx, gy, gz]
                    acc += transparency * sample
                    transparency *= max(0.0, 1.0 - 0.3 * sample)
                    if transparency < 1e-3:
                        break
                out[py, px] = acc
        return out

    def _tile_addrs(self, tile_id: int):
        ty, tx = divmod(tile_id, self.tiles_per_row)
        for py in range(self.tile):
            row = ty * self.tile + py
            yield (self.image.addr(
                (row * self.size + tx * self.tile) * self._ITEM), py)

    def kernel(self, ctx: AppContext):
        raw = yield from ctx.svm.read_array(
            self.volume.addr(0), np.float64, self.vsize ** 3)
        volume = raw.reshape(self.vsize, self.vsize, self.vsize)

        while True:
            tile_id = ctx.state.get("cur_tile")
            if tile_id is None:
                yield from ctx.svm.acquire(TASK_LOCK)
                nxt = yield from ctx.svm.read_i64(self.counter.addr(0))
                if nxt >= self.ntiles:
                    yield from ctx.svm.release(TASK_LOCK)
                    break
                yield from ctx.svm.write_i64(self.counter.addr(0), nxt + 1)
                ctx.state["cur_tile"] = nxt  # before release: contract
                yield from ctx.svm.release(TASK_LOCK)
                tile_id = nxt
            yield from ctx.svm.compute(RAY_US * self.tile * self.tile)
            rendered = self._render_tile(volume, tile_id)
            for addr, py in self._tile_addrs(tile_id):
                yield from ctx.svm.write_array(addr, rendered[py])
            ctx.state["cur_tile"] = None
        yield from ctx.barrier(self.BARRIER_A)
        return None

    def verify(self, runtime) -> None:
        volume = self._volume_data()
        want = np.empty((self.size, self.size))
        for tile_id in range(self.ntiles):
            ty, tx = divmod(tile_id, self.tiles_per_row)
            want[ty * self.tile:(ty + 1) * self.tile,
                 tx * self.tile:(tx + 1) * self.tile] = \
                self._render_tile(volume, tile_id)
        got = runtime.debug_read_array(
            self.image.addr(0), np.float64,
            self.size * self.size).reshape(self.size, self.size)
        if not np.allclose(got, want, rtol=1e-12, atol=1e-12):
            raise ApplicationError("rendered image differs from the "
                                   "serial reference")
