"""FFT: SPLASH-2's six-step 1-D FFT (paper configuration: 1M points).

The n-point data set is laid out as a sqrt(n) x sqrt(n) complex matrix,
row blocks distributed across threads and homed at their owners
("owner computes"). Computation alternates local row FFTs with
all-to-all matrix transposes separated by barriers; there is no lock
synchronization.

Sharing characteristics reproduced (paper section 5.3):

* every write goes to pages whose (primary) home is the writer, so the
  base protocol sends *no* diffs, while the extended protocol diffs
  every written page twice -- FFT's dominant overhead source;
* communication happens in the transpose phases, where each thread
  reads every other thread's rows (whole-page fetches).

The arithmetic is real: the kernel performs the actual row/column FFTs
with numpy on bytes living in shared pages, and ``verify`` compares the
final result against ``numpy.fft.fft`` of the input.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppContext, Workload
from repro.errors import ApplicationError

#: Modelled CPU cost of one radix-2 butterfly stage element, in us.
#: Calibrated for a ~400 MHz processor (tens of ns per complex op).
COMPUTE_US_PER_POINT_LOG = 0.5
#: Modelled cost of the twiddle multiplication per element.
TWIDDLE_US_PER_POINT = 0.2


class FFT(Workload):
    """Six-step FFT over a sqrt(n) x sqrt(n) complex matrix."""

    name = "FFT"

    def __init__(self, points: int = 16384, seed: int = 42) -> None:
        side = int(round(points ** 0.5))
        if side * side != points or side & (side - 1):
            raise ApplicationError(
                "FFT needs a power-of-4 point count (n = side^2 with "
                f"power-of-two side); got {points}")
        self.n = points
        self.side = side
        self.seed = seed
        self.src = None
        self.dst = None

    # 16 bytes per complex128 element.
    _ITEM = 16

    def required_pages(self, config) -> int:
        bytes_needed = 2 * self.n * self._ITEM
        return 2 + bytes_needed // config.memory.page_size

    def _row_block(self, tid: int, nthreads: int) -> range:
        rows_per = self.side // nthreads
        lo = tid * rows_per
        hi = self.side if tid == nthreads - 1 else lo + rows_per
        return range(lo, hi)

    def setup(self, runtime) -> None:
        total = runtime.config.total_threads
        nodes = runtime.config.num_nodes
        nbytes = self.n * self._ITEM
        page_size = runtime.config.memory.page_size
        pages = -(-nbytes // page_size)

        def owner_home(page_index: int) -> int:
            # Home each page at the node of the thread owning its rows.
            row = page_index * page_size // (self.side * self._ITEM)
            rows_per = max(self.side // total, 1)
            tid = min(row // rows_per, total - 1)
            return tid % nodes

        self.src = runtime.alloc("fft_src", nbytes, home=owner_home)
        self.dst = runtime.alloc("fft_dst", nbytes, home=owner_home)

    def _row_addr(self, seg, row: int) -> int:
        return seg.addr(row * self.side * self._ITEM)

    def init_kernel(self, ctx: AppContext):
        rng = np.random.default_rng(self.seed + ctx.tid)
        rows = self._row_block(ctx.tid, ctx.nthreads)
        # Per-row draws keep the rng stream identical to the original
        # loop; the row block is contiguous, so one span write suffices.
        block = np.empty((len(rows), self.side), dtype=np.complex128)
        for bi in range(len(rows)):
            block[bi] = (rng.standard_normal(self.side)
                         + 1j * rng.standard_normal(self.side))
        yield from ctx.svm.write_array(
            self._row_addr(self.src, rows.start), block)
        return None

    def kernel(self, ctx: AppContext):
        import math
        rows = self._row_block(ctx.tid, ctx.nthreads)
        log_side = int(math.log2(self.side))

        # Step 1: transpose src -> dst (read others' columns).
        if ctx.pending("t1"):
            yield from self._transpose(ctx, self.src, self.dst)
            ctx.done("t1")
        yield from ctx.barrier(self.BARRIER_A)

        # Step 2+3: row FFTs on dst, then twiddle. The row block is
        # contiguous, so the whole phase is one span read, per-row
        # compute charges, and one span write-back (no other thread
        # touches these rows until the next barrier).
        if ctx.pending("fft1"):
            block = yield from ctx.svm.read_array(
                self._row_addr(self.dst, rows.start), np.complex128,
                len(rows) * self.side)
            block = block.reshape(len(rows), self.side)
            col = np.arange(self.side)
            for bi, row in enumerate(rows):
                yield from ctx.svm.compute(
                    COMPUTE_US_PER_POINT_LOG * self.side * log_side)
                out = np.fft.fft(block[bi])
                tw = np.exp(-2j * np.pi * row * col / self.n)
                yield from ctx.svm.compute(
                    TWIDDLE_US_PER_POINT * self.side)
                block[bi] = out * tw
            yield from ctx.svm.write_array(
                self._row_addr(self.dst, rows.start), block)
            ctx.done("fft1")
        yield from ctx.barrier(self.BARRIER_B)

        # Step 4: transpose dst -> src.
        if ctx.pending("t2"):
            yield from self._transpose(ctx, self.dst, self.src)
            ctx.done("t2")
        yield from ctx.barrier(self.BARRIER_C)

        # Step 5: row FFTs on src (same batched structure as fft1).
        if ctx.pending("fft2"):
            block = yield from ctx.svm.read_array(
                self._row_addr(self.src, rows.start), np.complex128,
                len(rows) * self.side)
            block = block.reshape(len(rows), self.side)
            for bi in range(len(rows)):
                yield from ctx.svm.compute(
                    COMPUTE_US_PER_POINT_LOG * self.side * log_side)
                block[bi] = np.fft.fft(block[bi])
            yield from ctx.svm.write_array(
                self._row_addr(self.src, rows.start), block)
            ctx.done("fft2")
        yield from ctx.barrier(3)

        # Step 6: final transpose src -> dst.
        if ctx.pending("t3"):
            yield from self._transpose(ctx, self.src, self.dst)
            ctx.done("t3")
        yield from ctx.barrier(4)
        return None

    def _transpose(self, ctx: AppContext, src, dst):
        """Write the transpose of ``src`` into our rows of ``dst``.

        Reads column slices (other threads' rows), writes only our own
        row block -- the owner-computes pattern that makes all FFT
        writes land on home pages.
        """
        my_rows = self._row_block(ctx.tid, ctx.nthreads)
        for other in range(ctx.nthreads):
            src_rows = self._row_block(other, ctx.nthreads)
            # Gather src[src_rows, my_rows] and scatter transposed.
            block = np.empty((len(src_rows), len(my_rows)),
                             dtype=np.complex128)
            for bi, srow in enumerate(src_rows):
                addr = (self._row_addr(src, srow)
                        + my_rows.start * self._ITEM)
                row_slice = yield from ctx.svm.read_array(
                    addr, np.complex128, len(my_rows))
                block[bi] = row_slice
            yield from ctx.svm.compute(0.2 * block.size)
            for bi, drow in enumerate(my_rows):
                addr = (self._row_addr(dst, drow)
                        + src_rows.start * self._ITEM)
                yield from ctx.svm.write_array(addr, block[:, bi].copy())
        return None

    def verify(self, runtime) -> None:
        # Reconstruct the input deterministically and compare with the
        # 2-D decomposition result: the six-step algorithm computes the
        # full 1-D FFT of the row-major input.
        total = runtime.config.total_threads
        side = self.side
        matrix = np.empty((side, side), dtype=np.complex128)
        for tid in range(total):
            rng = np.random.default_rng(self.seed + tid)
            for row in self._row_block(tid, total):
                matrix[row] = (rng.standard_normal(side)
                               + 1j * rng.standard_normal(side))
        expected = np.fft.fft(matrix.reshape(-1))
        got = runtime.debug_read_array(
            self.dst.addr(0), np.complex128, self.n)
        # The sixth (final) transpose restores natural order: dst read
        # row-major is exactly the 1-D FFT of the row-major input.
        if not np.allclose(got, expected, rtol=1e-9, atol=1e-9):
            raise ApplicationError("FFT result does not match numpy.fft")
