"""Ocean: nearest-neighbour stencil relaxation (SPLASH-2's Ocean
family, the canonical DSM boundary-exchange pattern).

Not part of the paper's six evaluated applications, but the missing
sharing pattern in that suite: a red-black Gauss-Seidel relaxation on
a 2-D grid with row-band decomposition. Each thread updates its own
band (owner-computes, home pages) and reads only the two *boundary
rows* of its neighbours each sweep -- so unlike FFT's all-to-all
transposes, communication is O(perimeter) while computation is
O(area). Under the extended protocol this is the best case the
dual-home design can hope for: almost all diffs are home pages, and
the per-sweep communication is two rows per thread.

Red-black ordering makes the parallel update order-independent, so the
result is verified bit-exactly against a serial sweep.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppContext, Workload
from repro.errors import ApplicationError

#: Modelled CPU cost of relaxing one grid point.
POINT_US = 0.15


class Ocean(Workload):
    """Red-black SOR relaxation with band decomposition."""

    name = "Ocean"

    def __init__(self, n: int = 32, sweeps: int = 4,
                 omega: float = 1.0, seed: int = 31) -> None:
        self.n = n
        self.sweeps = sweeps
        self.omega = omega
        self.seed = seed
        self.grid = None

    _ITEM = 8

    def required_pages(self, config) -> int:
        return 2 + self.n * self.n * self._ITEM \
            // config.memory.page_size

    def _rows(self, tid: int, nthreads: int) -> range:
        """Interior rows owned by thread ``tid`` (rows 1..n-2)."""
        interior = self.n - 2
        per = interior // nthreads
        lo = 1 + tid * per
        hi = self.n - 1 if tid == nthreads - 1 else lo + per
        return range(lo, hi)

    def _row_addr(self, row: int) -> int:
        return self.grid.addr(row * self.n * self._ITEM)

    def setup(self, runtime) -> None:
        total = runtime.config.total_threads
        nodes = runtime.config.num_nodes
        page_size = runtime.config.memory.page_size
        row_bytes = self.n * self._ITEM

        def band_home(page_index: int) -> int:
            row = page_index * page_size // row_bytes
            for tid in range(total):
                rows = self._rows(tid, total)
                if row in rows or (tid == 0 and row < rows.start) or \
                        (tid == total - 1 and row >= rows.stop):
                    return tid % nodes
            return 0

        self.grid = runtime.alloc("ocean_grid",
                                  self.n * self.n * self._ITEM,
                                  home=band_home)

    def _initial_grid(self) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        grid = rng.uniform(0.0, 1.0, size=(self.n, self.n))
        # Fixed boundary conditions.
        grid[0, :] = 1.0
        grid[-1, :] = 0.0
        grid[:, 0] = 0.5
        grid[:, -1] = 0.5
        return grid

    def init_kernel(self, ctx: AppContext):
        grid = self._initial_grid()
        rows = self._rows(ctx.tid, ctx.nthreads)
        start = 0 if ctx.tid == 0 else rows.start
        stop = self.n if ctx.tid == ctx.nthreads - 1 else rows.stop
        # Rows are contiguous in the flat grid: one batched span write
        # instead of a per-row loop.
        yield from ctx.svm.write_array(self._row_addr(start),
                                       grid[start:stop])
        return None

    @staticmethod
    def _relax_row(above, row, below, colour, row_index, omega):
        """One red-black half-sweep of one row (pure numpy)."""
        out = row.copy()
        start = 1 + ((row_index + colour) % 2)
        idx = np.arange(start, len(row) - 1, 2)
        if len(idx):
            neighbours = (above[idx] + below[idx]
                          + row[idx - 1] + row[idx + 1]) / 4.0
            out[idx] = (1 - omega) * row[idx] + omega * neighbours
        return out

    def kernel(self, ctx: AppContext):
        rows = self._rows(ctx.tid, ctx.nthreads)
        for sweep in ctx.range("sweep", self.sweeps):
            for colour in (0, 1):
                if ctx.pending(("half", sweep, colour)):
                    # Read our band plus one halo row on each side,
                    # compute the half-sweep, write back our rows.
                    halo_lo = rows.start - 1
                    halo_hi = rows.stop + 1
                    raw = yield from ctx.svm.read_array(
                        self._row_addr(halo_lo), np.float64,
                        (halo_hi - halo_lo) * self.n)
                    band = raw.reshape(halo_hi - halo_lo, self.n)
                    yield from ctx.svm.compute(
                        POINT_US * len(rows) * self.n / 2)
                    for row in rows:
                        local = row - halo_lo
                        band[local] = self._relax_row(
                            band[local - 1], band[local],
                            band[local + 1], colour, row, self.omega)
                    # A colour-c update reads only colour-(1-c)
                    # neighbours, so updating ``band`` in place and
                    # writing the whole contiguous band back in one
                    # span is value-identical to the per-row loop.
                    yield from ctx.svm.write_array(
                        self._row_addr(rows.start),
                        band[rows.start - halo_lo:rows.stop - halo_lo])
                    ctx.done(("half", sweep, colour))
                yield from ctx.barrier(self.BARRIER_A,
                                       key=(sweep, colour))
        return None

    # -- verification --------------------------------------------------------

    def _serial_reference(self, nthreads: int) -> np.ndarray:
        grid = self._initial_grid()
        for _sweep in range(self.sweeps):
            for colour in (0, 1):
                for row in range(1, self.n - 1):
                    # In-place is exact: a colour-c update reads only
                    # colour-(1-c) neighbours, untouched this half.
                    grid[row] = self._relax_row(
                        grid[row - 1], grid[row], grid[row + 1],
                        colour, row, self.omega)
        return grid

    def verify(self, runtime) -> None:
        total = runtime.config.total_threads
        want = self._serial_reference(total)
        got = runtime.debug_read_array(
            self.grid.addr(0), np.float64,
            self.n * self.n).reshape(self.n, self.n)
        if not np.allclose(got, want, rtol=1e-12, atol=1e-12):
            raise ApplicationError("Ocean grid diverges from the "
                                   "serial red-black reference")
