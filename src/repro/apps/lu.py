"""LU: SPLASH-2's blocked dense LU factorization, contiguous layout
(paper configuration: 1024x1024 matrix).

The matrix is split into b x b blocks, each stored contiguously (the
"contiguous blocks" variant) and assigned to threads in a 2-D scatter;
every block is homed at its owner's node. Each elimination step runs
diagonal factorization, perimeter updates, and interior updates,
separated by barriers; there is no lock synchronization.

Like FFT, all writes go to the writer's own home pages: the base
protocol never diffs, the extended protocol diffs everything twice --
the paper reports the home-page diffing as roughly half of LU's total
overhead and the largest barrier-time blow-up in the SMP configuration.

The factorization is real (numpy block operations on shared bytes
without pivoting -- the generated matrix is made diagonally dominant),
and ``verify`` checks ||L*U - A|| is small.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppContext, Workload
from repro.errors import ApplicationError

#: Modelled cost of one fused multiply-add at ~400 MHz, in us.
FLOP_US = 0.04


class LU(Workload):
    """Blocked right-looking LU without pivoting."""

    name = "LU"

    def __init__(self, n: int = 128, block: int = 16, seed: int = 7) -> None:
        if n % block:
            raise ApplicationError("matrix size must be a multiple of the "
                                   "block size")
        self.n = n
        self.b = block
        self.nb = n // block  # blocks per dimension
        self.seed = seed
        self.seg = None

    _ITEM = 8  # float64

    def required_pages(self, config) -> int:
        return 2 + (self.n * self.n * self._ITEM
                    ) // config.memory.page_size

    # -- ownership ---------------------------------------------------------

    def owner(self, bi: int, bj: int, nthreads: int) -> int:
        """2-D scatter decomposition of blocks onto threads."""
        pr = 1
        while (pr * 2) * (pr * 2) <= nthreads:
            pr *= 2
        pc = nthreads // pr
        return (bi % pr) * pc + (bj % pc)

    def _block_index(self, bi: int, bj: int) -> int:
        return bi * self.nb + bj

    def _block_addr(self, bi: int, bj: int) -> int:
        return self.seg.addr(self._block_index(bi, bj)
                             * self.b * self.b * self._ITEM)

    def setup(self, runtime) -> None:
        total = runtime.config.total_threads
        nodes = runtime.config.num_nodes
        block_bytes = self.b * self.b * self._ITEM
        page_size = runtime.config.memory.page_size

        def home(page_index: int) -> int:
            block = page_index * page_size // block_bytes
            block = min(block, self.nb * self.nb - 1)
            bi, bj = divmod(block, self.nb)
            return self.owner(bi, bj, total) % nodes

        self.seg = runtime.alloc("lu_blocks",
                                 self.nb * self.nb * block_bytes,
                                 home=home)

    def _matrix(self) -> np.ndarray:
        """The deterministic input matrix (diagonally dominant)."""
        rng = np.random.default_rng(self.seed)
        a = rng.standard_normal((self.n, self.n))
        a += np.eye(self.n) * self.n
        return a

    def init_kernel(self, ctx: AppContext):
        a = self._matrix()
        for bi in range(self.nb):
            for bj in range(self.nb):
                if self.owner(bi, bj, ctx.nthreads) != ctx.tid:
                    continue
                block = a[bi * self.b:(bi + 1) * self.b,
                          bj * self.b:(bj + 1) * self.b]
                yield from ctx.svm.write_array(
                    self._block_addr(bi, bj), np.ascontiguousarray(block))
        return None

    # -- kernel ------------------------------------------------------------

    def _read_block(self, ctx, bi, bj):
        flat = yield from ctx.svm.read_array(
            self._block_addr(bi, bj), np.float64, self.b * self.b)
        return flat.reshape(self.b, self.b)

    def _write_block(self, ctx, bi, bj, data):
        yield from ctx.svm.write_array(self._block_addr(bi, bj),
                                       np.ascontiguousarray(data))
        return None

    def kernel(self, ctx: AppContext):
        b = self.b
        for k in ctx.range("k", self.nb):
            # Phase 1: factor the diagonal block (its owner only).
            if self.owner(k, k, ctx.nthreads) == ctx.tid \
                    and ctx.pending(("diag", k)):
                akk = yield from self._read_block(ctx, k, k)
                yield from ctx.svm.compute(FLOP_US * (b ** 3) / 3)
                for col in range(b):
                    akk[col + 1:, col] /= akk[col, col]
                    akk[col + 1:, col + 1:] -= np.outer(
                        akk[col + 1:, col], akk[col, col + 1:])
                yield from self._write_block(ctx, k, k, akk)
                ctx.done(("diag", k))
            yield from ctx.barrier(self.BARRIER_A, key=k)

            # Phase 2: perimeter row and column blocks.
            if ctx.pending(("perim", k)):
                akk = yield from self._read_block(ctx, k, k)
                lower = np.tril(akk, -1) + np.eye(b)
                upper = np.triu(akk)
                for j in range(k + 1, self.nb):
                    if self.owner(k, j, ctx.nthreads) == ctx.tid:
                        akj = yield from self._read_block(ctx, k, j)
                        yield from ctx.svm.compute(FLOP_US * b ** 3 / 2)
                        akj = np.linalg.solve(lower, akj)
                        yield from self._write_block(ctx, k, j, akj)
                for i in range(k + 1, self.nb):
                    if self.owner(i, k, ctx.nthreads) == ctx.tid:
                        aik = yield from self._read_block(ctx, i, k)
                        yield from ctx.svm.compute(FLOP_US * b ** 3 / 2)
                        aik = np.linalg.solve(upper.T, aik.T).T
                        yield from self._write_block(ctx, i, k, aik)
                ctx.done(("perim", k))
            yield from ctx.barrier(self.BARRIER_B, key=k)

            # Phase 3: interior updates A[i,j] -= A[i,k] @ A[k,j].
            if ctx.pending(("inner", k)):
                for i in range(k + 1, self.nb):
                    for j in range(k + 1, self.nb):
                        if self.owner(i, j, ctx.nthreads) != ctx.tid:
                            continue
                        aik = yield from self._read_block(ctx, i, k)
                        akj = yield from self._read_block(ctx, k, j)
                        aij = yield from self._read_block(ctx, i, j)
                        yield from ctx.svm.compute(FLOP_US * 2 * b ** 3)
                        aij -= aik @ akj
                        yield from self._write_block(ctx, i, j, aij)
                ctx.done(("inner", k))
            yield from ctx.barrier(self.BARRIER_C, key=k)

            # Reset this step's phase markers so the ids can be reused
            # next step (their epoch is implied by k).
        return None

    def verify(self, runtime) -> None:
        n, b = self.n, self.b
        result = np.empty((n, n))
        for bi in range(self.nb):
            for bj in range(self.nb):
                flat = runtime.debug_read_array(
                    self._block_addr(bi, bj), np.float64, b * b)
                result[bi * b:(bi + 1) * b,
                       bj * b:(bj + 1) * b] = flat.reshape(b, b)
        lower = np.tril(result, -1) + np.eye(n)
        upper = np.triu(result)
        original = self._matrix()
        residual = np.abs(lower @ upper - original).max()
        if residual > 1e-6 * n:
            raise ApplicationError(
                f"LU residual too large: {residual:.3e}")
