"""Shared resources for simulated processes.

Three primitives cover every need in the library:

* :class:`Mutex` -- FIFO mutual exclusion (intra-node protocol locks,
  serialized releases).
* :class:`Resource` -- counted capacity with FIFO queuing (memory-bus
  and DMA-engine occupancy).
* :class:`Store` -- an unbounded-or-bounded FIFO of items (NIC post
  queues, message delivery queues).

All waiting is expressed through :class:`~repro.sim.process.Event`
objects, so ``yield mutex.acquire()`` reads naturally inside process
generators.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.errors import SimulationError
from repro.sim._core import Event
from repro.sim.engine import Engine

#: Shared, permanently-settled grant event. Every uncontended
#: ``Mutex.acquire``/``Resource.acquire`` and every accepted
#: ``Store.put`` settles with ``succeed(None)`` before the caller can
#: observe it, so they can all hand back one immortal pre-settled event
#: instead of allocating a fresh one -- tens of thousands of Event
#: objects per application run. A process yielding it takes the settled
#: fast path (same event-list slot as a fresh settled event, so event
#: order is bit-identical); it is never parked on, so diagnostics that
#: decode *pending* events never see it.
_GRANTED = Event(None, "granted")
_GRANTED.succeed(None)

#: Sentinel returned by :meth:`Store.get_nowait` on an empty store
#: (``None`` is a legitimate stored item).
EMPTY = object()


class Mutex:
    """FIFO mutual exclusion lock for simulated processes.

    ``yield mutex.acquire()`` suspends until the lock is granted;
    ``mutex.release()`` hands it to the next waiter (immediately, at the
    current simulated time).
    """

    def __init__(self, engine: Engine, name: str = "mutex") -> None:
        self.engine = engine
        self.name = name
        self._acquire_name = name + ".acquire"
        self._locked = False
        self._waiters: Deque[Event] = deque()

    @property
    def locked(self) -> bool:
        return self._locked

    def acquire(self) -> Event:
        if not self._locked:
            self._locked = True
            return _GRANTED
        ev = Event(self.engine, self._acquire_name)
        self._waiters.append(ev)
        return ev

    def try_acquire(self) -> bool:
        """Non-blocking acquire; returns True on success."""
        if self._locked:
            return False
        self._locked = True
        return True

    def release(self) -> None:
        if not self._locked:
            raise SimulationError(f"release of unlocked mutex {self.name!r}")
        if self._waiters:
            self._waiters.popleft().succeed(None)
        else:
            self._locked = False


class Resource:
    """Counted resource with FIFO queuing.

    Used for occupancy modelling: a DMA engine is ``Resource(capacity=1)``,
    a memory bus that admits one transfer at a time likewise. Usage::

        yield bus.acquire()
        try:
            yield Delay(transfer_time)
        finally:
            bus.release()
    """

    def __init__(self, engine: Engine, capacity: int = 1,
                 name: str = "resource") -> None:
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1: {capacity}")
        self.engine = engine
        self.name = name
        self._acquire_name = name + ".acquire"
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Event:
        if self._in_use < self.capacity:
            self._in_use += 1
            return _GRANTED
        ev = Event(self.engine, self._acquire_name)
        self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._waiters:
            self._waiters.popleft().succeed(None)
        else:
            self._in_use -= 1


class Store:
    """FIFO store of items with optional bounded capacity.

    ``put`` returns an event that succeeds once the item is accepted
    (immediately if there is room, otherwise when space frees up --
    this is the NIC post-queue back-pressure the paper describes).
    ``get`` returns an event that succeeds with the oldest item.
    """

    def __init__(self, engine: Engine, capacity: Optional[int] = None,
                 name: str = "store") -> None:
        if capacity is not None and capacity < 1:
            raise SimulationError(f"store capacity must be >= 1: {capacity}")
        self.engine = engine
        self.name = name
        self._put_name = name + ".put"
        self._get_name = name + ".get"
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def put(self, item: Any) -> Event:
        if self._getters:
            # Hand the item straight to the oldest waiting getter.
            self._getters.popleft().succeed(item)
            return _GRANTED
        if not self.is_full:
            self._items.append(item)
            return _GRANTED
        ev = Event(self.engine, self._put_name)
        self._putters.append((ev, item))
        return ev

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False when the store is full."""
        if self._getters:
            self._getters.popleft().succeed(item)
            return True
        if self.is_full:
            return False
        self._items.append(item)
        return True

    def get(self) -> Event:
        ev = Event(self.engine, self._get_name)
        if self._items:
            ev.succeed(self._items.popleft())
            self._admit_putter()
        else:
            self._getters.append(ev)
        return ev

    def get_nowait(self) -> Any:
        """Pop the oldest item, or :data:`EMPTY` when none is queued.

        Mutates exactly as a ``get()`` whose event settles immediately
        would (including waking one blocked putter), so hot consumer
        loops can skip the Event allocation and only fall back to
        ``yield get()`` on an empty store.
        """
        if self._items:
            item = self._items.popleft()
            self._admit_putter()
            return item
        return EMPTY

    def _admit_putter(self) -> None:
        if self._putters and not self.is_full:
            put_ev, item = self._putters.popleft()
            self._items.append(item)
            put_ev.succeed(None)

    def drain(self) -> list[Any]:
        """Remove and return all queued items (used at node failure)."""
        items = list(self._items)
        self._items.clear()
        while self._putters:
            self._admit_putter()
        return items
