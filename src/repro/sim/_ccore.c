/* Accelerated simulation core: Engine, Event, Process, Delay in C.
 *
 * This is a hand-written CPython extension mirroring the pure-Python
 * reference implementation in repro/sim/engine.py and
 * repro/sim/process.py.  The contract is *bit-identical simulated
 * behaviour*: scheduler entries are the same [time, priority, seq,
 * action] Python lists (so cancellation handles interoperate), the
 * fifo/heap merge uses the same (time, priority, seq) total order, and
 * the process trampoline implements the identical settled-event
 * policy (settled successes feed straight back into the generator;
 * settled failures take the scheduled throw path).  Anything observable
 * from simulated code -- event ordering, timestamps, callback order,
 * exception types and messages -- must match the pure path exactly;
 * the test suite pins this with golden trace digests and same-seed
 * fault sweeps run under both builds.
 *
 * Selection happens in repro/sim/_core.py: the compiled module is
 * used when importable unless REPRO_PURE=1 forces the reference path.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>

/* Priorities -- must match repro/sim/engine.py. */
#define PRIO_URGENT 0
#define PRIO_NORMAL 10
#define PRIO_LATE 20

static PyObject *SimulationError;   /* repro.errors.SimulationError */
static PyObject *ProcessKilledExc;  /* repro.sim.process.ProcessKilled */
static PyObject *InterruptedExc;    /* repro.sim.process.Interrupted */
static PyObject *str_throw, *str_value, *str_send;

static PyTypeObject EngineType;
static PyTypeObject EventType;
static PyTypeObject ProcessType;
static PyTypeObject DelayType;
static PyTypeObject MetronomeType;

/* ------------------------------------------------------------------ */
/* Delay                                                               */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    double duration;
} DelayObject;

static int
Delay_init(DelayObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"duration", NULL};
    PyObject *dur;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O", kwlist, &dur))
        return -1;
    double d = PyFloat_AsDouble(dur);
    if (d == -1.0 && PyErr_Occurred())
        return -1;
    if (d < 0) {
        PyErr_Format(SimulationError, "negative delay: %S", dur);
        return -1;
    }
    self->duration = d;
    return 0;
}

static PyMemberDef Delay_members[] = {
    {"duration", T_DOUBLE, offsetof(DelayObject, duration), 0,
     "suspend the current process for this much simulated time"},
    {NULL}
};

static PyTypeObject DelayType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._ccore.Delay",
    .tp_basicsize = sizeof(DelayObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_BASETYPE,
    .tp_doc = "Yieldable: suspend the current process for ``duration`` time.",
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)Delay_init,
    .tp_members = Delay_members,
};

/* ------------------------------------------------------------------ */
/* Engine: event list (binary heap + zero-delay ring) and clock        */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    PyObject *heap;            /* PyList of [time, prio, seq, action] lists */
    PyObject **fifo;           /* ring buffer of owned entry refs */
    Py_ssize_t fifo_cap, fifo_head, fifo_len;
    long long seq;
    double now;
    int running;
    long long events_executed;
} EngineObject;

/* Strict (time, priority, seq) < compare; seq is unique so the action
 * slot is never reached -- identical to the pure list compare. */
static int
entry_lt(PyObject *a, PyObject *b)
{
    PyObject *ta = PyList_GET_ITEM(a, 0), *tb = PyList_GET_ITEM(b, 0);
    if (PyFloat_CheckExact(ta) && PyFloat_CheckExact(tb)) {
        double fa = PyFloat_AS_DOUBLE(ta), fb = PyFloat_AS_DOUBLE(tb);
        if (fa != fb)
            return fa < fb;
        long pa = PyLong_AsLong(PyList_GET_ITEM(a, 1));
        long pb = PyLong_AsLong(PyList_GET_ITEM(b, 1));
        if (pa != pb)
            return pa < pb;
        long long sa = PyLong_AsLongLong(PyList_GET_ITEM(a, 2));
        long long sb = PyLong_AsLongLong(PyList_GET_ITEM(b, 2));
        return sa < sb;
    }
    /* Foreign entry shape: fall back to the generic list compare the
     * pure heap would have used (still deterministic). */
    return PyObject_RichCompareBool(a, b, Py_LT) == 1;
}

/* -- ring buffer (zero-delay PRIORITY_NORMAL entries) -------------- */

static int
ring_grow(EngineObject *e)
{
    Py_ssize_t newcap = e->fifo_cap ? e->fifo_cap * 2 : 64;
    PyObject **buf = PyMem_New(PyObject *, newcap);
    if (buf == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    for (Py_ssize_t i = 0; i < e->fifo_len; i++)
        buf[i] = e->fifo[(e->fifo_head + i) % e->fifo_cap];
    PyMem_Free(e->fifo);
    e->fifo = buf;
    e->fifo_cap = newcap;
    e->fifo_head = 0;
    return 0;
}

static int
ring_push(EngineObject *e, PyObject *entry)   /* increfs entry */
{
    if (e->fifo_len == e->fifo_cap && ring_grow(e) < 0)
        return -1;
    Py_INCREF(entry);
    e->fifo[(e->fifo_head + e->fifo_len) % e->fifo_cap] = entry;
    e->fifo_len++;
    return 0;
}

static PyObject *
ring_pop(EngineObject *e)                     /* returns owned ref */
{
    PyObject *entry = e->fifo[e->fifo_head];
    e->fifo_head = (e->fifo_head + 1) % e->fifo_cap;
    e->fifo_len--;
    return entry;
}

#define RING_PEEK(e) ((e)->fifo[(e)->fifo_head])

/* -- binary heap on a PyList (same order as heapq) ----------------- */

static void
heap_siftdown(PyObject *heap, Py_ssize_t startpos, Py_ssize_t pos)
{
    PyObject *newitem = PyList_GET_ITEM(heap, pos);
    while (pos > startpos) {
        Py_ssize_t parentpos = (pos - 1) >> 1;
        PyObject *parent = PyList_GET_ITEM(heap, parentpos);
        if (!entry_lt(newitem, parent))
            break;
        PyList_SET_ITEM(heap, pos, parent);
        pos = parentpos;
    }
    PyList_SET_ITEM(heap, pos, newitem);
}

static void
heap_siftup(PyObject *heap, Py_ssize_t pos)
{
    Py_ssize_t endpos = PyList_GET_SIZE(heap);
    Py_ssize_t startpos = pos;
    PyObject *newitem = PyList_GET_ITEM(heap, pos);
    Py_ssize_t childpos = 2 * pos + 1;
    while (childpos < endpos) {
        Py_ssize_t rightpos = childpos + 1;
        if (rightpos < endpos &&
            !entry_lt(PyList_GET_ITEM(heap, childpos),
                      PyList_GET_ITEM(heap, rightpos)))
            childpos = rightpos;
        PyList_SET_ITEM(heap, pos, PyList_GET_ITEM(heap, childpos));
        pos = childpos;
        childpos = 2 * pos + 1;
    }
    PyList_SET_ITEM(heap, pos, newitem);
    heap_siftdown(heap, startpos, pos);
}

static int
heap_push(EngineObject *e, PyObject *entry)   /* increfs entry */
{
    if (PyList_Append(e->heap, entry) < 0)
        return -1;
    heap_siftdown(e->heap, 0, PyList_GET_SIZE(e->heap) - 1);
    return 0;
}

static PyObject *
heap_pop(EngineObject *e)                     /* returns owned ref */
{
    PyObject *heap = e->heap;
    Py_ssize_t n = PyList_GET_SIZE(heap) - 1;
    /* Steal the last item, shrink in place. */
    PyObject *last = PyList_GET_ITEM(heap, n);
    Py_INCREF(last);
    if (PyList_SetSlice(heap, n, n + 1, NULL) < 0) {
        Py_DECREF(last);
        return NULL;
    }
    if (n == 0)
        return last;
    PyObject *ret = PyList_GET_ITEM(heap, 0);   /* steal slot 0 */
    PyList_SET_ITEM(heap, 0, last);
    heap_siftup(heap, 0);
    return ret;
}

/* -- entry construction -------------------------------------------- */

static PyObject *
make_entry(EngineObject *e, double time, long priority, PyObject *action)
{
    PyObject *entry = PyList_New(4);
    if (entry == NULL)
        return NULL;
    PyObject *t = PyFloat_FromDouble(time);
    PyObject *p = PyLong_FromLong(priority);
    PyObject *s = PyLong_FromLongLong(e->seq++);
    if (t == NULL || p == NULL || s == NULL) {
        Py_XDECREF(t); Py_XDECREF(p); Py_XDECREF(s); Py_DECREF(entry);
        return NULL;
    }
    PyList_SET_ITEM(entry, 0, t);
    PyList_SET_ITEM(entry, 1, p);
    PyList_SET_ITEM(entry, 2, s);
    Py_INCREF(action);
    PyList_SET_ITEM(entry, 3, action);
    return entry;
}

/* schedule_now: zero-delay PRIORITY_NORMAL entry onto the ring.
 * Returns an owned ref to the entry (the ring holds its own). */
static PyObject *
engine_schedule_now_entry(EngineObject *e, PyObject *action)
{
    PyObject *entry = make_entry(e, e->now, PRIO_NORMAL, action);
    if (entry == NULL)
        return NULL;
    if (ring_push(e, entry) < 0) {
        Py_DECREF(entry);
        return NULL;
    }
    return entry;
}

/* General schedule.  Returns owned ref. */
static PyObject *
engine_schedule_entry(EngineObject *e, double delay, PyObject *action,
                      long priority)
{
    PyObject *entry = make_entry(e, e->now + delay, priority, action);
    if (entry == NULL)
        return NULL;
    int err = (delay == 0.0 && priority == PRIO_NORMAL)
                  ? ring_push(e, entry)
                  : heap_push(e, entry);
    if (err < 0) {
        Py_DECREF(entry);
        return NULL;
    }
    return entry;
}

/* ------------------------------------------------------------------ */
/* Event                                                               */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    PyObject *engine;     /* Engine (or None for shared grants) */
    PyObject *name;       /* str */
    PyObject *callbacks;  /* NULL or PyList; items are callables or
                             parked Process objects (woken inline) */
    PyObject *value;
    char settled, ok;
} EventObject;

typedef struct ProcessObject ProcessObject;
static int process_wake(ProcessObject *proc, EventObject *ev);

static int
Event_init(EventObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"engine", "name", NULL};
    PyObject *engine, *name = NULL;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O|U", kwlist,
                                     &engine, &name))
        return -1;
    Py_INCREF(engine);
    Py_XSETREF(self->engine, engine);
    if (name == NULL) {
        name = PyUnicode_InternFromString("event");
        if (name == NULL)
            return -1;
    }
    else
        Py_INCREF(name);
    Py_XSETREF(self->name, name);
    Py_CLEAR(self->callbacks);
    Py_CLEAR(self->value);
    self->settled = 0;
    self->ok = 0;
    return 0;
}

/* Run the settle callbacks; callbacks list already detached. */
static int
event_run_callbacks(EventObject *self, PyObject *cbs)
{
    if (cbs == NULL)
        return 0;
    Py_ssize_t n = PyList_GET_SIZE(cbs);
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *cb = PyList_GET_ITEM(cbs, i);
        if (Py_TYPE(cb) == &ProcessType) {
            if (process_wake((ProcessObject *)cb, self) < 0) {
                Py_DECREF(cbs);
                return -1;
            }
        }
        else {
            PyObject *r = PyObject_CallOneArg(cb, (PyObject *)self);
            if (r == NULL) {
                Py_DECREF(cbs);
                return -1;
            }
            Py_DECREF(r);
        }
    }
    Py_DECREF(cbs);
    return 0;
}

static int
event_settle(EventObject *self, int ok, PyObject *value)
{
    if (self->settled) {
        PyErr_Format(SimulationError, "event %R settled twice", self->name);
        return -1;
    }
    self->settled = 1;
    self->ok = (char)ok;
    Py_INCREF(value);
    Py_XSETREF(self->value, value);
    PyObject *cbs = self->callbacks;
    self->callbacks = NULL;
    return event_run_callbacks(self, cbs);
}

static PyObject *
Event_succeed(EventObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs > 1) {
        PyErr_SetString(PyExc_TypeError,
                        "succeed() takes at most 1 argument");
        return NULL;
    }
    PyObject *value = nargs ? args[0] : Py_None;
    if (event_settle(self, 1, value) < 0)
        return NULL;
    Py_INCREF(self);
    return (PyObject *)self;
}

static PyObject *
Event_fail(EventObject *self, PyObject *exc)
{
    if (event_settle(self, 0, exc) < 0)
        return NULL;
    Py_INCREF(self);
    return (PyObject *)self;
}

static PyObject *
Event_add_callback(EventObject *self, PyObject *cb)
{
    if (self->settled) {
        PyObject *r = PyObject_CallOneArg(cb, (PyObject *)self);
        if (r == NULL)
            return NULL;
        Py_DECREF(r);
        Py_RETURN_NONE;
    }
    if (self->callbacks == NULL) {
        self->callbacks = PyList_New(0);
        if (self->callbacks == NULL)
            return NULL;
    }
    if (PyList_Append(self->callbacks, cb) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
Event_discard_callback(EventObject *self, PyObject *cb)
{
    PyObject *cbs = self->callbacks;
    if (cbs != NULL) {
        Py_ssize_t n = PyList_GET_SIZE(cbs);
        for (Py_ssize_t i = 0; i < n; i++) {
            int eq = PyObject_RichCompareBool(PyList_GET_ITEM(cbs, i), cb,
                                              Py_EQ);
            if (eq < 0)
                return NULL;
            if (eq) {
                if (PyList_SetSlice(cbs, i, i + 1, NULL) < 0)
                    return NULL;
                break;
            }
        }
    }
    Py_RETURN_NONE;
}

/* Park a process on an unsettled event (no bound-method allocation). */
static int
event_add_waiter(EventObject *self, PyObject *proc)
{
    if (self->callbacks == NULL) {
        self->callbacks = PyList_New(0);
        if (self->callbacks == NULL)
            return -1;
    }
    return PyList_Append(self->callbacks, proc);
}

static PyObject *
Event_get_triggered(EventObject *self, void *closure)
{
    return PyBool_FromLong(self->settled && self->ok);
}

static PyObject *
Event_get_failed(EventObject *self, void *closure)
{
    return PyBool_FromLong(self->settled && !self->ok);
}

static PyObject *
Event_get_settled(EventObject *self, void *closure)
{
    return PyBool_FromLong(self->settled);
}

static PyObject *
Event_get_ok(EventObject *self, void *closure)
{
    return PyBool_FromLong(self->ok);
}

static PyObject *
Event_get_value(EventObject *self, void *closure)
{
    if (!self->settled) {
        PyErr_Format(SimulationError, "event %R has not settled",
                     self->name);
        return NULL;
    }
    PyObject *v = self->value ? self->value : Py_None;
    Py_INCREF(v);
    return v;
}

static PyObject *
Event_get_raw_value(EventObject *self, void *closure)
{
    PyObject *v = self->value ? self->value : Py_None;
    Py_INCREF(v);
    return v;
}

static int
Event_traverse(EventObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->engine);
    Py_VISIT(self->name);
    Py_VISIT(self->callbacks);
    Py_VISIT(self->value);
    return 0;
}

static int
Event_clear(EventObject *self)
{
    Py_CLEAR(self->engine);
    Py_CLEAR(self->name);
    Py_CLEAR(self->callbacks);
    Py_CLEAR(self->value);
    return 0;
}

static void
Event_dealloc(EventObject *self)
{
    PyObject_GC_UnTrack(self);
    Event_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyMethodDef Event_methods[] = {
    {"succeed", (PyCFunction)Event_succeed, METH_FASTCALL,
     "Settle the event successfully with ``value`` (default None)."},
    {"fail", (PyCFunction)Event_fail, METH_O,
     "Settle the event with an exception."},
    {"add_callback", (PyCFunction)Event_add_callback, METH_O,
     "Register ``cb(event)``; called immediately if already settled."},
    {"discard_callback", (PyCFunction)Event_discard_callback, METH_O,
     "Remove a previously registered callback (no-op when absent)."},
    {NULL}
};

static PyMemberDef Event_members[] = {
    {"engine", T_OBJECT, offsetof(EventObject, engine), READONLY, NULL},
    {"name", T_OBJECT, offsetof(EventObject, name), READONLY, NULL},
    {NULL}
};

static PyGetSetDef Event_getset[] = {
    {"triggered", (getter)Event_get_triggered, NULL, NULL, NULL},
    {"failed", (getter)Event_get_failed, NULL, NULL, NULL},
    {"settled", (getter)Event_get_settled, NULL, NULL, NULL},
    {"value", (getter)Event_get_value, NULL, NULL, NULL},
    {"_settled", (getter)Event_get_settled, NULL, NULL, NULL},
    {"_ok", (getter)Event_get_ok, NULL, NULL, NULL},
    {"_value", (getter)Event_get_raw_value, NULL, NULL, NULL},
    {NULL}
};

static PyTypeObject EventType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._ccore.Event",
    .tp_basicsize = sizeof(EventObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "A one-shot occurrence processes can wait on.",
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)Event_init,
    .tp_traverse = (traverseproc)Event_traverse,
    .tp_clear = (inquiry)Event_clear,
    .tp_dealloc = (destructor)Event_dealloc,
    .tp_methods = Event_methods,
    .tp_members = Event_members,
    .tp_getset = Event_getset,
};

/* ------------------------------------------------------------------ */
/* Process                                                             */
/* ------------------------------------------------------------------ */

struct ProcessObject {
    PyObject_HEAD
    PyObject *engine;          /* EngineObject */
    PyObject *name;            /* str */
    PyObject *gen;             /* generator */
    PyObject *done;            /* EventObject */
    PyObject *pending_resume;  /* scheduler entry list or NULL */
    PyObject *waiting_on;      /* EventObject or NULL */
    PyObject *wake_value;      /* stashed resume payload or NULL */
    char wake_throw, alive;
};

/* Mirror of Process._on_event_settled for parked C processes: stash
 * the wake payload and schedule the resume via the event list so
 * wakeups at equal times keep deterministic FIFO order. */
static int
process_wake(ProcessObject *proc, EventObject *ev)
{
    if (!proc->alive || proc->waiting_on != (PyObject *)ev)
        return 0;
    PyObject *v = ev->value ? ev->value : Py_None;
    Py_INCREF(v);
    Py_XSETREF(proc->wake_value, v);
    if (!ev->ok)
        proc->wake_throw = 1;
    PyObject *entry = engine_schedule_now_entry(
        (EngineObject *)proc->engine, (PyObject *)proc);
    if (entry == NULL)
        return -1;
    Py_XSETREF(proc->pending_resume, entry);
    return 0;
}

/* Generator raised: StopIteration = normal completion, ProcessKilled =
 * node death, anything else propagates out of engine.run(). */
static PyObject *
process_terminate(ProcessObject *self)
{
    self->alive = 0;
    if (PyErr_ExceptionMatches(PyExc_StopIteration)) {
        PyObject *type, *val, *tb;
        PyErr_Fetch(&type, &val, &tb);
        PyErr_NormalizeException(&type, &val, &tb);
        PyObject *retval = NULL;
        if (val != NULL) {
            retval = PyObject_GetAttr(val, str_value);
            if (retval == NULL) {
                Py_XDECREF(type); Py_XDECREF(val); Py_XDECREF(tb);
                return NULL;
            }
        }
        else {
            retval = Py_None;
            Py_INCREF(retval);
        }
        Py_XDECREF(type); Py_XDECREF(val); Py_XDECREF(tb);
        int err = event_settle((EventObject *)self->done, 1, retval);
        Py_DECREF(retval);
        if (err < 0)
            return NULL;
        Py_RETURN_NONE;
    }
    if (PyErr_ExceptionMatches(ProcessKilledExc)) {
        PyErr_Clear();
        EventObject *done = (EventObject *)self->done;
        if (!done->settled) {
            PyObject *exc = PyObject_CallFunction(
                ProcessKilledExc, "N",
                PyUnicode_FromFormat("%U killed", self->name));
            if (exc == NULL)
                return NULL;
            int err = event_settle(done, 0, exc);
            Py_DECREF(exc);
            if (err < 0)
                return NULL;
        }
        Py_RETURN_NONE;
    }
    return NULL;  /* re-raise: bug in simulated code surfaces via run() */
}

/* The resume trampoline -- mirror of Process._do_resume, including the
 * settled-event policy (see the pure docstring).  Called directly from
 * the engine run loop (no tp_call dispatch) and via tp_call. */
static PyObject *
process_resume(ProcessObject *self)
{
    PyObject *payload = self->wake_value;   /* owned or NULL */
    self->wake_value = NULL;
    if (payload == NULL) {
        payload = Py_None;
        Py_INCREF(payload);
    }
    int throwing = self->wake_throw;
    self->wake_throw = 0;
    if (!self->alive) {
        Py_DECREF(payload);
        Py_RETURN_NONE;
    }
    Py_CLEAR(self->pending_resume);
    Py_CLEAR(self->waiting_on);
    EngineObject *engine = (EngineObject *)self->engine;
    PyObject *gen = self->gen;
    for (;;) {
        PyObject *yielded = NULL;
        if (throwing) {
            throwing = 0;
            yielded = PyObject_CallMethodOneArg(gen, str_throw, payload);
            Py_DECREF(payload);
            if (yielded == NULL)
                return process_terminate(self);
        }
        else {
            PySendResult sr = PyIter_Send(gen, payload, &yielded);
            Py_DECREF(payload);
            if (sr == PYGEN_RETURN) {
                self->alive = 0;
                int err = event_settle((EventObject *)self->done, 1,
                                       yielded);
                Py_DECREF(yielded);
                if (err < 0)
                    return NULL;
                Py_RETURN_NONE;
            }
            if (sr == PYGEN_ERROR)
                return process_terminate(self);
        }
        PyTypeObject *tp = Py_TYPE(yielded);
        if (tp == &DelayType) {
            double duration = ((DelayObject *)yielded)->duration;
            Py_DECREF(yielded);
            PyObject *entry = engine_schedule_entry(
                engine, duration, (PyObject *)self, PRIO_NORMAL);
            if (entry == NULL)
                return NULL;
            Py_XSETREF(self->pending_resume, entry);
            Py_RETURN_NONE;
        }
        if (tp == &EventType || PyType_IsSubtype(tp, &EventType)) {
            EventObject *ev = (EventObject *)yielded;
            if (ev->settled) {
                if (ev->ok) {
                    /* Trampoline: feed the settled value straight
                     * back -- no event-list round trip. */
                    payload = ev->value ? ev->value : Py_None;
                    Py_INCREF(payload);
                    Py_DECREF(yielded);
                    continue;
                }
                /* Settled failure: keep the scheduled throw path. */
                PyObject *v = ev->value ? ev->value : Py_None;
                Py_INCREF(v);
                Py_XSETREF(self->wake_value, v);
                self->wake_throw = 1;
                Py_DECREF(yielded);
                PyObject *entry = engine_schedule_now_entry(
                    engine, (PyObject *)self);
                if (entry == NULL)
                    return NULL;
                Py_XSETREF(self->pending_resume, entry);
                Py_RETURN_NONE;
            }
            /* Park on the event (transfer our yielded ref). */
            Py_XSETREF(self->waiting_on, yielded);
            if (event_add_waiter(ev, (PyObject *)self) < 0)
                return NULL;
            Py_RETURN_NONE;
        }
        if (PyFloat_Check(yielded) || PyLong_Check(yielded)) {
            double d = PyFloat_Check(yielded)
                           ? PyFloat_AS_DOUBLE(yielded)
                           : PyLong_AsDouble(yielded);
            if (d == -1.0 && PyErr_Occurred()) {
                Py_DECREF(yielded);
                return NULL;
            }
            if (d < 0) {
                PyErr_Format(SimulationError,
                             "cannot schedule in the past (delay=%S)",
                             yielded);
                Py_DECREF(yielded);
                return NULL;
            }
            Py_DECREF(yielded);
            PyObject *entry = engine_schedule_entry(
                engine, d, (PyObject *)self, PRIO_NORMAL);
            if (entry == NULL)
                return NULL;
            Py_XSETREF(self->pending_resume, entry);
            Py_RETURN_NONE;
        }
        PyErr_Format(SimulationError, "%U yielded unsupported object %R",
                     self->name, yielded);
        Py_DECREF(yielded);
        return NULL;
    }
}

static PyObject *
Process_call(ProcessObject *self, PyObject *args, PyObject *kwds)
{
    return process_resume(self);
}

static void
process_detach(ProcessObject *self)
{
    if (self->pending_resume != NULL) {
        Py_INCREF(Py_None);
        PyList_SetItem(self->pending_resume, 3, Py_None);
        Py_CLEAR(self->pending_resume);
    }
    if (self->waiting_on != NULL) {
        EventObject *ev = (EventObject *)self->waiting_on;
        PyObject *cbs = ev->callbacks;
        if (cbs != NULL) {
            Py_ssize_t n = PyList_GET_SIZE(cbs);
            for (Py_ssize_t i = 0; i < n; i++) {
                if (PyList_GET_ITEM(cbs, i) == (PyObject *)self) {
                    PyList_SetSlice(cbs, i, i + 1, NULL);
                    break;
                }
            }
        }
        Py_CLEAR(self->waiting_on);
    }
}

static PyObject *
Process_interrupt(ProcessObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"cause", NULL};
    PyObject *cause = Py_None;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|O", kwlist, &cause))
        return NULL;
    if (!self->alive)
        Py_RETURN_NONE;
    process_detach(self);
    PyObject *exc = PyObject_CallOneArg(InterruptedExc, cause);
    if (exc == NULL)
        return NULL;
    Py_XSETREF(self->wake_value, exc);
    self->wake_throw = 1;
    PyObject *entry = engine_schedule_now_entry(
        (EngineObject *)self->engine, (PyObject *)self);
    if (entry == NULL)
        return NULL;
    Py_XSETREF(self->pending_resume, entry);
    Py_RETURN_NONE;
}

static PyObject *
Process_kill(ProcessObject *self, PyObject *noargs)
{
    if (!self->alive)
        Py_RETURN_NONE;
    process_detach(self);
    self->alive = 0;
    PyObject *exc = PyObject_CallFunction(
        ProcessKilledExc, "N",
        PyUnicode_FromFormat("%U killed", self->name));
    if (exc == NULL)
        return NULL;
    PyObject *r = PyObject_CallMethodOneArg(self->gen, str_throw, exc);
    Py_DECREF(exc);
    if (r != NULL)
        Py_DECREF(r);
    else
        PyErr_Clear();  /* ProcessKilled/StopIteration/bugs all swallowed */
    EventObject *done = (EventObject *)self->done;
    if (!done->settled) {
        PyObject *exc2 = PyObject_CallFunction(
            ProcessKilledExc, "N",
            PyUnicode_FromFormat("%U killed", self->name));
        if (exc2 == NULL)
            return NULL;
        int err = event_settle(done, 0, exc2);
        Py_DECREF(exc2);
        if (err < 0)
            return NULL;
    }
    Py_RETURN_NONE;
}

static int
Process_init(ProcessObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"engine", "generator", "name", NULL};
    PyObject *engine, *gen, *name = NULL;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O!O|U", kwlist,
                                     &EngineType, &engine, &gen, &name))
        return -1;
    if (!PyObject_HasAttr(gen, str_send)) {
        PyErr_Format(SimulationError,
                     "Process needs a generator, got %s "
                     "(did you forget to call the generator function?)",
                     Py_TYPE(gen)->tp_name);
        return -1;
    }
    if (name == NULL) {
        name = PyUnicode_InternFromString("process");
        if (name == NULL)
            return -1;
    }
    else
        Py_INCREF(name);
    Py_INCREF(engine);
    Py_XSETREF(self->engine, engine);
    Py_XSETREF(self->name, name);
    Py_INCREF(gen);
    Py_XSETREF(self->gen, gen);
    PyObject *done_name = PyUnicode_FromFormat("%U.done", name);
    if (done_name == NULL)
        return -1;
    PyObject *done = PyObject_CallFunction((PyObject *)&EventType, "ON",
                                           engine, done_name);
    if (done == NULL)
        return -1;
    Py_XSETREF(self->done, done);
    Py_CLEAR(self->pending_resume);
    Py_CLEAR(self->waiting_on);
    Py_CLEAR(self->wake_value);
    self->wake_throw = 0;
    self->alive = 1;
    /* Start at the current time, after already-queued events at now. */
    PyObject *entry = engine_schedule_now_entry((EngineObject *)engine,
                                                (PyObject *)self);
    if (entry == NULL)
        return -1;
    self->pending_resume = entry;
    return 0;
}

static PyObject *
Process_get_alive(ProcessObject *self, void *closure)
{
    return PyBool_FromLong(self->alive);
}

static int
Process_traverse(ProcessObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->engine);
    Py_VISIT(self->name);
    Py_VISIT(self->gen);
    Py_VISIT(self->done);
    Py_VISIT(self->pending_resume);
    Py_VISIT(self->waiting_on);
    Py_VISIT(self->wake_value);
    return 0;
}

static int
Process_clear(ProcessObject *self)
{
    Py_CLEAR(self->engine);
    Py_CLEAR(self->name);
    Py_CLEAR(self->gen);
    Py_CLEAR(self->done);
    Py_CLEAR(self->pending_resume);
    Py_CLEAR(self->waiting_on);
    Py_CLEAR(self->wake_value);
    return 0;
}

static void
Process_dealloc(ProcessObject *self)
{
    PyObject_GC_UnTrack(self);
    Process_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyMethodDef Process_methods[] = {
    {"interrupt", (PyCFunction)Process_interrupt,
     METH_VARARGS | METH_KEYWORDS,
     "Throw Interrupted into the process at its wait point."},
    {"kill", (PyCFunction)Process_kill, METH_NOARGS,
     "Fail-stop the process immediately (``finally`` blocks run)."},
    {NULL}
};

static PyMemberDef Process_members[] = {
    {"engine", T_OBJECT, offsetof(ProcessObject, engine), READONLY, NULL},
    {"name", T_OBJECT, offsetof(ProcessObject, name), READONLY, NULL},
    {"done", T_OBJECT, offsetof(ProcessObject, done), READONLY, NULL},
    {"_waiting_on", T_OBJECT, offsetof(ProcessObject, waiting_on),
     READONLY, "event this process is parked on (diagnostics)"},
    {NULL}
};

static PyGetSetDef Process_getset[] = {
    {"alive", (getter)Process_get_alive, NULL, NULL, NULL},
    {NULL}
};

static PyTypeObject ProcessType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._ccore.Process",
    .tp_basicsize = sizeof(ProcessObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Drives a generator through the engine.",
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)Process_init,
    .tp_call = (ternaryfunc)Process_call,
    .tp_traverse = (traverseproc)Process_traverse,
    .tp_clear = (inquiry)Process_clear,
    .tp_dealloc = (destructor)Process_dealloc,
    .tp_methods = Process_methods,
    .tp_members = Process_members,
    .tp_getset = Process_getset,
};

/* ------------------------------------------------------------------ */
/* Metronome tick (self-rescheduling callable used by Engine.metronome) */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    PyObject *engine;   /* EngineObject */
    PyObject *action;
    double period;
    long priority;
} MetronomeObject;

static int
engine_has_active_pending(EngineObject *e)
{
    Py_ssize_t n = PyList_GET_SIZE(e->heap);
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *entry = PyList_GET_ITEM(e->heap, i);
        if (PyList_GET_ITEM(entry, 3) != Py_None &&
            PyList_GET_SIZE(entry) == 4)
            return 1;
    }
    for (Py_ssize_t i = 0; i < e->fifo_len; i++) {
        PyObject *entry = e->fifo[(e->fifo_head + i) % e->fifo_cap];
        if (PyList_GET_ITEM(entry, 3) != Py_None &&
            PyList_GET_SIZE(entry) == 4)
            return 1;
    }
    return 0;
}

static PyObject *
Metronome_call(MetronomeObject *self, PyObject *args, PyObject *kwds)
{
    PyObject *r = PyObject_CallNoArgs(self->action);
    if (r == NULL)
        return NULL;
    Py_DECREF(r);
    EngineObject *e = (EngineObject *)self->engine;
    if (engine_has_active_pending(e)) {
        PyObject *entry = engine_schedule_entry(e, self->period,
                                                (PyObject *)self,
                                                self->priority);
        if (entry == NULL)
            return NULL;
        /* Passive-tick marker: a fifth element (compares never reach
         * it -- seq is unique). */
        int err = PyList_Append(entry, Py_True);
        Py_DECREF(entry);
        if (err < 0)
            return NULL;
    }
    Py_RETURN_NONE;
}

static int
Metronome_traverse(MetronomeObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->engine);
    Py_VISIT(self->action);
    return 0;
}

static int
Metronome_clear(MetronomeObject *self)
{
    Py_CLEAR(self->engine);
    Py_CLEAR(self->action);
    return 0;
}

static void
Metronome_dealloc(MetronomeObject *self)
{
    PyObject_GC_UnTrack(self);
    Metronome_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyTypeObject MetronomeType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._ccore._Metronome",
    .tp_basicsize = sizeof(MetronomeObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_call = (ternaryfunc)Metronome_call,
    .tp_traverse = (traverseproc)Metronome_traverse,
    .tp_clear = (inquiry)Metronome_clear,
    .tp_dealloc = (destructor)Metronome_dealloc,
};

/* ------------------------------------------------------------------ */
/* Engine methods                                                      */
/* ------------------------------------------------------------------ */

static int
Engine_init(EngineObject *self, PyObject *args, PyObject *kwds)
{
    if (!PyArg_ParseTuple(args, ""))
        return -1;
    PyObject *heap = PyList_New(0);
    if (heap == NULL)
        return -1;
    Py_XSETREF(self->heap, heap);
    for (Py_ssize_t i = 0; i < self->fifo_len; i++) {
        Py_ssize_t idx = (self->fifo_head + i) % self->fifo_cap;
        Py_DECREF(self->fifo[idx]);
    }
    self->fifo_head = self->fifo_len = 0;
    self->seq = 0;
    self->now = 0.0;
    self->running = 0;
    self->events_executed = 0;
    return 0;
}

static PyObject *
Engine_get_now(EngineObject *self, void *closure)
{
    return PyFloat_FromDouble(self->now);
}

static PyObject *
Engine_schedule(EngineObject *self, PyObject *const *args, Py_ssize_t nargs,
                PyObject *kwnames)
{
    PyObject *delay_obj, *action;
    long priority = PRIO_NORMAL;
    Py_ssize_t nkw = kwnames ? PyTuple_GET_SIZE(kwnames) : 0;
    if (nargs == 2 && nkw == 0) {
        /* Hot path: schedule(delay, action). */
        delay_obj = args[0];
        action = args[1];
    }
    else if (nargs == 3 && nkw == 0) {
        delay_obj = args[0];
        action = args[1];
        priority = PyLong_AsLong(args[2]);
        if (priority == -1 && PyErr_Occurred())
            return NULL;
    }
    else if (nargs == 2 && nkw == 1 &&
             PyUnicode_CompareWithASCIIString(
                 PyTuple_GET_ITEM(kwnames, 0), "priority") == 0) {
        delay_obj = args[0];
        action = args[1];
        priority = PyLong_AsLong(args[2]);
        if (priority == -1 && PyErr_Occurred())
            return NULL;
    }
    else {
        PyErr_SetString(PyExc_TypeError,
                        "schedule(delay, action, priority=10)");
        return NULL;
    }
    double delay = PyFloat_AsDouble(delay_obj);
    if (delay == -1.0 && PyErr_Occurred())
        return NULL;
    if (delay < 0) {
        PyErr_Format(SimulationError,
                     "cannot schedule in the past (delay=%S)", delay_obj);
        return NULL;
    }
    return engine_schedule_entry(self, delay, action, priority);
}

static PyObject *
Engine_schedule_now(EngineObject *self, PyObject *action)
{
    return engine_schedule_now_entry(self, action);
}

static PyObject *
Engine_schedule_at(EngineObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"time", "action", "priority", NULL};
    PyObject *time_obj, *action;
    long priority = PRIO_NORMAL;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "OO|l", kwlist,
                                     &time_obj, &action, &priority))
        return NULL;
    double time = PyFloat_AsDouble(time_obj);
    if (time == -1.0 && PyErr_Occurred())
        return NULL;
    double delay = time - self->now;
    if (delay < 0) {
        PyObject *d = PyFloat_FromDouble(delay);
        if (d == NULL)
            return NULL;
        PyErr_Format(SimulationError,
                     "cannot schedule in the past (delay=%S)", d);
        Py_DECREF(d);
        return NULL;
    }
    return engine_schedule_entry(self, delay, action, priority);
}

static PyObject *
Engine_cancel(PyObject *cls, PyObject *handle)
{
    if (!PyList_Check(handle) || PyList_GET_SIZE(handle) < 4) {
        PyErr_SetString(PyExc_TypeError,
                        "cancel() needs a scheduler entry handle");
        return NULL;
    }
    Py_INCREF(Py_None);
    PyList_SetItem(handle, 3, Py_None);
    Py_RETURN_NONE;
}

static PyObject *
Engine_spawn(EngineObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"generator", "name", NULL};
    PyObject *gen, *name = NULL;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O|U", kwlist,
                                     &gen, &name))
        return NULL;
    if (name != NULL)
        return PyObject_CallFunction((PyObject *)&ProcessType, "OOO",
                                     (PyObject *)self, gen, name);
    return PyObject_CallFunction((PyObject *)&ProcessType, "OO",
                                 (PyObject *)self, gen);
}

static PyObject *
Engine_run(EngineObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"until", "max_events", NULL};
    PyObject *until_obj = Py_None, *max_obj = Py_None;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|OO", kwlist,
                                     &until_obj, &max_obj))
        return NULL;
    if (self->running) {
        PyErr_SetString(SimulationError, "engine.run() is not reentrant");
        return NULL;
    }
    int has_until = (until_obj != Py_None);
    int has_max = (max_obj != Py_None);
    double until = 0.0;
    long long max_events = 0;
    if (has_until) {
        until = PyFloat_AsDouble(until_obj);
        if (until == -1.0 && PyErr_Occurred())
            return NULL;
    }
    if (has_max) {
        max_events = PyLong_AsLongLong(max_obj);
        if (max_events == -1 && PyErr_Occurred())
            return NULL;
    }
    self->running = 1;

    if (!has_until && !has_max) {
        /* Full-run case: the same loop minus the per-event bound
         * checks. */
        for (;;) {
            PyObject *entry;
            if (self->fifo_len) {
                if (PyList_GET_SIZE(self->heap) &&
                    entry_lt(PyList_GET_ITEM(self->heap, 0),
                             RING_PEEK(self))) {
                    entry = heap_pop(self);
                    if (entry == NULL)
                        goto fail;
                }
                else
                    entry = ring_pop(self);
            }
            else if (PyList_GET_SIZE(self->heap)) {
                entry = heap_pop(self);
                if (entry == NULL)
                    goto fail;
            }
            else
                break;
            PyObject *action = PyList_GET_ITEM(entry, 3);
            if (action == Py_None) {
                Py_DECREF(entry);
                continue;
            }
            double t = PyFloat_AsDouble(PyList_GET_ITEM(entry, 0));
            if (t < self->now) {
                Py_DECREF(entry);
                PyErr_SetString(SimulationError,
                                "event list went backwards in time");
                goto fail;
            }
            self->now = t;
            PyObject *res = (Py_TYPE(action) == &ProcessType)
                                ? process_resume((ProcessObject *)action)
                                : PyObject_CallNoArgs(action);
            Py_DECREF(entry);
            if (res == NULL)
                goto fail;
            Py_DECREF(res);
            self->events_executed++;
        }
        self->running = 0;
        Py_RETURN_NONE;
    }

    /* Bounded run: mirrors the pure loop (peek before popping so an
     * entry past ``until`` stays queued). */
    long long executed = 0;
    while (self->fifo_len || PyList_GET_SIZE(self->heap)) {
        int use_fifo =
            self->fifo_len &&
            (!PyList_GET_SIZE(self->heap) ||
             entry_lt(RING_PEEK(self), PyList_GET_ITEM(self->heap, 0)));
        PyObject *head = use_fifo ? RING_PEEK(self)
                                  : PyList_GET_ITEM(self->heap, 0);
        PyObject *action = PyList_GET_ITEM(head, 3);
        if (action == Py_None) {
            PyObject *dead = use_fifo ? ring_pop(self) : heap_pop(self);
            if (dead == NULL)
                goto fail;
            Py_DECREF(dead);
            continue;
        }
        double t = PyFloat_AsDouble(PyList_GET_ITEM(head, 0));
        if (has_until && t > until) {
            self->now = until;
            self->running = 0;
            Py_RETURN_NONE;
        }
        PyObject *entry = use_fifo ? ring_pop(self) : heap_pop(self);
        if (entry == NULL)
            goto fail;
        if (t < self->now) {
            Py_DECREF(entry);
            PyErr_SetString(SimulationError,
                            "event list went backwards in time");
            goto fail;
        }
        self->now = t;
        PyObject *res = (Py_TYPE(action) == &ProcessType)
                            ? process_resume((ProcessObject *)action)
                            : PyObject_CallNoArgs(action);
        Py_DECREF(entry);
        if (res == NULL)
            goto fail;
        Py_DECREF(res);
        self->events_executed++;
        executed++;
        if (has_max && executed >= max_events) {
            self->running = 0;
            Py_RETURN_NONE;
        }
    }
    if (has_until && until > self->now)
        self->now = until;
    self->running = 0;
    Py_RETURN_NONE;

fail:
    self->running = 0;
    return NULL;
}

static PyObject *
Engine_peek(EngineObject *self, PyObject *noargs)
{
    while (PyList_GET_SIZE(self->heap) &&
           PyList_GET_ITEM(PyList_GET_ITEM(self->heap, 0), 3) == Py_None) {
        PyObject *dead = heap_pop(self);
        if (dead == NULL)
            return NULL;
        Py_DECREF(dead);
    }
    while (self->fifo_len &&
           PyList_GET_ITEM(RING_PEEK(self), 3) == Py_None) {
        PyObject *dead = ring_pop(self);
        Py_DECREF(dead);
    }
    int have = 0;
    double best = 0.0;
    if (PyList_GET_SIZE(self->heap)) {
        best = PyFloat_AsDouble(
            PyList_GET_ITEM(PyList_GET_ITEM(self->heap, 0), 0));
        have = 1;
    }
    if (self->fifo_len) {
        double t = PyFloat_AsDouble(PyList_GET_ITEM(RING_PEEK(self), 0));
        if (!have || t < best)
            best = t;
        have = 1;
    }
    if (!have)
        Py_RETURN_NONE;
    return PyFloat_FromDouble(best);
}

static PyObject *
Engine_get_queue_depth(EngineObject *self, void *closure)
{
    Py_ssize_t count = 0;
    Py_ssize_t n = PyList_GET_SIZE(self->heap);
    for (Py_ssize_t i = 0; i < n; i++)
        if (PyList_GET_ITEM(PyList_GET_ITEM(self->heap, i), 3) != Py_None)
            count++;
    for (Py_ssize_t i = 0; i < self->fifo_len; i++) {
        PyObject *entry = self->fifo[(self->fifo_head + i) % self->fifo_cap];
        if (PyList_GET_ITEM(entry, 3) != Py_None)
            count++;
    }
    return PyLong_FromSsize_t(count);
}

static PyObject *
Engine_metronome(EngineObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"period", "action", "priority", NULL};
    PyObject *period_obj, *action;
    long priority = PRIO_LATE;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "OO|l", kwlist,
                                     &period_obj, &action, &priority))
        return NULL;
    double period = PyFloat_AsDouble(period_obj);
    if (period == -1.0 && PyErr_Occurred())
        return NULL;
    if (period <= 0) {
        PyErr_Format(SimulationError, "metronome period must be > 0: %S",
                     period_obj);
        return NULL;
    }
    MetronomeObject *tick =
        (MetronomeObject *)MetronomeType.tp_alloc(&MetronomeType, 0);
    if (tick == NULL)
        return NULL;
    Py_INCREF(self);
    tick->engine = (PyObject *)self;
    Py_INCREF(action);
    tick->action = action;
    tick->period = period;
    tick->priority = priority;
    PyObject *entry = engine_schedule_entry(self, period, (PyObject *)tick,
                                            priority);
    Py_DECREF(tick);  /* the entry holds the live reference */
    if (entry == NULL)
        return NULL;
    int err = PyList_Append(entry, Py_True);
    Py_DECREF(entry);
    if (err < 0)
        return NULL;
    Py_RETURN_NONE;
}

static int
Engine_traverse(EngineObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->heap);
    for (Py_ssize_t i = 0; i < self->fifo_len; i++)
        Py_VISIT(self->fifo[(self->fifo_head + i) % self->fifo_cap]);
    return 0;
}

static int
Engine_clear(EngineObject *self)
{
    Py_CLEAR(self->heap);
    for (Py_ssize_t i = 0; i < self->fifo_len; i++) {
        Py_ssize_t idx = (self->fifo_head + i) % self->fifo_cap;
        PyObject *entry = self->fifo[idx];
        self->fifo[idx] = NULL;
        Py_DECREF(entry);
    }
    self->fifo_len = 0;
    self->fifo_head = 0;
    return 0;
}

static void
Engine_dealloc(EngineObject *self)
{
    PyObject_GC_UnTrack(self);
    Engine_clear(self);
    PyMem_Free(self->fifo);
    self->fifo = NULL;
    self->fifo_cap = 0;
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyMethodDef Engine_methods[] = {
    {"schedule", (PyCFunction)Engine_schedule,
     METH_FASTCALL | METH_KEYWORDS,
     "Schedule ``action()`` to run ``delay`` time units from now."},
    {"schedule_now", (PyCFunction)Engine_schedule_now, METH_O,
     "schedule(0.0, action) without the generic checks."},
    {"schedule_at", (PyCFunction)Engine_schedule_at,
     METH_VARARGS | METH_KEYWORDS,
     "Schedule ``action()`` at an absolute simulated time."},
    {"cancel", (PyCFunction)Engine_cancel, METH_O | METH_STATIC,
     "Prevent a scheduled action from running."},
    {"spawn", (PyCFunction)Engine_spawn, METH_VARARGS | METH_KEYWORDS,
     "Create and start a Process running ``generator``."},
    {"run", (PyCFunction)Engine_run, METH_VARARGS | METH_KEYWORDS,
     "Run events until the list drains, ``until`` passes, or "
     "``max_events`` have executed."},
    {"peek", (PyCFunction)Engine_peek, METH_NOARGS,
     "Time of the next pending event, or None if the list is empty."},
    {"metronome", (PyCFunction)Engine_metronome,
     METH_VARARGS | METH_KEYWORDS,
     "Run ``action()`` every ``period`` time units while the simulation "
     "is still live."},
    {NULL}
};

static PyMemberDef Engine_members[] = {
    {"events_executed", T_LONGLONG, offsetof(EngineObject, events_executed),
     0, "number of events executed so far"},
    {NULL}
};

static PyGetSetDef Engine_getset[] = {
    {"now", (getter)Engine_get_now, NULL,
     "Current simulated time (microseconds by library convention).", NULL},
    {"queue_depth", (getter)Engine_get_queue_depth, NULL,
     "Number of pending (non-cancelled) entries in the event list.", NULL},
    {NULL}
};

static PyTypeObject EngineType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._ccore.Engine",
    .tp_basicsize = sizeof(EngineObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "The simulation clock and event list (accelerated).",
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)Engine_init,
    .tp_traverse = (traverseproc)Engine_traverse,
    .tp_clear = (inquiry)Engine_clear,
    .tp_dealloc = (destructor)Engine_dealloc,
    .tp_methods = Engine_methods,
    .tp_members = Engine_members,
    .tp_getset = Engine_getset,
};

/* ------------------------------------------------------------------ */
/* Module                                                              */
/* ------------------------------------------------------------------ */

static struct PyModuleDef ccore_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro.sim._ccore",
    .m_doc = "Accelerated simulation core (Engine/Event/Process/Delay).",
    .m_size = -1,
};

PyMODINIT_FUNC
PyInit__ccore(void)
{
    PyObject *errors = PyImport_ImportModule("repro.errors");
    if (errors == NULL)
        return NULL;
    SimulationError = PyObject_GetAttrString(errors, "SimulationError");
    Py_DECREF(errors);
    if (SimulationError == NULL)
        return NULL;
    PyObject *procmod = PyImport_ImportModule("repro.sim.process");
    if (procmod == NULL)
        return NULL;
    ProcessKilledExc = PyObject_GetAttrString(procmod, "ProcessKilled");
    InterruptedExc = PyObject_GetAttrString(procmod, "Interrupted");
    Py_DECREF(procmod);
    if (ProcessKilledExc == NULL || InterruptedExc == NULL)
        return NULL;
    str_throw = PyUnicode_InternFromString("throw");
    str_value = PyUnicode_InternFromString("value");
    str_send = PyUnicode_InternFromString("send");
    if (str_throw == NULL || str_value == NULL || str_send == NULL)
        return NULL;
    if (PyType_Ready(&DelayType) < 0 || PyType_Ready(&EventType) < 0 ||
        PyType_Ready(&ProcessType) < 0 || PyType_Ready(&EngineType) < 0 ||
        PyType_Ready(&MetronomeType) < 0)
        return NULL;
    PyObject *m = PyModule_Create(&ccore_module);
    if (m == NULL)
        return NULL;
    Py_INCREF(&DelayType);
    PyModule_AddObject(m, "Delay", (PyObject *)&DelayType);
    Py_INCREF(&EventType);
    PyModule_AddObject(m, "Event", (PyObject *)&EventType);
    Py_INCREF(&ProcessType);
    PyModule_AddObject(m, "Process", (PyObject *)&ProcessType);
    Py_INCREF(&EngineType);
    PyModule_AddObject(m, "Engine", (PyObject *)&EngineType);
    PyModule_AddIntConstant(m, "ENTRY_ACTION", 3);
    PyModule_AddIntConstant(m, "PRIORITY_URGENT", PRIO_URGENT);
    PyModule_AddIntConstant(m, "PRIORITY_NORMAL", PRIO_NORMAL);
    PyModule_AddIntConstant(m, "PRIORITY_LATE", PRIO_LATE);
    return m;
}
