"""Generator-based simulated processes.

A process is a Python generator driven by the :class:`~repro.sim.engine.
Engine`. The generator *yields* one of:

* a ``float``/``int`` or :class:`Delay` -- suspend for that much
  simulated time;
* an :class:`Event` -- suspend until the event triggers; the event's
  value is sent back into the generator (or its exception thrown).

Sub-operations compose with ``yield from``, so protocol code reads like
ordinary sequential code::

    def release(self):
        yield from self.compute_diffs()
        yield Delay(cost)
        yield from self.nic.remote_deposit(...)

Processes can be *interrupted* (an exception is thrown at their current
suspension point -- used for timeout-style control flow) or *killed*
(used by fail-stop failure injection; ``finally`` blocks still run, but
the process never resumes).
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import SimulationError
from repro.sim.engine import Engine, PRIORITY_NORMAL


class ProcessKilled(BaseException):
    """Thrown into a generator when its process is killed.

    Derives from ``BaseException`` so that ``except Exception`` handlers
    in protocol code cannot accidentally swallow a node death.
    """


class Interrupted(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None) -> None:
        self.cause = cause
        super().__init__(f"process interrupted (cause={cause!r})")


class Delay:
    """Yieldable: suspend the current process for ``duration`` time."""

    __slots__ = ("duration",)

    def __init__(self, duration: float) -> None:
        if duration < 0:
            raise SimulationError(f"negative delay: {duration}")
        self.duration = duration


class Event:
    """A one-shot occurrence processes can wait on.

    An event either *succeeds* with a value or *fails* with an exception;
    both wake every waiter (failures are re-raised inside the waiting
    process). Late waiters on an already-settled event are woken
    immediately.
    """

    __slots__ = ("engine", "name", "_callbacks", "_settled", "_ok", "_value")

    def __init__(self, engine: Engine, name: str = "event") -> None:
        self.engine = engine
        self.name = name
        # Lazily allocated: most events (uncontended mutexes, immediate
        # grants) settle with at most one waiter, and many with none.
        self._callbacks: Optional[list] = None
        self._settled = False
        self._ok = False
        self._value: Any = None

    @property
    def triggered(self) -> bool:
        return self._settled and self._ok

    @property
    def failed(self) -> bool:
        return self._settled and not self._ok

    @property
    def settled(self) -> bool:
        return self._settled

    @property
    def value(self) -> Any:
        if not self._settled:
            raise SimulationError(f"event {self.name!r} has not settled")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        # _settle inlined: success is the per-event hot case (hundreds
        # of thousands of grants per run), failure stays on _settle.
        if self._settled:
            raise SimulationError(f"event {self.name!r} settled twice")
        self._settled = True
        self._ok = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, None
        if callbacks:
            for cb in callbacks:
                cb(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        self._settle(False, exc)
        return self

    def _settle(self, ok: bool, value: Any) -> None:
        if self._settled:
            raise SimulationError(f"event {self.name!r} settled twice")
        self._settled = True
        self._ok = ok
        self._value = value
        callbacks, self._callbacks = self._callbacks, None
        if callbacks:
            for cb in callbacks:
                cb(self)

    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        """Register ``cb(event)``; called immediately if already settled."""
        if self._settled:
            cb(self)
        elif self._callbacks is None:
            self._callbacks = [cb]
        else:
            self._callbacks.append(cb)

    def discard_callback(self, cb: Callable[["Event"], None]) -> None:
        if self._callbacks is not None and cb in self._callbacks:
            self._callbacks.remove(cb)


def any_of(engine: Engine, events: Iterable[Event],
           name: str = "any_of") -> Event:
    """An event that settles when the first of ``events`` settles.

    Succeeds with ``(index, value)`` of the first successful event, or
    fails with the first failure. Remaining events are left untouched.
    """
    combined = Event(engine, name)
    entries = list(events)

    def make_cb(index: int) -> Callable[[Event], None]:
        def cb(ev: Event) -> None:
            if combined.settled:
                return
            if ev.failed:
                combined.fail(ev.value)
            else:
                combined.succeed((index, ev.value))
        return cb

    for i, ev in enumerate(entries):
        ev.add_callback(make_cb(i))
        if combined.settled:
            break
    return combined


class Process:
    """Drives a generator through the engine.

    The process starts automatically at the current simulated time. Its
    completion is observable through :attr:`done`, an :class:`Event` that
    succeeds with the generator's return value.
    """

    def __init__(self, engine: Engine, generator: Generator,
                 name: str = "process") -> None:
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"Process needs a generator, got {type(generator).__name__} "
                f"(did you forget to call the generator function?)")
        self.engine = engine
        self.name = name
        self._gen = generator
        self.done = Event(engine, f"{name}.done")
        self._alive = True
        self._pending_resume = None  # cancellable _ScheduledEvent
        self._waiting_on: Optional[Event] = None
        # Reusable resume thunks: at most one resume is pending at a
        # time, so shared callables are safe and save a closure (and a
        # bound-method allocation) per suspension. Event wakeups stash
        # the settled value in ``_wake_value`` instead of closing over
        # it; ``_event_cb`` is the one persistent settle callback.
        self._wake_value: Any = None
        self._resume_plain: Callable[[], None] = self._do_resume_plain
        self._resume_value: Callable[[], None] = self._do_resume_value
        self._resume_throw: Callable[[], None] = self._do_resume_throw
        self._event_cb: Callable[[Event], None] = self._on_event_settled
        # Start at the current time, after already-queued events at `now`.
        self._pending_resume = engine.schedule_now(self._resume_plain)

    @property
    def alive(self) -> bool:
        return self._alive

    # -- internal stepping ------------------------------------------------

    def _step(self, verb: str, payload: Any) -> None:
        if not self._alive:
            return
        self._pending_resume = None
        self._waiting_on = None
        try:
            if verb == "send":
                yielded = self._gen.send(payload)
            else:
                yielded = self._gen.throw(payload)
        except BaseException as exc:
            self._terminate(exc)
            return
        self._suspend_on(yielded)

    def _terminate(self, exc: BaseException) -> None:
        """Handle the generator ending (StopIteration), dying with the
        node (ProcessKilled), or raising a bug (re-raised so it surfaces
        through engine.run())."""
        self._alive = False
        if isinstance(exc, StopIteration):
            self.done.succeed(exc.value)
        elif isinstance(exc, ProcessKilled):
            if not self.done.settled:
                self.done.fail(ProcessKilled(f"{self.name} killed"))
        else:
            raise exc

    def _suspend_on(self, yielded: Any) -> None:
        # Hot path: Delay is by far the most common yield, then Event;
        # bare numbers are rare. The exact-class check dodges the
        # isinstance machinery on the common case.
        if yielded.__class__ is Delay:
            self._pending_resume = self.engine.schedule(
                yielded.duration, self._resume_plain)
            return
        if isinstance(yielded, Event):
            if yielded._settled:
                # Already-settled events (uncontended grants, stores
                # with items ready) skip the callback registration and
                # go straight to the resume schedule -- byte-identical
                # to what add_callback -> _on_event_settled would do,
                # including the event-list slot the resume lands in.
                self._wake_value = yielded._value
                self._pending_resume = self.engine.schedule_now(
                    self._resume_value if yielded._ok
                    else self._resume_throw)
                return
            self._waiting_on = yielded
            yielded.add_callback(self._event_cb)
            return
        if isinstance(yielded, (int, float)):
            # engine.schedule rejects negative delays just as the Delay
            # constructor would.
            self._pending_resume = self.engine.schedule(
                float(yielded), self._resume_plain)
            return
        if isinstance(yielded, Delay):  # pragma: no cover - subclasses
            self._pending_resume = self.engine.schedule(
                yielded.duration, self._resume_plain)
            return
        raise SimulationError(
            f"{self.name} yielded unsupported object {yielded!r}")

    def _on_event_settled(self, ev: Event) -> None:
        if not self._alive or self._waiting_on is not ev:
            return
        # Resume via the event list so wakeups at equal times keep
        # deterministic FIFO order.
        self._wake_value = ev._value
        if ev._ok:
            self._pending_resume = self.engine.schedule_now(
                self._resume_value)
        else:
            self._pending_resume = self.engine.schedule_now(
                self._resume_throw)

    # The three resume thunks repeat _step's body with the verb branch
    # resolved and the Delay case (the most common yield by far) inlined:
    # together they are the entry point of every scheduled event in a
    # run, and the saved dispatch frame is measurable at that volume.

    def _do_resume_plain(self) -> None:
        if not self._alive:
            return
        self._pending_resume = None
        self._waiting_on = None
        try:
            yielded = self._gen.send(None)
        except BaseException as exc:
            self._terminate(exc)
            return
        if yielded.__class__ is Delay:
            self._pending_resume = self.engine.schedule(
                yielded.duration, self._resume_plain)
        else:
            self._suspend_on(yielded)

    def _do_resume_value(self) -> None:
        value, self._wake_value = self._wake_value, None
        if not self._alive:
            return
        self._pending_resume = None
        self._waiting_on = None
        try:
            yielded = self._gen.send(value)
        except BaseException as exc:
            self._terminate(exc)
            return
        if yielded.__class__ is Delay:
            self._pending_resume = self.engine.schedule(
                yielded.duration, self._resume_plain)
        else:
            self._suspend_on(yielded)

    def _do_resume_throw(self) -> None:
        exc, self._wake_value = self._wake_value, None
        if not self._alive:
            return
        self._pending_resume = None
        self._waiting_on = None
        try:
            yielded = self._gen.throw(exc)
        except BaseException as err:
            self._terminate(err)
            return
        if yielded.__class__ is Delay:
            self._pending_resume = self.engine.schedule(
                yielded.duration, self._resume_plain)
        else:
            self._suspend_on(yielded)

    # -- external control -------------------------------------------------

    def _detach(self) -> None:
        if self._pending_resume is not None:
            self._pending_resume.cancel()
            self._pending_resume = None
        if self._waiting_on is not None:
            self._waiting_on.discard_callback(self._event_cb)
        self._waiting_on = None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupted` into the process at its wait point."""
        if not self._alive:
            return
        self._detach()
        exc = Interrupted(cause)
        self._pending_resume = self.engine.schedule_now(
            lambda: self._step("throw", exc))

    def kill(self) -> None:
        """Fail-stop the process immediately (``finally`` blocks run)."""
        if not self._alive:
            return
        self._detach()
        self._alive = False
        try:
            self._gen.throw(ProcessKilled(f"{self.name} killed"))
        except (ProcessKilled, StopIteration):
            pass
        except BaseException:
            # A generator that turns a kill into another exception is a
            # bug, but must not let the node death crash the simulation.
            pass
        if not self.done.settled:
            self.done.fail(ProcessKilled(f"{self.name} killed"))


def timeout_wait(engine: Engine, event: Event, timeout: float):
    """Wait on ``event`` for at most ``timeout`` time.

    A generator helper (use with ``yield from``). Returns ``(True,
    value)`` if the event succeeded in time, ``(False, None)`` on
    timeout. Event *failures* are re-raised.
    """
    # Hand-rolled two-way any_of: one Event and two closures instead of
    # the timer Event + any_of machinery (this sits on the hot path of
    # every synchronous remote operation). Settling order is identical:
    # the timer action settles `combined` directly at the same engine
    # slot where it used to settle the timer event.
    combined = Event(engine, "timeout_wait")

    def on_timer() -> None:
        if not combined._settled:
            combined.succeed((1, None))

    handle = engine.schedule(timeout, on_timer)

    def on_event(ev: Event) -> None:
        if combined._settled:
            return
        if ev.failed:
            combined.fail(ev.value)
        else:
            combined.succeed((0, ev.value))

    event.add_callback(on_event)
    index, value = yield combined
    if index == 0:
        handle.cancel()
        return True, value
    return False, None
