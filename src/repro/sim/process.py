"""Generator-based simulated processes.

A process is a Python generator driven by the :class:`~repro.sim.engine.
Engine`. The generator *yields* one of:

* a ``float``/``int`` or :class:`Delay` -- suspend for that much
  simulated time;
* an :class:`Event` -- suspend until the event triggers; the event's
  value is sent back into the generator (or its exception thrown).

Sub-operations compose with ``yield from``, so protocol code reads like
ordinary sequential code::

    def release(self):
        yield from self.compute_diffs()
        yield Delay(cost)
        yield from self.nic.remote_deposit(...)

Processes can be *interrupted* (an exception is thrown at their current
suspension point -- used for timeout-style control flow) or *killed*
(used by fail-stop failure injection; ``finally`` blocks still run, but
the process never resumes).
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from heapq import heappush as _heappush

from repro.errors import SimulationError
from repro.sim.engine import Engine, PRIORITY_NORMAL


class ProcessKilled(BaseException):
    """Thrown into a generator when its process is killed.

    Derives from ``BaseException`` so that ``except Exception`` handlers
    in protocol code cannot accidentally swallow a node death.
    """


class Interrupted(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None) -> None:
        self.cause = cause
        super().__init__(f"process interrupted (cause={cause!r})")


class Delay:
    """Yieldable: suspend the current process for ``duration`` time."""

    __slots__ = ("duration",)

    def __init__(self, duration: float) -> None:
        if duration < 0:
            raise SimulationError(f"negative delay: {duration}")
        self.duration = duration


class Event:
    """A one-shot occurrence processes can wait on.

    An event either *succeeds* with a value or *fails* with an exception;
    both wake every waiter (failures are re-raised inside the waiting
    process). Late waiters on an already-settled event are woken
    immediately.
    """

    __slots__ = ("engine", "name", "_callbacks", "_settled", "_ok", "_value")

    def __init__(self, engine: Engine, name: str = "event") -> None:
        self.engine = engine
        self.name = name
        # Lazily allocated: most events (uncontended mutexes, immediate
        # grants) settle with at most one waiter, and many with none.
        self._callbacks: Optional[list] = None
        self._settled = False
        self._ok = False
        self._value: Any = None

    @property
    def triggered(self) -> bool:
        return self._settled and self._ok

    @property
    def failed(self) -> bool:
        return self._settled and not self._ok

    @property
    def settled(self) -> bool:
        return self._settled

    @property
    def value(self) -> Any:
        if not self._settled:
            raise SimulationError(f"event {self.name!r} has not settled")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        # _settle inlined: success is the per-event hot case (hundreds
        # of thousands of grants per run), failure stays on _settle.
        if self._settled:
            raise SimulationError(f"event {self.name!r} settled twice")
        self._settled = True
        self._ok = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, None
        if callbacks:
            for cb in callbacks:
                cb(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        self._settle(False, exc)
        return self

    def _settle(self, ok: bool, value: Any) -> None:
        if self._settled:
            raise SimulationError(f"event {self.name!r} settled twice")
        self._settled = True
        self._ok = ok
        self._value = value
        callbacks, self._callbacks = self._callbacks, None
        if callbacks:
            for cb in callbacks:
                cb(self)

    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        """Register ``cb(event)``; called immediately if already settled."""
        if self._settled:
            cb(self)
        elif self._callbacks is None:
            self._callbacks = [cb]
        else:
            self._callbacks.append(cb)

    def discard_callback(self, cb: Callable[["Event"], None]) -> None:
        if self._callbacks is not None and cb in self._callbacks:
            self._callbacks.remove(cb)


class Process:
    """Drives a generator through the engine.

    The process starts automatically at the current simulated time. Its
    completion is observable through :attr:`done`, an :class:`Event` that
    succeeds with the generator's return value.
    """

    def __init__(self, engine: Engine, generator: Generator,
                 name: str = "process") -> None:
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"Process needs a generator, got {type(generator).__name__} "
                f"(did you forget to call the generator function?)")
        self.engine = engine
        self.name = name
        self._gen = generator
        self.done = Event(engine, f"{name}.done")
        self._alive = True
        self._pending_resume = None  # cancellable scheduler entry (list)
        self._waiting_on: Optional[Event] = None
        # Reusable resume thunks: at most one resume is pending at a
        # time, so shared callables are safe and save a closure (and a
        # bound-method allocation) per suspension. Event wakeups stash
        # the settled value in ``_wake_value`` instead of closing over
        # it; ``_event_cb`` is the one persistent settle callback.
        self._wake_value: Any = None
        self._wake_throw = False
        self._resume: Callable[[], None] = self._do_resume
        self._event_cb: Callable[[Event], None] = self._on_event_settled
        # Start at the current time, after already-queued events at `now`.
        self._pending_resume = engine.schedule_now(self._resume)

    @property
    def alive(self) -> bool:
        return self._alive

    # -- internal stepping ------------------------------------------------

    def _do_resume(self) -> None:
        """Entry point of every scheduled resume: advance the generator
        until it suspends on pending work.

        The trampoline: a yield of an *already-settled successful*
        event (uncontended mutex/bus grants, stores with items ready,
        local-node deposits) feeds the value straight back into the
        generator instead of taking a schedule/dispatch round-trip
        through the event list. Simulated time is untouched -- only
        host-side event churn is removed (~28% of all scheduled events
        on the lock-handoff path). Settled *failures* keep the
        scheduled throw path: they are rare (recovery signals) and
        keeping their event-list slot keeps failure interleavings
        boring. The compiled core implements the identical policy, so
        pure and accelerated runs stay bit-identical.

        One shared thunk for every resume flavor (delay expiry, event
        success, event failure, interrupt): the wake payload is stashed
        in ``_wake_value``/``_wake_throw`` by whoever schedules the
        resume, so each engine dispatch costs exactly one Python frame.
        """
        payload, self._wake_value = self._wake_value, None
        throwing = self._wake_throw
        if throwing:
            self._wake_throw = False
        if not self._alive:
            return
        self._pending_resume = None
        self._waiting_on = None
        gen = self._gen
        send = gen.send
        engine = self.engine
        schedule = engine.schedule
        resume = self._resume
        while True:
            try:
                if throwing:
                    throwing = False
                    yielded = gen.throw(payload)
                else:
                    yielded = send(payload)
            except BaseException as exc:
                self._terminate(exc)
                return
            if yielded.__class__ is Delay:
                # engine.schedule inlined (Delay already validated the
                # duration as non-negative): one scheduler entry built
                # in place, straight onto the right queue.
                duration = yielded.duration
                entry = [engine._now + duration, PRIORITY_NORMAL,
                         engine._seq(), resume]
                if duration == 0.0:
                    engine._fifo.append(entry)
                else:
                    _heappush(engine._heap, entry)
                self._pending_resume = entry
                return
            if isinstance(yielded, Event):
                if yielded._settled:
                    if yielded._ok:
                        payload = yielded._value
                        continue
                    self._wake_value = yielded._value
                    self._wake_throw = True
                    self._pending_resume = engine.schedule_now(resume)
                    return
                self._waiting_on = yielded
                yielded.add_callback(self._event_cb)
                return
            if isinstance(yielded, (int, float)):
                # engine.schedule rejects negative delays just as the
                # Delay constructor would.
                self._pending_resume = schedule(float(yielded), resume)
                return
            if isinstance(yielded, Delay):  # pragma: no cover - subclasses
                self._pending_resume = schedule(yielded.duration, resume)
                return
            raise SimulationError(
                f"{self.name} yielded unsupported object {yielded!r}")

    def _terminate(self, exc: BaseException) -> None:
        """Handle the generator ending (StopIteration), dying with the
        node (ProcessKilled), or raising a bug (re-raised so it surfaces
        through engine.run())."""
        self._alive = False
        if isinstance(exc, StopIteration):
            self.done.succeed(exc.value)
        elif isinstance(exc, ProcessKilled):
            if not self.done.settled:
                self.done.fail(ProcessKilled(f"{self.name} killed"))
        else:
            raise exc

    def _on_event_settled(self, ev: Event) -> None:
        if not self._alive or self._waiting_on is not ev:
            return
        # Resume via the event list so wakeups at equal times keep
        # deterministic FIFO order.
        self._wake_value = ev._value
        if not ev._ok:
            self._wake_throw = True
        self._pending_resume = self.engine.schedule_now(self._resume)

    # -- external control -------------------------------------------------

    def _detach(self) -> None:
        if self._pending_resume is not None:
            self._pending_resume[3] = None  # cancel the scheduler entry
            self._pending_resume = None
        if self._waiting_on is not None:
            self._waiting_on.discard_callback(self._event_cb)
        self._waiting_on = None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupted` into the process at its wait point."""
        if not self._alive:
            return
        self._detach()
        self._wake_value = Interrupted(cause)
        self._wake_throw = True
        self._pending_resume = self.engine.schedule_now(self._resume)

    def kill(self) -> None:
        """Fail-stop the process immediately (``finally`` blocks run)."""
        if not self._alive:
            return
        self._detach()
        self._alive = False
        try:
            self._gen.throw(ProcessKilled(f"{self.name} killed"))
        except (ProcessKilled, StopIteration):
            pass
        except BaseException:
            # A generator that turns a kill into another exception is a
            # bug, but must not let the node death crash the simulation.
            pass
        if not self.done.settled:
            self.done.fail(ProcessKilled(f"{self.name} killed"))
