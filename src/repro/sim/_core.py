"""Implementation selector for the simulation hot core.

The pure-Python modules (:mod:`repro.sim.engine`,
:mod:`repro.sim.process`) are the *reference* implementation -- the
oracle every behavioural question defers to.  When the optional
compiled extension :mod:`repro.sim._ccore` has been built (``python
setup.py build_ext --inplace``), this module transparently swaps in the
accelerated ``Engine``/``Event``/``Process``/``Delay``.  The two builds
are bit-identical at the level of simulated behaviour: same event
total order, same timestamps, same callback order, same exception
types -- pinned by golden trace digests and same-seed fault sweeps run
under both (see ``tests/sim/test_accel_identity.py``).

Set ``REPRO_PURE=1`` to force the pure reference path even when the
extension is importable.

Helpers that *create* events (:func:`any_of`, :func:`timeout_wait`)
live here rather than in :mod:`repro.sim.process` so they always build
events of the selected implementation.
"""

from __future__ import annotations

import os
from typing import Callable, Iterable

__all__ = [
    "ACCELERATED",
    "Delay",
    "Engine",
    "Event",
    "Process",
    "any_of",
    "timeout_wait",
]

_ccore = None
if os.environ.get("REPRO_PURE", "") not in ("", "0"):
    ACCELERATED = False
else:  # pragma: no branch - trivial selection
    try:
        from repro.sim import _ccore  # type: ignore[attr-defined]
    except ImportError:
        _ccore = None
    ACCELERATED = _ccore is not None

if _ccore is not None:
    Delay = _ccore.Delay
    Engine = _ccore.Engine
    Event = _ccore.Event
    Process = _ccore.Process
else:
    from repro.sim.engine import Engine
    from repro.sim.process import Delay, Event, Process


def any_of(engine: Engine, events: Iterable[Event],
           name: str = "any_of") -> Event:
    """An event that settles when the first of ``events`` settles.

    Succeeds with ``(index, value)`` of the first successful event, or
    fails with the first failure. Remaining events are left untouched.
    """
    combined = Event(engine, name)
    entries = list(events)

    def make_cb(index: int) -> Callable[[Event], None]:
        def cb(ev: Event) -> None:
            if combined.settled:
                return
            if ev.failed:
                combined.fail(ev.value)
            else:
                combined.succeed((index, ev.value))
        return cb

    for i, ev in enumerate(entries):
        ev.add_callback(make_cb(i))
        if combined.settled:
            break
    return combined


def timeout_wait(engine: Engine, event: Event, timeout: float):
    """Wait on ``event`` for at most ``timeout`` time.

    A generator helper (use with ``yield from``). Returns ``(True,
    value)`` if the event succeeded in time, ``(False, None)`` on
    timeout. Event *failures* are re-raised.
    """
    # Hand-rolled two-way any_of: one Event and two closures instead of
    # the timer Event + any_of machinery (this sits on the hot path of
    # every synchronous remote operation). Settling order is identical:
    # the timer action settles `combined` directly at the same engine
    # slot where it used to settle the timer event.
    if event._settled:
        # Same outcome add_callback would deliver synchronously, minus
        # the timer entry (which would be cancelled before firing).
        if event._ok:
            return True, event._value
        raise event._value
    combined = Event(engine, "timeout_wait")

    def on_timer() -> None:
        if not combined._settled:
            combined.succeed((1, None))

    handle = engine.schedule(timeout, on_timer)

    def on_event(ev: Event) -> None:
        if combined._settled:
            return
        if ev.failed:
            combined.fail(ev.value)
        else:
            combined.succeed((0, ev.value))

    event.add_callback(on_event)
    index, value = yield combined
    if index == 0:
        handle[3] = None  # cancel the timer's scheduler entry
        return True, value
    return False, None
