"""Discrete-event simulation engine.

The engine is a classic event-list simulator: a priority queue of
``(time, priority, sequence, action)`` entries processed in order.
Simulated entities are :class:`~repro.sim.process.Process` objects built
from Python generators; the engine only knows about scheduled callbacks,
which keeps this module tiny and easy to reason about.

Determinism: ties in time are broken first by an explicit priority and
then by insertion order (a monotone sequence number), so two runs with
the same seed produce identical event orderings.

This module is the pure-Python reference implementation of the hot
core. When the optional compiled extension is built, the public names
are re-exported through :mod:`repro.sim._core`, which transparently
swaps in the accelerated versions (same semantics, bit-identical event
order); ``REPRO_PURE=1`` forces this reference path.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable, List, Optional

from repro.errors import SimulationError

_heappush = heapq.heappush

#: Default priority for scheduled events. Lower runs first at equal times.
PRIORITY_NORMAL = 10
#: Priority used by failure injection so that a node death at time t is
#: observed by every other event scheduled at t.
PRIORITY_URGENT = 0
#: Priority for bookkeeping that must run after normal events at a time.
PRIORITY_LATE = 20

# Scheduler entries are plain lists ``[time, priority, seq, action]``
# (passive metronome ticks carry a fifth ``True`` element). Lists
# heap-compare elementwise at C speed and ``seq`` is unique, so a
# comparison never reaches the action. Cancellation clears slot 3 in
# place (``entry[3] = None``) -- no per-event handle object exists at
# all, which removes one allocation + two attribute writes from every
# schedule and a ``.cancelled`` attribute load from every dispatch.
# (An earlier revision allocated a ``_ScheduledEvent`` handle per entry;
# profiles of full runs showed the handle churn at ~125k allocations per
# lock-handoff bench.)

#: Index of the action slot in a scheduler entry (``None`` = cancelled).
ENTRY_ACTION = 3


class Engine:
    """The simulation clock and event list.

    Typical use::

        engine = Engine()
        engine.spawn(my_generator())
        engine.run()
        print(engine.now)

    ``schedule``/``schedule_now``/``schedule_at`` return the scheduler
    entry itself as a cancellation handle; pass it to :meth:`cancel`.
    """

    __slots__ = ("_heap", "_fifo", "_seq", "_now", "_running",
                 "events_executed")

    def __init__(self) -> None:
        #: Heap of [time, priority, seq, action] lists.
        self._heap: list = []
        #: Zero-delay PRIORITY_NORMAL entries, same layout. Their
        #: times are non-decreasing (``now`` never goes backwards) and
        #: their seqs strictly increase, so the deque is already sorted
        #: by (time, priority, seq): ``run`` merges it with the heap by
        #: comparing heads, which preserves the exact total order while
        #: replacing an O(log n) heap push/pop with O(1) deque ops for
        #: the most common schedule (event wakeups).
        self._fifo: deque = deque()
        # Bound ``__next__`` dodges the ``next()`` builtin call in
        # ``schedule`` -- the single hottest function in full runs.
        self._seq = itertools.count().__next__
        self._now = 0.0
        self._running = False
        #: Number of events executed so far (for diagnostics / tests).
        self.events_executed = 0

    @property
    def now(self) -> float:
        """Current simulated time (microseconds by library convention)."""
        return self._now

    def schedule(self, delay: float, action: Callable[[], None],
                 priority: int = PRIORITY_NORMAL) -> List[Any]:
        """Schedule ``action()`` to run ``delay`` time units from now.

        Returns a handle accepted by :meth:`cancel`.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        entry = [self._now + delay, priority, self._seq(), action]
        if delay == 0.0 and priority == PRIORITY_NORMAL:
            self._fifo.append(entry)
        else:
            _heappush(self._heap, entry)
        return entry

    def schedule_now(self, action: Callable[[], None]) -> List[Any]:
        """``schedule(0.0, action)`` without the generic checks.

        The zero-delay PRIORITY_NORMAL resume is the single most common
        schedule (every event wakeup); this entry point skips the
        negative-delay guard and the dispatch branch. The event-list
        slot is identical to what ``schedule`` would produce.
        """
        entry = [self._now, PRIORITY_NORMAL, self._seq(), action]
        self._fifo.append(entry)
        return entry

    def schedule_at(self, time: float, action: Callable[[], None],
                    priority: int = PRIORITY_NORMAL) -> List[Any]:
        """Schedule ``action()`` at an absolute simulated time."""
        return self.schedule(time - self._now, action, priority)

    @staticmethod
    def cancel(handle: List[Any]) -> None:
        """Prevent a scheduled action from running.

        The event-list entry is left in place and lazily discarded.
        """
        handle[3] = None

    def spawn(self, generator: Any, name: str = "process") -> "Process":
        """Create and start a :class:`Process` running ``generator``."""
        # Imported here to avoid a circular import at module load.
        from repro.sim.process import Process
        return Process(self, generator, name=name)

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run events until the list drains, ``until`` passes, or
        ``max_events`` have executed.

        ``until`` is inclusive: events scheduled exactly at ``until`` run.
        """
        if self._running:
            raise SimulationError("engine.run() is not reentrant")
        self._running = True
        executed = 0
        # Hot loop: localize the queues and heappop to dodge repeated
        # attribute/global lookups (measurable at millions of events).
        heap = self._heap
        fifo = self._fifo
        heappop = heapq.heappop
        popleft = fifo.popleft
        try:
            if until is None and max_events is None:
                # Full-run case (every application run): the same loop
                # minus the two per-event bound checks.
                while True:
                    # Two sorted sources: take whichever head has the
                    # smaller (time, priority, seq) -- seq is unique,
                    # so the compare never reaches the actions.
                    if fifo:
                        if heap and heap[0] < fifo[0]:
                            entry = heappop(heap)
                        else:
                            entry = popleft()
                    elif heap:
                        entry = heappop(heap)
                    else:
                        break
                    action = entry[3]
                    if action is None:
                        continue
                    time = entry[0]
                    if time < self._now:
                        raise SimulationError(
                            "event list went backwards in time")
                    self._now = time
                    action()
                    self.events_executed += 1
                return
            while heap or fifo:
                use_fifo = bool(fifo) and (not heap or fifo[0] < heap[0])
                entry = fifo[0] if use_fifo else heap[0]
                action = entry[3]
                if action is None:
                    popleft() if use_fifo else heappop(heap)
                    continue
                time = entry[0]
                if until is not None and time > until:
                    self._now = until
                    return
                popleft() if use_fifo else heappop(heap)
                if time < self._now:
                    raise SimulationError("event list went backwards in time")
                self._now = time
                action()
                self.events_executed += 1
                executed += 1
                if max_events is not None and executed >= max_events:
                    return
            if until is not None:
                self._now = max(self._now, until)
        finally:
            self._running = False

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the list is empty."""
        while self._heap and self._heap[0][3] is None:
            heapq.heappop(self._heap)
        while self._fifo and self._fifo[0][3] is None:
            self._fifo.popleft()
        heads = [q[0][0] for q in (self._heap, self._fifo) if q]
        return min(heads) if heads else None

    @property
    def queue_depth(self) -> int:
        """Number of pending (non-cancelled) entries in the event list.

        An observability gauge: cancelled entries are lazily discarded
        by ``run``/``peek``, so subtract them rather than scanning."""
        return sum(1 for entry in self._heap if entry[3] is not None) \
            + sum(1 for entry in self._fifo if entry[3] is not None)

    def metronome(self, period: float, action: Callable[[], None],
                  priority: int = PRIORITY_LATE) -> None:
        """Run ``action()`` every ``period`` time units while the
        simulation is still live.

        The next tick is armed only while *active* (non-metronome)
        events remain pending, so a metronome never keeps ``run()``
        from draining the event list -- a plain self-rescheduling event
        would tick forever, and two metronomes gating only on "is the
        heap non-empty" would keep each other alive. Ticks run at
        ``PRIORITY_LATE`` by default so samplers observe the state
        *after* the normal events of their timestamp. Passive entries
        are marked with a fifth ``True`` element (list compares stop at
        the unique seq, so mixed lengths never matter).
        """
        if period <= 0:
            raise SimulationError(f"metronome period must be > 0: {period}")

        def has_active_pending() -> bool:
            return any(entry[3] is not None and len(entry) == 4
                       for queue in (self._heap, self._fifo)
                       for entry in queue)

        def tick() -> None:
            action()
            if has_active_pending():
                self.schedule(period, tick, priority).append(True)

        self.schedule(period, tick, priority).append(True)
