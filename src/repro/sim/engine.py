"""Discrete-event simulation engine.

The engine is a classic event-list simulator: a priority queue of
``(time, priority, sequence, action)`` entries processed in order.
Simulated entities are :class:`~repro.sim.process.Process` objects built
from Python generators; the engine only knows about scheduled callbacks,
which keeps this module tiny and easy to reason about.

Determinism: ties in time are broken first by an explicit priority and
then by insertion order (a monotone sequence number), so two runs with
the same seed produce identical event orderings.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

from repro.errors import SimulationError

#: Default priority for scheduled events. Lower runs first at equal times.
PRIORITY_NORMAL = 10
#: Priority used by failure injection so that a node death at time t is
#: observed by every other event scheduled at t.
PRIORITY_URGENT = 0
#: Priority for bookkeeping that must run after normal events at a time.
PRIORITY_LATE = 20


class _ScheduledEvent:
    """A cancellable entry in the event list."""

    __slots__ = ("time", "priority", "seq", "action", "cancelled")

    def __init__(self, time: float, priority: int, seq: int,
                 action: Callable[[], None]) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.action = action
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the action from running; the heap entry is left lazily."""
        self.cancelled = True

    def __lt__(self, other: "_ScheduledEvent") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time, other.priority, other.seq)


class Engine:
    """The simulation clock and event list.

    Typical use::

        engine = Engine()
        engine.spawn(my_generator())
        engine.run()
        print(engine.now)
    """

    def __init__(self) -> None:
        self._heap: list[_ScheduledEvent] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        #: Number of events executed so far (for diagnostics / tests).
        self.events_executed = 0

    @property
    def now(self) -> float:
        """Current simulated time (microseconds by library convention)."""
        return self._now

    def schedule(self, delay: float, action: Callable[[], None],
                 priority: int = PRIORITY_NORMAL) -> _ScheduledEvent:
        """Schedule ``action()`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        ev = _ScheduledEvent(self._now + delay, priority, next(self._seq), action)
        heapq.heappush(self._heap, ev)
        return ev

    def schedule_at(self, time: float, action: Callable[[], None],
                    priority: int = PRIORITY_NORMAL) -> _ScheduledEvent:
        """Schedule ``action()`` at an absolute simulated time."""
        return self.schedule(time - self._now, action, priority)

    def spawn(self, generator: Any, name: str = "process") -> "Process":
        """Create and start a :class:`Process` running ``generator``."""
        # Imported here to avoid a circular import at module load.
        from repro.sim.process import Process
        return Process(self, generator, name=name)

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run events until the list drains, ``until`` passes, or
        ``max_events`` have executed.

        ``until`` is inclusive: events scheduled exactly at ``until`` run.
        """
        if self._running:
            raise SimulationError("engine.run() is not reentrant")
        self._running = True
        executed = 0
        try:
            while self._heap:
                ev = self._heap[0]
                if ev.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and ev.time > until:
                    self._now = until
                    return
                heapq.heappop(self._heap)
                if ev.time < self._now:
                    raise SimulationError("event list went backwards in time")
                self._now = ev.time
                ev.action()
                self.events_executed += 1
                executed += 1
                if max_events is not None and executed >= max_events:
                    return
            if until is not None:
                self._now = max(self._now, until)
        finally:
            self._running = False

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the list is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None
