"""Minimal deterministic discrete-event simulation kernel.

Public surface::

    from repro.sim import Engine, Process, Event, Delay, Mutex, Resource, Store
"""

from repro.sim.engine import (
    Engine,
    PRIORITY_LATE,
    PRIORITY_NORMAL,
    PRIORITY_URGENT,
)
from repro.sim.process import (
    Delay,
    Event,
    Interrupted,
    Process,
    ProcessKilled,
    any_of,
    timeout_wait,
)
from repro.sim.resources import Mutex, Resource, Store

__all__ = [
    "Engine",
    "Process",
    "ProcessKilled",
    "Interrupted",
    "Event",
    "Delay",
    "any_of",
    "timeout_wait",
    "Mutex",
    "Resource",
    "Store",
    "PRIORITY_URGENT",
    "PRIORITY_NORMAL",
    "PRIORITY_LATE",
]
