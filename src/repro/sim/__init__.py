"""Minimal deterministic discrete-event simulation kernel.

Public surface::

    from repro.sim import Engine, Process, Event, Delay, Mutex, Resource, Store

Two interchangeable implementations sit behind these names: the
pure-Python reference (:mod:`repro.sim.engine` /
:mod:`repro.sim.process`) and an optional compiled core
(:mod:`repro.sim._ccore`).  :mod:`repro.sim._core` selects between
them (``REPRO_PURE=1`` forces the reference path); both produce
bit-identical simulated behaviour.  :data:`ACCELERATED` reports which
one is live.
"""

from repro.sim._core import (
    ACCELERATED,
    Delay,
    Engine,
    Event,
    Process,
    any_of,
    timeout_wait,
)
from repro.sim.engine import (
    PRIORITY_LATE,
    PRIORITY_NORMAL,
    PRIORITY_URGENT,
)
from repro.sim.process import Interrupted, ProcessKilled
from repro.sim.resources import Mutex, Resource, Store

__all__ = [
    "ACCELERATED",
    "Engine",
    "Process",
    "ProcessKilled",
    "Interrupted",
    "Event",
    "Delay",
    "any_of",
    "timeout_wait",
    "Mutex",
    "Resource",
    "Store",
    "PRIORITY_URGENT",
    "PRIORITY_NORMAL",
    "PRIORITY_LATE",
]
