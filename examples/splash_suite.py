#!/usr/bin/env python
"""Run the paper's SPLASH-2 suite: base vs extended protocol.

Reproduces the headline comparison of section 5.3 on the simulated
8-node cluster: per-application execution time under the original
GeNIMA protocol (0) and the fault-tolerant extended protocol (1), with
the four-component breakdown of Figure 7.

Run:  python examples/splash_suite.py            (bench scale, ~1 min)
      python examples/splash_suite.py test       (small, seconds)
"""

import sys

from repro.harness.experiments import APP_ORDER, run_app
from repro.metrics import format_breakdown_table


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "bench"
    rows = {}
    overheads = {}
    for app in APP_ORDER:
        base = run_app(app, "base", scale=scale)
        extended = run_app(app, "ft", scale=scale)
        rows[f"{app}/0"] = base.breakdown.four_component()
        rows[f"{app}/1"] = extended.breakdown.four_component()
        overheads[app] = (extended.elapsed_us / base.elapsed_us - 1) * 100

    print(format_breakdown_table(
        f"SPLASH-2 suite, 8 nodes x 1 thread, scale={scale!r} "
        "(0 = base, 1 = extended)",
        rows, ("compute", "data_wait", "lock", "barrier")))
    print("\nfailure-free overhead of the extended protocol:")
    for app, pct in overheads.items():
        bar = "#" * int(pct / 2)
        print(f"  {app:12s} {pct:6.1f}%  {bar}")
    print("\n(paper reports 20%-67% across the same applications at "
          "this configuration)")


if __name__ == "__main__":
    main()
