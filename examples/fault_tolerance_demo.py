#!/usr/bin/env python
"""Fault-tolerance demo: kill a node mid-run and watch recovery.

Runs Water-Nsquared (lock-heavy molecular dynamics) under the extended
protocol on 4 simulated nodes, fail-stops node 2 in the middle of its
third release -- during diff propagation, the paper's most delicate
window -- and prints the recovery timeline:

* detection (a communication error or heart-beat timeout),
* the global rendezvous,
* home reconfiguration / replica reconciliation,
* the failed node's threads resuming on their backup node.

The run finishes on 3 nodes and the final positions/velocities are
verified against a serial reference, so this demo is falsifiable:
any recovery bug makes it crash.

Run:  python examples/fault_tolerance_demo.py
"""

from repro.apps import WaterNsquared
from repro.cluster import FailureInjector, Hooks
from repro.config import ClusterConfig, MemoryParams, ProtocolParams
from repro.harness import SvmRuntime


def main() -> None:
    config = ClusterConfig(
        num_nodes=4,
        threads_per_node=1,
        shared_pages=256,
        num_locks=128,
        num_barriers=8,
        memory=MemoryParams(page_size=512),
        protocol=ProtocolParams(variant="ft", lock_algorithm="polling"),
    )
    workload = WaterNsquared(molecules=32, steps=2)
    runtime = SvmRuntime(config, workload)

    injector = FailureInjector(runtime.cluster)
    victim = 2
    injector.kill_on_hook(victim, Hooks.RELEASE_COMMITTED,
                          occurrence=3, delay=2.0)

    timeline = []

    def log(event):
        def hook(node_id, **info):
            timeline.append((runtime.engine.now, event, node_id, info))
        return hook

    for name in (Hooks.FAILURE_DETECTED, Hooks.RECOVERY_START,
                 Hooks.THREAD_RESUMED, Hooks.RECOVERY_DONE):
        runtime.cluster.hooks.on(name, log(name))

    print(f"running Water-Nsquared on 4 nodes; node {victim} will "
          "fail-stop during its 3rd release...\n")
    result = runtime.run()  # verifies against the serial reference

    print("recovery timeline (simulated microseconds):")
    for t, event, node_id, info in timeline:
        extra = ""
        if event == Hooks.RECOVERY_DONE:
            extra = f"  (recovery took {info['duration_us']:.1f}us)"
        if event == Hooks.THREAD_RESUMED:
            extra = f"  (thread {info['tid']} now on node {node_id})"
        print(f"  {t:10.1f}  {event:18s} node={node_id}{extra}")

    print(f"\nrun finished at {runtime.engine.now:.0f}us with "
          f"{result.recoveries} recovery")
    print(f"live nodes at the end: {runtime.cluster.live_nodes()}")
    migrated = [rec.tid for rec in runtime.threads if rec.resumptions]
    print(f"threads migrated to backup node: {migrated}")
    print("application result verified against the serial reference: OK")


if __name__ == "__main__":
    main()
