#!/usr/bin/env python
"""Quickstart: a shared counter on a simulated 4-node SVM cluster.

Demonstrates the core public API:

* define a workload (an SPMD kernel over shared virtual memory),
* run it under the base GeNIMA protocol and under the fault-tolerant
  extended protocol,
* read the execution-time breakdown the paper's figures use.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.apps.base import Workload
from repro.config import ClusterConfig, MemoryParams, ProtocolParams
from repro.errors import ApplicationError
from repro.harness import SvmRuntime


class SharedCounter(Workload):
    """Every thread increments one shared counter under a lock."""

    name = "shared-counter"

    def __init__(self, increments: int = 10) -> None:
        self.increments = increments
        self.cell = None

    def setup(self, runtime) -> None:
        # One 8-byte cell, homed at node 0. Homes are per page; the
        # application chooses the distribution (paper section 4.2).
        self.cell = runtime.alloc("counter", 8, home=0)

    def kernel(self, ctx):
        addr = self.cell.addr(0)
        for i in ctx.range("i", self.increments):
            yield from ctx.svm.acquire(1)
            value = yield from ctx.svm.read_i64(addr)
            yield from ctx.svm.compute(2.0)  # 2us of "work"
            yield from ctx.svm.write_i64(addr, value + 1)
            ctx.state["i"] = i + 1  # checkpoint contract for RMW
            yield from ctx.svm.release(1)
        yield from ctx.barrier(self.BARRIER_A)

    def verify(self, runtime) -> None:
        got = runtime.debug_read_array(self.cell.addr(0), np.int64, 1)[0]
        want = self.increments * runtime.config.total_threads
        if got != want:
            raise ApplicationError(f"counter {got} != {want}")


def run(variant: str):
    config = ClusterConfig(
        num_nodes=4,
        threads_per_node=1,
        shared_pages=64,
        num_locks=16,
        num_barriers=8,
        memory=MemoryParams(page_size=512),
        protocol=ProtocolParams(variant=variant),
    )
    runtime = SvmRuntime(config, SharedCounter())
    return runtime.run()  # verifies the counter on the way out


def main() -> None:
    base = run("base")
    extended = run("ft")
    print("shared counter on 4 simulated nodes -- both results verified\n")
    print(f"{'component':16s}{'base (us)':>12s}{'extended (us)':>15s}")
    b6 = base.breakdown.six_component()
    e6 = extended.breakdown.six_component()
    for component in b6:
        print(f"{component:16s}{b6[component]:12.1f}{e6[component]:15.1f}")
    print(f"{'total':16s}{base.elapsed_us:12.1f}{extended.elapsed_us:15.1f}")
    overhead = (extended.elapsed_us / base.elapsed_us - 1) * 100
    print(f"\nfault-tolerance overhead in the failure-free case: "
          f"{overhead:.0f}%")
    print(f"checkpoints taken by the extended protocol: "
          f"{extended.counters.total.checkpoints}")


if __name__ == "__main__":
    main()
