#!/usr/bin/env python
"""Writing your own workload: a pipelined producer/consumer.

Shows the full Workload API surface, including the recovery replay
contract for kernels: persistent loop state via ``ctx.range``, one-shot
phases via ``ctx.pending``/``ctx.done``, and the advance-before-release
rule for read-modify-write critical sections. The same kernel runs
unchanged under the base protocol and the fault-tolerant one -- here we
additionally inject a failure to show the custom kernel recovering.

Run:  python examples/custom_workload.py
"""

import numpy as np

from repro.apps.base import Workload
from repro.cluster import FailureInjector, Hooks
from repro.config import ClusterConfig, MemoryParams, ProtocolParams
from repro.errors import ApplicationError
from repro.harness import SvmRuntime


class Pipeline(Workload):
    """Thread t transforms stage t of a pipeline over a shared array.

    Stage 0 seeds the data; each later stage reads its predecessor's
    output and applies a deterministic transform; barriers separate the
    stages. The final stage's output is checked against a serial
    computation.
    """

    name = "pipeline"

    def __init__(self, items: int = 64, rounds: int = 3) -> None:
        self.items = items
        self.rounds = rounds
        self.data = None

    def setup(self, runtime) -> None:
        # One row of items per pipeline stage (= per thread), homed at
        # the stage's node so writes are owner-local.
        total = runtime.config.total_threads
        self.data = runtime.alloc("pipe", total * self.items * 8,
                                  home="block")

    def _row(self, stage: int) -> int:
        return self.data.addr(stage * self.items * 8)

    @staticmethod
    def transform(values: np.ndarray, stage: int) -> np.ndarray:
        return values * 2 + stage

    def kernel(self, ctx):
        for r in ctx.range("round", self.rounds):
            if ctx.pending(("work", r)):
                if ctx.tid == 0:
                    seed = np.arange(self.items, dtype=np.int64) + r
                    yield from ctx.svm.write_array(self._row(0), seed)
                ctx.done(("work", r))
            yield from ctx.barrier(self.BARRIER_A, key=r)
            # Stage t waits for stage t-1's output of this round: the
            # barriers order the stages within a round.
            for stage in range(1, ctx.nthreads):
                if ctx.tid == stage and ctx.pending(("stage", r, stage)):
                    prev = yield from ctx.svm.read_array(
                        self._row(stage - 1), np.int64, self.items)
                    yield from ctx.svm.compute(15.0)
                    yield from ctx.svm.write_array(
                        self._row(stage), self.transform(prev, stage))
                    ctx.done(("stage", r, stage))
                yield from ctx.barrier(self.BARRIER_B, key=(r, stage))
        return None

    def verify(self, runtime) -> None:
        total = runtime.config.total_threads
        last_round = self.rounds - 1
        values = np.arange(self.items, dtype=np.int64) + last_round
        for stage in range(1, total):
            values = self.transform(values, stage)
        got = runtime.debug_read_array(self._row(total - 1), np.int64,
                                       self.items)
        if not np.array_equal(got, values):
            raise ApplicationError("pipeline output mismatch")


def main() -> None:
    config = ClusterConfig(
        num_nodes=4, threads_per_node=1, shared_pages=64,
        num_locks=16, num_barriers=8,
        memory=MemoryParams(page_size=512),
        protocol=ProtocolParams(variant="ft"),
    )
    runtime = SvmRuntime(config, Pipeline())
    # Kill stage 1's node in the middle of the second round.
    FailureInjector(runtime.cluster).kill_on_hook(
        1, Hooks.BARRIER_ENTER, occurrence=5, delay=1.0)
    result = runtime.run()
    print("custom pipeline workload finished and verified")
    print(f"  recoveries: {result.recoveries}")
    print(f"  live nodes: {runtime.cluster.live_nodes()}")
    print(f"  simulated time: {runtime.engine.now:.0f}us")
    six = result.breakdown.six_component()
    total = sum(six.values())
    print("  breakdown: " + ", ".join(
        f"{k} {v / total * 100:.0f}%" for k, v in six.items() if v))


if __name__ == "__main__":
    main()
