#!/usr/bin/env python
"""Watching the two-phase protocol work: event tracing + bar charts.

Runs the server-style KVStore workload under the extended protocol,
records every protocol event with the tracer, verifies the two-phase
invariants from the recorded ordering, and renders the execution-time
breakdown as the paper-style stacked bars.

Run:  python examples/protocol_trace.py
"""

from repro.apps import KVStore
from repro.cluster import Hooks
from repro.config import ClusterConfig, MemoryParams, ProtocolParams
from repro.harness import SvmRuntime
from repro.metrics import ProtocolTrace, stacked_bars
from repro.metrics.latency import LOCK_WAIT, PAGE_FAULT


def main() -> None:
    config = ClusterConfig(
        num_nodes=4, threads_per_node=1, shared_pages=64,
        num_locks=64, num_barriers=8,
        memory=MemoryParams(page_size=512),
        protocol=ProtocolParams(variant="ft"))
    runtime = SvmRuntime(config, KVStore(buckets=16, txns_per_thread=5))
    trace = ProtocolTrace(runtime.cluster)
    result = runtime.run()

    print("=== one release, as recorded by the tracer ===")
    start = trace.first(Hooks.RELEASE_COMMITTED)
    window = trace.between(start.time_us, start.time_us + 120.0)
    for event in window[:14]:
        print(f"  {event}")

    print("\n=== two-phase invariants, checked on the full trace ===")
    for earlier, later, meaning in (
        (Hooks.RELEASE_COMMITTED, Hooks.DIFF_PHASE1_DONE,
         "commit precedes phase 1 completion"),
        (Hooks.DIFF_PHASE1_DONE, Hooks.LOCK_RELEASED,
         "the lock moves only after point B"),
        (Hooks.DIFF_PHASE1_DONE, Hooks.DIFF_PHASE2_START,
         "committed copies update last"),
    ):
        trace.assert_ordering(earlier, later)
        print(f"  ok: {meaning}")

    print("\n=== breakdown (paper figure style) ===")
    six = result.breakdown.six_component()
    print(stacked_bars(
        "KVStore under the extended protocol",
        {"KVStore/1": six},
        ("compute", "data_wait", "synchronization", "diffs",
         "protocol", "checkpointing")))

    lock = result.latency.stats(LOCK_WAIT)
    fault = result.latency.stats(PAGE_FAULT)
    print(f"\nmean lock wait {lock.mean_us:.1f}us over {lock.count} "
          f"acquires; mean fault {fault.mean_us:.1f}us over "
          f"{fault.count} faults")
    print(f"checkpoints: {result.counters.total.checkpoints}, "
          f"diff messages: {result.counters.total.diff_messages}")
    print("\ntransactional result verified against serial replay: OK")


if __name__ == "__main__":
    main()
