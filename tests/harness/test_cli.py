"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "FFT" in out
    assert "WaterNsq" in out


def test_run_command_test_scale(capsys):
    assert main(["run", "Volrend", "--scale", "test",
                 "--variant", "ft"]) == 0
    out = capsys.readouterr().out
    assert "simulated execution time" in out
    assert "checkpoints" in out


def test_run_command_base_variant(capsys):
    assert main(["run", "Volrend", "--scale", "test",
                 "--variant", "base"]) == 0
    out = capsys.readouterr().out
    assert "checkpoints 0" in out


def test_recover_command(capsys):
    assert main(["recover", "--app", "Volrend", "--scale", "test",
                 "--victim", "2", "--occurrence", "2"]) == 0
    out = capsys.readouterr().out
    assert "recoveries: 1" in out
    assert "recovery_done" in out


def test_figures_command(tmp_path, capsys):
    assert main(["figures", "--scale", "test",
                 "--output", str(tmp_path)]) == 0
    for name in ("fig7", "fig8", "fig9", "fig10"):
        text = (tmp_path / f"{name}.txt").read_text()
        assert "FFT/0" in text
        assert "FFT/1" in text


def test_parser_rejects_unknown_app():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "NotAnApp"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_profile_command(capsys):
    assert main(["profile", "Volrend", "--scale", "test"]) == 0
    out = capsys.readouterr().out
    assert "sharing profile" in out
    assert "lock_wait" in out
