"""Tests for the experiment harness configuration layer."""

import pytest

from repro.config import ClusterConfig
from repro.errors import ConfigError
from repro.harness.experiments import (
    APP_ORDER,
    evaluation_config,
    run_app,
    workload_factories,
)


def test_all_paper_apps_present_at_every_scale():
    for scale in ("test", "bench", "large"):
        factories = workload_factories(scale)
        assert set(factories) == set(APP_ORDER)
        for name, factory in factories.items():
            workload = factory()
            assert workload.name == name


def test_unknown_scale_rejected():
    with pytest.raises(ValueError):
        workload_factories("huge")


def test_evaluation_config_matches_paper_testbed():
    config = evaluation_config("ft", threads_per_node=2)
    assert config.num_nodes == 8
    assert config.threads_per_node == 2
    assert config.protocol.is_ft
    assert config.protocol.lock_algorithm == "polling"


def test_evaluation_config_protocol_overrides():
    config = evaluation_config("ft", checkpointing=False,
                               batch_diffs=True)
    assert not config.protocol.checkpointing
    assert config.protocol.batch_diffs


def test_run_app_returns_result(capsys):
    result = run_app("Volrend", "base", scale="test")
    assert result.elapsed_us > 0
    assert result.recoveries == 0


def test_run_app_deterministic_per_seed():
    a = run_app("Volrend", "ft", scale="test", seed=9)
    b = run_app("Volrend", "ft", scale="test", seed=9)
    assert a.elapsed_us == b.elapsed_us
    c = run_app("Volrend", "ft", scale="test", seed=10)
    assert c.elapsed_us != a.elapsed_us


def test_config_validation_still_guards():
    with pytest.raises(ConfigError):
        ClusterConfig(num_nodes=0)
    with pytest.raises(ConfigError):
        ClusterConfig(shared_pages=0)


def test_with_protocol_copies():
    config = evaluation_config("base")
    ft = config.with_protocol("ft")
    assert not config.protocol.is_ft
    assert ft.protocol.is_ft
    assert ft.num_nodes == config.num_nodes
