"""Tests for declarative fault plans."""

import random

import pytest

from repro.cluster import Hooks
from repro.config import ClusterConfig, MemoryParams, ProtocolParams
from repro.errors import ConfigError
from repro.harness import SvmRuntime
from repro.harness.faultplan import FailureSpec, FaultPlan
from tests.protocol.test_base_integration import MigratoryData


def ft_runtime(rounds=12, num_nodes=4, seed=3):
    config = ClusterConfig(
        num_nodes=num_nodes, threads_per_node=1, shared_pages=64,
        num_locks=64, num_barriers=8, seed=seed,
        memory=MemoryParams(page_size=512),
        protocol=ProtocolParams(variant="ft"))
    return SvmRuntime(config, MigratoryData(rounds=rounds))


def test_spec_requires_exactly_one_trigger():
    with pytest.raises(ConfigError):
        FailureSpec(victim=1)
    with pytest.raises(ConfigError):
        FailureSpec(victim=1, at_time=5.0, hook=Hooks.LOCK_ACQUIRED)
    FailureSpec(victim=1, at_time=5.0)
    FailureSpec(victim=1, hook=Hooks.LOCK_ACQUIRED)


def test_describe_is_readable():
    plan = FaultPlan([
        FailureSpec(victim=2, hook=Hooks.RELEASE_COMMITTED,
                    occurrence=3, delay=1.0),
        FailureSpec(victim=1, at_time=99.0, chained=True),
    ])
    text = plan.describe()
    assert "kill node 2" in text
    assert "chained" in text


def test_single_plan_applies_and_recovers():
    runtime = ft_runtime()
    records = FaultPlan.single(
        2, Hooks.LOCK_ACQUIRED, occurrence=2, delay=0.4).apply(runtime)
    result = runtime.run()
    assert records[0].fired_at is not None
    assert result.recoveries == 1


def test_chained_plan_waits_for_recovery():
    runtime = ft_runtime(rounds=16)
    plan = FaultPlan([
        FailureSpec(victim=3, hook=Hooks.LOCK_ACQUIRED, occurrence=2,
                    delay=0.4),
        FailureSpec(victim=2, hook=Hooks.LOCK_ACQUIRED, occurrence=1,
                    delay=0.4, chained=True),
    ])
    plan.apply(runtime)
    result = runtime.run()
    assert result.recoveries == 2
    assert sorted(runtime.cluster.live_nodes()) == [0, 1]


def test_random_plan_reproducible_and_bounded():
    a = FaultPlan.random_plan(random.Random(7), num_nodes=6, failures=3)
    b = FaultPlan.random_plan(random.Random(7), num_nodes=6, failures=3)
    assert a.specs == b.specs
    victims = [s.victim for s in a.specs]
    assert len(set(victims)) == len(victims)
    # First immediate, rest chained.
    assert not a.specs[0].chained
    assert all(s.chained for s in a.specs[1:])


def test_random_plan_respects_spares_and_minimum():
    plan = FaultPlan.random_plan(random.Random(1), num_nodes=4,
                                 failures=5, spare=(0,))
    victims = {s.victim for s in plan.specs}
    assert 0 not in victims
    assert len(victims) <= 2  # 4 nodes: at most 2 may die


def test_random_plan_uses_only_the_passed_rng():
    """``random_plan`` must never consult the global ``random`` module
    (or any other ambient state): a plan is a pure function of the rng
    passed in, so sweeps and Hypothesis runs replay exactly."""
    random.seed(1234)
    expected_global = [random.random() for _ in range(4)]
    random.seed(1234)
    FaultPlan.random_plan(random.Random(99), num_nodes=6, failures=3,
                          spare=(2,))
    assert [random.random() for _ in range(4)] == expected_global


def test_random_plan_golden_533():
    """Pin the exact plan for seed 533 (the 145/1/533 regression): any
    change to candidate ordering, hook list order, or draw sequence in
    ``random_plan`` silently re-maps every pinned regression seed."""
    plan = FaultPlan.random_plan(random.Random(533), num_nodes=4,
                                 failures=2)
    assert [(s.victim, s.hook, s.occurrence, round(s.delay, 6),
             s.chained) for s in plan.specs] == [
        (3, Hooks.CHECKPOINT_A, 3, 17.463531, False),
        (0, Hooks.LOCK_ACQUIRED, 4, 7.125388, True),
    ]


def test_random_plan_runs_are_bit_deterministic():
    def run():
        runtime = ft_runtime(rounds=12, num_nodes=4, seed=3)
        FaultPlan.random_plan(random.Random(11), num_nodes=4,
                              failures=2).apply(runtime)
        result = runtime.run()
        return result.elapsed_us, result.recoveries

    assert run() == run()


def test_random_plan_end_to_end():
    runtime = ft_runtime(rounds=16, num_nodes=5, seed=8)
    plan = FaultPlan.random_plan(random.Random(11), num_nodes=5,
                                 failures=2)
    plan.apply(runtime)
    result = runtime.run()  # verify() is the oracle
    assert result.recoveries <= 2


# -- during-recovery strikes and gaps -----------------------------------------

def test_during_spec_validation():
    with pytest.raises(ConfigError):  # during requires a hook trigger
        FailureSpec(victim=1, at_time=5.0, during=True)
    with pytest.raises(ConfigError):  # during and chained conflict
        FailureSpec(victim=1, hook=Hooks.RECOVERY_START, during=True,
                    chained=True)
    with pytest.raises(ConfigError):  # min_gap needs chained
        FailureSpec(victim=1, hook=Hooks.LOCK_ACQUIRED, min_gap=5.0)
    spec = FailureSpec(victim=1, hook=Hooks.RECOVERY_START, during=True)
    assert "during recovery" in spec.describe()
    gapped = FailureSpec(victim=1, at_time=5.0, chained=True,
                         min_gap=25.0)
    assert "gap 25.0us" in gapped.describe()


def test_random_plan_draw_order_stable_at_defaults():
    """The new knobs must not consume RNG draws at their defaults, or
    every pinned regression seed re-maps."""
    base = FaultPlan.random_plan(random.Random(533), num_nodes=4,
                                 failures=2)
    extended = FaultPlan.random_plan(random.Random(533), num_nodes=4,
                                     failures=2, during_recovery_prob=0.0,
                                     min_gap_us=0.0)
    assert base.specs == extended.specs


def test_random_plan_during_prob_one_strikes_mid_recovery():
    plan = FaultPlan.random_plan(random.Random(533), num_nodes=4,
                                 failures=2, during_recovery_prob=1.0)
    first, second = plan.specs
    assert not first.during and not first.chained
    assert second.during and not second.chained
    assert second.hook == Hooks.RECOVERY_START
    assert second.occurrence == 1  # the first victim's recovery wave


def test_random_plan_min_gap_applies_to_chained_only():
    plan = FaultPlan.random_plan(random.Random(533), num_nodes=4,
                                 failures=2, min_gap_us=40.0)
    first, second = plan.specs
    assert first.min_gap == 0.0
    assert second.chained and second.min_gap == 40.0


def test_during_recovery_plan_end_to_end():
    """A second node dying inside the first recovery is absorbed into
    the same rendezvous and the run still verifies."""
    runtime = ft_runtime(rounds=16)
    plan = FaultPlan([
        FailureSpec(victim=3, hook=Hooks.LOCK_ACQUIRED, occurrence=2,
                    delay=0.4),
        FailureSpec(victim=2, hook=Hooks.RECOVERY_START, occurrence=1,
                    delay=5.0, during=True),
    ])
    records = plan.apply(runtime)
    result = runtime.run()
    assert all(r.fired_at is not None for r in records)
    assert sorted(runtime.cluster.live_nodes()) == [0, 1]
    # Both victims recovered (waves of one rendezvous or two separate
    # recoveries, depending on timing), and memory verified clean.
    assert result.recoveries == 2


def test_min_gap_delays_chained_arming():
    runtime = ft_runtime(rounds=16)
    gap = 200.0
    plan = FaultPlan([
        FailureSpec(victim=3, hook=Hooks.LOCK_ACQUIRED, occurrence=2,
                    delay=0.4),
        FailureSpec(victim=2, hook=Hooks.LOCK_ACQUIRED, occurrence=1,
                    delay=0.4, chained=True, min_gap=gap),
    ])
    plan.apply(runtime)
    done_at = {}
    runtime.cluster.hooks.on(
        Hooks.RECOVERY_DONE,
        lambda node_id, **info: done_at.setdefault(
            node_id, runtime.engine.now))
    runtime.run()
    assert 3 in done_at and 2 in done_at
    # The second kill could not even *arm* until gap us after the
    # first recovery completed.
    assert done_at[2] >= done_at[3] + gap
