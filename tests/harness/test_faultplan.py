"""Tests for declarative fault plans."""

import random

import pytest

from repro.cluster import Hooks
from repro.config import ClusterConfig, MemoryParams, ProtocolParams
from repro.errors import ConfigError
from repro.harness import SvmRuntime
from repro.harness.faultplan import FailureSpec, FaultPlan
from tests.protocol.test_base_integration import MigratoryData


def ft_runtime(rounds=12, num_nodes=4, seed=3):
    config = ClusterConfig(
        num_nodes=num_nodes, threads_per_node=1, shared_pages=64,
        num_locks=64, num_barriers=8, seed=seed,
        memory=MemoryParams(page_size=512),
        protocol=ProtocolParams(variant="ft"))
    return SvmRuntime(config, MigratoryData(rounds=rounds))


def test_spec_requires_exactly_one_trigger():
    with pytest.raises(ConfigError):
        FailureSpec(victim=1)
    with pytest.raises(ConfigError):
        FailureSpec(victim=1, at_time=5.0, hook=Hooks.LOCK_ACQUIRED)
    FailureSpec(victim=1, at_time=5.0)
    FailureSpec(victim=1, hook=Hooks.LOCK_ACQUIRED)


def test_describe_is_readable():
    plan = FaultPlan([
        FailureSpec(victim=2, hook=Hooks.RELEASE_COMMITTED,
                    occurrence=3, delay=1.0),
        FailureSpec(victim=1, at_time=99.0, chained=True),
    ])
    text = plan.describe()
    assert "kill node 2" in text
    assert "chained" in text


def test_single_plan_applies_and_recovers():
    runtime = ft_runtime()
    records = FaultPlan.single(
        2, Hooks.LOCK_ACQUIRED, occurrence=2, delay=0.4).apply(runtime)
    result = runtime.run()
    assert records[0].fired_at is not None
    assert result.recoveries == 1


def test_chained_plan_waits_for_recovery():
    runtime = ft_runtime(rounds=16)
    plan = FaultPlan([
        FailureSpec(victim=3, hook=Hooks.LOCK_ACQUIRED, occurrence=2,
                    delay=0.4),
        FailureSpec(victim=2, hook=Hooks.LOCK_ACQUIRED, occurrence=1,
                    delay=0.4, chained=True),
    ])
    plan.apply(runtime)
    result = runtime.run()
    assert result.recoveries == 2
    assert sorted(runtime.cluster.live_nodes()) == [0, 1]


def test_random_plan_reproducible_and_bounded():
    a = FaultPlan.random_plan(random.Random(7), num_nodes=6, failures=3)
    b = FaultPlan.random_plan(random.Random(7), num_nodes=6, failures=3)
    assert a.specs == b.specs
    victims = [s.victim for s in a.specs]
    assert len(set(victims)) == len(victims)
    # First immediate, rest chained.
    assert not a.specs[0].chained
    assert all(s.chained for s in a.specs[1:])


def test_random_plan_respects_spares_and_minimum():
    plan = FaultPlan.random_plan(random.Random(1), num_nodes=4,
                                 failures=5, spare=(0,))
    victims = {s.victim for s in plan.specs}
    assert 0 not in victims
    assert len(victims) <= 2  # 4 nodes: at most 2 may die


def test_random_plan_end_to_end():
    runtime = ft_runtime(rounds=16, num_nodes=5, seed=8)
    plan = FaultPlan.random_plan(random.Random(11), num_nodes=5,
                                 failures=2)
    plan.apply(runtime)
    result = runtime.run()  # verify() is the oracle
    assert result.recoveries <= 2
