"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim import Engine, PRIORITY_URGENT


def test_initial_time_is_zero():
    assert Engine().now == 0.0


def test_schedule_and_run_orders_by_time():
    engine = Engine()
    order = []
    engine.schedule(5.0, lambda: order.append("b"))
    engine.schedule(1.0, lambda: order.append("a"))
    engine.schedule(9.0, lambda: order.append("c"))
    engine.run()
    assert order == ["a", "b", "c"]
    assert engine.now == 9.0


def test_ties_break_by_insertion_order():
    engine = Engine()
    order = []
    for tag in range(5):
        engine.schedule(3.0, lambda t=tag: order.append(t))
    engine.run()
    assert order == [0, 1, 2, 3, 4]


def test_priority_beats_insertion_order():
    engine = Engine()
    order = []
    engine.schedule(3.0, lambda: order.append("normal"))
    engine.schedule(3.0, lambda: order.append("urgent"), priority=PRIORITY_URGENT)
    engine.run()
    assert order == ["urgent", "normal"]


def test_run_until_stops_clock_at_bound():
    engine = Engine()
    fired = []
    engine.schedule(10.0, lambda: fired.append(1))
    engine.run(until=4.0)
    assert fired == []
    assert engine.now == 4.0
    engine.run()
    assert fired == [1]


def test_run_until_is_inclusive():
    engine = Engine()
    fired = []
    engine.schedule(4.0, lambda: fired.append(1))
    engine.run(until=4.0)
    assert fired == [1]


def test_cancelled_event_does_not_fire():
    engine = Engine()
    fired = []
    handle = engine.schedule(1.0, lambda: fired.append(1))
    engine.cancel(handle)
    engine.run()
    assert fired == []


def test_negative_delay_rejected():
    engine = Engine()
    with pytest.raises(SimulationError):
        engine.schedule(-1.0, lambda: None)


def test_schedule_at_absolute_time():
    engine = Engine()
    seen = []
    engine.schedule(2.0, lambda: engine.schedule_at(7.0, lambda: seen.append(engine.now)))
    engine.run()
    assert seen == [7.0]


def test_events_scheduled_during_run_execute():
    engine = Engine()
    order = []

    def first():
        order.append("first")
        engine.schedule(1.0, lambda: order.append("second"))

    engine.schedule(1.0, first)
    engine.run()
    assert order == ["first", "second"]
    assert engine.now == 2.0


def test_peek_returns_next_event_time():
    engine = Engine()
    assert engine.peek() is None
    handle = engine.schedule(5.0, lambda: None)
    engine.schedule(8.0, lambda: None)
    assert engine.peek() == 5.0
    engine.cancel(handle)
    assert engine.peek() == 8.0


def test_max_events_limits_execution():
    engine = Engine()
    count = []
    for i in range(10):
        engine.schedule(float(i), lambda: count.append(1))
    engine.run(max_events=3)
    assert len(count) == 3


def test_metronome_ticks_while_work_remains():
    engine = Engine()
    ticks = []
    engine.metronome(10.0, lambda: ticks.append(engine.now))
    engine.schedule(35.0, lambda: None)
    engine.run()
    # Ticks at 10/20/30 observe pending work; the tick that would land
    # at 40 is armed (the 35us event was pending at t=30) but finds no
    # work after it, so the metronome stops re-arming.
    assert ticks[:3] == [10.0, 20.0, 30.0]
    assert len(ticks) <= 4


def test_metronome_never_keeps_engine_alive():
    engine = Engine()
    engine.metronome(10.0, lambda: None)
    engine.schedule(5.0, lambda: None)
    engine.run()
    assert engine.now <= 20.0


def test_two_metronomes_do_not_sustain_each_other():
    # Regression: two samplers gating re-arm on "heap non-empty" each
    # saw the other's pending tick and ticked forever.
    engine = Engine()
    counts = [0, 0]

    def bump(i):
        return lambda: counts.__setitem__(i, counts[i] + 1)

    engine.metronome(10.0, bump(0))
    engine.metronome(15.0, bump(1))
    engine.schedule(40.0, lambda: None)
    engine.run(max_events=10_000)
    assert sum(counts) < 20


def test_metronome_rejects_nonpositive_period():
    with pytest.raises(SimulationError):
        Engine().metronome(0.0, lambda: None)
