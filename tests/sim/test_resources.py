"""Unit tests for Mutex, Resource, and Store primitives."""

import pytest

from repro.errors import SimulationError
from repro.sim import Delay, Engine, Mutex, Resource, Store


def test_mutex_provides_mutual_exclusion():
    engine = Engine()
    mutex = Mutex(engine)
    trace = []

    def worker(tag, hold):
        yield mutex.acquire()
        trace.append(("in", tag, engine.now))
        yield Delay(hold)
        trace.append(("out", tag, engine.now))
        mutex.release()

    engine.spawn(worker("a", 5.0))
    engine.spawn(worker("b", 3.0))
    engine.run()
    assert trace == [
        ("in", "a", 0.0), ("out", "a", 5.0),
        ("in", "b", 5.0), ("out", "b", 8.0),
    ]


def test_mutex_fifo_ordering():
    engine = Engine()
    mutex = Mutex(engine)
    order = []

    def worker(tag):
        yield mutex.acquire()
        order.append(tag)
        yield Delay(1.0)
        mutex.release()

    for tag in range(5):
        engine.spawn(worker(tag))
    engine.run()
    assert order == [0, 1, 2, 3, 4]


def test_mutex_try_acquire():
    engine = Engine()
    mutex = Mutex(engine)
    assert mutex.try_acquire()
    assert not mutex.try_acquire()
    mutex.release()
    assert mutex.try_acquire()


def test_mutex_release_unlocked_raises():
    engine = Engine()
    with pytest.raises(SimulationError):
        Mutex(engine).release()


def test_resource_capacity_limits_concurrency():
    engine = Engine()
    res = Resource(engine, capacity=2)
    active = []
    peak = []

    def worker():
        yield res.acquire()
        active.append(1)
        peak.append(len(active))
        yield Delay(10.0)
        active.pop()
        res.release()

    for _ in range(5):
        engine.spawn(worker())
    engine.run()
    assert max(peak) == 2
    assert engine.now == 30.0  # 5 jobs of 10us through 2 slots: ceil(5/2)*10


def test_resource_rejects_bad_capacity():
    with pytest.raises(SimulationError):
        Resource(Engine(), capacity=0)


def test_resource_release_when_idle_raises():
    engine = Engine()
    with pytest.raises(SimulationError):
        Resource(engine).release()


def test_store_fifo_get_put():
    engine = Engine()
    store = Store(engine)
    got = []

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    def producer():
        for i in range(3):
            yield Delay(1.0)
            yield store.put(i)

    engine.spawn(consumer())
    engine.spawn(producer())
    engine.run()
    assert got == [0, 1, 2]


def test_store_bounded_put_blocks_until_space():
    engine = Engine()
    store = Store(engine, capacity=1)
    times = []

    def producer():
        yield store.put("a")
        times.append(("a", engine.now))
        yield store.put("b")  # blocks: capacity 1
        times.append(("b", engine.now))

    def consumer():
        yield Delay(5.0)
        item = yield store.get()
        times.append(("got-" + item, engine.now))

    engine.spawn(producer())
    engine.spawn(consumer())
    engine.run()
    assert ("a", 0.0) in times
    assert ("got-a", 5.0) in times
    assert ("b", 5.0) in times


def test_store_try_put_respects_capacity():
    engine = Engine()
    store = Store(engine, capacity=2)
    assert store.try_put(1)
    assert store.try_put(2)
    assert not store.try_put(3)
    assert len(store) == 2


def test_store_get_before_put_hands_item_directly():
    engine = Engine()
    store = Store(engine)
    got = []

    def consumer():
        item = yield store.get()
        got.append((item, engine.now))

    engine.spawn(consumer())
    engine.schedule(3.0, lambda: store.put("x"))
    engine.run()
    assert got == [("x", 3.0)]


def test_store_drain_empties_queue():
    engine = Engine()
    store = Store(engine)
    for i in range(4):
        store.try_put(i)
    assert store.drain() == [0, 1, 2, 3]
    assert len(store) == 0
