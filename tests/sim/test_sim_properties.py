"""Property-based tests on the simulation kernel's core guarantees."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Delay, Engine, Mutex, Store


@given(st.lists(st.tuples(st.floats(0.0, 1000.0), st.integers(0, 100)),
                min_size=1, max_size=50))
def test_property_events_execute_in_time_order(entries):
    engine = Engine()
    fired = []
    for delay, tag in entries:
        engine.schedule(delay, lambda d=delay, t=tag: fired.append((d, t)))
    engine.run()
    times = [d for d, _t in fired]
    assert times == sorted(times)
    assert len(fired) == len(entries)


@given(st.lists(st.floats(0.1, 50.0), min_size=1, max_size=20))
def test_property_mutex_serializes_total_hold_time(holds):
    """N critical sections of given lengths through one mutex finish at
    exactly the sum of hold times (no overlap, no lost time)."""
    engine = Engine()
    mutex = Mutex(engine)
    done = []

    def worker(hold):
        yield mutex.acquire()
        yield Delay(hold)
        mutex.release()
        done.append(engine.now)

    for hold in holds:
        engine.spawn(worker(hold))
    engine.run()
    assert len(done) == len(holds)
    assert max(done) == sum(holds) or abs(max(done) - sum(holds)) < 1e-9


@given(st.lists(st.integers(0, 1000), min_size=1, max_size=40),
       st.integers(1, 8))
def test_property_store_preserves_fifo(items, capacity):
    engine = Engine()
    store = Store(engine, capacity=capacity)
    received = []

    def producer():
        for item in items:
            yield store.put(item)

    def consumer():
        for _ in items:
            value = yield store.get()
            received.append(value)

    engine.spawn(producer())
    engine.spawn(consumer())
    engine.run()
    assert received == list(items)


@given(st.integers(1, 30), st.floats(0.5, 20.0))
@settings(max_examples=30)
def test_property_determinism(n_procs, base_delay):
    """Identical process sets produce identical event traces."""
    def run_once():
        engine = Engine()
        trace = []

        def worker(tag):
            yield Delay(base_delay * (tag % 5 + 1))
            trace.append((engine.now, tag))
            yield Delay(1.0)
            trace.append((engine.now, tag))

        for tag in range(n_procs):
            engine.spawn(worker(tag))
        engine.run()
        return trace

    assert run_once() == run_once()


# -- scheduler total order ---------------------------------------------------
#
# The engine keeps zero-delay PRIORITY_NORMAL entries in a deque and
# everything else in a heap, merging the two heads by strict
# (time, priority, seq) compare. The observable contract is that this
# split is invisible: execution order equals a single heap ordered by
# (time, priority, seq), including entries scheduled from inside
# running actions and lazily cancelled ones.

import heapq
import itertools

from repro.sim import PRIORITY_LATE, PRIORITY_NORMAL, PRIORITY_URGENT

_DELAYS = st.one_of(st.just(0.0), st.floats(0.0, 10.0,
                                            allow_nan=False,
                                            allow_infinity=False))
_PRIORITIES = st.sampled_from((PRIORITY_URGENT, PRIORITY_NORMAL,
                               PRIORITY_LATE))

#: (kind, delay, priority, cancelled, children). kind "now" uses
#: schedule_now (deque path); "sched" uses schedule(), which routes to
#: the deque exactly when delay == 0 and priority == PRIORITY_NORMAL.
_CHILD = st.tuples(st.sampled_from(("sched", "now")), _DELAYS,
                   _PRIORITIES, st.booleans(), st.just(()))
_NODE = st.tuples(st.sampled_from(("sched", "now")), _DELAYS,
                  _PRIORITIES, st.booleans(),
                  st.lists(_CHILD, max_size=3).map(tuple))


def _heap_only_reference(roots):
    """Expected firing order from a single (time, priority, seq) heap.

    Sequence numbers are assigned at schedule time -- children get
    theirs when their parent fires -- mirroring the engine exactly.
    """
    seq = itertools.count()
    heap = []
    tags = itertools.count()

    def push(spec, now):
        kind, delay, priority, cancelled, children = spec
        time = now if kind == "now" else now + delay
        priority = PRIORITY_NORMAL if kind == "now" else priority
        tag = next(tags)
        heapq.heappush(heap, (time, priority, next(seq), tag,
                              cancelled, children))
        return tag

    for root in roots:
        push(root, 0.0)
    order = []
    while heap:
        time, _priority, _seq, tag, cancelled, children = heapq.heappop(heap)
        if cancelled:
            continue  # never fires, so its children are never scheduled
        order.append(tag)
        for child in children:
            push(child, time)
    return order


def _run_engine(roots):
    engine = Engine()
    fired = []
    tags = itertools.count()

    def do_schedule(spec):
        kind, delay, priority, cancelled, children = spec
        tag = next(tags)
        action = lambda t=tag, c=children: fire(t, c)
        if kind == "now":
            handle = engine.schedule_now(action)
        else:
            handle = engine.schedule(delay, action, priority=priority)
        if cancelled:
            engine.cancel(handle)
        return tag

    def fire(tag, children):
        fired.append(tag)
        for child in children:
            do_schedule(child)

    for root in roots:
        do_schedule(root)
    engine.run()
    return fired


@given(st.lists(_NODE, min_size=1, max_size=25))
@settings(max_examples=200, deadline=None)
def test_property_mixed_queues_match_heap_only_reference(roots):
    """Deque/heap mixes (with nested scheduling and lazy cancellation)
    fire in exactly the heap-only total order."""
    assert _run_engine(roots) == _heap_only_reference(roots)
