"""Property-based tests on the simulation kernel's core guarantees."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Delay, Engine, Mutex, Store


@given(st.lists(st.tuples(st.floats(0.0, 1000.0), st.integers(0, 100)),
                min_size=1, max_size=50))
def test_property_events_execute_in_time_order(entries):
    engine = Engine()
    fired = []
    for delay, tag in entries:
        engine.schedule(delay, lambda d=delay, t=tag: fired.append((d, t)))
    engine.run()
    times = [d for d, _t in fired]
    assert times == sorted(times)
    assert len(fired) == len(entries)


@given(st.lists(st.floats(0.1, 50.0), min_size=1, max_size=20))
def test_property_mutex_serializes_total_hold_time(holds):
    """N critical sections of given lengths through one mutex finish at
    exactly the sum of hold times (no overlap, no lost time)."""
    engine = Engine()
    mutex = Mutex(engine)
    done = []

    def worker(hold):
        yield mutex.acquire()
        yield Delay(hold)
        mutex.release()
        done.append(engine.now)

    for hold in holds:
        engine.spawn(worker(hold))
    engine.run()
    assert len(done) == len(holds)
    assert max(done) == sum(holds) or abs(max(done) - sum(holds)) < 1e-9


@given(st.lists(st.integers(0, 1000), min_size=1, max_size=40),
       st.integers(1, 8))
def test_property_store_preserves_fifo(items, capacity):
    engine = Engine()
    store = Store(engine, capacity=capacity)
    received = []

    def producer():
        for item in items:
            yield store.put(item)

    def consumer():
        for _ in items:
            value = yield store.get()
            received.append(value)

    engine.spawn(producer())
    engine.spawn(consumer())
    engine.run()
    assert received == list(items)


@given(st.integers(1, 30), st.floats(0.5, 20.0))
@settings(max_examples=30)
def test_property_determinism(n_procs, base_delay):
    """Identical process sets produce identical event traces."""
    def run_once():
        engine = Engine()
        trace = []

        def worker(tag):
            yield Delay(base_delay * (tag % 5 + 1))
            trace.append((engine.now, tag))
            yield Delay(1.0)
            trace.append((engine.now, tag))

        for tag in range(n_procs):
            engine.spawn(worker(tag))
        engine.run()
        return trace

    assert run_once() == run_once()
