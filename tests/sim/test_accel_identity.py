"""Pure-vs-accelerated bit-identity: the compiled core must be invisible.

:mod:`repro.sim._core` selects between the pure-Python reference
kernel and the optional compiled :mod:`repro.sim._ccore`.  The
contract is *bit-identity of simulated results*: same golden trace
digest, same same-seed figure inputs, same fault-sweep outcomes under
``REPRO_CHECK_INVARIANTS=1``.  Each comparison here runs the same
scenario in two subprocesses -- one with ``REPRO_PURE=1`` (reference
oracle), one without (compiled core when built) -- and demands
byte-identical fingerprints.

When the extension is not built the cross-build tests skip: the
selector smoke tests still run, proving the pure fallback is always
importable and is what ``REPRO_PURE=1`` selects.
"""

import importlib.util
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src"

CCORE_BUILT = importlib.util.find_spec("repro.sim._ccore") is not None
needs_ccore = pytest.mark.skipif(
    not CCORE_BUILT,
    reason="compiled core not built (python setup.py build_ext --inplace)")

# Must match tests/obs/test_recorder.py -- the committed golden digest
# for the flagship two-failure scenario.
GOLDEN_DIGEST = (
    "df466545735a9889a1c90db7d65be41511c462f2a724182e26c67bf301757901")


def _run_snippet(snippet: str, pure: bool, extra_env=None) -> dict:
    """Run ``snippet`` in a fresh interpreter and parse its JSON stdout."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    env["REPRO_PURE"] = "1" if pure else ""
    env.update(extra_env or {})
    proc = subprocess.run([sys.executable, "-c", snippet],
                          capture_output=True, text=True, env=env,
                          cwd=str(REPO), timeout=600)
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout.splitlines()[-1])


# -- selector smoke ----------------------------------------------------------

SELECTOR_SNIPPET = """
import json
import repro.sim as sim
from repro.sim import _core
print(json.dumps({
    "accelerated": sim.ACCELERATED,
    "engine_module": sim.Engine.__module__,
    "event_module": sim.Event.__module__,
    "process_module": sim.Process.__module__,
    "delay_module": sim.Delay.__module__,
}))
"""


def test_repro_pure_forces_reference_build():
    info = _run_snippet(SELECTOR_SNIPPET, pure=True)
    assert info["accelerated"] is False
    assert info["engine_module"] == "repro.sim.engine"
    assert info["process_module"] == "repro.sim.process"


@needs_ccore
def test_default_build_selects_compiled_core():
    info = _run_snippet(SELECTOR_SNIPPET, pure=False)
    assert info["accelerated"] is True
    for key in ("engine_module", "event_module", "process_module",
                "delay_module"):
        assert info[key] == "repro.sim._ccore", info


def test_all_kernel_classes_come_from_one_build():
    # Mixing pure Events with compiled Processes (or vice versa) would
    # silently break the settled-event fast path; everything must come
    # from the same selected module.
    for pure in (True, False):
        info = _run_snippet(SELECTOR_SNIPPET, pure=pure)
        modules = {info["engine_module"], info["event_module"],
                   info["process_module"], info["delay_module"]}
        if info["accelerated"]:
            assert modules == {"repro.sim._ccore"}, info
        else:
            assert modules == {"repro.sim.engine", "repro.sim.process"}, info


# -- golden trace digest -----------------------------------------------------

DIGEST_SNIPPET = """
import json
import repro.sim as sim
from repro.obs import FlightRecorder
from repro.verify.replay import ReplayScenario, build_runtime
runtime = build_runtime(ReplayScenario(program_seed=145, cluster_seed=1,
                                       plan_seed=533, failures=2))
recorder = FlightRecorder(runtime)
runtime.run()
recorder.detach()
print(json.dumps({"accelerated": sim.ACCELERATED,
                  "digest": recorder.digest()}))
"""


@needs_ccore
def test_golden_trace_digest_bit_identical():
    pure = _run_snippet(DIGEST_SNIPPET, pure=True)
    accel = _run_snippet(DIGEST_SNIPPET, pure=False)
    assert pure["accelerated"] is False
    assert accel["accelerated"] is True
    assert pure["digest"] == GOLDEN_DIGEST
    assert accel["digest"] == GOLDEN_DIGEST


# -- same-seed figure inputs -------------------------------------------------

FIGURE_SNIPPET = """
import json
import repro.sim as sim
from repro.harness.experiments import run_app
fingerprints = {}
for app in ("FFT", "LU"):
    result = run_app(app, "ft", scale="test")
    total = result.counters.total
    fingerprints[app] = {
        "elapsed_us": result.elapsed_us,
        "page_faults": total.page_faults,
        "diff_messages": total.diff_messages,
        "lock_acquires": total.lock_acquires,
        "recoveries": result.recoveries,
    }
print(json.dumps({"accelerated": sim.ACCELERATED,
                  "fingerprints": fingerprints}, sort_keys=True))
"""


@needs_ccore
def test_same_seed_figure_inputs_bit_identical():
    pure = _run_snippet(FIGURE_SNIPPET, pure=True)
    accel = _run_snippet(FIGURE_SNIPPET, pure=False)
    assert pure["fingerprints"] == accel["fingerprints"]


# -- fault sweep under invariant checking ------------------------------------

SWEEP_SNIPPET = """
import json
import repro.sim as sim
from repro.verify import RecoveryInvariantChecker
from repro.verify.replay import ReplayScenario, build_runtime
outcomes = []
for plan_seed in (11, 212, 3033):
    runtime = build_runtime(ReplayScenario(
        program_seed=91, cluster_seed=5, plan_seed=plan_seed, failures=2))
    checker = RecoveryInvariantChecker(runtime)
    result = runtime.run()
    checker.finalize()
    total = result.counters.total
    outcomes.append({
        "plan_seed": plan_seed,
        "elapsed_us": result.elapsed_us,
        "events_executed": runtime.engine.events_executed,
        "page_faults": total.page_faults,
        "recoveries": result.recoveries,
        "violations": len(checker.violations),
    })
print(json.dumps({"accelerated": sim.ACCELERATED,
                  "outcomes": outcomes}, sort_keys=True))
"""


@needs_ccore
def test_fault_sweep_bit_identical_under_invariants():
    env = {"REPRO_CHECK_INVARIANTS": "1"}
    pure = _run_snippet(SWEEP_SNIPPET, pure=True, extra_env=env)
    accel = _run_snippet(SWEEP_SNIPPET, pure=False, extra_env=env)
    assert pure["outcomes"] == accel["outcomes"]
    for outcome in pure["outcomes"]:
        assert outcome["violations"] == 0, outcome
