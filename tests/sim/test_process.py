"""Unit tests for generator-based processes and events."""

import pytest

from repro.errors import SimulationError
from repro.sim import (
    Delay,
    Engine,
    Event,
    Interrupted,
    ProcessKilled,
    any_of,
    timeout_wait,
)


def test_delay_advances_time():
    engine = Engine()
    trace = []

    def proc():
        trace.append(engine.now)
        yield Delay(10.0)
        trace.append(engine.now)
        yield 5.0  # bare numbers also work
        trace.append(engine.now)

    engine.spawn(proc())
    engine.run()
    assert trace == [0.0, 10.0, 15.0]


def test_process_done_event_carries_return_value():
    engine = Engine()

    def proc():
        yield Delay(1.0)
        return 42

    p = engine.spawn(proc())
    engine.run()
    assert p.done.triggered
    assert p.done.value == 42
    assert not p.alive


def test_yield_from_composes_suboperations():
    engine = Engine()

    def sub(n):
        yield Delay(n)
        return n * 2

    def main():
        a = yield from sub(3.0)
        b = yield from sub(4.0)
        return a + b

    p = engine.spawn(main())
    engine.run()
    assert p.done.value == 14
    assert engine.now == 7.0


def test_event_wakes_waiter_with_value():
    engine = Engine()
    ev = Event(engine)
    results = []

    def waiter():
        value = yield ev
        results.append((engine.now, value))

    engine.spawn(waiter())
    engine.schedule(6.0, lambda: ev.succeed("hello"))
    engine.run()
    assert results == [(6.0, "hello")]


def test_event_failure_raises_in_waiter():
    engine = Engine()
    ev = Event(engine)
    caught = []

    def waiter():
        try:
            yield ev
        except ValueError as exc:
            caught.append(str(exc))

    engine.spawn(waiter())
    engine.schedule(1.0, lambda: ev.fail(ValueError("boom")))
    engine.run()
    assert caught == ["boom"]


def test_waiting_on_settled_event_resumes_immediately():
    engine = Engine()
    ev = Event(engine)
    ev.succeed(7)
    results = []

    def waiter():
        value = yield ev
        results.append(value)

    engine.spawn(waiter())
    engine.run()
    assert results == [7]


def test_event_cannot_settle_twice():
    engine = Engine()
    ev = Event(engine)
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_multiple_waiters_all_wake_in_fifo_order():
    engine = Engine()
    ev = Event(engine)
    order = []

    def waiter(tag):
        yield ev
        order.append(tag)

    for tag in range(4):
        engine.spawn(waiter(tag))
    engine.schedule(1.0, lambda: ev.succeed(None))
    engine.run()
    assert order == [0, 1, 2, 3]


def test_interrupt_during_delay():
    engine = Engine()
    trace = []

    def sleeper():
        try:
            yield Delay(100.0)
            trace.append("finished")
        except Interrupted as exc:
            trace.append(("interrupted", engine.now, exc.cause))

    p = engine.spawn(sleeper())
    engine.schedule(5.0, lambda: p.interrupt("wakeup"))
    engine.run()
    assert trace == [("interrupted", 5.0, "wakeup")]


def test_interrupt_during_event_wait_detaches_from_event():
    engine = Engine()
    ev = Event(engine)
    trace = []

    def waiter():
        try:
            yield ev
        except Interrupted:
            trace.append("interrupted")
            yield Delay(1.0)
            trace.append("resumed")

    p = engine.spawn(waiter())
    engine.schedule(2.0, lambda: p.interrupt())
    engine.schedule(2.5, lambda: ev.succeed("late"))
    engine.run()
    assert trace == ["interrupted", "resumed"]


def test_kill_runs_finally_blocks():
    engine = Engine()
    cleaned = []

    def victim():
        try:
            yield Delay(100.0)
        finally:
            cleaned.append(True)

    p = engine.spawn(victim())
    engine.schedule(1.0, p.kill)
    engine.run()
    assert cleaned == [True]
    assert not p.alive
    assert p.done.failed
    assert isinstance(p.done.value, ProcessKilled)


def test_killed_process_never_resumes():
    engine = Engine()
    trace = []

    def victim():
        yield Delay(10.0)
        trace.append("should not happen")

    p = engine.spawn(victim())
    engine.schedule(1.0, p.kill)
    engine.run()
    assert trace == []


def test_process_kill_is_idempotent():
    engine = Engine()

    def victim():
        yield Delay(10.0)

    p = engine.spawn(victim())
    engine.schedule(1.0, p.kill)
    engine.schedule(2.0, p.kill)
    engine.run()
    assert not p.alive


def test_unhandled_exception_propagates_from_run():
    engine = Engine()

    def buggy():
        yield Delay(1.0)
        raise RuntimeError("bug")

    engine.spawn(buggy())
    with pytest.raises(RuntimeError, match="bug"):
        engine.run()


def test_spawn_rejects_non_generator():
    engine = Engine()
    with pytest.raises(SimulationError, match="generator"):
        engine.spawn(lambda: None)


def test_any_of_returns_first_event():
    engine = Engine()
    ev1 = Event(engine)
    ev2 = Event(engine)
    results = []

    def waiter():
        index, value = yield any_of(engine, [ev1, ev2])
        results.append((index, value, engine.now))

    engine.spawn(waiter())
    engine.schedule(3.0, lambda: ev2.succeed("two"))
    engine.schedule(5.0, lambda: ev1.succeed("one"))
    engine.run()
    assert results == [(1, "two", 3.0)]


def test_timeout_wait_success_path():
    engine = Engine()
    ev = Event(engine)
    results = []

    def waiter():
        ok, value = yield from timeout_wait(engine, ev, timeout=10.0)
        results.append((ok, value, engine.now))

    engine.spawn(waiter())
    engine.schedule(4.0, lambda: ev.succeed("data"))
    engine.run()
    assert results == [(True, "data", 4.0)]


def test_timeout_wait_timeout_path():
    engine = Engine()
    ev = Event(engine)
    results = []

    def waiter():
        ok, value = yield from timeout_wait(engine, ev, timeout=10.0)
        results.append((ok, value, engine.now))

    engine.spawn(waiter())
    engine.run()
    assert results == [(False, None, 10.0)]


def test_process_join_via_done_event():
    engine = Engine()
    trace = []

    def worker():
        yield Delay(7.0)
        return "result"

    def parent():
        child = engine.spawn(worker())
        value = yield child.done
        trace.append((engine.now, value))

    engine.spawn(parent())
    engine.run()
    assert trace == [(7.0, "result")]
