"""Unit tests for the text chart renderer."""

import pytest

from repro.metrics import overhead_bars, stacked_bars


ROWS = {
    "FFT/0": {"compute": 30.0, "data_wait": 50.0, "lock": 0.0,
              "barrier": 20.0},
    "FFT/1": {"compute": 30.0, "data_wait": 55.0, "lock": 0.0,
              "barrier": 40.0},
}
COMPONENTS = ("compute", "data_wait", "lock", "barrier")


def test_stacked_bars_have_legend_and_rows():
    text = stacked_bars("t", ROWS, COMPONENTS, width=40)
    assert "# compute" in text
    assert "FFT/0" in text and "FFT/1" in text


def test_bar_lengths_proportional_to_totals():
    text = stacked_bars("t", ROWS, COMPONENTS, width=50)
    lines = {line.split("|")[0].strip(): line.split("|")[1]
             for line in text.splitlines() if "|" in line}
    len0 = len(lines["FFT/0"].split()[0])
    len1 = len(lines["FFT/1"].split()[0])
    # FFT/1 total (125) > FFT/0 total (100): longer bar.
    assert len1 > len0
    # The longest bar spans roughly the full width.
    assert abs(len1 - 50) <= 1


def test_component_shares_within_bar():
    text = stacked_bars("t", ROWS, COMPONENTS, width=100)
    row1 = [l for l in text.splitlines() if l.startswith("FFT/1")][0]
    bar = row1.split("|")[1].split()[0]
    # data_wait ('=') is the biggest slice of FFT/1.
    assert bar.count("=") > bar.count("#")
    assert bar.count("=") > bar.count("+")


def test_zero_component_renders_nothing():
    text = stacked_bars("t", ROWS, COMPONENTS, width=50)
    row = [l for l in text.splitlines() if l.startswith("FFT/0")][0]
    assert "%" not in row.split("|")[1]  # lock is zero


def test_empty_rows_handled():
    assert "(no data)" in stacked_bars("t", {}, COMPONENTS)


def test_too_many_components_rejected():
    with pytest.raises(ValueError):
        stacked_bars("t", ROWS, tuple("abcdefghijk"))


def test_overhead_bars():
    text = overhead_bars("ovh", {"FFT": 20.0, "LU": 40.0}, width=20)
    lines = [l for l in text.splitlines() if "|" in l]
    assert len(lines) == 2
    fft = [l for l in lines if l.startswith("FFT")][0]
    lu = [l for l in lines if l.startswith("LU")][0]
    assert lu.count("#") == 2 * fft.count("#")
    assert "40.0%" in lu
