"""Unit tests for the text chart renderer."""

import pytest

from repro.metrics import overhead_bars, stacked_bars


ROWS = {
    "FFT/0": {"compute": 30.0, "data_wait": 50.0, "lock": 0.0,
              "barrier": 20.0},
    "FFT/1": {"compute": 30.0, "data_wait": 55.0, "lock": 0.0,
              "barrier": 40.0},
}
COMPONENTS = ("compute", "data_wait", "lock", "barrier")


def test_stacked_bars_have_legend_and_rows():
    text = stacked_bars("t", ROWS, COMPONENTS, width=40)
    assert "# compute" in text
    assert "FFT/0" in text and "FFT/1" in text


def test_bar_lengths_proportional_to_totals():
    text = stacked_bars("t", ROWS, COMPONENTS, width=50)
    lines = {line.split("|")[0].strip(): line.split("|")[1]
             for line in text.splitlines() if "|" in line}
    len0 = len(lines["FFT/0"].split()[0])
    len1 = len(lines["FFT/1"].split()[0])
    # FFT/1 total (125) > FFT/0 total (100): longer bar.
    assert len1 > len0
    # The longest bar spans roughly the full width.
    assert abs(len1 - 50) <= 1


def test_component_shares_within_bar():
    text = stacked_bars("t", ROWS, COMPONENTS, width=100)
    row1 = [l for l in text.splitlines() if l.startswith("FFT/1")][0]
    bar = row1.split("|")[1].split()[0]
    # data_wait ('=') is the biggest slice of FFT/1.
    assert bar.count("=") > bar.count("#")
    assert bar.count("=") > bar.count("+")


def test_zero_component_renders_nothing():
    text = stacked_bars("t", ROWS, COMPONENTS, width=50)
    row = [l for l in text.splitlines() if l.startswith("FFT/0")][0]
    assert "%" not in row.split("|")[1]  # lock is zero


def test_empty_rows_handled():
    assert "(no data)" in stacked_bars("t", {}, COMPONENTS)


def test_too_many_components_rejected():
    with pytest.raises(ValueError):
        stacked_bars("t", ROWS, tuple("abcdefghijk"))


def test_overhead_bars():
    text = overhead_bars("ovh", {"FFT": 20.0, "LU": 40.0}, width=20)
    lines = [l for l in text.splitlines() if "|" in l]
    assert len(lines) == 2
    fft = [l for l in lines if l.startswith("FFT")][0]
    lu = [l for l in lines if l.startswith("LU")][0]
    assert lu.count("#") == 2 * fft.count("#")
    assert "40.0%" in lu


def test_timeseries_panel_clamps_to_terminal_width(monkeypatch):
    from repro.metrics.charts import timeseries_panel

    monkeypatch.setenv("COLUMNS", "60")
    monkeypatch.setenv("LINES", "24")
    times = [float(t) for t in range(0, 10_000, 100)]
    series = {"messages_per_ms": [float(t % 37) for t in range(100)],
              "faults": [1.0] * 100}
    text = timeseries_panel("panel", times, series, width=120, unit="/ms")
    lines = text.splitlines()
    # Every rendered row fits the 60-column terminal despite the
    # requested 120-column sparkline.
    assert all(len(line) <= 60 for line in lines), max(map(len, lines))
    # Rows still carry a unit-suffixed peak annotation.
    assert any("peak 36/ms" in line for line in lines)


def test_timeseries_panel_peak_uses_si_units(monkeypatch):
    from repro.metrics.charts import timeseries_panel

    monkeypatch.setenv("COLUMNS", "120")
    times = [0.0, 1000.0, 2000.0]
    text = timeseries_panel(
        "panel", times,
        {"bytes": [0.0, 1.5e6, 2.0], "ops": [0.0, 12_300.0, 1.0]})
    assert "peak 1.5M" in text
    assert "peak 12.3k" in text
    assert "e+06" not in text


def test_timeseries_panel_empty():
    from repro.metrics.charts import timeseries_panel

    assert "(no samples)" in timeseries_panel("t", [], {})
