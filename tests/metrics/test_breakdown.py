"""Unit tests for the two-level time-breakdown clock."""

import pytest

from repro.errors import SimulationError
from repro.metrics import Breakdown, Category, ThreadClock
from repro.sim import Delay, Engine


def run_clocked(script):
    """Drive a generator that manipulates a clock inside an engine."""
    engine = Engine()
    clock = ThreadClock(engine)

    def proc():
        yield from script(engine, clock)
        clock.stop()

    engine.spawn(proc())
    engine.run()
    return clock


def test_time_defaults_to_compute():
    def script(engine, clock):
        yield Delay(10.0)

    clock = run_clocked(script)
    assert clock.fine[Category.COMPUTE] == 10.0
    assert clock.coarse[Category.COMPUTE] == 10.0


def test_nested_categories_fine_vs_coarse():
    """Diff work inside a barrier: barrier time in the 4-way view,
    diff time in the 6-way view (the paper's two formats)."""
    def script(engine, clock):
        clock.push(Category.BARRIER)
        yield Delay(3.0)
        clock.push(Category.DIFF)
        yield Delay(7.0)
        clock.pop(Category.DIFF)
        clock.pop(Category.BARRIER)

    clock = run_clocked(script)
    assert clock.fine[Category.BARRIER] == 3.0
    assert clock.fine[Category.DIFF] == 7.0
    assert clock.coarse[Category.BARRIER] == 10.0
    assert Category.DIFF not in clock.coarse


def test_totals_always_sum_to_elapsed():
    def script(engine, clock):
        clock.push(Category.LOCK)
        yield Delay(2.0)
        clock.push(Category.CHECKPOINT)
        yield Delay(3.0)
        clock.pop(Category.CHECKPOINT)
        clock.pop(Category.LOCK)
        yield Delay(5.0)

    clock = run_clocked(script)
    assert sum(clock.fine.values()) == pytest.approx(10.0)
    assert sum(clock.coarse.values()) == pytest.approx(10.0)


def test_pop_mismatch_raises():
    engine = Engine()
    clock = ThreadClock(engine)
    clock.push(Category.LOCK)
    with pytest.raises(SimulationError):
        clock.pop(Category.BARRIER)


def test_pop_empty_raises():
    clock = ThreadClock(Engine())
    with pytest.raises(SimulationError):
        clock.pop(Category.COMPUTE)


def test_stop_freezes_accounting():
    def script(engine, clock):
        yield Delay(4.0)
        clock.stop()
        yield Delay(6.0)  # after stop: not charged

    engine = Engine()
    clock = ThreadClock(engine)

    def proc():
        yield from script(engine, clock)

    engine.spawn(proc())
    engine.run()
    assert clock.elapsed() == 4.0


def test_reset_zeroes_and_rebases():
    engine = Engine()
    clock = ThreadClock(engine)

    def proc():
        yield Delay(5.0)
        clock.reset()
        yield Delay(3.0)
        clock.stop()

    engine.spawn(proc())
    engine.run()
    assert clock.elapsed() == 3.0


def test_restart_after_migration_resets_stack():
    engine = Engine()
    clock = ThreadClock(engine)
    clock.push(Category.LOCK)  # stack state at death
    clock.restart()
    assert clock.current is Category.COMPUTE

    def proc():
        yield Delay(2.0)
        clock.stop()

    engine.spawn(proc())
    engine.run()
    assert clock.fine[Category.COMPUTE] == pytest.approx(2.0)


def test_breakdown_merge_averages_threads():
    engine = Engine()
    c1 = ThreadClock(engine)
    c2 = ThreadClock(engine)

    def proc(clock, lock_time):
        clock.push(Category.LOCK)
        yield Delay(lock_time)
        clock.pop(Category.LOCK)
        clock.stop()

    engine.spawn(proc(c1, 10.0))
    engine.spawn(proc(c2, 20.0))
    engine.run()
    merged = Breakdown.merge([c1, c2])
    # c1 also spends 10us in COMPUTE waiting for the run to end? No:
    # both stopped at their own end; averages are (10+20)/2 for lock.
    assert merged.four_component()["lock"] == pytest.approx(15.0)


def test_four_component_folds_nested_protocol_time():
    def script(engine, clock):
        clock.push(Category.DATA_WAIT)
        clock.push(Category.PROTOCOL)
        yield Delay(4.0)
        clock.pop(Category.PROTOCOL)
        clock.pop(Category.DATA_WAIT)

    clock = run_clocked(script)
    merged = Breakdown.merge([clock])
    four = merged.four_component()
    assert four["data_wait"] == pytest.approx(4.0)
    six = merged.six_component()
    assert six["protocol"] == pytest.approx(4.0)
    assert six["data_wait"] == pytest.approx(0.0)
