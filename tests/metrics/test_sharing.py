"""Tests for the page-sharing profiler, on synthetic patterns and on
the real applications (whose patterns the paper's analysis names)."""

import pytest

from repro.apps import RadixSort, Volrend
from repro.config import ClusterConfig, MemoryParams, ProtocolParams
from repro.harness import SvmRuntime
from repro.metrics import SharingProfiler
from repro.metrics.sharing import PageProfile
from tests.protocol.test_base_integration import (
    FalseSharingWorkload,
    MigratoryData,
    NeighborExchange,
)


def profiled_run(workload, variant="base"):
    config = ClusterConfig(
        num_nodes=4, threads_per_node=1, shared_pages=64,
        num_locks=64, num_barriers=8, seed=3,
        memory=MemoryParams(page_size=512),
        protocol=ProtocolParams(variant=variant))
    runtime = SvmRuntime(config, workload)
    profiler = SharingProfiler(runtime)
    runtime.run()
    return profiler


# -- classification unit behaviour ----------------------------------------

def test_untouched_classification():
    assert PageProfile().classify() == "untouched"


def test_private_classification():
    profile = PageProfile(readers={2}, writers={2})
    assert profile.classify() == "private"


def test_read_shared_classification():
    profile = PageProfile(readers={0, 1, 3}, writers={1})
    assert profile.classify() == "read_shared"


def test_migratory_vs_false_shared():
    serialized = PageProfile(readers={0, 1}, writers={0, 1})
    assert serialized.classify() == "migratory"
    concurrent = PageProfile(readers={0, 1}, writers={0, 1},
                             concurrent_writers=True)
    assert concurrent.classify() == "false_shared"


# -- real workloads ------------------------------------------------------------

def test_migratory_workload_detected():
    wl = MigratoryData(rounds=8)
    profiler = profiled_run(wl)
    page = 0  # the single cell page (first allocated segment)
    classes = profiler.classify_all()
    cell_page = profiled = None
    # The cell segment is the only one: its page must be migratory.
    assert "migratory" in classes.values()


def test_false_sharing_workload_detected():
    profiler = profiled_run(FalseSharingWorkload())
    assert "false_shared" in profiler.classify_all().values()


def test_neighbor_exchange_is_read_shared():
    profiler = profiled_run(NeighborExchange(ints_per_thread=64))
    summary = profiler.summary()
    # Blocks written by one thread, read by its neighbour.
    assert summary.get("read_shared", 0) > 0
    assert summary.get("false_shared", 0) == 0


def test_volrend_volume_read_shared():
    wl = Volrend(image_size=8, tile=4, volume_size=8)
    profiler = profiled_run(wl)
    per_segment = profiler.segment_summary()
    volume = per_segment["vol_data"]
    # The volume is written once (by thread 0) and read by everyone.
    assert volume.get("read_shared", 0) > 0
    # The task counter bounces under the lock.
    counter = per_segment["vol_tasks"]
    assert counter.get("migratory", 0) == 1


def test_table_renders():
    profiler = profiled_run(MigratoryData(rounds=6))
    text = profiler.table()
    assert "segment" in text
    assert "migratory" in text.splitlines()[0]
