"""Tests for the protocol tracer, including happened-before invariants
of the two-phase protocol captured from real runs."""

import pytest

from repro.cluster import Hooks
from repro.config import ClusterConfig, MemoryParams, ProtocolParams
from repro.harness import SvmRuntime
from repro.metrics import ProtocolTrace
from tests.protocol.test_base_integration import MigratoryData


def ft_runtime(workload=None):
    config = ClusterConfig(
        num_nodes=4, threads_per_node=1, shared_pages=64,
        num_locks=64, num_barriers=8, seed=3,
        memory=MemoryParams(page_size=512),
        protocol=ProtocolParams(variant="ft"))
    return SvmRuntime(config, workload or MigratoryData(rounds=6))


def test_trace_records_protocol_events():
    runtime = ft_runtime()
    trace = ProtocolTrace(runtime.cluster)
    runtime.run()
    assert len(trace) > 0
    assert trace.select(Hooks.RELEASE_COMMITTED)
    assert trace.select(Hooks.CHECKPOINT_B)


def test_point_b_precedes_lock_release():
    """Two-phase invariant: the lock is handed over only after the
    timestamp save (point B) -- the extended protocol's atomicity
    hinge (paper Fig 2)."""
    runtime = ft_runtime()
    trace = ProtocolTrace(runtime.cluster)
    runtime.run()
    trace.assert_ordering(Hooks.DIFF_PHASE1_DONE, Hooks.LOCK_RELEASED)


def test_phase2_follows_point_b():
    runtime = ft_runtime()
    trace = ProtocolTrace(runtime.cluster)
    runtime.run()
    trace.assert_ordering(Hooks.DIFF_PHASE1_DONE, Hooks.DIFF_PHASE2_START)
    trace.assert_ordering(Hooks.DIFF_PHASE2_START, Hooks.DIFF_PHASE2_DONE)


def test_commit_precedes_phase1():
    runtime = ft_runtime()
    trace = ProtocolTrace(runtime.cluster)
    runtime.run()
    trace.assert_ordering(Hooks.RELEASE_COMMITTED, Hooks.DIFF_PHASE1_DONE)


def test_select_by_node():
    runtime = ft_runtime()
    trace = ProtocolTrace(runtime.cluster)
    runtime.run()
    node1 = trace.select(Hooks.RELEASE_COMMITTED, node=1)
    assert node1
    assert all(ev.node == 1 for ev in node1)


def test_between_window():
    runtime = ft_runtime()
    trace = ProtocolTrace(runtime.cluster)
    runtime.run()
    mid = runtime.engine.now / 2
    early = trace.between(0, mid)
    late = trace.between(mid, runtime.engine.now)
    assert len(early) + len(late) >= len(trace.events()) - 2


def test_capacity_bound_drops_oldest():
    runtime = ft_runtime()
    trace = ProtocolTrace(runtime.cluster, capacity=10)
    runtime.run()
    assert len(trace) == 10
    assert trace.dropped > 0


def test_assert_ordering_detects_violation():
    runtime = ft_runtime()
    trace = ProtocolTrace(runtime.cluster)
    runtime.run()
    with pytest.raises(AssertionError):
        # Deliberately inverted pair must fail.
        trace.assert_ordering(Hooks.RELEASE_DONE, Hooks.RELEASE_COMMITTED)


def test_dump_is_readable():
    runtime = ft_runtime()
    trace = ProtocolTrace(runtime.cluster)
    runtime.run()
    text = trace.dump(limit=5)
    assert len(text.splitlines()) <= 6
    assert "node=" in text


def test_export_header_carries_drop_count(tmp_path):
    from repro.metrics import load_jsonl
    runtime = ft_runtime()
    trace = ProtocolTrace(runtime.cluster, capacity=10)
    runtime.run()
    assert trace.dropped > 0
    path = tmp_path / "trace.jsonl"
    written = trace.export_jsonl(path, header={"seed": 3})
    header, events = load_jsonl(path)
    assert written == len(events) == 10
    # A truncated log must say so: replay and ordering checks key off
    # this field to refuse counting claims over lost history.
    assert header["dropped_events"] == trace.dropped
    assert header["seed"] == 3


def test_ordering_assertions_refuse_truncated_log():
    runtime = ft_runtime()
    trace = ProtocolTrace(runtime.cluster, capacity=10)
    runtime.run()
    with pytest.raises(AssertionError, match="truncated"):
        trace.assert_ordering(Hooks.CHECKPOINT_B, Hooks.LOCK_RELEASED)
