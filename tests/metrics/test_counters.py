"""Unit tests for protocol counters and their derived ratios."""

from repro.metrics import NodeCounters, RunCounters


def test_node_counters_start_zero():
    counters = NodeCounters()
    assert counters.releases == 0
    assert counters.checkpoint_bytes == 0


def test_add_merges_fieldwise():
    a = NodeCounters(releases=2, pages_diffed=5, checkpoint_bytes=100)
    b = NodeCounters(releases=3, pages_diffed=1, diff_messages=7)
    a.add(b)
    assert a.releases == 5
    assert a.pages_diffed == 6
    assert a.diff_messages == 7
    assert a.checkpoint_bytes == 100


def test_aggregate_over_nodes():
    nodes = [NodeCounters(pages_diffed=4, home_pages_diffed=1),
             NodeCounters(pages_diffed=6, home_pages_diffed=4)]
    run = RunCounters.aggregate(nodes)
    assert run.total.pages_diffed == 10
    assert run.total.home_pages_diffed == 5
    assert run.home_diff_fraction == 0.5


def test_home_diff_fraction_no_diffs():
    assert RunCounters().home_diff_fraction == 0.0


def test_mean_checkpoint_bytes():
    run = RunCounters.aggregate([
        NodeCounters(checkpoints=4, checkpoint_bytes=1000)])
    assert run.mean_checkpoint_bytes == 250.0
    assert RunCounters().mean_checkpoint_bytes == 0.0
