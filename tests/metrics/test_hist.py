"""Log2 histogram determinism: the property the SLO pipeline rests on.

A percentile from :class:`repro.metrics.hist.Log2Histogram` must be a
pure function of the *multiset* of samples -- independent of sample
order, of how the stream was partitioned across workers, and of the
merge order of the partitions. These tests pin that algebra directly
(associativity / commutativity / order-insensitivity on synthetic
streams) and then end-to-end: the same app specs run through
``parallel.run_specs`` at ``jobs=1`` and ``jobs=2`` must ship
bit-identical latency histograms and merge to the identical book.
"""

import json
import random

from repro.metrics.hist import (
    NUM_BUCKETS,
    Log2Histogram,
    MetricsRegistry,
    bucket_index,
    bucket_upper_us,
)
from repro.metrics.latency import ALL_OPS, LatencyBook
from repro.parallel import RunSummary, app_spec, run_specs


def _fill(samples):
    hist = Log2Histogram()
    for s in samples:
        hist.record(s)
    return hist


def _samples(seed, n=500):
    rng = random.Random(seed)
    # Mix of sub-us, mid-range, and heavy-tail values across buckets.
    return [rng.choice((0.0, 0.5, 3.0, 17.0, 129.4, 2048.0,
                        rng.uniform(0, 1e6)))
            for _ in range(n)]


# -- bucket algebra ----------------------------------------------------------

def test_bucket_bounds_are_consistent():
    # Every bucket's inclusive upper bound maps back into that bucket,
    # and the next integer maps into the next bucket.
    for i in range(NUM_BUCKETS - 1):
        upper = bucket_upper_us(i)
        assert bucket_index(upper) == i
        assert bucket_index(upper + 1) == i + 1
    assert bucket_index(2.0 ** 80) == NUM_BUCKETS - 1


def test_record_counts_and_mean():
    hist = _fill([0.0, 1.0, 1.5, 7.0, 8.0])
    assert hist.count == 5
    assert hist.mean_us == (0.0 + 1.0 + 1.5 + 7.0 + 8.0) / 5
    assert hist.counts[0] == 1          # [0, 1)
    assert hist.counts[1] == 2          # [1, 2)
    assert hist.counts[3] == 1          # [4, 8)
    assert hist.counts[4] == 1          # [8, 16)


def test_percentile_is_bucket_upper_bound():
    hist = _fill([3.0] * 99 + [1000.0])
    assert hist.percentile_us(0.50) == bucket_upper_us(2)   # 3
    assert hist.percentile_us(0.99) == bucket_upper_us(2)
    # The single tail sample only surfaces past rank 99.
    assert hist.percentile_us(0.999) == bucket_upper_us(10)  # 1023
    empty = Log2Histogram()
    assert empty.percentile_us(0.5) == 0.0


def test_percentiles_are_monotone_in_q():
    hist = _fill(_samples(7))
    values = [hist.percentile_us(q)
              for q in (0.01, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0)]
    assert values == sorted(values)
    pct = hist.percentiles()
    assert pct["p50"] <= pct["p99"] <= pct["p999"]


# -- merge algebra -----------------------------------------------------------

def test_merge_is_partition_invariant():
    samples = _samples(11, n=1000)
    whole = _fill(samples)
    rng = random.Random(3)
    for _ in range(5):
        # Arbitrary 3-way partition of the same stream.
        parts = [[], [], []]
        for s in samples:
            parts[rng.randrange(3)].append(s)
        merged = Log2Histogram.merged(_fill(p) for p in parts)
        assert merged.counts == whole.counts
        assert merged.count == whole.count
        assert merged.percentiles() == whole.percentiles()


def test_merge_is_associative_and_commutative():
    a, b, c = (_fill(_samples(seed)) for seed in (1, 2, 3))
    left = Log2Histogram.merged([_fill(_samples(1))])
    left.merge(b)
    left.merge(c)
    right = Log2Histogram.merged([_fill(_samples(2))])
    right.merge(c)
    right.merge(a)
    assert left.counts == right.counts
    assert left.count == right.count
    assert left.total_us == right.total_us


def test_round_trip_preserves_everything():
    hist = _fill(_samples(5))
    blob = json.dumps(hist.to_dict(), sort_keys=True)
    back = Log2Histogram.from_dict(json.loads(blob))
    assert back.counts == hist.counts
    assert back.count == hist.count
    assert back.total_us == hist.total_us
    assert back.percentiles() == hist.percentiles()


def test_registry_merge_is_deterministic():
    def build(seed):
        reg = MetricsRegistry()
        reg.counter_add("ops", 3)
        reg.gauge_set("water", float(seed))
        for s in _samples(seed, n=100):
            reg.observe("lat", s)
        return reg

    merged_a = MetricsRegistry()
    merged_a.merge(build(1))
    merged_a.merge(build(2))
    merged_b = MetricsRegistry()
    merged_b.merge(build(1))
    merged_b.merge(build(2))
    assert merged_a.to_dict() == merged_b.to_dict()
    assert merged_a.counters["ops"] == 6
    # Gauge keeps the last merge operand's value (document order).
    assert merged_a.gauges["water"] == 2.0
    round_trip = MetricsRegistry.from_dict(merged_a.to_dict())
    assert round_trip.to_dict() == merged_a.to_dict()


# -- cross-worker bit-identity -----------------------------------------------

def test_latency_histograms_independent_of_jobs():
    # The same specs through the parallel orchestrator at different job
    # counts must ship bit-identical per-run histograms, and the merged
    # sweep-level book (what `repro sweep --slo` evaluates) must be
    # identical too.
    def sweep(jobs):
        specs = [app_spec(app, variant, scale="test")
                 for app in ("FFT", "LU")
                 for variant in ("base", "ft")]
        results = run_specs(specs, jobs=jobs, cache=False)
        assert all(r.ok for r in results)
        summaries = [RunSummary.from_dict(r.summary) for r in results]
        per_run = [s.to_dict()["latency_hist"] for s in summaries]
        merged = LatencyBook.merged([s.latency for s in summaries])
        return per_run, merged.to_dict()

    serial_runs, serial_merged = sweep(jobs=1)
    parallel_runs, parallel_merged = sweep(jobs=2)
    assert serial_runs == parallel_runs
    assert serial_merged == parallel_merged
    book = LatencyBook.from_dict(serial_merged)
    assert any(book.hist(op).count for op in ALL_OPS)
