"""Tests for the Ocean stencil extension workload."""

import numpy as np
import pytest

from repro.apps import Ocean
from repro.cluster import Hooks
from repro.config import ClusterConfig, MemoryParams, ProtocolParams
from repro.harness import SvmRuntime
from repro.harness.faultplan import FaultPlan


def config_for(variant, threads_per_node=1):
    return ClusterConfig(
        num_nodes=4, threads_per_node=threads_per_node,
        shared_pages=64, num_locks=16, num_barriers=8, seed=3,
        memory=MemoryParams(page_size=512),
        protocol=ProtocolParams(variant=variant))


def test_row_partition_covers_interior():
    ocean = Ocean(n=32)
    covered = []
    for tid in range(4):
        covered.extend(ocean._rows(tid, 4))
    assert covered == list(range(1, 31))


def test_relax_row_only_touches_one_colour():
    row = np.arange(8, dtype=float)
    above = np.ones(8)
    below = np.zeros(8)
    out = Ocean._relax_row(above, row, below, colour=0, row_index=2,
                           omega=1.0)
    changed = np.nonzero(out != row)[0]
    # All changed points share one parity (the half-sweep's colour),
    # interior only.
    assert len(changed) > 0
    assert len({(2 + j) % 2 for j in changed}) == 1
    assert 0 not in changed and 7 not in changed  # boundary fixed


@pytest.mark.parametrize("variant", ["base", "ft"])
def test_ocean_matches_serial(variant):
    runtime = SvmRuntime(config_for(variant), Ocean(n=24, sweeps=3))
    result = runtime.run()  # bit-exact verify inside
    assert result.elapsed_us > 0


def test_ocean_smp():
    runtime = SvmRuntime(config_for("ft", threads_per_node=2),
                         Ocean(n=24, sweeps=2))
    runtime.run()


def test_ocean_nearly_all_home_diffs():
    """The stencil's writes are all band-local: home-page diff share
    should beat every app in the paper's suite except FFT/LU."""
    runtime = SvmRuntime(config_for("ft"), Ocean(n=32, sweeps=3))
    result = runtime.run()
    assert result.counters.home_diff_fraction > 0.8


@pytest.mark.parametrize("occurrence", [2, 4])
def test_ocean_survives_failure(occurrence):
    runtime = SvmRuntime(config_for("ft"), Ocean(n=24, sweeps=3))
    records = FaultPlan.single(2, Hooks.BARRIER_ENTER, occurrence,
                               0.5).apply(runtime)
    result = runtime.run()
    assert records[0].fired_at is not None
    assert result.recoveries == 1
