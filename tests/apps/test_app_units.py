"""Host-level unit tests for the applications' pure helpers (ownership
maps, reference computations, geometry) -- no simulation involved."""

import numpy as np
import pytest

from repro.apps import (
    FFT,
    LU,
    RadixSort,
    Volrend,
    WaterNsquared,
    WaterSpatial,
)
from repro.errors import ApplicationError


# -- FFT ---------------------------------------------------------------------

def test_fft_requires_power_of_four_points():
    FFT(points=1024)  # 32^2, ok
    with pytest.raises(ApplicationError):
        FFT(points=1000)
    with pytest.raises(ApplicationError):
        FFT(points=2048)  # side not integral


def test_fft_row_blocks_partition_rows():
    fft = FFT(points=1024)
    rows = set()
    for tid in range(8):
        block = fft._row_block(tid, 8)
        assert not rows & set(block)
        rows |= set(block)
    assert rows == set(range(fft.side))


# -- LU ----------------------------------------------------------------------

def test_lu_owner_scatter_covers_all_threads():
    lu = LU(n=128, block=16)
    owners = {lu.owner(i, j, 8) for i in range(lu.nb)
              for j in range(lu.nb)}
    assert owners == set(range(8))


def test_lu_owner_deterministic_2d_scatter():
    lu = LU(n=128, block=16)
    # 8 threads -> 2x4 grid: owner repeats with period (2, 4).
    assert lu.owner(0, 0, 8) == lu.owner(2, 4, 8)
    assert lu.owner(1, 3, 8) == lu.owner(3, 7, 8)


def test_lu_rejects_nondividing_block():
    with pytest.raises(ApplicationError):
        LU(n=100, block=16)


def test_lu_matrix_is_diagonally_dominant():
    lu = LU(n=64, block=16)
    a = lu._matrix()
    diag = np.abs(np.diag(a))
    off = np.abs(a).sum(axis=1) - diag
    assert (diag > off * 0.5).all()  # strongly weighted diagonal


# -- Water -------------------------------------------------------------------

def test_water_pair_force_antisymmetric():
    pi = np.array([1.0, 2.0, 3.0])
    pj = np.array([4.0, 0.0, 1.0])
    f_ij = WaterNsquared.pair_force(pi, pj)
    f_ji = WaterNsquared.pair_force(pj, pi)
    assert np.allclose(f_ij, -f_ji)


def test_water_serial_reference_conserves_momentum():
    wl = WaterNsquared(molecules=16, steps=2)
    pos0, vel0 = wl._initial_state()
    pos, vel = wl._serial_reference()
    # Pairwise antisymmetric forces: total momentum change is zero.
    assert np.allclose(vel.sum(axis=0), vel0.sum(axis=0), atol=1e-9)


def test_water_pairs_cover_each_unordered_pair_once():
    wl = WaterNsquared(molecules=12, steps=1)

    class Ctx:
        nthreads = 4

    seen = set()
    for tid in range(4):
        ctx = Ctx()
        ctx.tid = tid
        for pair in wl._my_pairs(ctx):
            assert pair not in seen
            seen.add(pair)
    assert len(seen) == 12 * 11 // 2


def test_spatial_band_layout_partitions_molecules():
    wl = WaterSpatial(molecules=40, steps=1)
    order, ranges, pos, _vel = wl._band_layout(4)
    assert sorted(order.tolist()) == list(range(40))
    covered = []
    for lo, hi in ranges:
        covered.extend(range(lo, hi))
    assert covered == list(range(40))
    # Bands are sorted by x coordinate.
    for band, (lo, hi) in enumerate(ranges):
        for m in range(lo, hi):
            assert wl._band_of(pos[m][0], 4) == band


# -- Radix -------------------------------------------------------------------

def test_radix_key_generation_deterministic():
    a = RadixSort(keys=128, seed=5)._keys()
    b = RadixSort(keys=128, seed=5)._keys()
    assert np.array_equal(a, b)
    c = RadixSort(keys=128, seed=6)._keys()
    assert not np.array_equal(a, c)


def test_radix_passes_cover_key_bits():
    wl = RadixSort(keys=128, radix_bits=4, key_bits=16)
    assert wl.passes == 4
    assert wl.radix == 16


def test_radix_result_segment_parity():
    even = RadixSort(keys=128, radix_bits=4, key_bits=8)  # 2 passes
    assert even.passes == 2
    # Even passes: keys end up back in the src segment.
    even.src, even.dst = "A", "B"
    assert even._result_segment() == "A"


# -- Volrend -----------------------------------------------------------------

def test_volrend_tile_geometry():
    wl = Volrend(image_size=16, tile=4)
    assert wl.ntiles == 16
    with pytest.raises(ApplicationError):
        Volrend(image_size=10, tile=4)


def test_volrend_render_deterministic_and_nontrivial():
    wl = Volrend(image_size=8, tile=4, volume_size=8)
    volume = wl._volume_data()
    a = wl._render_tile(volume, 5)
    b = wl._render_tile(volume, 5)
    assert np.array_equal(a, b)
    # The synthetic head produces non-uniform output.
    full = [wl._render_tile(volume, t) for t in range(wl.ntiles)]
    assert np.std(np.stack(full)) > 0


def test_volrend_tile_addrs_are_row_contiguous():
    wl = Volrend(image_size=8, tile=4, volume_size=8)

    class Seg:
        @staticmethod
        def addr(off):
            return off

    wl.image = Seg()
    addrs = list(wl._tile_addrs(1))  # tile (0, 1)
    assert [a for a, _py in addrs] == [
        (row * 8 + 4) * 8 for row in range(4)]
