"""Tests for the server-style KVStore workload (paper section 6's
'broader application domain' question)."""

import pytest

from repro.apps import KVStore
from repro.cluster import Hooks
from repro.config import ClusterConfig, MemoryParams, ProtocolParams
from repro.harness import SvmRuntime
from repro.harness.faultplan import FaultPlan


def config_for(variant, threads_per_node=1, seed=3):
    return ClusterConfig(
        num_nodes=4, threads_per_node=threads_per_node,
        shared_pages=64, num_locks=64, num_barriers=8, seed=seed,
        memory=MemoryParams(page_size=512),
        protocol=ProtocolParams(variant=variant))


@pytest.mark.parametrize("variant", ["base", "ft"])
def test_kvstore_correct(variant):
    runtime = SvmRuntime(config_for(variant),
                         KVStore(buckets=16, txns_per_thread=6))
    result = runtime.run()  # verify: conservation + serial replay
    assert result.counters.total.lock_acquires > 0


def test_kvstore_smp():
    runtime = SvmRuntime(config_for("ft", threads_per_node=2),
                         KVStore(buckets=16, txns_per_thread=4))
    runtime.run()


@pytest.mark.parametrize("hook,occurrence,delay", [
    (Hooks.LOCK_ACQUIRED, 5, 0.3),
    (Hooks.LOCK_RELEASED, 4, 0.2),     # between the two releases
    (Hooks.RELEASE_COMMITTED, 3, 1.5),
    (Hooks.DIFF_PHASE1_DONE, 3, 0.1),
])
def test_kvstore_survives_failure(hook, occurrence, delay):
    """No transaction may be lost or double-applied across a node
    death -- the version-counter check catches either."""
    runtime = SvmRuntime(config_for("ft"),
                         KVStore(buckets=16, txns_per_thread=8))
    records = FaultPlan.single(2, hook, occurrence, delay).apply(runtime)
    result = runtime.run()
    assert records[0].fired_at is not None
    assert result.recoveries == 1


def test_kvstore_no_owner_locality():
    """Server workloads have no owner-computes placement: the home-page
    diff fraction sits near 1/num_nodes (random access), below the
    scientific kernels'."""
    runtime = SvmRuntime(config_for("ft"),
                         KVStore(buckets=16, txns_per_thread=8))
    result = runtime.run()
    assert result.counters.home_diff_fraction < 0.6
