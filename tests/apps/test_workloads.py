"""Every SPLASH-2-style workload must compute the right answer through
both protocols, at uniprocessor and SMP configurations.

Each workload's ``verify`` compares the final shared memory against an
independent serial computation (numpy FFT, L*U residual, serial MD,
sorted keys, serial render), so passing these tests means the whole
coherence stack moved real data correctly.
"""

import pytest

from repro.apps import (
    FFT,
    LU,
    RadixSort,
    SyntheticWorkload,
    Volrend,
    WaterNsquared,
    WaterSpatial,
)
from repro.config import ClusterConfig, MemoryParams, ProtocolParams
from repro.harness import SvmRuntime


def config_for(workload, variant, num_nodes=4, threads_per_node=1,
               page_size=1024, seed=3):
    return ClusterConfig(
        num_nodes=num_nodes,
        threads_per_node=threads_per_node,
        shared_pages=1024,
        num_locks=256,
        num_barriers=8,
        seed=seed,
        memory=MemoryParams(page_size=page_size),
        protocol=ProtocolParams(variant=variant),
    )


def small_workloads():
    return [
        FFT(points=1024),
        LU(n=64, block=16),
        WaterNsquared(molecules=24, steps=1),
        WaterSpatial(molecules=24, steps=1),
        RadixSort(keys=512, radix_bits=4, key_bits=8),
        Volrend(image_size=8, tile=4, volume_size=8),
        SyntheticWorkload(iterations=6),
    ]


@pytest.mark.parametrize("workload", small_workloads(),
                         ids=lambda w: w.name)
@pytest.mark.parametrize("variant", ["base", "ft"])
def test_workload_correct(workload, variant):
    import copy
    wl = copy.deepcopy(workload)
    runtime = SvmRuntime(config_for(wl, variant), wl)
    result = runtime.run()  # verify() runs inside
    assert result.elapsed_us > 0
    assert result.breakdown.total > 0


@pytest.mark.parametrize("workload", [FFT(points=1024),
                                      WaterNsquared(molecules=24, steps=1),
                                      RadixSort(keys=512, radix_bits=4,
                                                key_bits=8)],
                         ids=lambda w: w.name)
def test_workload_smp_config(workload):
    import copy
    wl = copy.deepcopy(workload)
    runtime = SvmRuntime(
        config_for(wl, "ft", num_nodes=2, threads_per_node=2), wl)
    runtime.run()


def test_ft_slower_than_base_across_suite():
    """The paper's headline claim, app by app: the extended protocol
    costs more in the failure-free case."""
    overheads = {}
    for make in (lambda: FFT(points=1024),
                 lambda: RadixSort(keys=512, radix_bits=4, key_bits=8)):
        base = SvmRuntime(config_for(None, "base"), make()).run()
        ft = SvmRuntime(config_for(None, "ft"), make()).run()
        overheads[type(make()).__name__] = ft.elapsed_us / base.elapsed_us
    for name, ratio in overheads.items():
        assert ratio > 1.0, f"{name}: FT not slower ({ratio:.2f}x)"


def test_fft_base_sends_no_diffs():
    """Owner-computes placement: the base protocol never diffs."""
    result = SvmRuntime(config_for(None, "base"), FFT(points=1024)).run()
    assert result.counters.total.diff_messages == 0


def test_fft_ft_diffs_all_home_pages():
    result = SvmRuntime(config_for(None, "ft"), FFT(points=1024)).run()
    totals = result.counters.total
    assert totals.pages_diffed > 0
    assert totals.home_pages_diffed == totals.pages_diffed


def test_water_nsq_checkpoints_most():
    """Lock-heavy Water-Nsquared takes far more checkpoints than
    barrier-only FFT (the paper's 10 277 vs a few hundred)."""
    water = SvmRuntime(config_for(None, "ft"),
                       WaterNsquared(molecules=24, steps=1)).run()
    fft = SvmRuntime(config_for(None, "ft"), FFT(points=1024)).run()
    assert water.counters.total.checkpoints > \
        3 * fft.counters.total.checkpoints


def test_radix_low_home_diff_fraction():
    """Radix scatters writes to other threads' pages: its home-diff
    fraction is the lowest of the suite (the paper's ~12%). The
    characterization needs pages small enough that per-thread regions
    span multiple pages (the paper's 4M keys over 4 KB pages)."""
    radix = SvmRuntime(config_for(None, "ft", page_size=256),
                       RadixSort(keys=1024, radix_bits=4,
                                 key_bits=8)).run()
    spatial = SvmRuntime(config_for(None, "ft", page_size=256),
                         WaterSpatial(molecules=96, steps=1)).run()
    assert radix.counters.home_diff_fraction < \
        spatial.counters.home_diff_fraction


def test_spatial_mostly_home_diffs():
    """Water-SpatialFL's interior updates are owner-local: most diffed
    pages are home pages (the paper's >99%)."""
    result = SvmRuntime(config_for(None, "ft", page_size=256),
                        WaterSpatial(molecules=96, steps=1)).run()
    assert result.counters.home_diff_fraction > 0.5
