"""Edge-case tests for the communication layer."""

import random

import pytest

from repro.config import CostModel, NetworkParams
from repro.errors import NetworkError, RemoteNodeFailure
from repro.net import NIC, Network, VMMC
from repro.net.regions import MemoryRegion
from repro.sim import Delay, Engine


def make_net(num_nodes=3, params=None):
    engine = Engine()
    params = params or NetworkParams()
    network = Network(engine, params)
    endpoints = []
    for node_id in range(num_nodes):
        nic = NIC(engine, node_id, params, random.Random(node_id))
        network.attach(nic)
        endpoints.append(VMMC(engine, nic, CostModel()))
    return engine, network, endpoints


def test_region_write_hook_sees_source():
    engine, network, (a, b, _c) = make_net()
    region = network.nic(1).regions.export("buf", 64)
    seen = []
    region.on_remote_write = lambda off, ln, src: seen.append(
        (off, ln, src))

    def sender():
        yield from a.remote_deposit(1, "buf", 4, b"abc", wait=True)

    engine.spawn(sender())
    engine.run()
    assert seen == [(4, 3, 0)]


def test_local_region_view_bypasses_hook():
    region = MemoryRegion("r", 32)
    called = []
    region.on_remote_write = lambda *a: called.append(a)
    region.view()[0:4] = b"x" * 4
    assert not called
    assert region.read(0, 4) == b"xxxx"


def test_duplicate_region_export_rejected():
    engine, network, endpoints = make_net()
    network.nic(0).regions.export("dup", 64)
    from repro.errors import MemoryError_
    with pytest.raises(MemoryError_):
        network.nic(0).regions.export("dup", 64)


def test_duplicate_service_rejected():
    engine, network, endpoints = make_net()

    def handler(body, src):
        return None, 0
        yield

    network.nic(0).register_service("svc", handler)
    with pytest.raises(NetworkError):
        network.nic(0).register_service("svc", handler)


def test_duplicate_notify_channel_rejected():
    engine, network, endpoints = make_net()
    network.nic(0).register_notify_handler("chan", lambda m: None)
    with pytest.raises(NetworkError):
        network.nic(0).register_notify_handler("chan", lambda m: None)


def test_notify_wait_to_dead_node_raises():
    engine, network, (a, b, _c) = make_net()
    network.nic(1).register_notify_handler("chan", lambda m: None)
    outcome = []

    def sender():
        network.nic(1).fail()
        try:
            yield from a.notify(1, "chan", "x", wait=True)
        except RemoteNodeFailure:
            outcome.append("dead")

    engine.spawn(sender())
    engine.run()
    assert outcome == ["dead"]


def test_dead_nic_drops_queued_but_delivers_in_flight():
    """Messages already on the wire arrive; messages still queued at
    the dead sender are lost (the paper's 'no guarantee' case)."""
    params = NetworkParams(bandwidth_bytes_per_us=2.0,
                           post_queue_depth=16)
    engine, network, (a, b, _c) = make_net(params=params)
    region = network.nic(1).regions.export("buf", 64)

    def sender():
        # First message serializes (~48us at 2B/us) and gets onto the
        # wire; the rest sit in the post queue when the node dies.
        for i in range(5):
            yield from a.remote_deposit(1, "buf", i, bytes([i + 1]))

    engine.spawn(sender())
    engine.schedule(60.0, network.nic(0).fail)
    engine.run()
    data = region.read(0, 5)
    assert data[0] != 0, "in-flight message should have arrived"
    assert 0 in data[1:], "queued messages should have been lost"


def test_messages_to_self_rejected_at_fabric():
    engine, network, (a, b, _c) = make_net()
    from repro.net.message import Message, MessageKind
    with pytest.raises(NetworkError):
        network.transmit(Message(MessageKind.DEPOSIT, 1, 1, 0,
                                 payload=("buf", 0, b"")))


def test_probe_self_is_true_without_traffic():
    engine, network, (a, b, _c) = make_net()
    results = []

    def prober():
        results.append((yield from a.probe(0)))

    engine.spawn(prober())
    engine.run()
    assert results == [True]
    assert network.nic(0).messages_sent == 0
