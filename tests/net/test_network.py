"""Integration-style tests for the NIC/Network/VMMC stack."""

import random

import pytest

from repro.config import CostModel, NetworkParams
from repro.errors import MemoryError_, RemoteNodeFailure
from repro.net import NIC, Network, VMMC
from repro.sim import Delay, Engine


def make_cluster_net(num_nodes=2, params=None, costs=None):
    """Build engine + network + one (NIC, VMMC) pair per node."""
    engine = Engine()
    params = params or NetworkParams()
    costs = costs or CostModel()
    network = Network(engine, params)
    endpoints = []
    for node_id in range(num_nodes):
        nic = NIC(engine, node_id, params, random.Random(node_id))
        network.attach(nic)
        endpoints.append(VMMC(engine, nic, costs))
    return engine, network, endpoints


def test_remote_deposit_lands_in_remote_region():
    engine, network, (a, b) = make_cluster_net()
    region = network.nic(1).regions.export("buf", 256)

    def sender():
        yield from a.remote_deposit(1, "buf", 16, b"hello", wait=True)

    engine.spawn(sender())
    engine.run()
    assert region.read(16, 5) == b"hello"


def test_deposit_without_wait_is_asynchronous():
    engine, network, (a, b) = make_cluster_net()
    network.nic(1).regions.export("buf", 64)
    finished_at = []

    def sender():
        yield from a.remote_deposit(1, "buf", 0, b"x" * 32)
        finished_at.append(engine.now)

    engine.spawn(sender())
    engine.run()
    # Sender returned before the wire latency (8us) could have elapsed.
    assert finished_at[0] < 8.0


def test_remote_fetch_returns_remote_bytes():
    engine, network, (a, b) = make_cluster_net()
    region = network.nic(1).regions.export("buf", 128)
    region.write(32, b"abcdef")
    got = []

    def reader():
        data = yield from a.remote_fetch(1, "buf", 32, 6)
        got.append((data, engine.now))

    engine.spawn(reader())
    engine.run()
    assert got[0][0] == b"abcdef"
    # Round trip: at least two wire latencies.
    assert got[0][1] >= 16.0


def test_fifo_ordering_per_destination():
    engine, network, (a, b) = make_cluster_net()
    region = network.nic(1).regions.export("buf", 8)
    writes = []
    region.on_remote_write = lambda off, ln, src: writes.append(
        region.read(0, 1))

    def sender():
        for i in range(10):
            yield from a.remote_deposit(1, "buf", 0, bytes([i]))

    engine.spawn(sender())
    engine.run()
    assert writes == [bytes([i]) for i in range(10)]


def test_deposit_to_dead_node_raises_when_waiting():
    engine, network, (a, b) = make_cluster_net()
    network.nic(1).regions.export("buf", 64)
    outcome = []

    def sender():
        yield Delay(1.0)
        try:
            yield from a.remote_deposit(1, "buf", 0, b"data", wait=True)
            outcome.append("ok")
        except RemoteNodeFailure as exc:
            outcome.append(("dead", exc.node_id))

    network.nic(1).fail()
    engine.spawn(sender())
    engine.run()
    assert outcome == [("dead", 1)]


def test_fetch_from_dead_node_raises():
    engine, network, (a, b) = make_cluster_net()
    network.nic(1).regions.export("buf", 64)
    outcome = []

    def reader():
        network.nic(1).fail()
        try:
            yield from a.remote_fetch(1, "buf", 0, 8)
        except RemoteNodeFailure:
            outcome.append("detected")

    engine.spawn(reader())
    engine.run()
    assert outcome == ["detected"]


def test_node_dying_mid_request_detected_by_heartbeat():
    """Peer receives the request then dies before replying: the
    heart-beat probe must detect the failure."""
    engine, network, (a, b) = make_cluster_net()
    region = network.nic(1).regions.export("buf", 64)
    outcome = []

    # Kill node 1 right after the request is delivered into its NIC
    # (post 0.7 + NIC 1.5 + serialize ~1 + wire 8 = ~11.2us) but before
    # its reply is transmitted, so the requester sees silence rather
    # than a fabric error and must fall back to heart-beat probing.
    def killer():
        yield Delay(11.5)
        network.nic(1).fail()

    def reader():
        try:
            yield from a.remote_fetch(1, "buf", 0, 8)
            outcome.append("ok")
        except RemoteNodeFailure:
            outcome.append(("detected", engine.now))

    engine.spawn(killer())
    engine.spawn(reader())
    engine.run()
    assert outcome[0][0] == "detected"
    # Detection takes at least one heart-beat timeout.
    assert outcome[0][1] >= CostModel().heartbeat_timeout_us


def test_subsequent_operations_to_dead_node_fail_immediately():
    engine, network, (a, b) = make_cluster_net()
    network.nic(1).regions.export("buf", 64)
    times = []

    def reader():
        network.nic(1).fail()
        for _ in range(2):
            try:
                yield from a.remote_fetch(1, "buf", 0, 8)
            except RemoteNodeFailure:
                times.append(engine.now)

    engine.spawn(reader())
    engine.run()
    assert len(times) == 2
    # Second failure is known locally: no extra communication round.
    assert times[1] == times[0]


def test_probe_alive_and_dead():
    engine, network, (a, b) = make_cluster_net()
    results = []

    def prober():
        alive = yield from a.probe(1)
        results.append(alive)
        network.nic(1).fail()
        alive = yield from a.probe(1)
        results.append(alive)

    engine.spawn(prober())
    engine.run()
    assert results == [True, False]


def test_notify_invokes_registered_handler():
    engine, network, (a, b) = make_cluster_net()
    seen = []
    network.nic(1).register_notify_handler(
        "locks", lambda msg: seen.append(msg.payload[1]))

    def sender():
        yield from a.notify(1, "locks", {"op": "acquire"}, wait=True)

    engine.spawn(sender())
    engine.run()
    assert seen == [{"op": "acquire"}]


def test_post_queue_backpressure_blocks_sender():
    params = NetworkParams(post_queue_depth=2, bandwidth_bytes_per_us=1.0)
    engine, network, (a, b) = make_cluster_net(params=params)
    network.nic(1).regions.export("buf", 8192)
    done = []

    def sender():
        # Each message takes ~ (32+1024)/1 us to serialize; with queue
        # depth 2 the fourth post must block.
        for i in range(4):
            yield from a.remote_deposit(1, "buf", 0, b"z" * 1024)
        done.append(engine.now)

    engine.spawn(sender())
    engine.run()
    assert network.nic(0).post_queue_stalls >= 1
    # The sender was throttled to roughly the serialization rate.
    assert done[0] > 1056.0  # at least one full message serialization


def test_region_bounds_checked():
    engine, network, (a, b) = make_cluster_net()
    region = network.nic(1).regions.export("buf", 64)
    with pytest.raises(MemoryError_):
        region.read(60, 8)
    with pytest.raises(MemoryError_):
        region.write(-1, b"x")


def test_transient_errors_add_latency_but_deliver():
    params = NetworkParams(transient_error_rate=0.5)
    engine, network, (a, b) = make_cluster_net(params=params)
    region = network.nic(1).regions.export("buf", 64)

    def sender():
        for i in range(8):
            yield from a.remote_deposit(1, "buf", i, bytes([i]), wait=True)

    engine.spawn(sender())
    engine.run()
    assert region.read(0, 8) == bytes(range(8))


def test_message_counters():
    engine, network, (a, b) = make_cluster_net()
    network.nic(1).regions.export("buf", 64)

    def sender():
        yield from a.remote_deposit(1, "buf", 0, b"abcd", wait=True)

    engine.spawn(sender())
    engine.run()
    assert network.nic(0).messages_sent == 1
    assert network.nic(1).messages_received == 1
    assert network.nic(0).bytes_sent == 32 + 4


def test_service_call_roundtrip():
    engine, network, (a, b) = make_cluster_net()
    from repro.sim import Delay as _Delay

    def handler(body, src):
        yield _Delay(2.0)
        return {"echo": body, "from": src}, 16

    network.nic(1).register_service("echo", handler)
    results = []

    def caller():
        reply = yield from a.call(1, "echo", "hi")
        results.append(reply)

    engine.spawn(caller())
    engine.run()
    assert results == [{"echo": "hi", "from": 0}]


def test_service_deferred_reply():
    """A service handler may wait (e.g. a barrier manager); concurrent
    requests are each served by their own process."""
    engine, network, endpoints = make_cluster_net(num_nodes=3)
    from repro.sim import Event as _Event
    gate = _Event(engine, "gate")
    arrivals = []

    def handler(body, src):
        arrivals.append(src)
        if len(arrivals) == 2:
            gate.succeed(None)
        yield gate
        return "released", 8

    network.nic(2).register_service("barrier", handler)
    done = []

    def caller(ep):
        reply = yield from ep.call(2, "barrier", None)
        done.append((ep.node_id, reply, engine.now))

    engine.spawn(caller(endpoints[0]))
    engine.spawn(caller(endpoints[1]))
    engine.run()
    assert sorted(d[0] for d in done) == [0, 1]
    assert all(d[1] == "released" for d in done)


def test_service_call_to_dead_node_raises():
    engine, network, (a, b) = make_cluster_net()

    def handler(body, src):
        return "ok", 8
        yield  # pragma: no cover

    network.nic(1).register_service("echo", handler)
    outcome = []

    def caller():
        network.nic(1).fail()
        try:
            yield from a.call(1, "echo", "hi")
        except RemoteNodeFailure:
            outcome.append("dead")

    engine.spawn(caller())
    engine.run()
    assert outcome == ["dead"]
