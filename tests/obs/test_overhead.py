"""Observability must cost nothing when it is off.

The hook bus early-returns when no subscriber is registered, so a run
without a recorder/sampler/watchdog attached must execute *zero*
observability callbacks -- not "few", zero. Every obs closure bumps a
module-level call counter (repro.obs.instrumentation) precisely so this
test can count them; the figure-7 benchmark gate then inherits the
guarantee that BENCH_hotpaths numbers are unaffected.
"""

from repro.harness.experiments import run_app
from repro.obs import FlightRecorder, TimeSeriesSampler, StallWatchdog
from repro.obs import instrumentation
from repro.verify.replay import ReplayScenario, build_runtime


def test_figure7_cell_with_obs_off_invokes_no_hooks():
    instrumentation.reset()
    result = run_app("FFT", "ft", scale="test")
    assert result.elapsed_us > 0
    snap = instrumentation.snapshot()
    assert snap == {"recorder": 0, "sampler": 0, "watchdog": 0,
                    "optrace": 0}, snap


def test_counters_move_when_obs_is_on():
    instrumentation.reset()
    runtime = build_runtime(ReplayScenario(
        program_seed=145, cluster_seed=1, plan_seed=533, failures=0))
    recorder = FlightRecorder(runtime)
    sampler = TimeSeriesSampler(runtime, period_us=500.0)
    sampler.start()
    dog = StallWatchdog(runtime, horizon_us=50_000.0)
    dog.start()
    runtime.run()
    recorder.detach()
    snap = instrumentation.snapshot()
    assert snap["recorder"] > 0
    assert snap["sampler"] > 0
    assert snap["watchdog"] > 0


def test_detach_unsubscribes():
    instrumentation.reset()
    runtime = build_runtime(ReplayScenario(
        program_seed=145, cluster_seed=1, plan_seed=533, failures=0))
    recorder = FlightRecorder(runtime)
    recorder.detach()
    runtime.run()
    assert instrumentation.snapshot()["recorder"] == 0
