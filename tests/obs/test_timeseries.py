"""Time-series sampler: cadence, columnar layout, and derived views."""

from repro.metrics import timeseries_panel
from repro.obs import TimeSeriesSampler
from repro.verify.replay import ReplayScenario, build_runtime


def _sampled(period_us=500.0, failures=0):
    runtime = build_runtime(ReplayScenario(
        program_seed=145, cluster_seed=1, plan_seed=533,
        failures=failures))
    sampler = TimeSeriesSampler(runtime, period_us=period_us)
    sampler.start()
    runtime.run()
    return runtime, sampler


def test_samples_on_the_metronome():
    runtime, sampler = _sampled(period_us=500.0)
    times = sampler.times
    assert times[0] == 0.0
    deltas = [b - a for a, b in zip(times, times[1:])]
    assert deltas and all(abs(d - 500.0) < 1e-6 for d in deltas)
    # The metronome is passive: it must not keep the engine alive past
    # the workload, so sampling stops when the run does.
    assert times[-1] <= runtime.engine.now


def test_series_are_columnar_and_aligned():
    _, sampler = _sampled()
    n = len(sampler.times)
    assert n > 2
    for key, column in sampler.series.items():
        assert len(column) == n, f"ragged column {key}"
    totals = sampler.totals()
    assert totals["page_faults"][-1] > 0


def test_rates_are_nonnegative():
    _, sampler = _sampled()
    times, rates = sampler.rates()
    assert len(times) == len(sampler.times) - 1
    for field, column in rates.items():
        assert all(v >= 0 for v in column), field


def test_gauges_track_queue_depth():
    _, sampler = _sampled()
    depth = sampler.gauge("engine.queue_depth")
    assert len(depth) == len(sampler.times)
    assert max(depth) > 0


def test_chrome_counter_events():
    runtime, sampler = _sampled()
    events = sampler.to_chrome_counters(
        cluster_pid=runtime.config.num_nodes)
    assert events
    assert all(ev["ph"] == "C" for ev in events)


def test_timeseries_panel_renders():
    _, sampler = _sampled()
    times, rates = sampler.rates()
    panel = timeseries_panel("activity", times, rates)
    assert "page_faults" in panel
    assert "peak" in panel
