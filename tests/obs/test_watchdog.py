"""Stall watchdog against the two known-deadlocking fault schedules.

Plans 537x2 and 612x2 (seed 145/1) hang after their second recovery --
tracked as xfail regressions in tests/integration. The watchdog's job is
to turn that silent hang into an actionable wait-for dump, so these
tests assert it fires, names the blocked threads, and surfaces the
barrier state and in-flight releases that the post-mortem in
docs/RECOVERY.md is built on.
"""

import pytest

from repro.errors import ProtocolError
from repro.obs import StallWatchdog, build_waitfor, format_waitfor
from repro.verify.replay import ReplayScenario, build_runtime

DEADLOCK_PLANS = [537, 612]


def _run_deadlock(plan_seed):
    runtime = build_runtime(ReplayScenario(
        program_seed=145, cluster_seed=1,
        plan_seed=plan_seed, failures=2))
    dog = StallWatchdog(runtime, horizon_us=20_000.0)
    dog.start()
    with pytest.raises(ProtocolError):
        runtime.run(max_sim_us=200_000.0)
    return runtime, dog


@pytest.mark.parametrize("plan_seed", DEADLOCK_PLANS)
def test_watchdog_fires_on_deadlock(plan_seed):
    runtime, dog = _run_deadlock(plan_seed)
    assert dog.dumps, "watchdog never fired on a known deadlock"
    report = dog.dumps[0]
    assert "wait-for graph" in report
    assert "thread" in report
    # The dump must name at least one blocked thread with its wait
    # reason; both plans stall with a survivor parked on barrier 0.
    assert "barrier" in report
    graph = dog.graphs[0]
    waiting = [t for t in graph["threads"]
               if t["waiting"] and not t["finished"]]
    assert waiting, "graph shows no blocked threads"
    assert any(t["kind"] == "barrier" for t in waiting)


@pytest.mark.parametrize("plan_seed", DEADLOCK_PLANS)
def test_waitfor_graph_shows_stalled_state(plan_seed):
    runtime, dog = _run_deadlock(plan_seed)
    graph = dog.graphs[-1]
    # Both schedules end with two detected failures and a barrier
    # generation waiting on an arrival that can never come.
    assert len(graph["homes"]["failed"]) == 2
    # The stuck barrier shows up either as a generation with missing
    # arrivals at the manager (537x2) or, when the arrival itself was
    # lost across the manager change, as a thread parked forever on the
    # barrier event with no generation open at all (612x2).
    stalled_barriers = [b for b in graph["barriers"] if b["missing"]]
    barrier_waiters = [t for t in graph["threads"]
                       if not t["finished"] and t["kind"] == "barrier"]
    assert stalled_barriers or barrier_waiters
    # An in-flight release frozen mid-protocol on a dead node is the
    # other half of the post-mortem; 537x2 and 612x2 both exhibit one.
    frozen = [entry for node in graph["inflight"].values()
              for entry in node]
    assert frozen, "no in-flight release captured"
    assert all("stage" in entry for entry in frozen)


def test_watchdog_is_quiet_on_clean_run():
    runtime = build_runtime(ReplayScenario(
        program_seed=145, cluster_seed=1, plan_seed=533, failures=2))
    dog = StallWatchdog(runtime, horizon_us=20_000.0)
    dog.start()
    runtime.run()
    assert not dog.dumps


def test_format_waitfor_renders_live_runtime():
    runtime = build_runtime(ReplayScenario(
        program_seed=145, cluster_seed=1, plan_seed=533, failures=0))
    runtime.run()
    graph = build_waitfor(runtime)
    text = format_waitfor(graph, horizon_us=1000.0)
    assert "wait-for graph" in text
    assert "thread 0" in text
